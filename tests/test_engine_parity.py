"""Array-native engine: backend parity, ArrayAssistant behaviour, kernels.

The contract under test (docs/architecture.md "Execution engines"):

- The vector engine's batch schedule is *specified* by
  :class:`~repro.core.engine.ReferenceVectorEngine` — the same
  base-occupancy-masked peel and scalar-walker remainder executed with
  per-key Python loops. Parity is walk for walk: bit-equal value tables
  and equal stats counters after arbitrary mixed sequences.
- Single-key operations (insert/update/delete) are bit-identical across
  backends: repair walks depend only on the assistant's structure, which
  both assistant implementations expose identically.
- ``bulk_load`` is bit-identical across backends (same peel rounds, same
  reverse-round assignment).
- :class:`~repro.core.engine.ArrayAssistant` is behaviourally equivalent
  to :class:`~repro.core.assistant_table.AssistantTable` under random
  operation interleavings.
"""

import random

import numpy as np
import pytest

from repro.core import (
    HAVE_NUMBA,
    ArrayAssistant,
    AssistantTable,
    DuplicateKey,
    EmbedderConfig,
    NumbaEngine,
    ReferenceVectorEngine,
    ScalarEngine,
    SpaceExhausted,
    VectorEngine,
    VisionEmbedder,
    make_engine,
)
from repro.core.engine import peel_rounds_masked
from repro.core.packed_table import PackedValueTable
from repro.core.value_table import ValueTable
from repro.factory import make_table


def _workload(n, value_bits, seed):
    rng = random.Random(seed)
    keys = []
    seen = set()
    while len(keys) < n:
        key = rng.getrandbits(48)
        if key not in seen:
            seen.add(key)
            keys.append(key)
    values = [rng.getrandbits(value_bits) for _ in range(n)]
    return keys, values


def _make_pair(capacity, value_bits, seed, packed=False, **config_kwargs):
    """A vector-backend embedder and its reference-engine twin."""
    vec = VisionEmbedder(
        capacity, value_bits, seed=seed, packed=packed,
        config=EmbedderConfig(backend="vector", **config_kwargs),
    )
    ref = VisionEmbedder(
        capacity, value_bits, seed=seed, packed=packed,
        config=EmbedderConfig(**config_kwargs),
    )
    ref._engine = ReferenceVectorEngine()
    return vec, ref


def _assert_stats_equal(left, right):
    from repro.core.stats import STAT_FIELDS

    for attr in STAT_FIELDS:
        if attr == "reconstruct_seconds":  # wall clock, never bit-equal
            continue
        assert getattr(left.stats, attr) == getattr(right.stats, attr), attr


def _assert_twins(vec, ref):
    vec.check_invariants()
    ref.check_invariants()
    assert vec._table == ref._table
    _assert_stats_equal(vec, ref)
    assert vec.seed == ref.seed


class TestVectorReferenceParity:
    @pytest.mark.parametrize("packed", [False, True])
    @pytest.mark.parametrize("n", [0, 1, 7, 500])
    def test_single_batch_parity(self, n, packed):
        vec, ref = _make_pair(1000, 16, seed=3, packed=packed)
        keys, values = _workload(n, 16, seed=n + 1)
        vec.insert_batch(keys, values)
        ref.insert_batch(keys, values)
        _assert_twins(vec, ref)
        assert vec.lookup_many(keys).tolist() == values

    @pytest.mark.parametrize("seed", [1, 5, 11])
    def test_mixed_sequence_parity(self, seed):
        """Batches, deletes, updates, and reconstruction, in lockstep."""
        vec, ref = _make_pair(400, 12, seed=seed)
        rng = random.Random(seed * 7)
        live = []
        fresh = iter(range(1, 10_000))
        for round_index in range(6):
            size = rng.choice([0, 1, 13, 60])
            batch = [next(fresh) for _ in range(size)]
            values = [rng.getrandbits(12) for _ in batch]
            vec.insert_batch(batch, values)
            ref.insert_batch(batch, values)
            live.extend(batch)
            for _ in range(min(len(live), rng.randrange(0, 8))):
                victim = live.pop(rng.randrange(len(live)))
                vec.delete(victim)
                ref.delete(victim)
            for _ in range(min(len(live), 3)):
                target = rng.choice(live)
                value = rng.getrandbits(12)
                vec.update(target, value)
                ref.update(target, value)
            _assert_twins(vec, ref)
        vec.reconstruct()
        ref.reconstruct()
        _assert_twins(vec, ref)

    def test_collision_fallback_parity(self):
        """High base occupancy forces blocked cells and real fallback walks.

        A second batch onto an already half-full small table leaves many
        candidate cells pinned (base_counts > 0), so the peel retires only
        part of the batch and the rest goes through the scalar walker —
        in both engines, identically.
        """
        vec, ref = _make_pair(120, 10, seed=9)
        first_keys, first_values = _workload(55, 10, seed=1)
        vec.insert_batch(first_keys, first_values)
        ref.insert_batch(first_keys, first_values)
        second_keys, second_values = _workload(40, 10, seed=2)
        second_keys = [k for k in second_keys if k not in set(first_keys)]
        second_values = second_values[: len(second_keys)]
        vec.insert_batch(second_keys, second_values)
        ref.insert_batch(second_keys, second_values)
        _assert_twins(vec, ref)
        # The fallback genuinely ran: some of the second batch was blocked.
        from repro.obs import json_snapshot

        counters = json_snapshot(vec.metrics)["counters"]
        assert counters["repro_engine_fallback_walks_total"]["value"] > 0

    def test_bulk_load_parity_across_backends(self):
        keys, values = _workload(300, 12, seed=4)
        scalar = VisionEmbedder(400, 12, seed=6)
        vector = VisionEmbedder(
            400, 12, seed=6, config=EmbedderConfig(backend="vector")
        )
        scalar.bulk_load(zip(keys, values))
        vector.bulk_load(zip(keys, values))
        scalar.check_invariants()
        vector.check_invariants()
        assert scalar._table == vector._table
        _assert_stats_equal(scalar, vector)
        assert scalar.seed == vector.seed

    def test_bulk_load_parity_on_nonempty_table(self):
        keys, values = _workload(200, 12, seed=8)
        scalar = VisionEmbedder(400, 12, seed=2)
        vector = VisionEmbedder(
            400, 12, seed=2, config=EmbedderConfig(backend="vector")
        )
        scalar.insert_batch(keys[:50], values[:50])
        vector.insert_batch(keys[:50], values[:50])
        scalar.bulk_load(zip(keys[50:], values[50:]))
        vector.bulk_load(zip(keys[50:], values[50:]))
        scalar.check_invariants()
        vector.check_invariants()
        # bulk_load re-peels everything from the assistant's pairs, which
        # both backends keep in the same registration order.
        assert scalar._table == vector._table
        assert scalar.seed == vector.seed


class TestCrossBackendSingleKeyOps:
    @pytest.mark.parametrize("backend", ["vector", "numba"])
    def test_single_key_sequences_bit_equal(self, backend):
        """insert/update/delete walk-for-walk identical to the scalar
        backend: trajectories depend only on assistant structure."""
        scalar = VisionEmbedder(150, 12, seed=5)
        other = VisionEmbedder(
            150, 12, seed=5, config=EmbedderConfig(backend=backend)
        )
        rng = random.Random(13)
        keys, values = _workload(80, 12, seed=3)
        live = []
        for key, value in zip(keys, values):
            scalar.insert(key, value)
            other.insert(key, value)
            live.append(key)
            if rng.random() < 0.2:
                victim = live.pop(rng.randrange(len(live)))
                scalar.delete(victim)
                other.delete(victim)
            if live and rng.random() < 0.3:
                target = rng.choice(live)
                new_value = rng.getrandbits(12)
                scalar.update(target, new_value)
                other.update(target, new_value)
            assert scalar._table == other._table
        _assert_stats_equal(scalar, other)
        scalar.check_invariants()
        other.check_invariants()


class TestBatchSemantics:
    def test_space_exhausted_aborts_cleanly(self):
        """A SpaceExhausted mid-batch rolls the whole batch back: the
        table is bit-equal to its pre-batch state (strong exception
        guarantee), not left holding a walked prefix."""
        table = VisionEmbedder(
            30, 8, seed=1,
            config=EmbedderConfig(
                backend="vector", reconstruct_efficiency_limit=0.3,
            ),
        )
        keys, values = _workload(40, 8, seed=2)
        baseline = table._table.copy()
        baseline_pairs = sorted(table._assistant.pairs())
        with pytest.raises(SpaceExhausted):
            table.insert_batch(keys, values)
        table.check_invariants()
        assert table._table == baseline
        assert sorted(table._assistant.pairs()) == baseline_pairs
        assert len(table) == 0
        assert not any(k in table for k in keys)

    def test_space_exhausted_rollback_scalar_backend(self):
        """Same strong guarantee on the scalar engine: a mid-batch
        SpaceExhausted leaves the table bit-equal to pre-batch."""
        table = VisionEmbedder(
            30, 8, seed=1,
            config=EmbedderConfig(
                backend="scalar", reconstruct_efficiency_limit=0.3,
            ),
        )
        keys, values = _workload(40, 8, seed=2)
        baseline = table._table.copy()
        baseline_pairs = sorted(table._assistant.pairs())
        with pytest.raises(SpaceExhausted):
            table.insert_batch(keys, values)
        table.check_invariants()
        assert table._table == baseline
        assert sorted(table._assistant.pairs()) == baseline_pairs
        assert len(table) == 0

    def test_rejected_batch_leaves_table_untouched(self):
        table = VisionEmbedder(
            200, 8, seed=4, config=EmbedderConfig(backend="vector")
        )
        table.insert_batch([1, 2, 3], [4, 5, 6])
        baseline = table._table.copy()
        with pytest.raises(DuplicateKey):
            table.insert_batch([10, 10], [1, 1])
        with pytest.raises(DuplicateKey):
            table.insert_batch([2, 99], [1, 1])
        with pytest.raises(ValueError):
            table.insert_batch([50, 51], [1, 999])
        with pytest.raises(ValueError):
            table.insert_batch([52, 53], [1, -1])
        with pytest.raises(ValueError):
            table.insert_batch([54], [1 << 70])
        assert table._table == baseline
        assert len(table) == 3
        table.check_invariants()

    def test_engine_metrics_registered_lazily(self):
        scalar = VisionEmbedder(100, 8, seed=1)
        scalar.insert_batch([1, 2], [3, 4])
        vector = VisionEmbedder(
            100, 8, seed=1, config=EmbedderConfig(backend="vector")
        )
        vector.insert_batch([1, 2, 3], [4, 5, 6])
        from repro.obs import json_snapshot

        snapshot = json_snapshot(vector.metrics)
        counters = snapshot["counters"]
        assert counters["repro_engine_peeled_total"]["value"] == 3
        assert "repro_engine_fallback_walks_total" in counters
        assert "repro_engine_frontier_peak" in snapshot["gauges"]
        scalar_snapshot = json_snapshot(scalar.metrics)
        assert not any(
            "repro_engine" in name
            for section in ("counters", "gauges")
            for name in scalar_snapshot[section]
        )


class TestPeelRoundsMasked:
    def test_base_occupancy_blocks_cells(self):
        # Key 0 -> cells 0, 4, 8; key 1 -> cells 1, 4, 9. Cell 0 blocked
        # by a pre-existing key: key 0 must peel through 8, key 1 has 1
        # and 9 free.
        flat_mat = np.array([[0, 1], [4, 4], [8, 9]], dtype=np.int64)
        base = np.zeros(12, dtype=np.int64)
        base[0] = 1
        rounds, mask = peel_rounds_masked(flat_mat, 12, base)
        assert mask.tolist() == [True, True]
        peeled = {
            int(key): int(own)
            for keys, own in rounds
            for key, own in zip(keys, own)
        }
        assert peeled[0] == 8  # cell 0 blocked, cell 4 shared
        assert peeled[1] == 1  # lowest free singleton wins

    def test_fully_blocked_batch_peels_nothing(self):
        flat_mat = np.array([[0], [4], [8]], dtype=np.int64)
        base = np.ones(12, dtype=np.int64)
        rounds, mask = peel_rounds_masked(flat_mat, 12, base)
        assert rounds == []
        assert mask.tolist() == [False]

    def test_two_core_left_unpeeled(self):
        # Two keys sharing all three cells: neither ever reaches degree 1.
        flat_mat = np.array([[0, 0], [4, 4], [8, 8]], dtype=np.int64)
        rounds, mask = peel_rounds_masked(
            flat_mat, 12, np.zeros(12, dtype=np.int64)
        )
        assert mask.tolist() == [False, False]
        assert rounds == []


class TestArrayAssistantBehaviour:
    def test_random_interleaving_matches_assistant_table(self):
        width, num_arrays = 37, 3
        reference = AssistantTable(width, num_arrays)
        candidate = ArrayAssistant(width, num_arrays)
        rng = random.Random(99)
        live = {}
        next_key = iter(range(1, 100_000))

        def random_cells():
            return tuple(
                (j, rng.randrange(width)) for j in range(num_arrays)
            )

        for step in range(600):
            op = rng.random()
            if op < 0.45 or not live:
                key = next(next_key)
                value = rng.getrandbits(16)
                cells = random_cells()
                reference.add(key, value, cells)
                candidate.add(key, value, cells)
                live[key] = cells
            elif op < 0.60:
                size = rng.randrange(1, 9)
                keys = [next(next_key) for _ in range(size)]
                values = [rng.getrandbits(16) for _ in keys]
                cells_list = [random_cells() for _ in keys]
                reference.add_batch(keys, values, cells_list)
                candidate.add_batch(keys, values, cells_list)
                live.update(zip(keys, cells_list))
            elif op < 0.80:
                key = rng.choice(list(live))
                del live[key]
                reference.remove(key)
                candidate.remove(key)
            else:
                key = rng.choice(list(live))
                value = rng.getrandbits(16)
                reference.set_value(key, value)
                candidate.set_value(key, value)

            assert len(reference) == len(candidate)
            probe = rng.choice(list(live)) if live else 1
            assert (probe in reference) == (probe in candidate)
            if live:
                assert reference.value(probe) == candidate.value(probe)
                assert reference.cells(probe) == candidate.cells(probe)
            cell = (rng.randrange(num_arrays), rng.randrange(width))
            assert reference.count_at(cell) == candidate.count_at(cell)
            assert (
                sorted(reference.keys_at(cell))
                == list(candidate.keys_at(cell))
            )
            assert (
                reference.generation(cell) == candidate.generation(cell)
            )
        assert dict(reference.pairs()) == dict(candidate.pairs())
        candidate.check_consistency()
        reference.check_consistency()
        probes = np.array(
            [*list(live)[:5], 0, 999_999_999], dtype=np.uint64
        )
        assert (
            reference.contains_batch(probes).tolist()
            == candidate.contains_batch(probes).tolist()
        )

    def test_clear_resets_and_bumps_epoch(self):
        assistant = ArrayAssistant(11, 3)
        assistant.add(5, 7, ((0, 1), (1, 2), (2, 3)))
        epoch = assistant.generation_epoch
        assistant.clear()
        assert assistant.generation_epoch == epoch + 1
        assert len(assistant) == 0
        assert assistant.count_at((0, 1)) == 0
        assert assistant.keys_at((0, 1)) == ()
        assistant.add(5, 9, ((0, 1), (1, 2), (2, 3)))
        assert assistant.value(5) == 9

    def test_add_batch_rejects_atomically(self):
        assistant = ArrayAssistant(11, 3)
        assistant.add(5, 7, ((0, 1), (1, 2), (2, 3)))
        with pytest.raises(KeyError):
            assistant.add_batch(
                [6, 5], [1, 1],
                [((0, 0), (1, 0), (2, 0)), ((0, 1), (1, 1), (2, 1))],
            )
        with pytest.raises(KeyError):
            assistant.add_batch(
                [7, 7], [1, 1],
                [((0, 0), (1, 0), (2, 0)), ((0, 1), (1, 1), (2, 1))],
            )
        assert len(assistant) == 1
        assert 6 not in assistant
        assistant.check_consistency()

    def test_index_overlay_rebuild_threshold(self):
        from repro.core import engine as engine_module

        assistant = ArrayAssistant(64, 3)
        old = engine_module._INDEX_REBUILD_THRESHOLD
        engine_module._INDEX_REBUILD_THRESHOLD = 8
        try:
            for key in range(1, 30):
                assistant.add(
                    key, key,
                    tuple((j, (key * (j + 1)) % 64) for j in range(3)),
                )
            for key in range(1, 30):
                assert key in assistant
                assert assistant.value(key) == key
            assistant.check_consistency()
        finally:
            engine_module._INDEX_REBUILD_THRESHOLD = old


class TestKernels:
    @pytest.mark.parametrize("value_bits", [12, 31, 64])
    @pytest.mark.parametrize("table_class", [ValueTable, PackedValueTable])
    def test_gather_xor_matches_scalar(self, table_class, value_bits):
        rng = random.Random(value_bits)
        table = table_class(29, value_bits)
        for flat in range(table.num_cells):
            table.set(
                (flat // 29, flat % 29), rng.getrandbits(value_bits)
            )
        flats = [
            [rng.randrange(29) + j * 29 for _ in range(40)]
            for j in range(3)
        ]
        flat_mat = np.array(flats, dtype=np.int64)
        got = table.gather_xor(flat_mat)
        for i in range(40):
            expected = 0
            for j in range(3):
                flat = flats[j][i]
                expected ^= table.get((flat // 29, flat % 29))
            assert int(got[i]) == expected

    @pytest.mark.parametrize("value_bits", [12, 31, 64])
    @pytest.mark.parametrize("table_class", [ValueTable, PackedValueTable])
    def test_xor_batch_matches_scalar(self, table_class, value_bits):
        rng = random.Random(value_bits * 3)
        vectorised = table_class(23, value_bits)
        scalar = table_class(23, value_bits)
        # Repeated cells must accumulate like sequential scalar XORs.
        flat_cells = [rng.randrange(vectorised.num_cells) for _ in range(90)]
        flat_cells += flat_cells[:10]
        deltas = [rng.getrandbits(value_bits) for _ in flat_cells]
        vectorised.xor_batch(
            np.array(flat_cells, dtype=np.int64),
            np.array(deltas, dtype=np.uint64),
        )
        for flat, delta in zip(flat_cells, deltas):
            scalar.xor((flat // 23, flat % 23), delta)
        assert vectorised == scalar

    @pytest.mark.parametrize("value_bits", [1, 12, 31, 63, 64])
    def test_packed_load_dense_round_trip(self, value_bits):
        rng = random.Random(value_bits * 5)
        table = PackedValueTable(21, value_bits)
        dense = np.array(
            [[rng.getrandbits(value_bits) for _ in range(21)]
             for _ in range(3)],
            dtype=np.uint64,
        )
        table.load_dense(dense)
        assert np.array_equal(table.to_dense(), dense)
        for j in range(3):
            for t in range(21):
                assert table.get((j, t)) == int(dense[j, t])


class TestLookupMany:
    def test_embedder_mixed_key_types(self):
        table = VisionEmbedder(
            100, 16, seed=2, config=EmbedderConfig(backend="vector")
        )
        keys = ["alpha", b"beta", 17, "delta"]
        values = [1, 2, 3, 4]
        table.insert_batch(keys, values)
        assert table.lookup_many(keys).tolist() == values

    def test_sharded_and_baseline_default(self):
        sharded = make_table(
            "vision-sharded", 200, 12, seed=3, num_shards=4,
            backend="vector",
        )
        keys = [f"key-{i}" for i in range(120)]
        values = [i % 4096 for i in range(120)]
        sharded.insert_batch(keys, values)
        assert sharded.lookup_many(keys).tolist() == values
        sharded.check_invariants()

        bloomier = make_table("bloomier", 50, 8, seed=1)
        bloomier.insert_many([(f"b{i}", i % 256) for i in range(30)])
        got = bloomier.lookup_many([f"b{i}" for i in range(30)])
        assert got.tolist() == [i % 256 for i in range(30)]


class TestBackendSelection:
    def test_factory_backend_kwarg(self):
        for name in ("vision", "vision-mt", "vision-sharded"):
            table = make_table(name, 100, 8, backend="vector")
            assert table.config.backend == "vector"
        vision = make_table("vision", 100, 8, backend="vector")
        assert isinstance(vision._engine, VectorEngine)

    def test_config_rejects_unknown_backend(self):
        with pytest.raises(ValueError):
            EmbedderConfig(backend="gpu")

    def test_make_engine_names(self):
        assert isinstance(make_engine("scalar"), ScalarEngine)
        assert isinstance(make_engine("vector"), VectorEngine)
        assert isinstance(make_engine("numba"), NumbaEngine)
        with pytest.raises(ValueError):
            make_engine("cuda")

    def test_numba_backend_degrades_gracefully(self):
        """backend='numba' must work whether or not numba is installed."""
        engine = make_engine("numba")
        assert engine.jitted is HAVE_NUMBA
        table = VisionEmbedder(
            100, 8, seed=1, config=EmbedderConfig(backend="numba")
        )
        table.insert_batch([1, 2, 3], [4, 5, 6])
        table.check_invariants()
        assert table.lookup(2) == 5

    def test_sharded_shards_inherit_backend(self):
        sharded = make_table(
            "vision-sharded", 100, 8, num_shards=2, backend="vector"
        )
        for shard in sharded.shards:
            assert isinstance(shard._engine, VectorEngine)
            assert isinstance(shard._assistant, ArrayAssistant)
