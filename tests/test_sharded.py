"""ShardedEmbedder: parity with the unsharded table, routing, builds.

The sharded table is required to be *semantically invisible*: for any
shard count, every inserted key's ``lookup``/``lookup_batch`` answer is
bit-identical to a single ``VisionEmbedder`` over the same pairs — also
after deletes and after forcing a per-shard reconstruction (which reseeds
one shard's hash family but must move no key between shards). On top of
that the module covers the parallel build path (thread and process
executors, batch validation atomicity), scatter/gather batch lookups,
persistence, and the aggregated metrics surface.
"""

import io
import random

import numpy as np
import pytest

from repro.core import (
    ShardedEmbedder,
    VisionEmbedder,
    load_sharded,
    save_sharded,
)
from repro.core.errors import DuplicateKey
from repro.factory import make_table

SHARD_COUNTS = (1, 2, 8, 13)


def _pairs(n, value_bits, seed):
    rng = random.Random(seed)
    keys = rng.sample(range(1, 50 * n), n)
    return [(key, rng.getrandbits(value_bits)) for key in keys]


def _key_array(pairs):
    return np.array([key for key, _ in pairs], dtype=np.uint64)


def _value_array(pairs):
    return np.array([value for _, value in pairs], dtype=np.uint64)


class TestShardedParity:
    """Property: sharded answers == unsharded answers, bit for bit."""

    @pytest.mark.parametrize("num_shards", SHARD_COUNTS)
    def test_lookup_parity_over_lifecycle(self, num_shards):
        pairs = _pairs(1200, 12, seed=num_shards)
        single = VisionEmbedder(1500, 12, seed=9)
        sharded = ShardedEmbedder(
            1500, 12, num_shards=num_shards, seed=9
        )
        single.insert_many(pairs)
        sharded.build(pairs, workers=2)

        def assert_parity(live):
            keys = _key_array(live)
            expected = _value_array(live)
            assert np.array_equal(single.lookup_batch(keys), expected)
            assert np.array_equal(sharded.lookup_batch(keys), expected)
            for key, _ in live[:60]:
                assert sharded.lookup(key) == single.lookup(key)

        assert len(sharded) == len(single) == len(pairs)
        assert_parity(pairs)

        # After deletes the survivors must still agree.
        doomed, live = pairs[:150], pairs[150:]
        for key, _ in doomed:
            single.delete(key)
            sharded.delete(key)
        assert len(sharded) == len(single)
        assert_parity(live)

        # A forced per-shard reconstruction reseeds that shard's hash
        # family but must not move keys or change any answer.
        sharded.reconstruct(shard=num_shards // 2)
        sharded.check_invariants()
        assert_parity(live)

        # And reconstructing every shard (the full failure path).
        sharded.reconstruct()
        sharded.check_invariants()
        assert_parity(live)

    def test_inserts_updates_after_build_stay_in_sync(self):
        pairs = _pairs(400, 10, seed=4)
        single = VisionEmbedder(600, 10, seed=2)
        sharded = ShardedEmbedder(600, 10, num_shards=8, seed=2)
        single.insert_many(pairs)
        sharded.insert_many(pairs)
        for key, value in pairs[:50]:
            single.update(key, (value + 1) % 1024)
            sharded.update(key, (value + 1) % 1024)
        extra = [(10**9 + i, i % 1024) for i in range(50)]
        for key, value in extra:
            single.insert(key, value)
            sharded.insert(key, value)
        live = [(k, (v + 1) % 1024) for k, v in pairs[:50]] \
            + pairs[50:] + extra
        keys = _key_array(live)
        assert np.array_equal(
            sharded.lookup_batch(keys), single.lookup_batch(keys)
        )


class TestRouting:
    def test_routing_is_stable_across_reconstruction(self):
        table = ShardedEmbedder(500, 8, num_shards=8, seed=6)
        pairs = _pairs(400, 8, seed=8)
        table.build(pairs)
        homes = {key: table.shard_of(key) for key, _ in pairs}
        table.reconstruct()
        for key, _ in pairs:
            assert table.shard_of(key) == homes[key]
        table.check_invariants()

    def test_scalar_and_vector_router_agree(self):
        table = ShardedEmbedder(100, 8, num_shards=13, seed=3)
        keys = np.array(
            random.Random(0).sample(range(1, 10**9), 5000), dtype=np.uint64
        )
        vector = table._shard_ids(keys)
        for key, expected in zip(keys.tolist()[:500], vector.tolist()):
            assert table._shard_of_handle(key) == expected

    def test_contains_and_membership_route_consistently(self):
        table = ShardedEmbedder(200, 8, num_shards=4, seed=1)
        pairs = _pairs(100, 8, seed=2)
        table.build(pairs)
        for key, _ in pairs:
            assert key in table
        assert 10**15 not in table


class TestParallelBuild:
    def test_thread_build_matches_sequential(self):
        # Shards are independent, so worker scheduling must not change
        # any shard's final state: compare the per-shard fast spaces.
        pairs = _pairs(900, 10, seed=5)
        seq = ShardedEmbedder(1000, 10, num_shards=8, seed=4)
        seq.build(pairs, workers=1)
        par = ShardedEmbedder(1000, 10, num_shards=8, seed=4)
        par.build(pairs, workers=4)
        for a, b in zip(seq.shards, par.shards):
            assert a.seed == b.seed
            assert np.array_equal(a._table.to_dense(), b._table.to_dense())

    def test_static_build_peels_every_shard(self):
        pairs = _pairs(800, 10, seed=7)
        table = ShardedEmbedder(1000, 10, num_shards=8, seed=3)
        table.build(pairs, workers=4, method="static")
        assert table.stats.repair_steps == 0  # static path never walks
        keys = _key_array(pairs)
        assert np.array_equal(table.lookup_batch(keys), _value_array(pairs))
        table.check_invariants()

    def test_process_build_round_trips_shards_and_stats(self):
        pairs = _pairs(600, 10, seed=9)
        table = ShardedEmbedder(800, 10, num_shards=4, seed=5)
        table.build(pairs, workers=2, executor="process")
        assert len(table) == len(pairs)
        keys = _key_array(pairs)
        assert np.array_equal(table.lookup_batch(keys), _value_array(pairs))
        # The children's walk counters survive the process boundary.
        assert table.stats.updates == len(pairs)
        assert table.stats.batch_keys == len(pairs)
        table.check_invariants()

    def test_process_build_refuses_populated_shards(self):
        table = ShardedEmbedder(400, 8, num_shards=4, seed=5)
        table.build(_pairs(200, 8, seed=1), workers=2)
        fresh = _pairs(100, 8, seed=99)
        offset = [(key + 10**10, value) for key, value in fresh]
        with pytest.raises(ValueError, match="process"):
            table.build(offset, workers=2, executor="process")

    def test_build_validation_is_atomic(self):
        table = ShardedEmbedder(200, 8, num_shards=4, seed=2)
        table.build([(1, 1), (2, 2)])
        with pytest.raises(DuplicateKey):
            table.build([(5, 1), (5, 2)])
        with pytest.raises(DuplicateKey):
            table.build([(6, 1), (1, 2)])  # collides with existing key
        with pytest.raises(ValueError):
            table.build([(7, 256)])  # out of range for 8-bit values
        with pytest.raises(ValueError):
            table.build([(7, 1)], executor="fiber")
        with pytest.raises(ValueError):
            table.build([(7, 1)], method="mystic")
        assert len(table) == 2  # nothing above touched any shard

    def test_insert_batch_alignment(self):
        table = ShardedEmbedder(100, 8, num_shards=2, seed=1)
        with pytest.raises(ValueError):
            table.insert_batch([1, 2], [5])
        with pytest.raises(ValueError):
            table.insert_batch([], [5])
        table.insert_batch([1, 2], [5, 6])
        assert table.lookup(1) == 5 and table.lookup(2) == 6

    def test_empty_batches_are_noops(self):
        table = ShardedEmbedder(100, 8, num_shards=8, seed=1)
        table.insert_many([])
        table.bulk_load([])
        table.build([], workers=4)
        assert len(table) == 0
        out = table.lookup_batch(np.zeros(0, dtype=np.uint64))
        assert out.dtype == np.uint64 and out.shape == (0,)
        assert table.stats.batch_inserts == 0

    def test_from_pairs_constructor(self):
        pairs = _pairs(300, 8, seed=11)
        table = ShardedEmbedder.from_pairs(
            pairs, value_bits=8, num_shards=8, seed=7, workers=2
        )
        assert len(table) == 300
        assert table.capacity == 300
        static = ShardedEmbedder.from_pairs(
            pairs, value_bits=8, num_shards=8, seed=7, static=True
        )
        keys = _key_array(pairs)
        assert np.array_equal(
            table.lookup_batch(keys), static.lookup_batch(keys)
        )


class TestConstruction:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            ShardedEmbedder(0, 8)
        with pytest.raises(ValueError):
            ShardedEmbedder(10, 8, num_shards=0)
        with pytest.raises(ValueError):
            ShardedEmbedder(10, 8, num_shards=257)
        with pytest.raises(ValueError):
            ShardedEmbedder(10, 8, shard_slack=0.5)

    def test_factory_builds_sharded(self):
        table = make_table(
            "vision-sharded", 100, 8, seed=3, num_shards=4
        )
        assert isinstance(table, ShardedEmbedder)
        assert table.num_shards == 4
        scaled = make_table(
            "vision-sharded", 100, 8, space_factor=2.5, num_shards=2
        )
        assert scaled.config.space_factor == 2.5

    def test_shard_capacity_absorbs_imbalance_at_small_n(self):
        # Regression: proportional slack alone under-provisions small
        # shards (binomial tail), which made 50 keys overflow S=8.
        table = ShardedEmbedder(50, 4, num_shards=8, seed=3)
        table.build(_pairs(50, 4, seed=3))
        assert len(table) == 50


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        pairs = _pairs(500, 10, seed=13)
        table = ShardedEmbedder(
            700, 10, num_shards=8, seed=6, shard_slack=1.2
        )
        table.build(pairs, workers=2)
        for key, _ in pairs[:40]:
            table.delete(key)
        table.reconstruct(shard=3)  # shard 3 now has a bumped seed
        path = tmp_path / "sharded.npz"
        save_sharded(table, str(path))
        restored = load_sharded(str(path))
        assert restored.num_shards == 8
        assert restored.shard_slack == 1.2
        assert restored.capacity == 700
        assert len(restored) == len(table)
        live = pairs[40:]
        keys = _key_array(live)
        assert np.array_equal(
            restored.lookup_batch(keys), table.lookup_batch(keys)
        )
        # Byte-for-byte: each shard's fast space survives, including the
        # reconstructed shard's bumped seed.
        for a, b in zip(table.shards, restored.shards):
            assert a.seed == b.seed
            assert np.array_equal(a._table.to_dense(), b._table.to_dense())
        restored.check_invariants()

    def test_roundtrip_through_file_object(self):
        table = ShardedEmbedder(100, 8, num_shards=2, seed=2)
        table.build(_pairs(80, 8, seed=2))
        buffer = io.BytesIO()
        save_sharded(table, buffer)
        buffer.seek(0)
        restored = load_sharded(buffer)
        assert len(restored) == 80
        restored.check_invariants()

    def test_version_check(self):
        buffer = io.BytesIO()
        np.savez(
            buffer,
            sharded_meta=np.array([99, 1, 1, 8, 3, 0, 1], dtype=np.int64),
            sharded_float_meta=np.array([1.1]),
        )
        buffer.seek(0)
        with pytest.raises(ValueError, match="version"):
            load_sharded(buffer)


class TestMetrics:
    def test_aggregated_stats_cover_all_shards(self):
        pairs = _pairs(600, 10, seed=17)
        table = ShardedEmbedder(700, 10, num_shards=8, seed=8)
        table.build(pairs, workers=2)
        keys = _key_array(pairs)
        table.lookup_batch(keys)
        stats = table.stats
        assert stats.updates == len(pairs)
        assert stats.batch_keys == len(pairs)
        # Each non-empty shard logged one batch.
        assert stats.batch_inserts == sum(
            1 for shard in table.shards if len(shard)
        )
        registry = stats.registry

        def export(name):
            metric = registry.get(name)
            assert metric is not None, name
            return metric.value

        assert export("repro_shards") == 8
        assert export("repro_sharded_builds_total") == 1
        assert export("repro_sharded_build_workers") == 2
        assert export("repro_gather_batches_total") == 1
        assert export("repro_gather_keys_total") == len(pairs)
        assert export("repro_sharded_build_seconds_total") > 0
        assert export("repro_shard_keys_min") <= len(pairs) / 8
        assert export("repro_shard_keys_max") >= len(pairs) / 8
        assert 0 < export("repro_shard_space_efficiency_max") <= 1.0

    def test_shard_stats_reports_cache_counters(self):
        pairs = _pairs(500, 10, seed=19)
        table = ShardedEmbedder(520, 10, num_shards=4, seed=4)
        table.build(pairs)
        rows = table.shard_stats()
        assert len(rows) == 4
        assert sum(row["keys"] for row in rows) == len(pairs)
        assert all(0 < row["space_efficiency"] <= 1 for row in rows)
        total_misses = sum(row["cost_cache_misses"] for row in rows)
        assert total_misses == table.stats.cost_cache_misses
        assert all(
            row["cost_cache_invalidations"] <= row["cost_cache_misses"]
            for row in rows
        )
