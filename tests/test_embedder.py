"""VisionEmbedder: the full dynamic table API and failure policy."""

import random

import numpy as np
import pytest

from repro.core import (
    DuplicateKey,
    EmbedderConfig,
    KeyNotFound,
    SpaceExhausted,
    VisionEmbedder,
)
from repro.core.config import DepthPolicy


def _random_pairs(n, value_bits, seed):
    rng = random.Random(seed)
    pairs = {}
    while len(pairs) < n:
        pairs[rng.getrandbits(48)] = rng.getrandbits(value_bits)
    return pairs


def _filled(n=500, value_bits=8, seed=3, **kwargs):
    table = VisionEmbedder(n, value_bits, seed=seed, **kwargs)
    pairs = _random_pairs(n, value_bits, seed)
    for key, value in pairs.items():
        table.insert(key, value)
    return table, pairs


class TestBasicOperations:
    def test_insert_lookup_roundtrip(self):
        table, pairs = _filled(400)
        for key, value in pairs.items():
            assert table.lookup(key) == value

    def test_len_and_contains(self):
        table, pairs = _filled(100)
        assert len(table) == 100
        key = next(iter(pairs))
        assert key in table
        assert (1 << 63) + 12345 not in table

    def test_duplicate_insert_rejected(self):
        table, pairs = _filled(50)
        key = next(iter(pairs))
        with pytest.raises(DuplicateKey):
            table.insert(key, 0)

    def test_update_changes_value(self):
        table, pairs = _filled(200)
        for key in list(pairs)[:50]:
            table.update(key, (pairs[key] + 1) % 256)
        table.check_invariants()
        for key in list(pairs)[:50]:
            assert table.lookup(key) == (pairs[key] + 1) % 256

    def test_update_unknown_key_rejected(self):
        table, _ = _filled(20)
        with pytest.raises(KeyNotFound):
            table.update(999_999_999_999, 1)

    def test_delete_then_reinsert(self):
        table, pairs = _filled(200)
        victims = list(pairs)[:80]
        for key in victims:
            table.delete(key)
        assert len(table) == 120
        table.check_invariants()
        for key in victims:
            table.insert(key, 7)
        assert all(table.lookup(k) == 7 for k in victims)

    def test_delete_unknown_rejected(self):
        table, _ = _filled(20)
        with pytest.raises(KeyNotFound):
            table.delete(424242)

    def test_put_inserts_then_updates(self):
        table = VisionEmbedder(100, 8, seed=1)
        table.put("k", 5)
        assert table.lookup("k") == 5
        table.put("k", 9)
        assert table.lookup("k") == 9
        assert len(table) == 1

    def test_alien_key_returns_value_not_error(self):
        table, _ = _filled(100)
        # VO semantics: a meaningless value, never an exception.
        result = table.lookup(b"never inserted")
        assert 0 <= result < 256


class TestKeyTypes:
    def test_str_bytes_int_keys(self):
        table = VisionEmbedder(100, 8, seed=1)
        table.insert("alpha", 1)
        table.insert(b"beta", 2)
        table.insert(12345, 3)
        assert table.lookup("alpha") == 1
        assert table.lookup(b"beta") == 2
        assert table.lookup(12345) == 3

    def test_value_out_of_range_rejected(self):
        table = VisionEmbedder(10, 4, seed=1)
        with pytest.raises(ValueError):
            table.insert(1, 16)
        with pytest.raises(ValueError):
            table.insert(2, -1)


class TestBatchLookup:
    def test_matches_scalar(self):
        table, pairs = _filled(300)
        keys = np.fromiter(pairs, dtype=np.uint64)
        batch = table.lookup_batch(keys)
        for key, value in zip(keys.tolist(), batch.tolist()):
            assert value == table.lookup(key)

    def test_empty_batch(self):
        table, _ = _filled(10)
        assert len(table.lookup_batch(np.array([], dtype=np.uint64))) == 0


class TestSpaceAccounting:
    def test_space_bits_analytic(self):
        table = VisionEmbedder(1000, 8, seed=1)
        assert table.space_bits == table.num_cells * 8
        assert table.num_cells >= 1700

    def test_space_cost_near_1_7(self):
        table, _ = _filled(1000)
        assert 1.69 < table.space_cost < 1.72

    def test_space_efficiency(self):
        table, _ = _filled(850, value_bits=4, seed=2)
        assert table.space_efficiency == pytest.approx(
            850 / table.num_cells
        )

    def test_custom_space_factor(self):
        config = EmbedderConfig(space_factor=2.0)
        table = VisionEmbedder(300, 4, config=config, seed=1)
        assert table.num_cells >= 600


class TestReconstruction:
    def test_explicit_reconstruct_preserves_pairs(self):
        table, pairs = _filled(300)
        old_seed = table.seed
        table.reconstruct()
        assert table.seed > old_seed
        assert table.stats.reconstructions >= 1
        table.check_invariants()
        for key, value in pairs.items():
            assert table.lookup(key) == value

    def test_reconstruct_records_time(self):
        table, _ = _filled(300)
        table.reconstruct()
        assert table.stats.reconstruct_seconds > 0

    def test_fill_to_paper_limit(self):
        # 1.7L budget must accept a full capacity load without giving up.
        table, _ = _filled(2000, value_bits=1, seed=5)
        assert len(table) == 2000
        table.check_invariants()


class TestFailurePolicy:
    def test_space_exhausted_beyond_capacity(self):
        table = VisionEmbedder(100, 4, seed=1)
        pairs = _random_pairs(400, 4, 1)
        with pytest.raises(SpaceExhausted):
            for key, value in pairs.items():
                table.insert(key, value)
        # Inserted prefix must still be fully correct (rollback worked).
        table.check_invariants()
        assert len(table) > 100

    def test_rollback_on_rejected_insert(self):
        table = VisionEmbedder(60, 4, seed=1)
        pairs = _random_pairs(300, 4, 2)
        rejected = None
        for key, value in pairs.items():
            try:
                table.insert(key, value)
            except SpaceExhausted:
                rejected = key
                break
        assert rejected is not None
        assert rejected not in table
        table.check_invariants()

    def test_rollback_on_rejected_update(self):
        # A width-1 table: every key shares the same three cells, so two
        # keys with different values are deterministically unsolvable.
        config = EmbedderConfig(auto_reconstruct=False)
        table = VisionEmbedder(1, 4, config=config, seed=3)
        table.insert("a", 3)
        table.insert("b", 3)  # identical value: consistent for free
        with pytest.raises(SpaceExhausted):
            table.update("b", 5)
        # The failed update must leave the old value intact.
        assert table.lookup("b") == 3
        assert table.lookup("a") == 3
        table.check_invariants()

    def test_rollback_on_deterministic_conflicting_insert(self):
        config = EmbedderConfig(auto_reconstruct=False)
        table = VisionEmbedder(1, 4, config=config, seed=3)
        table.insert("a", 3)
        with pytest.raises(SpaceExhausted):
            table.insert("b", 5)  # same cells, different value
        assert "b" not in table
        assert table.lookup("a") == 3
        table.check_invariants()


class TestStrategies:
    def test_simple_strategy_works_with_room(self):
        config = EmbedderConfig(strategy="simple", space_factor=5.0)
        table = VisionEmbedder(300, 4, config=config, seed=1)
        pairs = _random_pairs(300, 4, 4)
        for key, value in pairs.items():
            table.insert(key, value)
        table.check_invariants()

    def test_fixed_depth_policy(self):
        config = EmbedderConfig(
            depth_policy=DepthPolicy(fixed=3), space_factor=1.8
        )
        table = VisionEmbedder(500, 4, config=config, seed=1)
        pairs = _random_pairs(500, 4, 5)
        for key, value in pairs.items():
            table.insert(key, value)
        table.check_invariants()


class TestFromPairs:
    def test_builds_and_answers(self):
        pairs = list(_random_pairs(200, 8, 6).items())
        table = VisionEmbedder.from_pairs(pairs, value_bits=8, seed=2)
        for key, value in pairs:
            assert table.lookup(key) == value

    def test_explicit_capacity(self):
        pairs = [(1, 1), (2, 2)]
        table = VisionEmbedder.from_pairs(pairs, value_bits=4, capacity=100)
        assert table.num_cells >= 170


class TestValidation:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            VisionEmbedder(0, 8)

    def test_stats_accumulate(self):
        table, _ = _filled(200)
        assert table.stats.updates == 200
        assert table.stats.repair_steps >= 200
