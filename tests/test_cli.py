"""CLI behaviour: listing, running, error handling."""

import json

import pytest

from repro.bench.cli import main
from repro.obs import parse_prometheus_text


class TestCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig3" in out
        assert "table3" in out

    def test_run_single_experiment(self, capsys):
        assert main(["theory"]) == 0
        out = capsys.readouterr().out
        assert "1.756" in out

    def test_run_with_scale_and_seed(self, capsys):
        assert main(["table3", "--scale", "0.05", "--seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "279.6" in out

    def test_unknown_experiment(self, capsys):
        assert main(["figZZ"]) == 2
        err = capsys.readouterr().err
        assert "figZZ" in err

    def test_multiple_experiments(self, capsys):
        assert main(["table1", "theory"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out and "theory" in out

    def test_metrics_out_writes_parsing_sidecars(self, tmp_path, capsys):
        base = tmp_path / "run"
        assert main(["fig4", "--scale", "0.05",
                     "--metrics-out", str(base)]) == 0
        out = capsys.readouterr().out
        assert "run.metrics.json" in out and "run.metrics.prom" in out
        with open(base.with_suffix(".metrics.json")) as handle:
            snapshot = json.load(handle)
        assert snapshot["format"] == "repro-metrics/1"
        # fig4 drives tables through dynamic inserts, so the aggregated
        # walk histogram must have samples and match the counters.
        walk = snapshot["histograms"]["repro_walk_steps"]
        assert walk["count"] > 0
        with open(base.with_suffix(".metrics.prom")) as handle:
            samples = parse_prometheus_text(handle.read())
        assert samples["repro_walk_steps_count"] == walk["count"]
        assert samples["repro_updates_total"] == (
            snapshot["counters"]["repro_updates_total"]["value"]
        )
