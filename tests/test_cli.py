"""CLI behaviour: listing, running, error handling."""

import pytest

from repro.bench.cli import main


class TestCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig3" in out
        assert "table3" in out

    def test_run_single_experiment(self, capsys):
        assert main(["theory"]) == 0
        out = capsys.readouterr().out
        assert "1.756" in out

    def test_run_with_scale_and_seed(self, capsys):
        assert main(["table3", "--scale", "0.05", "--seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "279.6" in out

    def test_unknown_experiment(self, capsys):
        assert main(["figZZ"]) == 2
        err = capsys.readouterr().err
        assert "figZZ" in err

    def test_multiple_experiments(self, capsys):
        assert main(["table1", "theory"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out and "theory" in out
