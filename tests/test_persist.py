"""Persistence: save/load round-trips for the full embedder state."""

import io
import random

import numpy as np
import pytest

from repro.core import (
    CorruptSnapshotError,
    EmbedderConfig,
    ShardedEmbedder,
    VisionEmbedder,
)
from repro.core.persist import (
    load_embedder,
    load_sharded,
    save_embedder,
    save_sharded,
)


def _filled(n=400, value_bits=8, seed=5, config=None):
    table = VisionEmbedder(n, value_bits, seed=seed, config=config)
    rng = random.Random(seed)
    pairs = {}
    while len(pairs) < n:
        pairs[rng.getrandbits(48)] = rng.getrandbits(value_bits)
    for key, value in pairs.items():
        table.insert(key, value)
    return table, pairs


class TestRoundTrip:
    def test_lookups_survive(self, tmp_path):
        table, pairs = _filled()
        path = tmp_path / "table.npz"
        save_embedder(table, path)
        loaded = load_embedder(path)
        for key, value in pairs.items():
            assert loaded.lookup(key) == value
        loaded.check_invariants()

    def test_fast_space_identical(self, tmp_path):
        table, _ = _filled()
        path = tmp_path / "table.npz"
        save_embedder(table, path)
        loaded = load_embedder(path)
        assert loaded._table == table._table
        keys = np.arange(5000, dtype=np.uint64)
        assert np.array_equal(loaded.lookup_batch(keys),
                              table.lookup_batch(keys))

    def test_loaded_table_stays_dynamic(self, tmp_path):
        table, pairs = _filled()
        path = tmp_path / "table.npz"
        save_embedder(table, path)
        loaded = load_embedder(path)
        loaded.insert("brand-new", 3)
        assert loaded.lookup("brand-new") == 3
        victim = next(iter(pairs))
        loaded.update(victim, (pairs[victim] + 1) % 256)
        assert loaded.lookup(victim) == (pairs[victim] + 1) % 256
        loaded.delete(victim)
        loaded.check_invariants()

    def test_config_round_trips(self, tmp_path):
        config = EmbedderConfig(space_factor=2.1, max_repair_steps=77,
                                max_search_attempts=3,
                                auto_reconstruct=False)
        table, _ = _filled(n=100, config=config)
        path = tmp_path / "table.npz"
        save_embedder(table, path)
        loaded = load_embedder(path)
        assert loaded.config.space_factor == pytest.approx(2.1)
        assert loaded.config.max_repair_steps == 77
        assert loaded.config.max_search_attempts == 3
        assert loaded.config.auto_reconstruct is False

    def test_file_object_target(self):
        table, pairs = _filled(n=50)
        buffer = io.BytesIO()
        save_embedder(table, buffer)
        buffer.seek(0)
        loaded = load_embedder(buffer)
        for key, value in pairs.items():
            assert loaded.lookup(key) == value

    def test_reconstructed_table_round_trips(self, tmp_path):
        # A table whose seed has advanced (post-reconstruction) must load
        # with the advanced seed, not the original.
        table, pairs = _filled(n=200)
        table.reconstruct()
        path = tmp_path / "table.npz"
        save_embedder(table, path)
        loaded = load_embedder(path)
        assert loaded.seed == table.seed
        for key, value in pairs.items():
            assert loaded.lookup(key) == value

    def test_empty_table(self, tmp_path):
        table = VisionEmbedder(10, 4, seed=1)
        path = tmp_path / "empty.npz"
        save_embedder(table, path)
        loaded = load_embedder(path)
        assert len(loaded) == 0
        loaded.insert(1, 2)
        assert loaded.lookup(1) == 2


def _rewrite_npz(path, out_path, mutate):
    """Round-trip an npz through a member-level mutation."""
    with np.load(path) as archive:
        contents = {name: archive[name] for name in archive.files}
    mutate(contents)
    np.savez(out_path, **contents)


class TestCorruption:
    """Unreadable snapshots surface as the typed CorruptSnapshotError
    (a ValueError subclass) carrying source and field context."""

    def test_not_a_zip_file(self, tmp_path):
        path = tmp_path / "garbage.npz"
        path.write_bytes(b"this is not an npz archive")
        with pytest.raises(CorruptSnapshotError) as err:
            load_embedder(path)
        assert err.value.source.endswith("garbage.npz")

    def test_truncated_archive(self, tmp_path):
        table, _ = _filled(n=20)
        path = tmp_path / "table.npz"
        save_embedder(table, path)
        data = path.read_bytes()
        truncated = tmp_path / "truncated.npz"
        truncated.write_bytes(data[: len(data) // 3])
        with pytest.raises(CorruptSnapshotError) as err:
            load_embedder(truncated)
        assert err.value.source.endswith("truncated.npz")

    def test_missing_member_names_field(self, tmp_path):
        table, _ = _filled(n=20)
        path = tmp_path / "table.npz"
        save_embedder(table, path)
        bad = tmp_path / "bad.npz"
        _rewrite_npz(path, bad, lambda c: c.pop("cells"))
        with pytest.raises(CorruptSnapshotError) as err:
            load_embedder(bad)
        assert err.value.field == "cells"

    def test_short_metadata_vector(self, tmp_path):
        table, _ = _filled(n=20)
        path = tmp_path / "table.npz"
        save_embedder(table, path)
        bad = tmp_path / "bad.npz"

        def chop(contents):
            contents["meta"] = contents["meta"][:3].copy()

        _rewrite_npz(path, bad, chop)
        with pytest.raises(CorruptSnapshotError) as err:
            load_embedder(bad)
        assert err.value.field.startswith("meta")

    def test_geometry_mismatch(self, tmp_path):
        table, _ = _filled(n=20)
        path = tmp_path / "table.npz"
        save_embedder(table, path)
        bad = tmp_path / "bad.npz"

        def shrink(contents):
            contents["cells"] = contents["cells"][:, :-1].copy()

        _rewrite_npz(path, bad, shrink)
        with pytest.raises(CorruptSnapshotError) as err:
            load_embedder(bad)
        assert err.value.field == "cells"

    def test_corrupt_error_is_still_a_value_error(self, tmp_path):
        # callers guarding the pre-typed API with `except ValueError`
        # keep working
        path = tmp_path / "garbage.npz"
        path.write_bytes(b"junk")
        with pytest.raises(ValueError):
            load_embedder(path)

    def test_sharded_missing_shard_payload(self, tmp_path):
        table = ShardedEmbedder(64, 8, num_shards=2, seed=3)
        for i in range(10):
            table.insert(i + 1, i % 256)
        path = tmp_path / "sharded.npz"
        save_sharded(table, path)
        bad = tmp_path / "bad.npz"
        _rewrite_npz(path, bad, lambda c: c.pop("shard_1"))
        with pytest.raises(CorruptSnapshotError) as err:
            load_sharded(bad)
        assert err.value.field == "shard_1"

    def test_sharded_round_trip_still_works(self, tmp_path):
        table = ShardedEmbedder(64, 8, num_shards=2, seed=3)
        for i in range(10):
            table.insert(i + 1, (i * 3) % 256)
        path = tmp_path / "sharded.npz"
        save_sharded(table, path)
        loaded = load_sharded(path)
        for i in range(10):
            assert loaded.lookup(i + 1) == (i * 3) % 256


class TestValidation:
    def test_bad_version_rejected(self, tmp_path):
        table, _ = _filled(n=20)
        path = tmp_path / "table.npz"
        save_embedder(table, path)
        with np.load(path) as archive:
            contents = {name: archive[name] for name in archive.files}
        contents["meta"] = contents["meta"].copy()
        contents["meta"][0] = 99
        bad_path = tmp_path / "bad.npz"
        np.savez(bad_path, **contents)
        with pytest.raises(ValueError):
            load_embedder(bad_path)
