"""Integration tests: end-to-end application scenarios across modules."""

import random

import numpy as np
import pytest

from repro import EmbedderConfig, Ludo, VisionEmbedder, make_table
from repro.datasets import load, mac_table, uniform_queries, zipf_queries
from repro.fpga import LookupPipeline, estimate_resources


class TestMacAddressTableScenario:
    """The paper's motivating application: a switch MAC table in SRAM."""

    def test_full_mac_table_lifecycle(self):
        dataset = mac_table()
        table = VisionEmbedder(dataset.size, dataset.value_bits, seed=3)
        for mac, port_type in dataset.pairs():
            table.insert(mac, port_type)
        assert len(table) == 2731
        # All entries answer correctly from fast space.
        queries = dataset.keys
        answers = table.lookup_batch(queries)
        assert np.array_equal(answers, dataset.values)
        # Aging: dynamic entries churn.
        aged = dataset.keys[:500].tolist()
        for mac in aged:
            table.delete(mac)
        for mac in aged:
            table.insert(mac, 0)
        assert all(table.lookup(mac) == 0 for mac in aged)
        # Fast space is about 1.7 bits per entry for the 1-bit value.
        assert table.space_cost < 1.8

    def test_mac_table_on_fpga_pipeline(self):
        dataset = mac_table(scale=0.2)
        table = VisionEmbedder(dataset.size, 1, seed=3)
        for mac, port_type in dataset.pairs():
            table.insert(mac, port_type)
        report = estimate_resources(depth=table._table.width, value_bits=1)
        pipeline = LookupPipeline.from_embedder(
            table, frequency_mhz=report.frequency_mhz
        )
        result = pipeline.run(dataset.keys.tolist())
        assert list(result.values) == dataset.values.tolist()
        assert result.throughput_mops > 100  # one lookup per cycle


class TestDistributedDirectoryScenario:
    """Smash-style client-side directory: key -> backend node id."""

    NODES = 16  # 4-bit values

    def test_directory_with_rebalancing(self):
        rng = random.Random(1)
        n = 3000
        keys = rng.sample(range(1 << 48), n)
        placement = {k: rng.randrange(self.NODES) for k in keys}
        directory = VisionEmbedder(n, value_bits=4, seed=9)
        for key, node in placement.items():
            directory.insert(key, node)
        # A node drains: all its keys move elsewhere (dynamic updates).
        drained = 3
        moved = [k for k, node in placement.items() if node == drained]
        for key in moved:
            placement[key] = (drained + 1) % self.NODES
            directory.update(key, placement[key])
        for key, node in placement.items():
            assert directory.lookup(key) == node
        # The whole directory costs ~1.7 * 4 bits per key of fast space.
        assert directory.space_bits / n == pytest.approx(6.8, rel=0.05)

    def test_directory_much_smaller_than_key_storage(self):
        n = 2000
        directory = VisionEmbedder(n, value_bits=4, seed=2)
        # Storing 48-bit keys + 4-bit values would need >= 52n bits.
        assert directory.space_bits < 52 * n / 5


class TestChurnWorkload:
    """Sustained insert/delete/update churn at high occupancy."""

    def test_long_churn_stays_consistent(self):
        rng = random.Random(5)
        table = VisionEmbedder(800, value_bits=8, seed=5)
        model = {}
        for step in range(6000):
            action = rng.random()
            if action < 0.5 and len(model) < 780:
                key = rng.getrandbits(40)
                if key not in model:
                    value = rng.getrandbits(8)
                    table.insert(key, value)
                    model[key] = value
            elif action < 0.75 and model:
                key = rng.choice(list(model))
                value = rng.getrandbits(8)
                table.update(key, value)
                model[key] = value
            elif model:
                key = rng.choice(list(model))
                table.delete(key)
                del model[key]
        table.check_invariants()
        assert len(table) == len(model)
        for key, value in model.items():
            assert table.lookup(key) == value


class TestDatasetSweep:
    """Every bundled dataset loads and round-trips through every table."""

    @pytest.mark.parametrize("dataset_name", ["MACTable", "MachineLearning",
                                              "DBLP"])
    @pytest.mark.parametrize("table_name", ["vision", "othello", "bloomier"])
    def test_round_trip(self, dataset_name, table_name):
        dataset = load(dataset_name, scale=0.002 if dataset_name != "MACTable"
                       else 0.2)
        table = make_table(table_name, dataset.size, dataset.value_bits,
                           seed=4)
        if table_name == "bloomier":
            table.insert_many(dataset.pairs())
        else:
            for key, value in dataset.pairs():
                table.insert(key, value)
        answers = table.lookup_batch(dataset.keys)
        assert np.array_equal(answers, dataset.values)


class TestQueryDistributions:
    def test_zipf_and_uniform_queries_answer_identically(self):
        dataset = mac_table(scale=0.5)
        table = VisionEmbedder(dataset.size, 1, seed=6)
        for key, value in dataset.pairs():
            table.insert(key, value)
        expected = dict(zip(dataset.keys.tolist(), dataset.values.tolist()))
        for sampler in (uniform_queries, zipf_queries):
            queries = sampler(dataset.keys, 5000, 3)
            answers = table.lookup_batch(queries)
            for key, answer in zip(queries.tolist(), answers.tolist()):
                assert answer == expected[key]


class TestLudoComposition:
    """The paper's composition claim: VisionEmbedder as Ludo's locator."""

    def test_ludo_with_vision_locator_round_trip(self):
        rng = random.Random(7)
        pairs = {}
        while len(pairs) < 1500:
            pairs[rng.getrandbits(48)] = rng.getrandbits(8)
        table = Ludo(1500, value_bits=8, seed=7, locator="vision")
        for key, value in pairs.items():
            table.insert(key, value)
        for key, value in pairs.items():
            assert table.lookup(key) == value
        othello_version = Ludo(1500, value_bits=8, seed=7, locator="othello")
        assert table.space_bits < othello_version.space_bits


class TestCapacityLimits:
    def test_graceful_behaviour_at_theoretical_limit(self):
        """At 1.7L the table fills to capacity; beyond 0.6 efficiency it
        refuses with a clear error instead of thrashing."""
        from repro.core.errors import SpaceExhausted

        table = VisionEmbedder(1000, value_bits=2, seed=8)
        rng = random.Random(8)
        inserted = 0
        try:
            while True:
                table.insert(rng.getrandbits(44), rng.getrandbits(2))
                inserted += 1
        except SpaceExhausted:
            pass
        # 0.6 * 1.7 = 1.02: the refusal lands just past nominal capacity.
        assert inserted >= 1000
        table.check_invariants()
