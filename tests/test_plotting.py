"""Terminal charts: structure, scaling, selection."""

import pytest

from repro.bench.plotting import chart, sparkline
from repro.bench.reporting import ExperimentResult


def _result():
    return ExperimentResult(
        experiment="figX",
        title="t",
        columns=["sweep", "n", "algorithm", "Mops"],
        rows=[
            ("vs n", 100, "vision", 2.0),
            ("vs n", 200, "vision", 4.0),
            ("vs n", 100, "othello", 1.0),
            ("vs n", 200, "othello", 2.0),
            ("vs L", 100, "vision", 8.0),
        ],
    )


class TestChart:
    def test_bars_scale_to_maximum(self):
        text = chart(_result(), x="n", y="Mops", series="algorithm",
                     where={"sweep": "vs n"}, width=10)
        lines = text.splitlines()
        bars = {line.split()[0] + line.split(
            "@")[-1].split()[0]: line.count("█") for line in lines if "█" in line}
        # vision@n=200 (max 4.0) gets the full width; othello@n=100 a
        # quarter of it.
        assert max(bars.values()) == 10
        assert min(bars.values()) >= 1

    def test_where_filters_rows(self):
        text = chart(_result(), x="n", y="Mops", where={"sweep": "vs L"})
        assert text.count("█") > 0
        assert "n=100" in text
        assert "n=200" not in text

    def test_series_grouping_blank_lines(self):
        text = chart(_result(), x="n", y="Mops", series="algorithm",
                     where={"sweep": "vs n"})
        assert "" in text.splitlines()  # separator between series groups

    def test_unknown_column_rejected(self):
        with pytest.raises(ValueError):
            chart(_result(), x="nope", y="Mops")

    def test_non_numeric_metric_rejected(self):
        with pytest.raises(ValueError):
            chart(_result(), x="n", y="algorithm")

    def test_mixed_column_drops_string_rows(self):
        mixed = ExperimentResult(
            experiment="m", title="t", columns=["k", "v"],
            rows=[("a", 1.0), ("b", "n/a"), ("c", 3.0)],
        )
        text = chart(mixed, x="k", y="v")
        assert "k=a" in text and "k=c" in text
        assert "k=b" not in text

    def test_empty_selection_rejected(self):
        with pytest.raises(ValueError):
            chart(_result(), x="n", y="Mops", where={"sweep": "vs Z"})

    def test_on_a_real_experiment(self):
        from repro.bench.experiments import run_experiment

        result = run_experiment("theory")
        # The theory result has a numeric 'computed' column (its string
        # rows — the formatted probabilities — drop out).
        text = chart(result, x="quantity", y="computed", width=20)
        assert "lambda'" in text
        assert "█" in text


class TestSparkline:
    def test_monotone_series(self):
        line = sparkline([1, 2, 3, 4, 5, 6, 7, 8])
        assert line[0] == "▁"
        assert line[-1] == "█"
        assert len(line) == 8

    def test_flat_series(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_empty(self):
        assert sparkline([]) == ""
