"""FPGA simulator: Table III calibration and the cycle-exact pipeline."""

import random

import pytest

from repro.core.embedder import VisionEmbedder
from repro.fpga.pipeline import NUM_STAGES, LookupPipeline
from repro.fpga.platform import VU13P_LIKE, FpgaDevice
from repro.fpga.resources import brams_for_array, estimate_resources


class TestResourceEstimates:
    def test_table3_anchor_point(self):
        """The default geometry must reproduce the paper's Table III."""
        report = estimate_resources(depth=1 << 19, value_bits=8)
        assert report.hash_luts == 76
        assert report.hash_registers == 66
        assert report.engine_luts == 505
        assert report.engine_registers == 631
        assert report.total_luts == 581
        assert report.total_registers == 697
        assert report.block_rams == 385
        assert report.frequency_mhz == pytest.approx(279.64, abs=0.01)

    def test_table3_usage_percentages(self):
        """Paper: 0.03% LUTs, 0.02% registers, 14.32% BRAM."""
        usage = estimate_resources().usage()
        assert usage["clb_luts"] == pytest.approx(0.0003, abs=0.0001)
        assert usage["clb_registers"] == pytest.approx(0.0002, abs=0.0001)
        assert usage["block_ram"] == pytest.approx(0.1432, abs=0.0005)

    def test_capacity_is_0_95_million(self):
        report = estimate_resources()
        assert report.capacity_pairs == pytest.approx(950_000, rel=0.05)

    def test_throughput_equals_frequency(self):
        report = estimate_resources()
        assert report.lookup_mops == report.frequency_mhz

    def test_bram_math(self):
        # 2^19 deep, 8-bit wide on 4096x9 tiles: 128 per array.
        assert brams_for_array(1 << 19, 8, VU13P_LIKE) == 128
        # 10-bit values need two 9-bit lanes.
        assert brams_for_array(1 << 19, 10, VU13P_LIKE) == 256
        assert brams_for_array(4096, 8, VU13P_LIKE) == 1

    def test_invalid_depth(self):
        with pytest.raises(ValueError):
            brams_for_array(0, 8, VU13P_LIKE)

    def test_smaller_table_is_faster_and_smaller(self):
        small = estimate_resources(depth=1 << 12, value_bits=8)
        big = estimate_resources(depth=1 << 19, value_bits=8)
        assert small.block_rams < big.block_rams
        assert small.frequency_mhz > big.frequency_mhz

    def test_frequency_capped_by_device(self):
        report = estimate_resources(depth=2, value_bits=1)
        assert report.frequency_mhz <= VU13P_LIKE.f_max_mhz


class TestDevice:
    def test_usage_fractions(self):
        device = FpgaDevice("d", 1000, 2000, 100)
        assert device.lut_usage(10) == 0.01
        assert device.register_usage(10) == 0.005
        assert device.bram_usage(50) == 0.5


def _built_embedder(n=300, seed=4):
    table = VisionEmbedder(n, 8, seed=seed)
    rng = random.Random(seed)
    pairs = {}
    while len(pairs) < n:
        pairs[rng.getrandbits(48)] = rng.getrandbits(8)
    for key, value in pairs.items():
        table.insert(key, value)
    return table, pairs


class TestPipeline:
    def test_functional_equivalence_with_software(self):
        table, pairs = _built_embedder()
        pipeline = LookupPipeline.from_embedder(table)
        keys = list(pairs)
        result = pipeline.run(keys)
        assert len(result.values) == len(keys)
        for key, value in zip(keys, result.values):
            assert value == pairs[key]

    def test_latency_is_three_cycles(self):
        table, pairs = _built_embedder(50)
        pipeline = LookupPipeline.from_embedder(table)
        key = next(iter(pairs))
        outputs = [pipeline.step(key)]
        outputs += [pipeline.step(None) for _ in range(NUM_STAGES)]
        # The result appears exactly NUM_STAGES cycles after acceptance.
        assert outputs[:NUM_STAGES] == [None] * NUM_STAGES
        assert outputs[NUM_STAGES] == pairs[key]

    def test_initiation_interval_one(self):
        table, pairs = _built_embedder(200)
        pipeline = LookupPipeline.from_embedder(table)
        result = pipeline.run(list(pairs))
        # Fill + drain only: n + NUM_STAGES cycles for n lookups.
        assert result.cycles == len(pairs) + NUM_STAGES

    def test_throughput_approaches_frequency(self):
        table, pairs = _built_embedder(1000)
        pipeline = LookupPipeline.from_embedder(table, frequency_mhz=279.64)
        result = pipeline.run(list(pairs))
        assert result.throughput_mops == pytest.approx(279.64, rel=0.01)

    def test_bubbles_pass_through(self):
        table, pairs = _built_embedder(10)
        pipeline = LookupPipeline.from_embedder(table)
        keys = list(pairs)[:2]
        pipeline.step(keys[0])
        pipeline.step(None)  # bubble between queries
        pipeline.step(keys[1])
        outputs = [pipeline.step(None) for _ in range(4)]
        assert outputs[0] == pairs[keys[0]]
        assert outputs[1] is None  # the bubble
        assert outputs[2] == pairs[keys[1]]

    def test_flush_drains_everything(self):
        table, pairs = _built_embedder(10)
        pipeline = LookupPipeline.from_embedder(table)
        keys = list(pairs)[:3]
        for key in keys:
            pipeline.step(key)
        drained = pipeline.flush()
        # One result was produced during feeding? No: 3 feeds < latency,
        # so all 3 results appear during the flush.
        assert drained == [pairs[k] for k in keys]

    def test_mismatched_hash_arity_rejected(self):
        from repro.core.value_table import ValueTable
        from repro.hashing import HashFamily

        with pytest.raises(ValueError):
            LookupPipeline(ValueTable(8, 8), HashFamily(1, [8, 8]))

    def test_empty_run(self):
        table, _ = _built_embedder(10)
        pipeline = LookupPipeline.from_embedder(table)
        result = pipeline.run([])
        assert result.values == ()
        assert result.throughput_mops == 0.0
