"""EmbedderConfig and the dynamic-depth policy."""

import pytest

from repro.core.config import DepthPolicy, EmbedderConfig


class TestDepthPolicy:
    def test_paper_schedule(self):
        policy = DepthPolicy()
        assert policy.depth_for(0.0) == 1
        assert policy.depth_for(0.19) == 1
        assert policy.depth_for(0.2) == 2
        assert policy.depth_for(0.39) == 2
        assert policy.depth_for(0.4) == 3
        assert policy.depth_for(0.59) == 3

    def test_fixed_depth(self):
        policy = DepthPolicy(fixed=2)
        assert policy.depth_for(0.0) == 2
        assert policy.depth_for(0.9) == 2

    def test_custom_schedule(self):
        policy = DepthPolicy(thresholds=(0.5,), depths=(1, 4))
        assert policy.depth_for(0.4) == 1
        assert policy.depth_for(0.6) == 4

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            DepthPolicy(thresholds=(0.1, 0.2), depths=(1, 2))

    def test_fixed_depth_must_be_positive(self):
        with pytest.raises(ValueError):
            DepthPolicy(fixed=0)


class TestEmbedderConfig:
    def test_defaults_match_paper(self):
        config = EmbedderConfig()
        assert config.space_factor == 1.7
        assert config.strategy == "vision"
        assert config.max_repair_steps == 50
        assert config.reconstruct_efficiency_limit == 0.6

    def test_space_factor_must_exceed_one(self):
        with pytest.raises(ValueError):
            EmbedderConfig(space_factor=1.0)

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            EmbedderConfig(strategy="magic")

    def test_repair_budget_positive(self):
        with pytest.raises(ValueError):
            EmbedderConfig(max_repair_steps=0)

    def test_efficiency_limit_range(self):
        with pytest.raises(ValueError):
            EmbedderConfig(reconstruct_efficiency_limit=0.0)
        with pytest.raises(ValueError):
            EmbedderConfig(reconstruct_efficiency_limit=1.5)

    def test_frozen(self):
        config = EmbedderConfig()
        with pytest.raises(AttributeError):
            config.space_factor = 2.0
