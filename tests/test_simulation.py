"""Monte-Carlo validation of Theorem 1's model against the built system."""

import pytest

from repro.analysis.poisson import expected_min_load
from repro.analysis.simulation import (
    BranchingEstimate,
    measure_branching_factor,
    simulate_min_load,
)


class TestSimulatedMinLoad:
    def test_matches_analytic_formula(self):
        for lam in (0.5, 1.0, 1.709, 2.5):
            simulated = simulate_min_load(lam, samples=200_000, seed=3)
            analytic = expected_min_load(lam)
            assert simulated == pytest.approx(analytic, rel=0.03)

    def test_zero_lambda(self):
        assert simulate_min_load(0.0, samples=1000) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            simulate_min_load(-1.0)

    def test_threshold_bracketing(self):
        """The simulated process crosses 1 inside the paper's bracket."""
        assert simulate_min_load(1.60, samples=300_000, seed=5) < 1.0
        assert simulate_min_load(1.85, samples=300_000, seed=5) > 1.0


class TestRealTableBranching:
    def test_real_table_matches_poisson_model(self):
        """Theorem 1 assumes real bucket loads behave like Pois(3n/m);
        measure on an actual assistant table."""
        estimate = measure_branching_factor(n=3000, space_factor=1.9,
                                            seed=2, samples=40_000)
        assert isinstance(estimate, BranchingEstimate)
        analytic = expected_min_load(estimate.lam)
        assert estimate.expected_min_load == pytest.approx(analytic, rel=0.06)

    def test_branching_grows_with_load(self):
        loose = measure_branching_factor(n=1500, space_factor=2.6, seed=3,
                                         samples=20_000)
        tight = measure_branching_factor(n=1500, space_factor=1.8, seed=3,
                                         samples=20_000)
        assert tight.expected_min_load > loose.expected_min_load
        assert tight.lam > loose.lam
