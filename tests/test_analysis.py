"""Theory module: Theorem 1 threshold, failure models, space models."""

import math

import pytest

from repro.analysis.failure import (
    collision_error_probability,
    endless_loop_probability,
    two_hash_failure_probability,
    update_failure_probability,
)
from repro.analysis.poisson import (
    _poisson_tail,
    expected_min_load,
    solve_lambda_threshold,
    space_threshold,
)
from repro.analysis.space import (
    MEASURED_MINIMUM,
    bits_per_value_bit,
    space_bits,
    table1_rows,
)


class TestPoissonTail:
    def test_k_zero_is_one(self):
        assert _poisson_tail(2.0, 0) == 1.0

    def test_matches_direct_sum(self):
        lam, k = 1.7, 3
        direct = 1.0 - sum(
            math.exp(-lam) * lam**i / math.factorial(i) for i in range(k)
        )
        assert _poisson_tail(lam, k) == pytest.approx(direct, abs=1e-12)

    def test_monotone_decreasing_in_k(self):
        tails = [_poisson_tail(2.0, k) for k in range(10)]
        assert all(a >= b for a, b in zip(tails, tails[1:]))


class TestExpectedMinLoad:
    def test_zero_lambda(self):
        assert expected_min_load(0.0) == 0.0

    def test_monotone_in_lambda(self):
        values = [expected_min_load(lam / 10) for lam in range(1, 40)]
        assert all(a < b for a, b in zip(values, values[1:]))

    def test_negative_lambda_rejected(self):
        with pytest.raises(ValueError):
            expected_min_load(-1.0)

    def test_crosses_one_near_1_709(self):
        assert expected_min_load(1.70) < 1.0
        assert expected_min_load(1.72) > 1.0


class TestTheorem1:
    def test_lambda_threshold_is_1_709(self):
        """The paper's numerical solution: λ' ≈ 1.709."""
        assert solve_lambda_threshold() == pytest.approx(1.709, abs=0.002)

    def test_space_threshold_is_1_756(self):
        """(m/n)' = 3/λ' ≈ 1.756."""
        assert space_threshold() == pytest.approx(1.756, abs=0.002)

    def test_default_budget_is_below_depth1_threshold(self):
        """1.7 < 1.756: MaxDepth=1 alone cannot fill the default budget —
        which is exactly why the dynamic-depth schedule exists."""
        assert 1.7 < space_threshold()

    def test_unreachable_target_rejected(self):
        with pytest.raises(ValueError):
            solve_lambda_threshold(target=1e9)


class TestTheorems2And3:
    def test_collision_probability_scales_as_1_over_n(self):
        p1 = collision_error_probability(1000, 1700)
        p2 = collision_error_probability(10_000, 17_000)
        assert p1 / p2 == pytest.approx(10, rel=0.01)

    def test_two_hash_probability_is_constant(self):
        p1 = two_hash_failure_probability(1000)
        p2 = two_hash_failure_probability(100_000)
        assert p2 / p1 == pytest.approx(1.0, rel=0.01)

    def test_value_bits_discount(self):
        base = collision_error_probability(1000, 1700, value_bits=None)
        one_bit = collision_error_probability(1000, 1700, value_bits=1)
        assert one_bit == pytest.approx(base / 2)

    def test_tiny_n(self):
        assert collision_error_probability(1, 100) == 0.0

    def test_endless_loop_bound(self):
        assert endless_loop_probability(100, 1000) == pytest.approx(1e-4)
        assert endless_loop_probability(10**9, 10) == 1.0  # capped

    def test_total_failure_probability_headline(self):
        """The paper's headline: n-fold reduction vs two-hash schemes."""
        n = 1_000_000
        vision = update_failure_probability(n, value_bits=1)
        two_hash = two_hash_failure_probability(n, value_bits=1)
        assert two_hash / vision > n / 100


class TestSpaceModels:
    def test_default_budgets(self):
        assert bits_per_value_bit("vision", 10_000, 1) == pytest.approx(1.7)
        assert bits_per_value_bit("othello", 10_000, 1) == pytest.approx(2.33)
        assert bits_per_value_bit("color", 10_000, 1) == pytest.approx(2.2)

    def test_bloomier_slack(self):
        assert bits_per_value_bit("bloomier", 100, 1) == pytest.approx(2.46)

    def test_ludo_crossover_around_L6(self):
        """Ludo's (3.76+1.05L)/L beats vision's 1.7 only above L≈6."""
        assert bits_per_value_bit("ludo", 1000, 4) > 1.7
        assert bits_per_value_bit("ludo", 1000, 8) < 1.7

    def test_unknown_algorithm(self):
        with pytest.raises(ValueError):
            space_bits("nope", 10, 1)

    def test_measured_minimum_matches_paper(self):
        assert MEASURED_MINIMUM["vision"] == 1.58

    def test_table1_structure(self):
        rows = table1_rows()
        assert len(rows) == 3
        assert rows[-1]["update_failure_probability"] == "O(1/n)"
