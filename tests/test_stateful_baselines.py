"""Stateful fuzzing of the baseline tables against a dict model."""

import hypothesis.strategies as st
from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro.baselines import ColoringEmbedder, CuckooKeyValueTable, Ludo, Othello
from repro.core.errors import ReproError

_KEYS = st.integers(0, 59)
_VALUES = st.integers(0, 15)


class _BaselineMachine(RuleBasedStateMachine):
    """Shared machine body; subclasses pick the table class."""

    table_class = None

    def __init__(self):
        super().__init__()
        self.model = {}
        self.dead = False

    @initialize(seed=st.integers(0, 100))
    def build(self, seed):
        self.table = self.table_class(96, 4, seed=seed)

    @precondition(lambda self: not self.dead)
    @rule(key=_KEYS, value=_VALUES)
    def insert(self, key, value):
        if key in self.model:
            return
        try:
            self.table.insert(key, value)
            self.model[key] = value
        except ReproError:
            self.dead = True

    @precondition(lambda self: not self.dead)
    @rule(key=_KEYS, value=_VALUES)
    def update(self, key, value):
        if key not in self.model:
            return
        try:
            self.table.update(key, value)
            self.model[key] = value
        except ReproError:
            self.dead = True

    @precondition(lambda self: not self.dead)
    @rule(key=_KEYS)
    def delete(self, key):
        if key not in self.model:
            return
        self.table.delete(key)
        del self.model[key]

    @invariant()
    def model_agreement(self):
        if self.dead:
            return
        assert len(self.table) == len(self.model)
        for key, value in self.model.items():
            assert self.table.lookup(key) == value

    @invariant()
    def structural(self):
        if self.dead:
            return
        self.table.check_invariants()


class OthelloMachine(_BaselineMachine):
    table_class = Othello


class ColorMachine(_BaselineMachine):
    table_class = ColoringEmbedder


class LudoMachine(_BaselineMachine):
    table_class = Ludo


class CuckooMachine(_BaselineMachine):
    table_class = CuckooKeyValueTable

    @invariant()
    def absence_detected(self):
        if self.dead:
            return
        # Key-stored tables answer None for keys outside the model.
        for probe in (1_000_000, 2_000_000):
            assert self.table.lookup(probe) is None


_SETTINGS = settings(max_examples=15, stateful_step_count=30, deadline=None)
for machine in (OthelloMachine, ColorMachine, LudoMachine, CuckooMachine):
    machine.TestCase.settings = _SETTINGS

TestOthelloStateful = OthelloMachine.TestCase
TestColorStateful = ColorMachine.TestCase
TestLudoStateful = LudoMachine.TestCase
TestCuckooStateful = CuckooMachine.TestCase
