"""Tests for the repro.check static-analysis package.

Each rule is exercised against a violating and a clean fixture snippet;
the pragma, baseline, and CLI layers get behavioural tests of their own.
Fixture code is checked in-memory through :func:`check_source`, so no
temp files are needed except for the CLI/baseline round-trips.
"""

import json
import textwrap

import pytest

from repro.check import (
    Baseline,
    BaselineEntry,
    CheckConfig,
    Violation,
    check_source,
    check_sources,
    load_baseline,
    main,
    write_baseline,
)
from repro.check.engine import module_relpath
from pathlib import Path


def run(source, rel="repro/other/module.py"):
    """check_source over a dedented fixture snippet."""
    return check_source(textwrap.dedent(source), rel)


def rules_of(violations):
    return [v.rule for v in violations]


# ---------------------------------------------------------------------------
# R101 — value-table write encapsulation
# ---------------------------------------------------------------------------

class TestR101:
    def test_direct_cells_assignment_flagged(self):
        found = run("table._cells = fresh\n")
        assert rules_of(found) == ["R101"]

    def test_subscript_cells_write_flagged(self):
        found = run("table._cells[0, 3] = 7\n")
        assert rules_of(found) == ["R101"]

    def test_words_augassign_flagged(self):
        found = run("packed._words[0] ^= delta\n")
        assert rules_of(found) == ["R101"]

    def test_mutator_call_on_table_flagged(self):
        found = run("value_table.xor((0, 1), 3)\n")
        assert rules_of(found) == ["R101"]

    def test_load_dense_on_nested_table_flagged(self):
        found = run("wrapper._table.load_dense(dense)\n")
        assert rules_of(found) == ["R101"]

    def test_own_storage_attribute_allowed(self):
        found = run(
            """
            class Recorder:
                def reset(self):
                    self._cells.clear()
            """
        )
        assert found == []

    def test_non_table_receiver_allowed(self):
        found = run("self._traces.clear()\n")
        assert found == []

    def test_allowlisted_module_exempt(self):
        found = run(
            "table._cells[0] = 1\n", rel="repro/core/update.py"
        )
        assert found == []

    def test_baseline_prefix_exempt(self):
        found = run(
            "table._cells[0] = 1\n", rel="repro/baselines/bloom.py"
        )
        assert found == []


# ---------------------------------------------------------------------------
# R2 — hot-path purity
# ---------------------------------------------------------------------------

HOT = "def walk(items, hooks):  # repro: hotpath\n"


class TestR2Hotpath:
    def test_dict_alloc_in_loop_flagged(self):
        found = run(
            """
            def walk(items):  # repro: hotpath
                for item in items:
                    seen = {}
            """
        )
        assert rules_of(found) == ["R201"]

    def test_set_call_in_loop_flagged(self):
        found = run(
            """
            def walk(items):  # repro: hotpath
                while items:
                    bucket = set()
            """
        )
        assert rules_of(found) == ["R201"]

    def test_alloc_outside_loop_allowed(self):
        found = run(
            """
            def walk(items):  # repro: hotpath
                seen = set()
                for item in items:
                    seen.add(item)
            """
        )
        assert found == []

    def test_unmarked_function_not_checked(self):
        found = run(
            """
            def walk(items):
                for item in items:
                    seen = {}
            """
        )
        assert found == []

    def test_pragma_on_line_above_def(self):
        found = run(
            """
            # repro: hotpath
            def walk(items):
                for item in items:
                    seen = {}
            """
        )
        assert rules_of(found) == ["R201"]

    def test_unguarded_hooks_call_flagged(self):
        found = run(
            """
            def walk(key, hooks):  # repro: hotpath
                hooks.on_kick(key, (0, 1), 2)
            """
        )
        assert rules_of(found) == ["R202"]

    def test_guarded_hooks_call_allowed(self):
        found = run(
            """
            def walk(key, hooks):  # repro: hotpath
                if hooks is not None:
                    hooks.on_kick(key, (0, 1), 2)
            """
        )
        assert found == []

    def test_guard_must_name_same_receiver(self):
        found = run(
            """
            def walk(key, hooks, other_hooks):  # repro: hotpath
                if other_hooks is not None:
                    hooks.on_kick(key, (0, 1), 2)
            """
        )
        assert rules_of(found) == ["R202"]

    def test_bare_except_flagged(self):
        found = run(
            """
            def walk(items):  # repro: hotpath
                try:
                    items.pop()
                except:
                    pass
            """
        )
        # the bare silent swallow now also trips the R805 lifecycle rule
        assert rules_of(found) == ["R203", "R805"]

    def test_typed_except_allowed(self):
        found = run(
            """
            def walk(items):  # repro: hotpath
                try:
                    items.pop()
                except IndexError:
                    pass
            """
        )
        assert found == []

    def test_direct_random_call_flagged(self):
        found = run(
            """
            def walk(items):  # repro: hotpath
                return random.random()
            """
        )
        assert rules_of(found) == ["R204"]

    def test_direct_time_call_flagged(self):
        found = run(
            """
            def walk(items):  # repro: hotpath
                return time.perf_counter()
            """
        )
        assert rules_of(found) == ["R204"]

    def test_injected_rng_allowed(self):
        found = run(
            """
            def walk(items, rng):  # repro: hotpath
                return rng.random()
            """
        )
        assert found == []

    def test_nested_def_depth_resets(self):
        # The set() sits in a nested function *defined* inside a loop but
        # not executed per-iteration-in-a-loop lexically inside it.
        found = run(
            """
            def walk(items):  # repro: hotpath
                for item in items:
                    def helper():
                        seen = set()
                        return seen
            """
        )
        assert found == []


# ---------------------------------------------------------------------------
# R3 — lock discipline
# ---------------------------------------------------------------------------

class TestR3Locks:
    def test_raw_acquire_flagged(self):
        found = run(
            """
            def reader(lock):
                lock.acquire_read()
                try:
                    pass
                finally:
                    lock.release_read()
            """
        )
        assert rules_of(found) == ["R301", "R301"]

    def test_context_manager_allowed(self):
        found = run(
            """
            def reader(lock):
                with lock.read():
                    pass
            """
        )
        assert found == []

    def test_lock_class_body_exempt(self):
        found = run(
            """
            class RWLock:
                def read(self):
                    self.acquire_read()
            """
        )
        assert found == []

    def test_unsorted_multi_lock_flagged(self):
        found = run(
            """
            def update(locks, cells):
                for cell in cells:
                    with locks[cell].write():
                        pass
            """
        )
        assert rules_of(found) == ["R302"]

    def test_sorted_multi_lock_allowed(self):
        found = run(
            """
            def update(locks, cells):
                for cell in sorted(cells):
                    with locks[cell].write():
                        pass
            """
        )
        assert found == []


# ---------------------------------------------------------------------------
# R4 — hygiene
# ---------------------------------------------------------------------------

class TestR4Hygiene:
    def test_mutable_default_flagged(self):
        found = run("def f(x=[]):\n    return x\n")
        assert rules_of(found) == ["R401"]

    def test_mutable_kwonly_default_flagged(self):
        found = run("def f(*, x={}):\n    return x\n")
        assert rules_of(found) == ["R401"]

    def test_none_default_allowed(self):
        found = run("def f(x=None):\n    return x or []\n")
        assert found == []

    def test_runtime_assert_flagged(self):
        found = run(
            """
            def insert(table, key):
                assert key >= 0
            """
        )
        assert rules_of(found) == ["R402"]

    def test_assert_in_check_helper_allowed(self):
        found = run(
            """
            def check_consistency(table):
                assert table.ok
            """
        )
        assert found == []

    def test_stale_export_flagged(self):
        found = run(
            """
            from repro.x import thing

            __all__ = ["thing", "ghost"]
            """,
            rel="repro/pkg/__init__.py",
        )
        assert rules_of(found) == ["R403"]
        assert "ghost" in found[0].message

    def test_missing_export_flagged(self):
        found = run(
            """
            from repro.x import thing, other

            __all__ = ["thing"]
            """,
            rel="repro/pkg/__init__.py",
        )
        assert rules_of(found) == ["R403"]
        assert "other" in found[0].message

    def test_missing_all_flagged(self):
        found = run(
            "from repro.x import thing\n", rel="repro/pkg/__init__.py"
        )
        assert rules_of(found) == ["R403"]

    def test_consistent_init_clean(self):
        found = run(
            """
            from repro.x import thing

            __all__ = ["thing"]
            """,
            rel="repro/pkg/__init__.py",
        )
        assert found == []

    def test_non_init_module_not_checked(self):
        found = run("from repro.x import thing\n")
        assert found == []


# ---------------------------------------------------------------------------
# pragmas: noqa semantics, unknown directives, syntax errors
# ---------------------------------------------------------------------------

class TestPragmas:
    def test_justified_noqa_suppresses(self):
        found = run(
            "table._cells[0] = 1  "
            "# repro: noqa[R101] -- fixture restores a snapshot\n"
        )
        assert found == []

    def test_family_prefix_suppresses(self):
        found = run(
            """
            def walk(items):  # repro: hotpath
                for item in items:
                    seen = {}  # repro: noqa[R2] -- fixture tests the family prefix
            """
        )
        assert found == []

    def test_unjustified_noqa_is_r001_and_does_not_suppress(self):
        found = run("table._cells[0] = 1  # repro: noqa[R101]\n")
        assert sorted(rules_of(found)) == ["R001", "R101"]

    def test_unknown_rule_in_noqa_is_r002(self):
        found = run("x = 1  # repro: noqa[R999] -- no such rule\n")
        assert rules_of(found) == ["R002"]

    def test_unknown_directive_is_r002(self):
        found = run("x = 1  # repro: hotpth\n")
        assert rules_of(found) == ["R002"]

    def test_unused_noqa_is_r003(self):
        found = run("x = 1  # repro: noqa[R101] -- nothing to suppress\n")
        assert rules_of(found) == ["R003"]

    def test_noqa_only_covers_its_own_line(self):
        found = run(
            """
            ok = 1  # repro: noqa[R101] -- wrong line
            table._cells[0] = 1
            """
        )
        assert sorted(rules_of(found)) == ["R003", "R101"]

    def test_pragma_inside_string_ignored(self):
        found = run('text = "# repro: hotpath"\n')
        assert found == []

    def test_syntax_error_is_r000(self):
        found = run("def broken(:\n")
        assert rules_of(found) == ["R000"]


# ---------------------------------------------------------------------------
# baseline ratchet
# ---------------------------------------------------------------------------

class TestBaseline:
    def violations(self):
        return check_source(
            "table._cells[0] = 1\n", "repro/other/module.py"
        )

    def test_round_trip_suppresses(self, tmp_path):
        found = self.violations()
        path = tmp_path / "baseline.json"
        assert write_baseline(path, found) == 1
        loaded = load_baseline(path)
        # written entries carry no note yet: deliberately unjustified
        assert len(loaded.unjustified()) == 1
        surviving, matched, stale = loaded.apply(found)
        assert surviving == [] and len(matched) == 1 and stale == []

    def test_stale_entry_detected(self):
        baseline = Baseline(entries=[BaselineEntry(
            fingerprint="0" * 16, rule="R101",
            path="repro/gone.py", note="was fixed",
        )])
        surviving, matched, stale = baseline.apply(self.violations())
        assert len(surviving) == 1 and matched == [] and len(stale) == 1

    def test_fingerprint_tracks_line_content(self):
        first = check_source(
            "table._cells[0] = 1\n", "repro/other/module.py"
        )[0]
        moved = check_source(
            "\n\ntable._cells[0] = 1\n", "repro/other/module.py"
        )[0]
        edited = check_source(
            "table._cells[0] = 2\n", "repro/other/module.py"
        )[0]
        assert first.fingerprint() == moved.fingerprint()
        assert first.fingerprint() != edited.fingerprint()

    def test_malformed_baseline_raises(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text('{"format": "something-else"}')
        with pytest.raises(ValueError):
            load_baseline(path)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

class TestCli:
    def write_module(self, tmp_path, source, name="module.py"):
        pkg = tmp_path / "src" / "repro" / "other"
        pkg.mkdir(parents=True, exist_ok=True)
        target = pkg / name
        target.write_text(textwrap.dedent(source))
        return target

    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        self.write_module(tmp_path, "x = 1\n")
        assert main([str(tmp_path / "src")]) == 0
        assert "clean" in capsys.readouterr().out

    def test_violations_exit_one(self, tmp_path, capsys):
        self.write_module(tmp_path, "table._cells[0] = 1\n")
        assert main([str(tmp_path / "src"), "--no-baseline"]) == 1
        out = capsys.readouterr().out
        assert "R101" in out and "1 violation(s)" in out

    def test_missing_path_exits_two(self, tmp_path):
        assert main([str(tmp_path / "nope")]) == 2

    def test_json_format(self, tmp_path, capsys):
        self.write_module(tmp_path, "table._cells[0] = 1\n")
        assert main(
            [str(tmp_path / "src"), "--format", "json", "--no-baseline"]
        ) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["format"] == "repro-check/1"
        assert payload["count"] == 1
        assert payload["violations"][0]["rule"] == "R101"

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ("R101", "R201", "R301", "R401"):
            assert rule in out

    def test_baseline_workflow(self, tmp_path, capsys):
        target = self.write_module(tmp_path, "table._cells[0] = 1\n")
        baseline = tmp_path / "baseline.json"
        src = str(tmp_path / "src")
        assert main(
            [src, "--baseline", str(baseline), "--write-baseline"]
        ) == 0
        # entries start unjustified: the checker refuses the file as-is
        assert main([src, "--baseline", str(baseline)]) == 1
        payload = json.loads(baseline.read_text())
        for entry in payload["entries"]:
            entry["note"] = "fixture debt, paid down in the next PR"
        baseline.write_text(json.dumps(payload))
        capsys.readouterr()
        # justified baseline: the violation is grandfathered
        assert main([src, "--baseline", str(baseline)]) == 0
        # fixing the code strands the entry -> stale -> exit 1
        target.write_text("x = 1\n")
        assert main([src, "--baseline", str(baseline)]) == 1
        assert "stale" in capsys.readouterr().err

    def test_malformed_baseline_exits_two(self, tmp_path):
        self.write_module(tmp_path, "x = 1\n")
        baseline = tmp_path / "baseline.json"
        baseline.write_text("{}")
        assert main(
            [str(tmp_path / "src"), "--baseline", str(baseline)]
        ) == 2


# ---------------------------------------------------------------------------
# engine plumbing
# ---------------------------------------------------------------------------

class TestEngine:
    def test_module_relpath_strips_src(self):
        assert module_relpath(
            Path("src/repro/core/update.py")
        ) == "repro/core/update.py"
        assert module_relpath(
            Path("/abs/repo/src/repro/x.py")
        ) == "repro/x.py"

    def test_violations_sorted_by_location(self):
        found = run(
            """
            def f(x=[]):
                assert x
            table._cells[0] = 1
            """
        )
        assert rules_of(found) == ["R401", "R402", "R101"]
        assert [v.line for v in found] == sorted(v.line for v in found)

    def test_render_format(self):
        violation = run("table._cells[0] = 1\n")[0]
        rendered = violation.render()
        assert rendered.startswith("repro/other/module.py:1:1: R101")

    def test_repo_tree_is_clean(self):
        # The merge gate: the shipped tree must pass its own checker.
        assert main(["src", "--no-baseline"]) == 0


# ---------------------------------------------------------------------------
# R404 — print() in library code
# ---------------------------------------------------------------------------

class TestR404:
    def test_library_print_flagged(self):
        found = run("def report(x):\n    print(x)\n")
        assert rules_of(found) == ["R404"]

    def test_cli_module_exempt(self):
        found = run("print('usage')\n", rel="repro/check/cli.py")
        assert found == []

    def test_dunder_main_exempt(self):
        found = run("print('hi')\n", rel="repro/bench/__main__.py")
        assert found == []

    def test_print_in_docstring_not_flagged(self):
        found = run(
            '''
            def demo():
                """Example::

                    print(table.lookup(1))
                """
                return 1
            '''
        )
        assert found == []

    def test_method_named_print_not_flagged(self):
        found = run("def f(writer):\n    writer.print('x')\n")
        assert found == []


# ---------------------------------------------------------------------------
# R5xx — interprocedural invariant dataflow
# ---------------------------------------------------------------------------

class TestR501InvariantRestore:
    """Registration followed by cell writes needs an exception-edge
    rollback; rel must be an invariant module (update/embedder/static_build)."""

    def test_unprotected_write_after_registration_flagged(self):
        found = run(
            """
            class Emb:
                def insert(self, key, value):
                    self._assistant.add(key, value, ())
                    self._table.xor((0, 1), value)
            """,
            rel="repro/core/update.py",
        )
        assert rules_of(found) == ["R501"]

    def test_rollback_protected_write_clean(self):
        found = run(
            """
            class Emb:
                def insert(self, key, value):
                    self._assistant.add(key, value, ())
                    try:
                        self._table.xor((0, 1), value)
                    except ValueError:
                        self._assistant.remove(key)
                        raise
            """,
            rel="repro/core/update.py",
        )
        assert found == []

    def test_transitive_write_through_call_flagged(self):
        found = run(
            """
            def _apply_delta(table, value):
                table.xor((0, 1), value)

            class Emb:
                def insert(self, key, value):
                    self._assistant.add(key, value, ())
                    _apply_delta(self._table, value)
            """,
            rel="repro/core/update.py",
        )
        assert rules_of(found) == ["R501"]
        assert "_apply_delta" in found[0].message

    def test_write_before_registration_clean(self):
        found = run(
            """
            class Emb:
                def insert(self, key, value):
                    self._table.xor((0, 1), value)
                    self._assistant.add(key, value, ())
            """,
            rel="repro/core/update.py",
        )
        assert found == []

    def test_private_function_not_checked(self):
        found = run(
            """
            class Emb:
                def _rebuild_one(self, key, value):
                    self._assistant.add(key, value, ())
                    self._table.xor((0, 1), value)
            """,
            rel="repro/core/update.py",
        )
        assert found == []

    def test_noqa_suppresses_without_r003(self):
        found = run(
            """
            class Emb:
                def insert(self, key, value):
                    self._assistant.add(key, value, ())
                    self._table.xor((0, 1), value)  # repro: noqa[R501] -- caller retries idempotently
            """,
            rel="repro/core/update.py",
        )
        assert found == []


class TestR502WriteEscapes:
    def test_cross_module_write_escape_flagged(self):
        found = check_sources({
            "repro/core/update.py": (
                "def rebuild_cells(table):\n"
                "    table.xor((0, 1), 5)\n"
            ),
            "repro/analysis/tool.py": (
                "from repro.core.update import rebuild_cells\n\n\n"
                "def summarise(table):\n"
                "    rebuild_cells(table)\n"
            ),
        })
        assert rules_of(found) == ["R502"]
        assert found[0].path == "repro/analysis/tool.py"
        assert "rebuild_cells" in found[0].message

    def test_public_mutation_api_is_front_door(self):
        found = check_sources({
            "repro/core/update.py": (
                "def insert(table, key, value):\n"
                "    table.xor((0, 1), value)\n"
            ),
            "repro/analysis/tool.py": (
                "def drive(table):\n"
                "    insert(table, 1, 2)\n"
            ),
        })
        assert found == []

    def test_sanctioned_write_site_does_not_cascade(self):
        # A noqa[R101] on the write site blesses the whole call chain —
        # callers of the sanctioned function are not R502 escapes.
        found = check_sources({
            "repro/core/update.py": (
                "def restore(table, dense):\n"
                "    table.load_dense(dense)"
                "  # repro: noqa[R101] -- snapshot restore\n"
            ),
            "repro/analysis/tool.py": (
                "def roundtrip(table, dense):\n"
                "    restore(table, dense)\n"
            ),
        })
        assert found == []


class TestR503PartialLoopWrites:
    def test_loop_write_flagged(self):
        found = run(
            """
            def spray(table, cells, delta):
                for cell in cells:
                    table.xor(cell, delta)
            """,
            rel="repro/core/update.py",
        )
        assert rules_of(found) == ["R503"]

    def test_update_plan_apply_exempt(self):
        found = run(
            """
            class UpdatePlan:
                def apply(self, table):
                    for cell in self.path:
                        table.xor(cell, self.delta)
            """,
            rel="repro/core/update.py",
        )
        assert found == []

    def test_single_write_outside_loop_clean(self):
        found = run(
            "def fix(table):\n    table.xor((0, 1), 3)\n",
            rel="repro/core/update.py",
        )
        assert found == []

    def test_non_invariant_module_not_checked(self):
        # Outside the invariant modules the loop hazard is R101's
        # business (and R101 fires there instead).
        found = run(
            """
            def spray(table, cells, delta):
                for cell in cells:
                    table.xor(cell, delta)
            """,
            rel="repro/other/module.py",
        )
        assert rules_of(found) == ["R101"]


# ---------------------------------------------------------------------------
# R601 — blocking calls reachable from serve-scope async defs
# ---------------------------------------------------------------------------

SERVE = "repro/serve/handlers.py"


class TestR601AsyncBlocking:
    def test_direct_sleep_in_async_handler_flagged(self):
        found = run(
            """
            import time


            async def handle(request):
                time.sleep(0.01)
            """,
            rel=SERVE,
        )
        assert rules_of(found) == ["R601"]
        assert "time.sleep" in found[0].message

    def test_transitive_blocking_flagged_at_call_site(self):
        found = run(
            """
            import time


            def backoff():
                time.sleep(0.01)


            async def handle(request):
                backoff()
            """,
            rel=SERVE,
        )
        assert rules_of(found) == ["R601"]
        assert "backoff" in found[0].message
        # flagged at the handler's call site, not inside the helper
        assert found[0].snippet == "backoff()"

    def test_open_call_in_async_handler_flagged(self):
        found = run(
            """
            async def dump(path):
                with open(path) as fh:
                    return fh.read()
            """,
            rel=SERVE,
        )
        assert rules_of(found) == ["R601"]

    def test_unawaited_lock_acquire_flagged(self):
        found = run(
            """
            async def guard(self):
                self._lock.acquire()
            """,
            rel=SERVE,
        )
        assert rules_of(found) == ["R601"]

    def test_awaited_acquire_is_asyncio_and_clean(self):
        found = run(
            """
            async def guard(self):
                await self._lock.acquire()
            """,
            rel=SERVE,
        )
        assert found == []

    def test_asyncio_sleep_clean(self):
        found = run(
            """
            import asyncio


            async def pace(self):
                await asyncio.sleep(0.01)
            """,
            rel=SERVE,
        )
        assert found == []

    def test_outside_serve_scope_not_judged(self):
        found = run(
            """
            import time


            async def handle(request):
                time.sleep(0.01)
            """,
            rel="repro/other/module.py",
        )
        assert found == []

    def test_sanctioned_blocking_site_does_not_propagate(self):
        found = run(
            """
            import time


            def backoff():
                time.sleep(0.01)  # repro: noqa[R601] -- startup only, loop not serving yet


            async def handle(request):
                backoff()
            """,
            rel=SERVE,
        )
        assert found == []


# ---------------------------------------------------------------------------
# R602 — orphaned create_task/ensure_future results
# ---------------------------------------------------------------------------


class TestR602OrphanTasks:
    def test_bare_spawn_flagged(self):
        found = run(
            """
            import asyncio


            async def kick(worker):
                asyncio.create_task(worker())
            """
        )
        assert rules_of(found) == ["R602"]

    def test_assigned_but_never_consumed_flagged(self):
        found = run(
            """
            import asyncio


            async def kick(worker):
                task = asyncio.create_task(worker())
                return True
            """
        )
        assert rules_of(found) == ["R602"]

    def test_awaited_spawn_clean(self):
        found = run(
            """
            import asyncio


            async def kick(worker):
                await asyncio.create_task(worker())
            """
        )
        assert found == []

    def test_assigned_then_awaited_clean(self):
        found = run(
            """
            import asyncio


            async def kick(worker):
                task = asyncio.create_task(worker())
                await task
            """
        )
        assert found == []

    def test_stored_attribute_cancelled_elsewhere_clean(self):
        found = run(
            """
            import asyncio


            class Runner:
                def start(self, worker):
                    self._task = asyncio.create_task(worker())

                def stop(self):
                    self._task.cancel()
            """
        )
        assert found == []

    def test_done_callback_chained_at_spawn_clean(self):
        found = run(
            """
            import asyncio


            async def kick(worker, on_done):
                asyncio.create_task(worker()).add_done_callback(on_done)
            """
        )
        assert found == []

    def test_ensure_future_also_judged(self):
        found = run(
            """
            import asyncio


            async def kick(coro):
                asyncio.ensure_future(coro)
            """
        )
        assert rules_of(found) == ["R602"]

    def test_justified_noqa_sanctions_aliased_ownership(self):
        found = run(
            """
            import asyncio


            class Runner:
                def start(self, worker):
                    self._task = asyncio.create_task(worker())  # repro: noqa[R602] -- close() cancels via a local alias

                def stop(self):
                    alias = self._no_such_attr
            """
        )
        assert found == []


# ---------------------------------------------------------------------------
# R603 — futures resolved on every path
# ---------------------------------------------------------------------------


class TestR603FutureResolution:
    def test_set_result_without_exception_edge_flagged(self):
        found = run(
            """
            def resolve(futures, results):
                for fut, result in zip(futures, results):
                    fut.set_result(result)
            """
        )
        assert rules_of(found) == ["R603"]
        assert "set_exception" in found[0].message

    def test_both_edges_clean(self):
        found = run(
            """
            def resolve(futures, compute):
                try:
                    value = compute()
                except Exception as exc:
                    for fut in futures:
                        fut.set_exception(exc)
                    return
                for fut in futures:
                    fut.set_result(value)
            """
        )
        assert found == []

    def test_swallowing_handler_around_set_result_flagged(self):
        found = run(
            """
            def drain(futures, compute):
                try:
                    for fut in futures:
                        fut.set_result(compute())
                except Exception:
                    cleanup()
                for fut in futures:
                    fut.set_exception(RuntimeError("leftover"))
            """
        )
        assert rules_of(found) == ["R603"]
        assert "swallows" in found[0].message

    def test_reraising_handler_clean(self):
        found = run(
            """
            def drain(futures, compute):
                try:
                    for fut in futures:
                        fut.set_result(compute())
                except Exception:
                    raise
                for fut in futures:
                    fut.set_exception(RuntimeError("leftover"))
            """
        )
        assert found == []

    def test_pure_bookkeeping_needs_no_exception_edge(self):
        # Nothing between the set_result calls can raise: no other edge.
        found = run(
            """
            def settle(fut):
                fut.set_result(None)
            """
        )
        assert found == []


# ---------------------------------------------------------------------------
# R604 — table access outside the sanctioned server-loop executors
# ---------------------------------------------------------------------------


class TestR604ServeTableAccess:
    def test_handler_touching_table_flagged(self):
        found = run(
            """
            class Helper:
                async def peek(self, key):
                    return self.table.lookup(key)
            """,
            rel=SERVE,
        )
        assert rules_of(found) == ["R604"]

    def test_sanctioned_executor_clean(self):
        found = run(
            """
            class TableServer:
                def _run_lookups(self, merged):
                    return self.table.lookup_many(merged)
            """,
            rel=SERVE,
        )
        assert found == []

    def test_reads_of_table_metadata_allowed(self):
        found = run(
            """
            class Helper:
                def health(self):
                    return {"keys": len(self.table)}
            """,
            rel=SERVE,
        )
        assert found == []

    def test_outside_serve_scope_not_judged(self):
        found = run(
            """
            class Helper:
                def peek(self, key):
                    return self.table.lookup(key)
            """,
            rel="repro/apps/tool.py",
        )
        assert found == []


# ---------------------------------------------------------------------------
# R701 — in-place mutation of plane-storage views
# ---------------------------------------------------------------------------


class TestR701ViewMutation:
    def test_augassign_through_view_flagged(self):
        found = run(
            """
            def leak(table):
                view = table._cells.reshape(-1)
                view += 1
            """
        )
        assert rules_of(found) == ["R701"]

    def test_slice_assign_into_view_flagged(self):
        found = run(
            """
            def leak(table):
                flat = table._cells.ravel()
                flat[0:4] = 0
            """
        )
        assert rules_of(found) == ["R701"]

    def test_ufunc_at_scatter_flagged(self):
        found = run(
            """
            import numpy as np


            def scatter(table, idx):
                flat = table._cells.ravel()
                np.bitwise_xor.at(flat, idx, 1)
            """
        )
        assert rules_of(found) == ["R701"]

    def test_copy_breaks_the_taint(self):
        found = run(
            """
            def snapshot(table):
                snap = table._cells.reshape(-1).copy()
                snap += 1
                return snap
            """
        )
        assert found == []

    def test_alias_chain_tracked(self):
        found = run(
            """
            def leak(table):
                view = table._cells.ravel()
                alias = view
                alias += 1
            """
        )
        assert rules_of(found) == ["R701"]

    def test_plane_owner_module_exempt(self):
        found = run(
            """
            def compact(self):
                flat = self._cells.ravel()
                flat[self._holes] = 0
            """,
            rel="repro/core/value_table.py",
        )
        assert found == []

    def test_unrelated_array_mutation_clean(self):
        found = run(
            """
            def accumulate(chunks):
                total = chunks.sum(axis=0)
                total += 1
                return total
            """
        )
        assert found == []


# ---------------------------------------------------------------------------
# R702 — dtype contracts via # repro: arrays(...)
# ---------------------------------------------------------------------------


class TestR702DtypeContract:
    def test_off_contract_dtype_flagged(self):
        found = run(
            """
            import numpy as np


            def fill(n):  # repro: arrays(int64)
                out = np.zeros(n, dtype=np.int64)
                bad = np.zeros(n, dtype=np.uint8)
                return out, bad
            """
        )
        assert rules_of(found) == ["R702"]
        assert "uint8" in found[0].message

    def test_conforming_literals_clean(self):
        found = run(
            """
            import numpy as np


            def fill(n):  # repro: arrays(int64, bool)
                out = np.zeros(n, dtype=np.int64)
                mask = np.zeros(n, dtype=bool)
                return out, mask
            """
        )
        assert found == []

    def test_astype_literal_checked(self):
        found = run(
            """
            import numpy as np


            def narrow(arr):  # repro: arrays(int64)
                return arr.astype(np.float32)
            """
        )
        assert rules_of(found) == ["R702"]

    def test_no_contract_no_checking(self):
        found = run(
            """
            import numpy as np


            def fill(n):
                return np.zeros(n, dtype=np.float32)
            """
        )
        assert found == []

    def test_empty_contract_is_r002(self):
        found = run(
            """
            def fill(n):  # repro: arrays()
                return n
            """
        )
        assert rules_of(found) == ["R002"]


# ---------------------------------------------------------------------------
# R703 — plane views escaping hotpath functions
# ---------------------------------------------------------------------------


class TestR703ViewEscape:
    def test_hotpath_returning_view_flagged(self):
        found = run(
            """
            def expose(table):  # repro: hotpath
                flat = table._cells.ravel()
                return flat
            """
        )
        assert rules_of(found) == ["R703"]

    def test_hotpath_returning_copy_clean(self):
        found = run(
            """
            def expose(table):  # repro: hotpath
                flat = table._cells.ravel()
                return flat.copy()
            """
        )
        assert found == []

    def test_non_hotpath_escape_not_judged(self):
        found = run(
            """
            def expose(table):
                return table._cells.ravel()
            """
        )
        assert found == []

    def test_plane_owner_hotpath_still_judged(self):
        # R703 guards the caller, so even storage owners must copy.
        found = run(
            """
            def planes(self):  # repro: hotpath
                return self._cells.view()
            """,
            rel="repro/core/value_table.py",
        )
        assert rules_of(found) == ["R703"]


# ---------------------------------------------------------------------------
# Seeded-bug acceptance: each caught by exactly the intended rule
# ---------------------------------------------------------------------------


class TestSeededBugs:
    def test_sleeping_handler_caught_by_exactly_r601(self):
        found = run(
            """
            import time


            async def handle_lookup(self, request):
                time.sleep(0.002)
                return await self._batcher.submit(request)
            """,
            rel=SERVE,
        )
        assert rules_of(found) == ["R601"]

    def test_uncopied_view_mutation_caught_by_exactly_r701(self):
        found = run(
            """
            def rebalance(table, idx):
                plane = table._cells.reshape(-1)
                plane[idx] += 1
            """
        )
        assert rules_of(found) == ["R701"]


# ---------------------------------------------------------------------------
# R6xx/R7xx plumbing: baseline ratchet and CLI sections
# ---------------------------------------------------------------------------


class TestNewRulePlumbing:
    def r601_violations(self):
        return check_source(
            "import time\n\n\nasync def handle(request):\n"
            "    time.sleep(0.01)\n",
            SERVE,
        )

    def test_r6xx_baseline_round_trip(self, tmp_path):
        found = self.r601_violations()
        assert rules_of(found) == ["R601"]
        path = tmp_path / "baseline.json"
        assert write_baseline(path, found) == 1
        surviving, matched, stale = load_baseline(path).apply(found)
        assert surviving == [] and len(matched) == 1 and stale == []

    def test_new_rules_in_catalogue_listing(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ("R601", "R602", "R603", "R604",
                     "R701", "R702", "R703"):
            assert rule in out

    def test_json_sections_present(self, tmp_path, capsys):
        pkg = tmp_path / "src" / "repro" / "serve"
        pkg.mkdir(parents=True)
        (pkg / "mod.py").write_text(
            "import asyncio\n\n\nasync def ok():\n"
            "    await asyncio.sleep(0)\n"
        )
        assert main([
            str(tmp_path / "src"), "--format", "json", "--no-baseline",
            "--async-rules", "--arrays",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        async_section = payload["async_rules"]
        assert async_section["async_functions"] == 1
        assert async_section["violations"] == 0
        arrays_section = payload["arrays"]
        assert arrays_section["files_scanned"] == 1
        assert arrays_section["violations"] == 0

    def test_text_sections_render(self, tmp_path, capsys):
        pkg = tmp_path / "src" / "repro" / "other"
        pkg.mkdir(parents=True)
        (pkg / "mod.py").write_text("x = 1\n")
        assert main([
            str(tmp_path / "src"), "--no-baseline",
            "--async-rules", "--arrays",
        ]) == 0
        out = capsys.readouterr().out
        assert "async:" in out and "arrays:" in out

    def test_repo_tree_clean_under_full_analysis(self):
        # The PR 8 acceptance command: new rule families, no baseline.
        assert main([
            "src", "--no-baseline", "--async-rules", "--arrays",
        ]) == 0
