"""The fault-injection explorer: every injected fault leaves the table
bit-equal to the pre- or post-operation state (repro.check.faultinject)."""

import pytest

from repro.check.faultinject import (
    InjectionSite,
    default_cases,
    discover_sites,
    injected_exception_type,
    replay_site,
    report_json,
    run_case_sweep,
    run_sweep,
)


def _case(name):
    return {case.name: case for case in default_cases()}[name]


class TestSiteIds:
    def test_round_trip(self):
        site = InjectionSite("repro/core/update.py", 123, 4)
        assert site.site_id == "repro/core/update.py:123#4"
        assert InjectionSite.parse(site.site_id) == site

    @pytest.mark.parametrize("bad", [
        "", "update.py", "update.py:12", "update.py#3", "a:b#c",
    ])
    def test_malformed_rejected(self, bad):
        with pytest.raises(ValueError):
            InjectionSite.parse(bad)

    def test_fault_type_deterministic_by_parity(self):
        even = InjectionSite("a.py", 10, 0)
        odd = InjectionSite("a.py", 10, 1)
        assert injected_exception_type(even) is MemoryError
        assert injected_exception_type(odd) is OSError
        assert injected_exception_type(even) is injected_exception_type(even)


class TestDiscovery:
    def test_happy_path_sites_are_deterministic(self):
        case = _case("insert_batch-scalar")
        first = discover_sites(case)
        second = discover_sites(case)
        assert first == second
        assert len(first) > 100
        assert all(site.file.startswith("repro/core/") for site in first)

    def test_occurrences_number_repeat_visits(self):
        sites = discover_sites(_case("insert_batch-scalar"))
        by_line = {}
        for site in sites:
            key = (site.file, site.line)
            assert site.occurrence == by_line.get(key, 0)
            by_line[key] = site.occurrence + 1


class TestSweep:
    @pytest.mark.parametrize("name", [case.name for case in default_cases()])
    def test_small_sweep_holds_strong_guarantee(self, name):
        outcomes = run_case_sweep(_case(name), max_sites=12)
        assert outcomes
        for outcome in outcomes:
            assert outcome.fired, outcome.to_dict()
            assert outcome.raised, outcome.to_dict()
            assert outcome.consistent, outcome.to_dict()
            assert outcome.state in ("pre", "post"), outcome.to_dict()
            assert outcome.ok

    def test_replay_by_site_id_is_deterministic(self):
        case = _case("insert_batch-scalar")
        outcome = run_case_sweep(case, max_sites=8)[5]
        replayed = replay_site(case.name, outcome.site_id)
        assert replayed == outcome
        assert replay_site(case.name, outcome.site_id) == replayed

    def test_unknown_case_rejected(self):
        with pytest.raises(ValueError):
            replay_site("no-such-case", "repro/core/update.py:1#0")

    def test_report_shape(self):
        outcomes = run_sweep(max_sites=4)
        report = report_json(outcomes)
        assert report["format"] == "repro-faultinject/1"
        assert report["total_sites"] == len(outcomes)
        assert report["failures"] == 0
        assert set(report["cases"]) == {
            case.name for case in default_cases()
        }
        assert len(report["outcomes"]) == len(outcomes)
