"""Application layer: binary classifier and k-mer experiment index."""

import random

import numpy as np
import pytest

from repro.apps import BinaryClassifier, KmerExperimentIndex
from repro.apps.seqindex import kmers_of, pack_kmer, unpack_kmer


class TestBinaryClassifier:
    def _training_set(self, n, seed):
        rng = random.Random(seed)
        return {rng.getrandbits(48): rng.random() < 0.4 for _ in range(n)}

    def test_exact_recall_on_training_set(self):
        items = self._training_set(2000, 1)
        clf = BinaryClassifier(capacity=2000, seed=3)
        clf.add_many(items.items())
        assert clf.accuracy(items.items()) == 1.0

    def test_predict_batch(self):
        items = self._training_set(500, 2)
        clf = BinaryClassifier(capacity=500, seed=3)
        clf.add_many(items.items())
        keys = np.fromiter(items, dtype=np.uint64)
        predictions = clf.predict_batch(keys)
        assert all(
            bool(p) == items[int(k)] for k, p in zip(keys, predictions)
        )

    def test_relabel_in_place(self):
        clf = BinaryClassifier(capacity=100, seed=1)
        clf.add("x", True)
        assert clf.predict("x") is True
        clf.add("x", False)
        assert clf.predict("x") is False
        assert len(clf) == 1

    def test_forget(self):
        clf = BinaryClassifier(capacity=100, seed=1)
        clf.add("x", True)
        clf.forget("x")
        assert "x" not in clf
        assert len(clf) == 0

    def test_space_is_about_1_7_bits_per_item(self):
        items = self._training_set(1000, 4)
        clf = BinaryClassifier(capacity=1000, seed=2)
        clf.add_many(items.items())
        assert clf.bits_per_item == pytest.approx(1.7, abs=0.05)

    def test_empty_accuracy(self):
        assert BinaryClassifier(capacity=10).accuracy([]) == 1.0


class TestKmerPacking:
    def test_roundtrip(self):
        for kmer in ("A", "ACGT", "TTTTTTTT", "GATTACA"):
            assert unpack_kmer(pack_kmer(kmer)) == kmer

    def test_length_preserved(self):
        # AA and AAA must pack differently (sentinel bit).
        assert pack_kmer("AA") != pack_kmer("AAA")

    def test_case_insensitive(self):
        assert pack_kmer("acgt") == pack_kmer("ACGT")

    def test_invalid_base(self):
        with pytest.raises(ValueError):
            pack_kmer("ACGN")

    def test_empty_and_oversized(self):
        with pytest.raises(ValueError):
            pack_kmer("")
        with pytest.raises(ValueError):
            pack_kmer("A" * 32)

    def test_kmers_of(self):
        assert list(kmers_of("ACGTA", 3)) == ["ACG", "CGT", "GTA"]
        assert list(kmers_of("AC", 3)) == []
        with pytest.raises(ValueError):
            list(kmers_of("ACGT", 0))


def _random_sequence(length, seed):
    rng = random.Random(seed)
    return "".join(rng.choice("ACGT") for _ in range(length))


class TestKmerExperimentIndex:
    def test_index_and_query(self):
        index = KmerExperimentIndex(capacity=5000, num_experiments=4, k=12,
                                    seed=5)
        sequences = {i: _random_sequence(800, seed=i) for i in range(4)}
        for experiment_id, sequence in sequences.items():
            added = index.add_experiment(experiment_id, f"exp{experiment_id}",
                                         sequence)
            assert added > 0
        # Every k-mer of experiment 2's sequence that is unique to it must
        # resolve to experiment 2.
        others = {
            kmer
            for i, seq in sequences.items() if i != 2
            for kmer in kmers_of(seq, 12)
        }
        for kmer in kmers_of(sequences[2], 12):
            if kmer not in others:
                assert index.query(kmer) == 2
                assert index.query_name(kmer) == "exp2"

    def test_first_writer_wins_on_shared_kmers(self):
        index = KmerExperimentIndex(capacity=100, num_experiments=2, k=4,
                                    seed=1)
        index.add_experiment(0, "first", "ACGTACGT")
        added = index.add_experiment(1, "second", "ACGTACGT")
        assert added == 0  # every k-mer already owned by experiment 0
        assert index.query("ACGT") == 0

    def test_query_sequence_histogram(self):
        index = KmerExperimentIndex(capacity=1000, num_experiments=2, k=8,
                                    seed=2)
        seq = _random_sequence(300, seed=9)
        index.add_experiment(1, "only", seq)
        histogram = index.query_sequence(seq)
        assert set(histogram) == {1}
        assert histogram[1] == len(list(kmers_of(seq, 8)))

    def test_value_bits_sized_from_experiment_count(self):
        assert KmerExperimentIndex(10, num_experiments=2, k=4).value_bits == 1
        assert KmerExperimentIndex(10, num_experiments=5, k=4).value_bits == 3
        assert KmerExperimentIndex(10, num_experiments=256, k=4).value_bits == 8

    def test_validation(self):
        index = KmerExperimentIndex(capacity=10, num_experiments=2, k=4)
        with pytest.raises(ValueError):
            index.query("TOOLONGKMER")
        with pytest.raises(ValueError):
            index.add_experiment(7, "bad", "ACGT")
        with pytest.raises(ValueError):
            KmerExperimentIndex(capacity=10, num_experiments=0, k=4)
