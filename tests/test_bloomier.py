"""Bloomier filter baseline: peeling construction, O(n) updates."""

import random

import numpy as np
import pytest

from repro.baselines.bloomier import Bloomier
from repro.core.errors import DuplicateKey, KeyNotFound, ReconstructionFailed


def _pairs(n, value_bits, seed):
    rng = random.Random(seed)
    pairs = {}
    while len(pairs) < n:
        pairs[rng.getrandbits(48)] = rng.getrandbits(value_bits)
    return pairs


def _filled(n=500, value_bits=4, seed=2):
    table = Bloomier(value_bits=value_bits, seed=seed)
    pairs = _pairs(n, value_bits, seed)
    table.insert_many(pairs.items())
    return table, pairs


class TestConstruction:
    def test_bulk_build_and_lookup(self):
        table, pairs = _filled(1000)
        for key, value in pairs.items():
            assert table.lookup(key) == value
        table.check_invariants()

    def test_empty_table_lookup(self):
        table = Bloomier(value_bits=4, seed=1)
        assert 0 <= table.lookup("anything") < 16

    def test_incremental_insert_rebuilds(self):
        table = Bloomier(value_bits=4, seed=1)
        passes_before = table.construction_passes
        table.insert(1, 5)
        table.insert(2, 6)
        assert table.construction_passes >= passes_before + 2
        assert table.lookup(1) == 5
        assert table.lookup(2) == 6

    def test_duplicate_rejected(self):
        table, pairs = _filled(50)
        with pytest.raises(DuplicateKey):
            table.insert(next(iter(pairs)), 0)
        with pytest.raises(DuplicateKey):
            table.insert_many([(next(iter(pairs)), 0)])

    def test_single_key(self):
        table = Bloomier(value_bits=8, seed=3)
        table.insert("only", 200)
        assert table.lookup("only") == 200


class TestUpdateDelete:
    def test_update_reassigns_without_reseed(self):
        table, pairs = _filled(300)
        seed_before = table.seed
        key = next(iter(pairs))
        table.update(key, (pairs[key] + 1) % 16)
        assert table.seed == seed_before
        assert table.lookup(key) == (pairs[key] + 1) % 16
        table.check_invariants()

    def test_update_unknown_rejected(self):
        table, _ = _filled(20)
        with pytest.raises(KeyNotFound):
            table.update("ghost", 1)

    def test_delete_is_slow_space_only(self):
        table, pairs = _filled(100)
        space_before = table.space_bits
        key = next(iter(pairs))
        table.delete(key)
        assert table.space_bits == space_before  # no rebuild on delete
        assert len(table) == 99
        with pytest.raises(KeyNotFound):
            table.delete(key)


class TestSpace:
    def test_sizing_formula(self):
        table, _ = _filled(1000)
        expected = 1.23 * (1000 + 100) / 1000
        assert table.space_cost == pytest.approx(expected, rel=0.02)

    def test_small_n_slack_dominates(self):
        table, _ = _filled(20)
        assert table.space_cost > 5  # 1.23·120/20


class TestFailureHandling:
    def test_impossible_construction_raises(self):
        # The asymptotic 1.23 threshold does not hold at tiny n — which is
        # exactly why the paper adds the +100 slack; with it, n=50 builds.
        table = Bloomier(value_bits=4, seed=1, space_factor=1.23, slack=100,
                         max_construct_attempts=5)
        pairs = list(_pairs(50, 4, 7).items())
        table.insert_many(pairs)
        tight = Bloomier(value_bits=4, seed=1, space_factor=0.5, slack=0,
                         max_construct_attempts=5)
        with pytest.raises(ReconstructionFailed):
            tight.insert_many(pairs)
        # Rollback: the failed bulk insert must not leave pairs recorded.
        assert len(tight) == 0

    def test_failed_single_insert_rolls_back(self):
        tight = Bloomier(value_bits=4, seed=1, space_factor=0.5, slack=1,
                         max_construct_attempts=3)
        keys = list(_pairs(30, 4, 8).items())
        with pytest.raises(ReconstructionFailed):
            for key, value in keys:
                tight.insert(key, value)
        # The key that failed is not half-present.
        assert all(k in tight or tight.lookup(k) is not None for k, _ in keys)


class TestBatchLookup:
    def test_matches_scalar(self):
        table, pairs = _filled(300)
        keys = np.fromiter(pairs, dtype=np.uint64)
        batch = table.lookup_batch(keys)
        for key, value in zip(keys.tolist(), batch.tolist()):
            assert value == table.lookup(key)
