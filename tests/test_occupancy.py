"""Load-dependent failure model: structure checks against theory + system."""

import pytest

from repro.analysis.occupancy import (
    expected_failures_per_fill,
    extinction_probability,
    supercritical_fill_fraction,
    walk_failure_probability,
)
from repro.analysis.poisson import solve_lambda_threshold


class TestExtinction:
    def test_certain_below_threshold(self):
        lam_critical = solve_lambda_threshold()
        for lam in (0.2, 1.0, lam_critical - 0.01):
            assert extinction_probability(lam) == pytest.approx(1.0, abs=0.02)

    def test_uncertain_above_threshold(self):
        assert extinction_probability(1.8) < 0.9
        assert extinction_probability(2.5) < 0.4

    def test_monotone_decreasing_in_lambda(self):
        values = [extinction_probability(lam / 10) for lam in range(17, 30)]
        assert all(a >= b - 1e-9 for a, b in zip(values, values[1:]))

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            extinction_probability(-1)


class TestWalkFailure:
    def test_zero_below_threshold(self):
        assert walk_failure_probability(1.0, attempts=1) < 1e-6

    def test_sharp_onset_above_threshold(self):
        assert walk_failure_probability(1.76, attempts=1) > 0.01

    def test_retries_reduce_geometrically(self):
        one = walk_failure_probability(1.9, attempts=1)
        four = walk_failure_probability(1.9, attempts=4)
        assert four == pytest.approx(one ** 4, rel=1e-9)


class TestFillModel:
    def test_paper_budget_is_slightly_supercritical(self):
        # The default 1.7L ends its fill 3% past the depth-1 threshold —
        # the regime the retry feature exists for.
        assert supercritical_fill_fraction(1.7) == pytest.approx(0.032,
                                                                 abs=0.003)
        assert supercritical_fill_fraction(1.76) == 0.0
        assert supercritical_fill_fraction(2.0) == 0.0

    def test_single_attempt_failures_are_conservative_bound(self):
        """The model over-predicts measured single-attempt failures
        (~0.1/fill at n=2048) but by a bounded factor, not orders upon
        orders."""
        predicted = expected_failures_per_fill(2048, attempts=1)
        assert 0.1 < predicted < 50

    def test_retries_drive_prediction_to_zero(self):
        assert expected_failures_per_fill(2048, attempts=8) < 1e-6

    def test_more_space_means_fewer_failures(self):
        tight = expected_failures_per_fill(1024, space_factor=1.7, attempts=1)
        loose = expected_failures_per_fill(1024, space_factor=1.8, attempts=1)
        assert loose < tight

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_failures_per_fill(0)
