"""The batched write pipeline: parity, peel engines, and the cost cache.

Covers the vectorised fast path end to end:

- ``insert_batch`` must be walk-for-walk identical to sequential ``insert``
  (bit-equal tables, same seed), packed and unpacked, with the cost cache
  on or off — the optimisations are required to be semantically invisible.
- The flat-array (numpy) peel must stall exactly when the dict-of-sets
  reference engine stalls and otherwise produce a valid peel order.
- The GetCost cost cache must never change a decision, across arbitrary
  interleavings of table mutations (generation invalidation) and clears
  (epoch invalidation).
- The repair walk must survive keys being removed mid-walk (regression
  test for the ``keys_at`` mutation hazard).
"""

import random

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import EmbedderConfig, VisionEmbedder
from repro.core.assistant_table import AssistantTable
from repro.core.errors import DuplicateKey, UpdateFailure
from repro.core.static_build import (
    peel_order,
    peel_order_flat,
    static_build_arrays,
)
from repro.core.update import UpdateStrategy, VisionStrategy, find_update_path
from repro.core.value_table import ValueTable


def _workload(n, value_bits, seed):
    rng = random.Random(seed)
    keys = rng.sample(range(1, 50 * n), n)
    values = [rng.getrandbits(value_bits) for _ in range(n)]
    return keys, values


def _dense(table):
    return table._table.to_dense()


class TestInsertBatchParity:
    @pytest.mark.parametrize("packed", [False, True])
    def test_batch_matches_sequential(self, packed):
        keys, values = _workload(800, 12, seed=11)
        sequential = VisionEmbedder(1000, 12, seed=7, packed=packed)
        for key, value in zip(keys, values):
            sequential.insert(key, value)
        batched = VisionEmbedder(1000, 12, seed=7, packed=packed)
        batched.insert_batch(keys, values)

        assert batched.seed == sequential.seed
        assert np.array_equal(_dense(batched), _dense(sequential))
        batched.check_invariants()
        for key, value in zip(keys, values):
            assert batched.lookup(key) == value

    def test_cache_and_shortcut_are_transparent(self):
        keys, values = _workload(600, 10, seed=3)
        reference = VisionEmbedder(
            800, 10, seed=5, config=EmbedderConfig(cost_cache=False)
        )
        reference._strategy.shortcut = False
        reference.insert_batch(keys, values)
        default = VisionEmbedder(800, 10, seed=5)
        default.insert_batch(keys, values)
        assert default.seed == reference.seed
        assert np.array_equal(_dense(default), _dense(reference))

    def test_insert_many_funnels_through_batch(self):
        keys, values = _workload(300, 8, seed=9)
        table = VisionEmbedder(400, 8, seed=2)
        table.insert_many(zip(keys, values))
        assert table.stats.batch_inserts == 1
        assert table.stats.largest_batch == 300
        assert table.stats.batch_keys == 300
        direct = VisionEmbedder(400, 8, seed=2)
        direct.insert_batch(keys, values)
        assert np.array_equal(_dense(table), _dense(direct))

    def test_duplicate_within_batch_rejected_before_any_insert(self):
        table = VisionEmbedder(64, 8, seed=1)
        table.insert(999, 1)
        with pytest.raises(DuplicateKey):
            table.insert_batch([1, 2, 1], [5, 6, 7])
        with pytest.raises(DuplicateKey):
            table.insert_batch([3, 999], [5, 6])
        assert len(table) == 1
        table.check_invariants()

    def test_misaligned_and_out_of_range_rejected(self):
        table = VisionEmbedder(64, 8, seed=1)
        with pytest.raises(ValueError):
            table.insert_batch([1, 2], [5])
        with pytest.raises(ValueError):
            table.insert_batch([1, 2], [5, 1 << 9])
        assert len(table) == 0

    def test_empty_batch_is_a_noop(self):
        table = VisionEmbedder(64, 8, seed=1)
        table.insert_batch([], [])
        assert len(table) == 0
        assert table.stats.batch_inserts == 0

    def test_mid_batch_reconstruction_recovers(self):
        # seed 25 at this fill triggers a reconstruction inside the batch;
        # the remaining keys' cells must be recomputed under the new seed.
        table = VisionEmbedder(128, 8, seed=25)
        pairs = [(k, (k * 7) % 256) for k in range(1, 71)]
        table.insert_many(pairs)
        assert table.stats.reconstructions >= 1
        table.check_invariants()
        for key, value in pairs:
            assert table.lookup(key) == value

    def test_empty_insert_many_is_a_noop(self):
        table = VisionEmbedder(64, 8, seed=1)
        table.insert_many([])
        assert len(table) == 0
        assert table.stats.batch_inserts == 0

    def test_misaligned_empty_batch_still_rejected(self):
        # The alignment contract holds even when one side is empty: the
        # caller clearly made a mistake, so don't silently no-op.
        table = VisionEmbedder(64, 8, seed=1)
        with pytest.raises(ValueError):
            table.insert_batch([], [5])
        with pytest.raises(ValueError):
            table.insert_batch([1], [])
        assert len(table) == 0

    @pytest.mark.parametrize("packed", [False, True])
    def test_empty_lookup_batch(self, packed):
        table = VisionEmbedder(64, 8, seed=1, packed=packed)
        table.insert(7, 42)
        for empty in ([], np.zeros(0, dtype=np.uint64)):
            out = table.lookup_batch(empty)
            assert out.dtype == np.uint64
            assert out.shape == (0,)

    def test_empty_bulk_load_leaves_table_untouched(self):
        keys, values = _workload(200, 8, seed=15)
        table = VisionEmbedder(300, 8, seed=6)
        table.insert_batch(keys, values)
        seed_before = table.seed
        dense_before = _dense(table).copy()
        table.bulk_load([])
        assert table.seed == seed_before
        assert np.array_equal(_dense(table), dense_before)
        assert len(table) == 200
        table.check_invariants()

    def test_bulk_load_and_reconstruct_keep_invariants(self):
        keys, values = _workload(500, 10, seed=21)
        table = VisionEmbedder(700, 10, seed=4)
        table.bulk_load(zip(keys, values))
        table.check_invariants()
        table.reconstruct(method="static")
        table.check_invariants()
        table.reconstruct(method="dynamic")
        table.check_invariants()
        for key, value in zip(keys, values):
            assert table.lookup(key) == value


# -- flat peel engine -------------------------------------------------------

_instances = st.integers(2, 24).flatmap(
    lambda n: st.tuples(
        st.just(n),
        st.integers(2, 8),
        st.lists(st.integers(0, 7), min_size=3 * n, max_size=3 * n),
    )
)


def _to_cols(n, width, raw):
    return [[t % width for t in raw[j * n:(j + 1) * n]] for j in range(3)]


class TestPeelEngineParity:
    @settings(max_examples=150, deadline=None)
    @given(_instances)
    def test_flat_engine_matches_reference(self, instance):
        n, width, raw = instance
        cols = _to_cols(n, width, raw)
        key_cells = {
            i: tuple((j, cols[j][i]) for j in range(3)) for i in range(n)
        }
        reference = peel_order(key_cells)
        flat = peel_order_flat(cols, width)
        # Stall iff the reference engine stalls (same 2-core).
        assert (flat is None) == (reference is None)
        if flat is None:
            return
        # The flat order must itself be a valid peel: each key's recorded
        # cell holds exactly that key among the not-yet-peeled ones.
        members = {}
        for i, cells in key_cells.items():
            for cell in cells:
                members.setdefault(cell, set()).add(i)
        assert sorted(key for key, _ in flat) == list(range(n))
        for key, flat_cell in flat:
            cell = (flat_cell // width, flat_cell % width)
            assert members[cell] == {key}
            for other in key_cells[key]:
                members[other].discard(key)

    @settings(max_examples=60, deadline=None)
    @given(_instances)
    def test_static_build_arrays_satisfies_every_equation(self, instance):
        n, width, raw = instance
        cols = _to_cols(n, width, raw)
        table = ValueTable(width, 8, 3)
        assistant = AssistantTable(width, 3)
        keys = list(range(100, 100 + n))
        values = [(key * 31) % 256 for key in keys]
        if peel_order_flat(cols, width) is None:
            with pytest.raises(UpdateFailure):
                static_build_arrays(table, assistant, keys, values, cols)
            assert len(assistant) == 0
            return
        static_build_arrays(table, assistant, keys, values, cols)
        assistant.check_consistency()
        for i, (key, value) in enumerate(zip(keys, values)):
            cells = tuple((j, cols[j][i]) for j in range(3))
            assert table.xor_sum(cells) == value
            assert assistant.cells(key) == cells

    def test_two_core_stalls_in_both_engines(self):
        cols = [[0, 0], [1, 1], [2, 2]]
        key_cells = {0: ((0, 0), (1, 1), (2, 2)), 1: ((0, 0), (1, 1), (2, 2))}
        assert peel_order(key_cells) is None
        assert peel_order_flat(cols, 4) is None

    def test_empty_instance(self):
        assert peel_order_flat([[], [], []], 4) == []


# -- cost cache -------------------------------------------------------------


def _random_assistant(rng, width=12, n=40):
    assistant = AssistantTable(width, 3)
    for key in rng.sample(range(1, 10_000), n):
        cells = tuple((j, rng.randrange(width)) for j in range(3))
        assistant.add(key, rng.getrandbits(8), cells)
    return assistant


class TestCostCache:
    def test_cached_choices_match_uncached_across_mutations(self):
        rng = random.Random(42)
        assistant = _random_assistant(rng)
        cached = VisionStrategy(use_cache=True)
        uncached = VisionStrategy(use_cache=False)
        for step in range(400):
            live = [key for key, _ in assistant.pairs()]
            key = rng.choice(live)
            candidates = list(assistant.cells(key))
            efficiency = rng.choice([0.1, 0.3, 0.5, 0.9])
            assert cached.choose(candidates, key, assistant, efficiency) == \
                uncached.choose(candidates, key, assistant, efficiency)
            # Mutate so cached entries must be invalidated, not reused.
            action = rng.random()
            if action < 0.30:
                victim = rng.choice(live)
                assistant.remove(victim)
                assistant.add(
                    victim + 20_000, rng.getrandbits(8),
                    tuple((j, rng.randrange(12)) for j in range(3)),
                )
            elif action < 0.34:
                # Epoch invalidation: same assistant object, new contents.
                assistant.clear()
                for fresh in rng.sample(range(1, 10_000), 40):
                    assistant.add(
                        fresh, rng.getrandbits(8),
                        tuple((j, rng.randrange(12)) for j in range(3)),
                    )

    def test_generation_counters_track_touched_buckets(self):
        assistant = AssistantTable(8, 3)
        cells = ((0, 1), (1, 2), (2, 3))
        before = [assistant.generation(cell) for cell in cells]
        assistant.add(5, 9, cells)
        assert [assistant.generation(cell) for cell in cells] == \
            [gen + 1 for gen in before]
        assert assistant.generation((0, 0)) == 0
        assistant.remove(5)
        assert [assistant.generation(cell) for cell in cells] == \
            [gen + 2 for gen in before]
        epoch = assistant.generation_epoch
        assistant.clear()
        assert assistant.generation_epoch == epoch + 1
        assert assistant.generation((0, 1)) == 0

    def test_cache_stats_surface_in_repr(self):
        keys, values = _workload(400, 8, seed=6)
        table = VisionEmbedder(500, 8, seed=3)
        table.insert_batch(keys, values)
        stats = table.stats
        assert stats.cost_cache_hits + stats.cost_cache_misses > 0
        assert 0.0 <= stats.cost_cache_hit_rate <= 1.0
        assert "cost_cache_hit_rate" in repr(table)
        assert "largest 400" in repr(table)
        off = VisionEmbedder(
            500, 8, seed=3, config=EmbedderConfig(cost_cache=False)
        )
        off.insert_batch(keys, values)
        assert off.stats.cost_cache_hits == 0
        assert off.stats.cost_cache_misses == 0

    def test_invalidation_counter_tracks_discarded_entries(self):
        # Drive the table deep enough that repair walks revisit buckets
        # whose generations moved: those memo probes must be counted as
        # invalidations, and every invalidation is also a miss.
        keys, values = _workload(400, 8, seed=6)
        table = VisionEmbedder(440, 8, seed=3)
        table.insert_batch(keys, values)
        stats = table.stats
        assert stats.cost_cache_invalidations > 0
        assert stats.cost_cache_invalidations <= stats.cost_cache_misses
        # The metric is exported through the registry under its public name.
        registry_value = stats.registry.counter(
            "repro_cost_cache_invalidations_total",
            "GetCost memo entries discarded on a bucket-generation mismatch",
            "",
        ).value
        assert registry_value == stats.cost_cache_invalidations
        off = VisionEmbedder(
            440, 8, seed=3, config=EmbedderConfig(cost_cache=False)
        )
        off.insert_batch(keys, values)
        assert off.stats.cost_cache_invalidations == 0


# -- repair-walk mutation hazard -------------------------------------------


class _ScriptedRemover(UpdateStrategy):
    """Returns scripted cells; removes a victim key on its second call.

    Models a re-entrant delete landing while the victim is already queued
    on the repair walk's work stack.
    """

    def __init__(self, moves, victim, assistant):
        self._moves = list(moves)
        self._victim = victim
        self._assistant = assistant
        self.calls = 0

    def choose(self, candidates, from_key, assistant, space_efficiency):
        self.calls += 1
        if self.calls == 2 and self._victim in self._assistant:
            self._assistant.remove(self._victim)
        if self._moves:
            move = self._moves.pop(0)
            if move in candidates:
                return move
        return candidates[0]


class TestRepairWalkMutation:
    def test_queued_key_removed_mid_walk_is_skipped(self):
        # k1, k2, k3 all share cell (1, 0). Repairing k1 modifies (1, 0)
        # and queues k2 and k3; while k3 is being decided, k2 (still
        # queued) is removed. The walk must skip it, not crash.
        table = ValueTable(4, 8, 3)
        assistant = AssistantTable(4, 3)
        assistant.add(1, 5, ((0, 0), (1, 0), (2, 0)))
        assistant.add(2, 0, ((0, 2), (1, 0), (2, 1)))
        assistant.add(3, 0, ((0, 3), (1, 0), (2, 2)))
        strategy = _ScriptedRemover(
            moves=[(1, 0), (0, 3)], victim=2, assistant=assistant,
        )
        plan = find_update_path(
            table, assistant, 1, strategy, 0.25, max_steps=50
        )
        assert strategy.calls >= 2
        assert 2 not in assistant
        plan.apply(table)
        for key in (1, 3):
            assert table.xor_sum(assistant.cells(key)) == assistant.value(key)

    def test_embedder_survives_concurrent_removals(self):
        # Integration flavour: every strategy decision removes some other
        # key from a candidate bucket mid-walk.
        table = VisionEmbedder(96, 8, seed=13)
        inner = table._strategy

        class Sabotage(UpdateStrategy):
            def choose(self, candidates, from_key, assistant,
                       space_efficiency):
                for key in tuple(assistant.keys_at(candidates[0])):
                    if key != from_key:
                        assistant.remove(key)
                        break
                return inner.choose(candidates, from_key, assistant,
                                    space_efficiency)

        keys, values = _workload(50, 8, seed=17)
        for key, value in zip(keys, values):
            table.insert(key, value)
        table._strategy = Sabotage()
        survivors = 0
        for key in keys[:20]:
            try:
                table.update(key, 77)
                survivors += 1
            except KeyError:
                # An earlier sabotaged walk already removed this key.
                continue
        assert survivors > 0
        table.check_invariants()
