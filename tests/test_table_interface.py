"""Cross-algorithm contract: every table honours ValueOnlyTable semantics."""

import random

import numpy as np
import pytest

from repro.core.errors import DuplicateKey, KeyNotFound
from repro.factory import TABLE_NAMES, make_table
from repro.table import ValueOnlyTable

ALL_NAMES = TABLE_NAMES + ("vision-mt", "vision-sharded")


def _pairs(n, value_bits, seed):
    rng = random.Random(seed)
    pairs = {}
    while len(pairs) < n:
        pairs[rng.getrandbits(48)] = rng.getrandbits(value_bits)
    return pairs


@pytest.fixture(params=ALL_NAMES)
def table_name(request):
    return request.param


def _fill(name, n=200, value_bits=4, seed=3):
    table = make_table(name, n, value_bits, seed=seed)
    pairs = _pairs(n, value_bits, seed)
    if name == "bloomier":
        table.insert_many(pairs.items())
    else:
        for key, value in pairs.items():
            table.insert(key, value)
    return table, pairs


class TestContract:
    def test_is_value_only_table(self, table_name):
        table = make_table(table_name, 10, 4)
        assert isinstance(table, ValueOnlyTable)
        assert table.value_bits == 4

    def test_lookup_guarantee(self, table_name):
        table, pairs = _fill(table_name)
        for key, value in pairs.items():
            assert table.lookup(key) == value

    def test_alien_key_never_raises(self, table_name):
        table, _ = _fill(table_name)
        for alien in ("ghost", b"ghost", 999_999_999_999_999):
            assert 0 <= table.lookup(alien) < 16

    def test_duplicate_insert_raises(self, table_name):
        table, pairs = _fill(table_name, n=50)
        with pytest.raises(DuplicateKey):
            table.insert(next(iter(pairs)), 0)

    def test_update_then_lookup(self, table_name):
        table, pairs = _fill(table_name)
        for key in list(pairs)[:20]:
            table.update(key, (pairs[key] + 7) % 16)
        for key in list(pairs)[:20]:
            assert table.lookup(key) == (pairs[key] + 7) % 16

    def test_update_missing_raises(self, table_name):
        table, _ = _fill(table_name, n=30)
        with pytest.raises(KeyNotFound):
            table.update("never", 1)

    def test_delete_then_len(self, table_name):
        table, pairs = _fill(table_name)
        for key in list(pairs)[:30]:
            table.delete(key)
        assert len(table) == len(pairs) - 30

    def test_delete_missing_raises(self, table_name):
        table, _ = _fill(table_name, n=30)
        with pytest.raises(KeyNotFound):
            table.delete("never")

    def test_put_upserts(self, table_name):
        table, _ = _fill(table_name, n=30)
        table.put("fresh", 3)
        assert table.lookup("fresh") == 3
        table.put("fresh", 9)
        assert table.lookup("fresh") == 9

    def test_contains(self, table_name):
        table, pairs = _fill(table_name, n=30)
        assert next(iter(pairs)) in table
        assert "nope" not in table

    def test_lookup_batch_matches_scalar(self, table_name):
        table, pairs = _fill(table_name)
        keys = np.fromiter(pairs, dtype=np.uint64)
        batch = table.lookup_batch(keys)
        assert batch.shape == keys.shape
        for key, value in zip(keys.tolist(), batch.tolist()):
            assert value == pairs[key]

    def test_value_out_of_range_raises(self, table_name):
        table = make_table(table_name, 20, 4)
        with pytest.raises(ValueError):
            table.insert(1, 16)

    def test_space_accounting_positive(self, table_name):
        table, _ = _fill(table_name)
        assert table.space_bits > 0
        assert table.space_cost > 1.0
        assert table.bits_per_key > 0

    def test_stats_exposed(self, table_name):
        table, _ = _fill(table_name)
        assert table.stats.updates >= 0
        assert table.failure_events >= 0

    def test_delete_then_reinsert_with_new_value(self, table_name):
        table, pairs = _fill(table_name)
        key = next(iter(pairs))
        table.delete(key)
        table.insert(key, 1)
        assert table.lookup(key) == 1


class TestSpaceOrdering:
    def test_paper_space_ordering_at_L4(self):
        """Fig 3 / Table I: bloomier < vision < color <= othello, at L=4."""
        costs = {}
        for name in ("vision", "othello", "color", "bloomier"):
            table, _ = _fill(name, n=1000, value_bits=4, seed=5)
            costs[name] = table.space_cost
        assert costs["bloomier"] < costs["vision"]
        assert costs["vision"] < costs["color"]
        assert costs["color"] <= costs["othello"]

    def test_vision_saves_half_the_redundancy(self):
        """Headline claim: 2.2L -> 1.7L cuts the redundancy beyond L by
        half (0.7L vs 1.2L of overhead)."""
        vision, _ = _fill("vision", n=1000, value_bits=1, seed=6)
        color, _ = _fill("color", n=1000, value_bits=1, seed=6)
        vision_overhead = vision.space_cost - 1.0
        color_overhead = color.space_cost - 1.0
        assert vision_overhead < 0.65 * color_overhead
