"""Cross-algorithm edge cases: extreme widths, key shapes, tiny tables."""

import random

import numpy as np
import pytest

from repro.core import EmbedderConfig, VisionEmbedder
from repro.factory import TABLE_NAMES, make_table


class TestExtremeValueWidths:
    @pytest.mark.parametrize("name", TABLE_NAMES)
    def test_64_bit_values(self, name):
        table = make_table(name, 64, 64, seed=2)
        rng = random.Random(1)
        pairs = {rng.getrandbits(48): rng.getrandbits(64) for _ in range(64)}
        if name == "bloomier":
            table.insert_many(pairs.items())
        else:
            for key, value in pairs.items():
                table.insert(key, value)
        for key, value in pairs.items():
            assert table.lookup(key) == value

    def test_64_bit_values_packed(self):
        table = VisionEmbedder(64, 64, seed=2, packed=True)
        rng = random.Random(2)
        pairs = {rng.getrandbits(48): rng.getrandbits(64) for _ in range(64)}
        for key, value in pairs.items():
            table.insert(key, value)
        table.check_invariants()

    @pytest.mark.parametrize("name", TABLE_NAMES)
    def test_1_bit_values(self, name):
        table = make_table(name, 100, 1, seed=3)
        pairs = {i * 7919 + 13: i % 2 for i in range(100)}
        if name == "bloomier":
            table.insert_many(pairs.items())
        else:
            for key, value in pairs.items():
                table.insert(key, value)
        assert all(table.lookup(k) == v for k, v in pairs.items())


class TestKeyShapes:
    def test_extreme_integer_keys(self):
        table = VisionEmbedder(16, 8, seed=1)
        keys = [0, 1, (1 << 64) - 1, 1 << 63, 1 << 100]
        for i, key in enumerate(keys):
            table.insert(key, i)
        for i, key in enumerate(keys):
            assert table.lookup(key) == i

    def test_unicode_and_empty_like_keys(self):
        table = VisionEmbedder(16, 4, seed=1)
        # Note: "" and b"" are deliberately the SAME key (canonicalised
        # through their byte encoding), so only one of them appears here.
        keys = ["", "日本語キー", "emoji🔥key", b"\x00\x00", " "]
        for i, key in enumerate(keys):
            table.insert(key, i % 16)
        for i, key in enumerate(keys):
            assert table.lookup(key) == i % 16

    def test_str_and_equivalent_bytes_are_the_same_key(self):
        # key_to_u64 canonicalises both through their byte encoding.
        from repro.core.errors import DuplicateKey

        table = VisionEmbedder(16, 4, seed=1)
        table.insert("abc", 3)
        with pytest.raises(DuplicateKey):
            table.insert(b"abc", 4)

    def test_int_and_its_le_bytes_differ(self):
        # An int key is NOT the same as its little-endian byte string: the
        # integer fast path uses the 8-byte encoding, bytes hash as given,
        # but a 3-byte bytes key pads differently. Both must coexist.
        table = VisionEmbedder(16, 4, seed=1)
        table.insert(97, 1)
        table.insert(b"a", 2)  # 1-byte string, not the 8-byte int encoding
        assert table.lookup(97) == 1
        assert table.lookup(b"a") == 2


class TestTinyTables:
    @pytest.mark.parametrize("name", ("vision", "othello", "color", "ludo"))
    def test_capacity_one(self, name):
        table = make_table(name, 1, 4, seed=5)
        table.insert("only", 7)
        assert table.lookup("only") == 7
        table.update("only", 3)
        assert table.lookup("only") == 3
        table.delete("only")
        assert len(table) == 0

    def test_empty_table_operations(self):
        table = VisionEmbedder(10, 4, seed=1)
        assert len(table) == 0
        assert table.space_efficiency == 0.0
        assert table.bits_per_key == float("inf")
        assert 0 <= table.lookup("anything") < 16
        table.reconstruct()  # reconstructing nothing is legal
        assert len(table) == 0


class TestRepeatedChurnOnSameKey:
    def test_thousand_updates_one_key(self):
        table = VisionEmbedder(100, 8, seed=6)
        rng = random.Random(6)
        for key in range(50):
            table.insert(key, 0)
        expect = {key: 0 for key in range(50)}
        for _ in range(1000):
            key = rng.randrange(50)
            value = rng.getrandbits(8)
            table.update(key, value)
            expect[key] = value
        table.check_invariants()
        assert all(table.lookup(k) == v for k, v in expect.items())

    def test_insert_delete_cycle_does_not_leak(self):
        table = VisionEmbedder(64, 4, seed=7)
        for round_number in range(200):
            table.insert("cycling", round_number % 16)
            assert table.lookup("cycling") == round_number % 16
            table.delete("cycling")
        assert len(table) == 0
        table.check_invariants()


class TestBatchEdges:
    def test_batch_of_one(self):
        table = VisionEmbedder(10, 8, seed=8)
        table.insert(5, 200)
        out = table.lookup_batch(np.array([5], dtype=np.uint64))
        assert out.tolist() == [200]

    def test_batch_with_repeated_keys(self):
        table = VisionEmbedder(10, 8, seed=8)
        table.insert(5, 200)
        out = table.lookup_batch(np.array([5, 5, 5], dtype=np.uint64))
        assert out.tolist() == [200, 200, 200]


class TestConfigEdges:
    def test_single_search_attempt(self):
        config = EmbedderConfig(max_search_attempts=1,
                                reconstruct_efficiency_limit=1.0)
        table = VisionEmbedder(200, 4, config=config, seed=9)
        rng = random.Random(9)
        for _ in range(200):
            table.put(rng.getrandbits(40), rng.getrandbits(4))
        table.check_invariants()

    def test_num_arrays_two(self):
        # The degenerate two-array geometry (an Othello-like vision table)
        # still works — it just needs two-hash-scale space.
        table = VisionEmbedder(100, 4, seed=10, num_arrays=2,
                               config=EmbedderConfig(space_factor=3.0))
        rng = random.Random(10)
        pairs = {rng.getrandbits(40): rng.getrandbits(4) for _ in range(100)}
        for key, value in pairs.items():
            table.insert(key, value)
        assert all(table.lookup(k) == v for k, v in pairs.items())
