"""YCSB workload suite: specs, traces, execution, driver."""

import numpy as np
import pytest

from repro.bench.workloads import fill_table, make_pairs
from repro.bench.ycsb import (
    WORKLOADS,
    WorkloadSpec,
    generate_operations,
    run_workload,
)
from repro.factory import make_table


class TestSpecs:
    def test_core_workloads_present(self):
        assert set(WORKLOADS) == {"A", "B", "C", "D", "F"}

    def test_fraction_validation(self):
        with pytest.raises(ValueError):
            WorkloadSpec("X", read_fraction=0.5, update_fraction=0.1,
                         insert_fraction=0.0)

    def test_d_uses_latest_distribution(self):
        assert WORKLOADS["D"].distribution == "latest"


class TestTraceGeneration:
    def _keys(self, n=500, seed=1):
        keys, _values = make_pairs(n, 8, seed)
        return keys

    def test_mix_matches_spec(self):
        keys = self._keys()
        ops = generate_operations(WORKLOADS["B"], keys, 10_000, seed=2)
        reads = sum(1 for op, _, _ in ops if op == "read")
        updates = sum(1 for op, _, _ in ops if op == "update")
        assert reads / len(ops) == pytest.approx(0.95, abs=0.02)
        assert updates / len(ops) == pytest.approx(0.05, abs=0.02)

    def test_c_is_read_only(self):
        keys = self._keys()
        ops = generate_operations(WORKLOADS["C"], keys, 2000, seed=3)
        assert all(op == "read" for op, _, _ in ops)

    def test_inserts_use_fresh_keys(self):
        keys = self._keys()
        ops = generate_operations(WORKLOADS["D"], keys, 5000, seed=4)
        existing = set(keys.tolist())
        inserted = [key for op, key, _ in ops if op == "insert"]
        assert inserted
        assert not (set(inserted) & existing)
        assert len(set(inserted)) == len(inserted)  # no duplicate inserts

    def test_zipfian_skew(self):
        keys = self._keys(n=1000)
        ops = generate_operations(WORKLOADS["C"], keys, 20_000, seed=5)
        targets = [key for _, key, _ in ops]
        _unique, counts = np.unique(targets, return_counts=True)
        top_share = np.sort(counts)[::-1][:10].sum() / len(targets)
        assert top_share > 0.15

    def test_latest_skews_to_recent(self):
        keys = self._keys(n=1000)
        ops = generate_operations(WORKLOADS["D"], keys, 20_000, seed=6)
        recent = set(keys[-100:].tolist())
        reads = [key for op, key, _ in ops if op == "read"]
        recent_share = sum(1 for key in reads if key in recent) / len(reads)
        assert recent_share > 0.3  # 10% of keys draw >30% of traffic

    def test_rmw_workload(self):
        keys = self._keys()
        ops = generate_operations(WORKLOADS["F"], keys, 2000, seed=7)
        kinds = {op for op, _, _ in ops}
        assert kinds <= {"read", "rmw"}
        assert "rmw" in kinds

    def test_unknown_distribution(self):
        spec = WorkloadSpec("Z", read_fraction=1.0, update_fraction=0.0,
                            insert_fraction=0.0, distribution="uniformish")
        with pytest.raises(ValueError):
            generate_operations(spec, self._keys(), 10, seed=1)


class TestExecution:
    @pytest.mark.parametrize("name", ["vision", "othello", "ludo"])
    def test_all_workloads_run_clean(self, name):
        keys, values = make_pairs(400, 8, 9)
        for workload_name, spec in WORKLOADS.items():
            table = make_table(name, 1000, 8, seed=3)
            fill_table(table, keys, values)
            ops = generate_operations(spec, keys, 1500, seed=11)
            result = run_workload(table, ops, workload_name)
            assert result.operations == 1500
            assert result.reads + result.writes >= 1500
            assert result.mops > 0

    def test_rmw_writes_depend_on_reads(self):
        keys, values = make_pairs(200, 8, 10)
        table = make_table("vision", 400, 8, seed=5)
        fill_table(table, keys, values)
        ops = generate_operations(WORKLOADS["F"], keys, 500, seed=12)
        result = run_workload(table, ops, "F")
        table.check_invariants()
        assert result.reads == 500  # every op reads
        assert result.writes == sum(1 for op, _, _ in ops if op == "rmw")


class TestDriver:
    def test_ycsb_experiment(self):
        from repro.bench.experiments import run_experiment

        result = run_experiment("ycsb", scale=0.1)
        workloads = set(result.column("workload"))
        assert workloads == {"A", "B", "C", "D", "F"}
        assert all(m > 0 for m in result.column("Mops"))
