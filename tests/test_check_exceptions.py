"""R80x — interprocedural exception contracts, error-table exhaustiveness,
and atomic-rollback discipline (repro.check.rules_exceptions)."""

import textwrap

from repro.check import check_source, check_sources


def run(source, rel="repro/core/embedder.py"):
    return check_source(textwrap.dedent(source), rel)


def rules_of(violations):
    return [v.rule for v in violations]


class TestR801Contracts:
    def test_undeclared_escape_flagged(self):
        found = run(
            """
            def lookup(table, key):
                if key < 0:
                    raise ValueError("negative key")
                return table.get(key)
            """
        )
        assert rules_of(found) == ["R801"]
        assert "ValueError" in found[0].message
        assert "raise ValueError in lookup" in found[0].message

    def test_declared_contract_clean(self):
        found = run(
            """
            # repro: raises(ValueError)
            def lookup(table, key):
                if key < 0:
                    raise ValueError("negative key")
                return table.get(key)
            """
        )
        assert found == []

    def test_declared_base_class_covers_subclass(self):
        found = run(
            """
            # repro: raises(LookupError)
            def lookup(table, key):
                if key not in table:
                    raise KeyError(key)
                return table[key]
            """
        )
        assert found == []

    def test_stacked_raises_pragmas_union(self):
        found = run(
            """
            # repro: raises(ValueError)
            # repro: raises(KeyError)
            def lookup(table, key):
                if key < 0:
                    raise ValueError("negative key")
                if key not in table:
                    raise KeyError(key)
                return table[key]
            """
        )
        assert found == []

    def test_interprocedural_escape_carries_witness_chain(self):
        found = run(
            """
            def _validate(key):
                if key < 0:
                    raise ValueError("negative key")

            def lookup(table, key):
                _validate(key)
                return table.get(key)
            """
        )
        assert rules_of(found) == ["R801"]
        assert "_validate() at" in found[0].message
        assert "raise ValueError in _validate" in found[0].message

    def test_caught_exception_does_not_escape(self):
        found = run(
            """
            def lookup(table, key):
                try:
                    return table[key]
                except KeyError:
                    return None

            def __getitem_helper(table, key):
                raise KeyError(key)
            """
        )
        assert found == []

    def test_noqa_on_raise_site_sanctions_pathway(self):
        found = run(
            """
            def lookup(table, key):
                if key < 0:
                    raise ValueError("negative")  # repro: noqa[R801] -- documented precondition, not part of the contract
                return table.get(key)
            """
        )
        assert found == []

    def test_private_function_not_checked(self):
        found = run(
            """
            def _probe(table, key):
                raise ValueError("internal")
            """
        )
        assert found == []

    def test_non_contract_module_not_checked(self):
        found = run(
            """
            def lookup(table, key):
                raise ValueError("anywhere")
            """,
            rel="repro/analysis/tool.py",
        )
        assert found == []

    def test_empty_raises_pragma_is_r002(self):
        found = run(
            """
            # repro: raises()
            def lookup(table, key):
                return table.get(key)
            """
        )
        assert rules_of(found) == ["R002"]


class TestR802ErrorTable:
    PROTOCOL = "repro/serve/protocol.py"

    def test_unmapped_wire_escape_flagged(self):
        found = check_sources({
            self.PROTOCOL: (
                "_ERROR_TABLE = (\n"
                "    (ValueError, 400, \"bad_request\"),\n"
                ")\n"
            ),
            "repro/core/tables.py": (
                "class VisionEmbedder:\n"
                "    def insert(self, key, value):\n"
                "        raise SpaceExhausted(\"full\")\n"
            ),
        })
        assert rules_of(found) == ["R802"]
        assert "SpaceExhausted" in found[0].message
        assert found[0].path == self.PROTOCOL

    def test_mapped_wire_escape_clean(self):
        found = check_sources({
            self.PROTOCOL: (
                "_ERROR_TABLE = (\n"
                "    (SpaceExhausted, 507, \"space_exhausted\"),\n"
                "    (ValueError, 400, \"bad_request\"),\n"
                ")\n"
            ),
            "repro/core/tables.py": (
                "class VisionEmbedder:\n"
                "    def insert(self, key, value):\n"
                "        raise SpaceExhausted(\"full\")\n"
            ),
        })
        assert found == []

    def test_serve_error_subclasses_implicitly_mapped(self):
        # ServeError carries its own status/code; subclasses need no
        # table entry (error_response handles them before the table).
        found = check_sources({
            self.PROTOCOL: (
                "_ERROR_TABLE = (\n"
                "    (ValueError, 400, \"bad_request\"),\n"
                ")\n"
                "class ServeError(Exception):\n"
                "    pass\n"
                "class Overloaded(ServeError):\n"
                "    pass\n"
            ),
            "repro/core/tables.py": (
                "class VisionEmbedder:\n"
                "    def insert(self, key, value):\n"
                "        raise Overloaded(\"queue full\")\n"
            ),
        })
        assert found == []


class TestR803AtomicRollback:
    def test_seeded_bug_rollback_deleted_flagged(self):
        # The canonical seeded bug: strip the rollback from an atomic
        # function — exactly R803 must fire, nothing else.
        found = run(
            """
            # repro: atomic
            def apply(table, value):
                table.xor((0, 1), value)
                raise ValueError("update failed")
            """,
            rel="repro/core/update.py",
        )
        assert rules_of(found) == ["R803"]
        assert "apply" in found[0].message
        assert "ValueError" in found[0].message

    def test_rollback_on_exception_edge_clean(self):
        found = run(
            """
            # repro: atomic
            def apply(table, value):
                try:
                    table.xor((0, 1), value)
                except BaseException:
                    table.xor((0, 1), value)
                    raise
                raise ValueError("update failed")
            """,
            rel="repro/core/update.py",
        )
        assert found == []

    def test_no_escape_is_trivially_atomic(self):
        found = run(
            """
            # repro: atomic
            def apply(table, value):
                table.xor((0, 1), value)
            """,
            rel="repro/core/update.py",
        )
        assert found == []

    def test_non_atomic_function_not_checked(self):
        found = run(
            """
            def apply(table, value):
                table.xor((0, 1), value)
                raise ValueError("update failed")
            """,
            rel="repro/core/update.py",
        )
        assert found == []
