"""Multi-process serving: WorkerPool lifecycle, routing, and metrics.

A real pool of forked worker processes over a promoted table, driven by
the synchronous client: CRUD correctness through the worker→owner write
path, cross-request visibility of writes via the shared planes, pool-wide
metrics aggregation on ``/stats`` and ``/metrics``, both socket-sharing
modes, and a clean demote on ``stop()`` (consistent table, no leaked
``/dev/shm`` segments, port released).

Workers are whole processes, so the pool fixtures here are deliberately
few and reused across assertions — each ``start()`` forks, handshakes,
and promotes planes.
"""

import glob

import pytest

from repro.core.sharded import ShardedEmbedder
from repro.core.shared_planes import SharedPlanes
from repro.obs import (
    MetricsRegistry,
    json_snapshot,
    parse_prometheus_text,
    registry_from_snapshot,
)
from repro.serve import ServeClient, ServeConfig, WorkerPool


def _segments():
    return set(glob.glob("/dev/shm/repro-planes-*"))


def _make_table(keys=600, shards=4):
    table = ShardedEmbedder(
        capacity=4000, value_bits=16, num_shards=shards
    )
    table.insert_many((k, (k * 13 + 7) % 65536) for k in range(keys))
    return table


class TestWorkerPool:
    def test_crud_and_metrics_through_two_workers(self):
        table = _make_table()
        expected = {k: table.lookup(k) for k in range(0, 600, 29)}
        pool = WorkerPool(table, workers=2, config=ServeConfig(port=0))
        pool.start()
        try:
            assert pool.socket_mode in ("reuseport", "inherited")
            with ServeClient(port=pool.port) as client:
                # Reads come straight from the shared planes.
                keys = sorted(expected)
                assert client.lookup(keys) == [expected[k] for k in keys]

                # Writes route worker → owner → shared segments, and are
                # visible to subsequent lookups (served by any worker).
                client.insert([(70_001, 1234), (70_002, 4321)])
                assert client.lookup([70_001, 70_002]) == [1234, 4321]
                client.update([(70_001, 9999)])
                assert client.lookup([70_001]) == [9999]
                client.delete([70_002])
                # The owner's KeyNotFound travels back over the RPC pipe
                # and out through the worker's HTTP error mapping.
                with pytest.raises(Exception):
                    client.delete([70_002])

                # /stats folds every worker's registry plus the owner
                # table's counters into one pool-wide view.
                counters = client.stats()["counters"]
                assert counters["repro_serve_requests_total"]["value"] >= 5
                assert "repro_planes_generation_retries_total" in counters
                assert counters["repro_updates_total"]["value"] >= 1

                # /metrics renders the same merged registry.
                parsed = parse_prometheus_text(client.metrics_text())
                assert "repro_serve_requests_total" in parsed
        finally:
            pool.stop()

        # Demote restored private planes: writes survive, nothing leaks.
        assert not isinstance(next(iter(table.shards))._table, SharedPlanes)
        assert table.lookup(70_001) == 9999
        assert 70_002 not in table
        table.check_invariants()
        assert not _segments()
        assert pool.socket_mode == "unstarted"

    def test_inherited_socket_mode(self):
        table = _make_table(keys=200, shards=2)
        pool = WorkerPool(
            table, workers=2, config=ServeConfig(port=0),
            force_inherited_socket=True,
        )
        with pool:
            assert pool.socket_mode == "inherited"
            with ServeClient(port=pool.port) as client:
                assert client.lookup([5]) == [table.lookup(5)]
                client.insert([(90_001, 55)])
                assert client.lookup([90_001]) == [55]
        assert table.lookup(90_001) == 55
        table.check_invariants()
        assert not _segments()

    def test_single_worker_pool(self):
        table = _make_table(keys=100, shards=1)
        with WorkerPool(table, workers=1, config=ServeConfig(port=0)) as pool:
            with ServeClient(port=pool.port) as client:
                assert client.lookup([3]) == [table.lookup(3)]
        assert not _segments()

    def test_stop_is_idempotent_and_restartable(self):
        table = _make_table(keys=100, shards=2)
        pool = WorkerPool(table, workers=2, config=ServeConfig(port=0))
        pool.start()
        first_port = pool.port
        pool.stop()
        pool.stop()  # no-op
        assert not _segments()
        pool.start()  # a stopped pool can be started again
        try:
            assert pool.port is not None
            with ServeClient(port=pool.port) as client:
                assert client.lookup([7]) == [table.lookup(7)]
        finally:
            pool.stop()
        assert first_port is not None
        assert not _segments()

    def test_start_twice_raises(self):
        table = _make_table(keys=50, shards=1)
        pool = WorkerPool(table, workers=1, config=ServeConfig(port=0))
        pool.start()
        try:
            with pytest.raises(RuntimeError, match="already started"):
                pool.start()
        finally:
            pool.stop()

    def test_rejects_bad_worker_count(self):
        table = _make_table(keys=10, shards=1)
        with pytest.raises(ValueError):
            WorkerPool(table, workers=0)


class TestSnapshotRoundTrip:
    """The IPC leg of the metrics merge: snapshot → revive → aggregate."""

    def test_registry_from_snapshot_round_trips(self):
        registry = MetricsRegistry()
        counter = registry.counter("rt_ops_total", "ops", "")
        counter.inc(7)
        gauge = registry.gauge("rt_depth", "depth", "")
        gauge.set(3.5)
        histogram = registry.histogram(
            "rt_latency_seconds", (0.1, 1.0), "latency"
        )
        histogram.observe(0.05)
        histogram.observe(0.5)
        histogram.observe(5.0)

        revived = registry_from_snapshot(json_snapshot(registry))
        assert json_snapshot(revived) == json_snapshot(registry)

    def test_rejects_foreign_snapshot(self):
        with pytest.raises(ValueError):
            registry_from_snapshot({"format": "something-else", "metrics": []})
