"""Shared-memory plane storage: parity, seqlock, and segment hygiene.

Four tiers:

- **Parity** — promoting a table into shared segments must be invisible:
  bit-equal lookups before and after ``share_table``/``unshare_table``,
  on plain and bit-packed planes, scalar and sharded tables, with writes
  landing in the shared words in between.
- **Seqlock** — the generation protocol itself: odd while a transaction
  is open, reader retries when the generation moves mid-read, the retry
  budget surfaces as :class:`SharedPlanesError`, reader-role handles
  cannot mutate.
- **Torn-read stress** — a real reader process hammers lookups while the
  owner rewrites a key's cells; every observed value must be one of the
  two legal states, never a mixture (the acceptance criterion of the
  scale-out issue).
- **Hygiene** — ``/dev/shm`` is left clean by the normal lifecycle, by a
  SIGKILL'd owner (its ``resource_tracker`` unlinks), and a dying reader
  never unlinks a segment it does not own.
"""

import glob
import multiprocessing
import os
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.core.embedder import VisionEmbedder
from repro.core.errors import SharedPlanesError
from repro.core.sharded import ShardedEmbedder
from repro.core.shared_planes import (
    SharedPlanes,
    SharedPlanesSpec,
    share_table,
    unshare_table,
)
from repro.hashing import HashFamily, key_to_u64


def _segments():
    return set(glob.glob("/dev/shm/repro-planes-*"))


def _probe_lookups(table, keys):
    return {key: table.lookup(key) for key in keys}


# ---------------------------------------------------------------------------
# Parity: promotion is invisible to the table's own surface
# ---------------------------------------------------------------------------


class TestParity:
    @pytest.mark.parametrize("packed", [False, True])
    def test_scalar_promote_is_bit_equal(self, packed):
        table = VisionEmbedder(600, 16, seed=3, packed=packed)
        table.insert_many((k, (k * 31) % 65536) for k in range(400))
        keys = list(range(0, 400, 7))
        before = _probe_lookups(table, keys)
        dense_before = table._table.to_dense().copy()

        spec = share_table(table)
        try:
            assert isinstance(table._table, SharedPlanes)
            assert table._table.packed is packed
            assert _probe_lookups(table, keys) == before
            np.testing.assert_array_equal(
                table._table.to_dense(), dense_before
            )
        finally:
            unshare_table(table)
        assert not isinstance(table._table, SharedPlanes)
        assert _probe_lookups(table, keys) == before
        assert len(spec.shards) == 1
        table.check_invariants()
        assert not _segments()

    def test_sharded_promote_writes_and_demote(self):
        table = ShardedEmbedder(capacity=3000, value_bits=16, num_shards=4)
        table.insert_many((k, (k * 7 + 1) % 65536) for k in range(1000))
        keys = list(range(0, 1000, 13))
        before = _probe_lookups(table, keys)

        spec = share_table(table)
        try:
            assert spec.num_shards == 4
            assert _probe_lookups(table, keys) == before
            # Writes land in the shared words and read back bit-equal.
            table.insert(50_001, 4242)
            table.update(0, 777)
            table.delete(1)
            assert table.lookup(50_001) == 4242
            assert table.lookup(0) == 777
        finally:
            unshare_table(table)
        assert table.lookup(50_001) == 4242
        assert table.lookup(0) == 777
        assert 1 not in table
        table.check_invariants()
        assert not _segments()

    def test_reader_attach_sees_owner_bits(self):
        table = VisionEmbedder(400, 16, seed=9)
        table.insert_many((k, k % 65536) for k in range(250))
        spec = share_table(table)
        try:
            reader = SharedPlanes.attach(spec.shards[0])
            try:
                assert not reader.writable
                np.testing.assert_array_equal(
                    reader.to_dense(), table._table.to_dense()
                )
                assert reader.seed == table.seed
                assert reader.length == len(table)
            finally:
                reader.close()
        finally:
            unshare_table(table)
        assert not _segments()

    def test_attach_rejects_geometry_mismatch(self):
        planes = SharedPlanes.create(64, 16, 3)
        try:
            wrong = SharedPlanesSpec(
                name=planes.spec.name, width=32, value_bits=16,
                num_arrays=3, packed=False,
            )
            with pytest.raises(SharedPlanesError, match="geometry"):
                SharedPlanes.attach(wrong)
        finally:
            planes.destroy()

    def test_attach_rejects_foreign_segment(self):
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(create=True, size=1 << 14)
        try:
            spec = SharedPlanesSpec(
                name=shm.name, width=8, value_bits=8, num_arrays=3,
                packed=False,
            )
            with pytest.raises(SharedPlanesError, match="not a repro"):
                SharedPlanes.attach(spec)
        finally:
            shm.close()
            shm.unlink()


# ---------------------------------------------------------------------------
# Seqlock protocol
# ---------------------------------------------------------------------------


class TestSeqlock:
    def test_generation_odd_inside_transaction(self):
        planes = SharedPlanes.create(32, 8, 3)
        try:
            assert planes.generation % 2 == 0
            with planes.transaction():
                assert planes.generation % 2 == 1
                with planes.transaction():  # reentrant: still one txn
                    assert planes.generation % 2 == 1
                assert planes.generation % 2 == 1
            assert planes.generation % 2 == 0
        finally:
            planes.destroy()

    def test_reader_cannot_mutate(self):
        planes = SharedPlanes.create(32, 8, 3)
        try:
            reader = SharedPlanes.attach(planes.spec)
            try:
                with pytest.raises(SharedPlanesError, match="reader-role"):
                    reader.set((0, 0), 1)
                with pytest.raises(SharedPlanesError, match="reader-role"):
                    reader.begin_update()
            finally:
                reader.close()
        finally:
            planes.destroy()

    def test_read_retries_when_generation_moves(self):
        planes = SharedPlanes.create(32, 8, 3)
        try:
            reader = SharedPlanes.attach(planes.spec)
            try:
                moved = []

                def compute():
                    if not moved:
                        moved.append(True)
                        with planes.transaction():
                            planes._inner.set((0, 0), 0x55)
                    return reader._inner.get((0, 0))

                assert reader.read_stable(compute) == 0x55
                assert reader.retries == 1
            finally:
                reader.close()
        finally:
            planes.destroy()

    def test_retry_budget_exhaustion_raises(self):
        planes = SharedPlanes.create(32, 8, 3)
        try:
            reader = SharedPlanes.attach(planes.spec)
            try:
                def always_moving():
                    with planes.transaction():
                        pass  # bump generation on every attempt
                    return 0

                with pytest.raises(SharedPlanesError, match="stabilise"):
                    reader.read_stable(always_moving)
            finally:
                reader.close()
        finally:
            planes.destroy()

    def test_end_update_without_begin_raises(self):
        planes = SharedPlanes.create(32, 8, 3)
        try:
            with pytest.raises(SharedPlanesError, match="end_update"):
                planes.end_update()
        finally:
            planes.destroy()


# ---------------------------------------------------------------------------
# Torn-read stress: a real reader process vs a live writer
# ---------------------------------------------------------------------------


def _stress_reader(spec, seed, handle, duration_s, conn):
    """Hammer one key's 3-cell XOR; report every distinct value seen."""
    planes = SharedPlanes.attach(spec)
    try:
        family = HashFamily(seed, [planes.width] * planes.num_arrays)
        cells = tuple(enumerate(family.indices(handle)))
        seen = set()
        reads = 0
        deadline = time.monotonic() + duration_s
        while time.monotonic() < deadline:
            seen.add(planes.xor_sum(cells))
            reads += 1
        conn.send((sorted(seen), reads, planes.retries))
    finally:
        planes.close()
        conn.close()


class TestTornReads:
    def test_reader_only_sees_pre_or_post_values(self):
        table = VisionEmbedder(300, 16, seed=11)
        table.insert_many((k, 1111) for k in range(200))
        key = 42
        values = (1111, 2222)
        spec = share_table(table)
        try:
            ctx = multiprocessing.get_context("fork")
            parent, child = ctx.Pipe()
            reader = ctx.Process(
                target=_stress_reader,
                args=(
                    spec.shards[0], table.seed, key_to_u64(key), 1.5, child,
                ),
                daemon=True,
            )
            reader.start()
            child.close()
            deadline = time.monotonic() + 1.5
            flips = 0
            while time.monotonic() < deadline:
                table.update(key, values[(flips + 1) % 2])
                flips += 1
            assert parent.poll(10.0), "stress reader sent nothing"
            seen, reads, retries = parent.recv()
            reader.join(timeout=10.0)
            parent.close()
            assert reads > 0 and flips > 0
            # The acceptance criterion: only the two legal states, ever.
            assert set(seen) <= set(values), (
                f"torn read: saw {seen} across {reads} reads / {flips} flips"
            )
        finally:
            unshare_table(table)
        table.check_invariants()
        assert not _segments()


# ---------------------------------------------------------------------------
# Segment hygiene: resource_tracker discipline
# ---------------------------------------------------------------------------


_KILLED_OWNER_SCRIPT = """
import os, signal, sys
from repro.core.shared_planes import SharedPlanes

planes = SharedPlanes.create(64, 16, 3)
print(planes.spec.name, flush=True)
os.kill(os.getpid(), signal.SIGKILL)
"""

_DYING_READER_SCRIPT = """
import sys
from repro.core.shared_planes import SharedPlanes, SharedPlanesSpec

spec = SharedPlanesSpec(
    name=sys.argv[1], width=64, value_bits=16, num_arrays=3, packed=False
)
planes = SharedPlanes.attach(spec)
assert planes.generation % 2 == 0
sys.exit(0)  # exit without close(): must NOT unlink the owner's segment
"""


class TestSegmentHygiene:
    def test_sigkilled_owner_segment_is_unlinked(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in ("src", env.get("PYTHONPATH", "")) if p
        )
        proc = subprocess.run(
            [sys.executable, "-c", _KILLED_OWNER_SCRIPT],
            capture_output=True, text=True, env=env, timeout=60,
        )
        assert proc.returncode == -signal.SIGKILL
        name = proc.stdout.strip()
        assert name.startswith("repro-planes-")
        # The owner's resource_tracker outlives the SIGKILL and unlinks
        # the registered segment once it notices the owner died.
        deadline = time.monotonic() + 10.0
        path = os.path.join("/dev/shm", name)
        while os.path.exists(path) and time.monotonic() < deadline:
            time.sleep(0.05)
        assert not os.path.exists(path), f"{name} leaked after owner SIGKILL"

    def test_dying_reader_does_not_unlink(self):
        planes = SharedPlanes.create(64, 16, 3)
        try:
            env = dict(os.environ)
            env["PYTHONPATH"] = os.pathsep.join(
                p for p in ("src", env.get("PYTHONPATH", "")) if p
            )
            proc = subprocess.run(
                [sys.executable, "-c", _DYING_READER_SCRIPT,
                 planes.spec.name],
                capture_output=True, text=True, env=env, timeout=60,
            )
            assert proc.returncode == 0, proc.stderr
            # Give any (buggy) tracker-driven unlink a moment to land.
            time.sleep(0.3)
            path = os.path.join("/dev/shm", planes.spec.name)
            assert os.path.exists(path), "reader exit unlinked the segment"
            # Still attachable and readable.
            again = SharedPlanes.attach(planes.spec)
            again.close()
        finally:
            planes.destroy()
        assert not _segments()

    def test_close_demotes_to_private_snapshot(self):
        planes = SharedPlanes.create(16, 8, 3)
        planes.set((0, 5), 0x2A)
        snapshot = planes.to_dense().copy()
        planes.close()
        planes.close()  # idempotent
        np.testing.assert_array_equal(planes.to_dense(), snapshot)
        planes.unlink()

    def test_only_creator_may_unlink(self):
        planes = SharedPlanes.create(16, 8, 3)
        try:
            reader = SharedPlanes.attach(planes.spec)
            try:
                with pytest.raises(SharedPlanesError, match="creating owner"):
                    reader.unlink()
            finally:
                reader.close()
        finally:
            planes.destroy()

    def test_share_failure_destroys_partial_segments(self):
        table = ShardedEmbedder(capacity=800, value_bits=16, num_shards=4)
        table.insert_many((k, k % 65536) for k in range(200))
        baseline = _segments()
        shards = list(table.shards)
        original = shards[2]._table

        class Boom(Exception):
            pass

        class ExplodingTable:
            """Quacks just enough to blow up mid-promotion."""

            width = original.width
            value_bits = original.value_bits
            num_arrays = original.num_arrays

            def to_dense(self):
                raise Boom("mid-promotion fault")

        shards[2]._table = ExplodingTable()
        try:
            with pytest.raises(Boom):
                share_table(table)
        finally:
            shards[2]._table = original
        assert _segments() == baseline
        # The untouched shards were never swapped.
        assert not any(
            isinstance(s._table, SharedPlanes) for s in table.shards
        )
