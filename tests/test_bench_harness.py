"""Benchmark harness utilities: measurements and percentiles."""

import time

import pytest

from repro.bench.harness import (
    Measurement,
    Percentiles,
    latency_percentiles,
    measure_each,
    measure_ops,
)


class TestMeasurement:
    def test_mops_and_kops(self):
        m = Measurement(ops=2_000_000, seconds=1.0)
        assert m.mops == pytest.approx(2.0)
        assert m.kops == pytest.approx(2000.0)

    def test_zero_seconds(self):
        assert Measurement(ops=1, seconds=0.0).mops == float("inf")

    def test_measure_ops_times_call(self):
        m = measure_ops(lambda: time.sleep(0.02), ops=10)
        assert m.ops == 10
        assert m.seconds >= 0.02


class TestPercentiles:
    def test_from_uniform_samples(self):
        samples = list(range(1, 1001))  # 1..1000 µs
        pct = Percentiles.from_samples(samples)
        assert pct.p50 == 500
        assert pct.p90 == 900
        assert pct.p99 == 990
        assert pct.p999 == 999

    def test_single_sample(self):
        pct = Percentiles.from_samples([42.0])
        assert pct.p50 == pct.p999 == 42.0

    def test_unsorted_input(self):
        pct = Percentiles.from_samples([3.0, 1.0, 2.0])
        assert pct.p50 == 2.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Percentiles.from_samples([])


class TestMeasureEach:
    def test_returns_one_sample_per_op(self):
        samples = measure_each([lambda: None] * 25)
        assert len(samples) == 25
        assert all(s >= 0 for s in samples)

    def test_latency_percentiles_end_to_end(self):
        pct = latency_percentiles([lambda: None] * 100)
        assert pct.p50 <= pct.p999
