"""Experiment drivers: every figure/table regenerates and has sane shape.

Drivers run at very small scale here (structure + robust shape checks
only); benchmarks/ runs them at reporting scale.
"""

import math

import pytest

from repro.bench.experiments import EXPERIMENTS, run_experiment
from repro.bench.reporting import ExperimentResult

TINY = 0.05


def _rows_by(result, **filters):
    out = []
    for row in result.rows:
        record = dict(zip(result.columns, row))
        if all(record.get(k) == v for k, v in filters.items()):
            out.append(record)
    return out


class TestRegistry:
    def test_all_paper_artifacts_covered(self):
        expected = {
            "table1", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
            "fig9", "fig10", "fig11", "fig12", "deletion", "fig13",
            "table3", "theory",
        }
        assert expected <= set(EXPERIMENTS)

    def test_unknown_experiment(self):
        with pytest.raises(ValueError):
            run_experiment("fig99")


class TestCheapDrivers:
    def test_table1(self):
        result = run_experiment("table1")
        assert isinstance(result, ExperimentResult)
        assert len(result.rows) == 3

    def test_theory(self):
        result = run_experiment("theory")
        computed = dict(zip(result.column("quantity"), result.column("computed")))
        assert computed["lambda' (E[X_min]=1)"] == pytest.approx(1.709, abs=0.01)
        assert computed["(m/n)' = 3/lambda'"] == pytest.approx(1.756, abs=0.01)

    def test_table3(self):
        result = run_experiment("table3", scale=TINY)
        totals = _rows_by(result, module="Total")[0]
        assert totals["CLB LUTs"] == 581
        assert totals["Block RAM"] == 385
        check = _rows_by(result, module="Pipeline check")[0]
        assert "correct" in str(check["CLB LUTs"])


class TestMeasuredDrivers:
    def test_fig4_vision_beats_two_hash(self):
        # n floors at 64 at tiny scale; use 0.5 so the largest series
        # (n=1024) is big enough for the O(1/n) vs O(1) gap to show.
        result = run_experiment("fig4", scale=0.5, trials=20)
        largest_n = max(r["n"] for r in _rows_by(result, algorithm="vision"))
        vision = _rows_by(result, algorithm="vision", n=largest_n)[0]
        othello = _rows_by(result, algorithm="othello", n=largest_n)[0]
        color = _rows_by(result, algorithm="color", n=largest_n)[0]
        two_hash_mean = (
            othello["failures/insertion"] + color["failures/insertion"]
        ) / 2
        # The paper's headline: vision fails far less often than two-hash.
        assert vision["failures/insertion"] < two_hash_mean

    def test_fig5_and_fig6_structure(self):
        for name in ("fig5", "fig6"):
            result = run_experiment(name, scale=TINY)
            mops = [r["Mops"] for r in _rows_by(result, algorithm="vision")]
            assert all(m > 0 for m in mops)
            bloomier = [r["Mops"] for r in _rows_by(result, algorithm="bloomier")]
            # Bloomier's O(n) insert is orders slower than everyone's O(1).
            assert max(bloomier) < min(mops)

    def test_fig7_structure(self):
        result = run_experiment("fig7", scale=TINY)
        for record in result.rows:
            _algo, _ops, p50, p90, p99, p999, latency_max = record
            assert p50 <= p90 <= p99 <= p999 <= latency_max

    def test_fig8_two_hash_degrades_with_L(self):
        result = run_experiment("fig8", scale=TINY)
        for name in ("othello", "color"):
            series = _rows_by(result, sweep="vs L", algorithm=name)
            series.sort(key=lambda r: r["L"])
            assert series[0]["L"] == 1 and series[-1]["L"] == 10
            # Bit-plane storage: L=10 must be clearly slower than L=1.
            assert series[-1]["Mops"] < 0.7 * series[0]["Mops"]

    def test_fig9_runs_all_datasets(self):
        result = run_experiment("fig9", scale=TINY)
        names = set(result.column("dataset"))
        assert {"MACTable", "SynMACTable", "MachineLearning",
                "SynMachineLearning", "DBLP", "SynDBLP"} == names
        # Failures must be rare (tiny workloads can hit the odd reseed).
        assert all(f <= 2 for f in result.column("failures"))

    def test_fig10_11_12_seed_stability(self):
        for name in ("fig10", "fig11", "fig12"):
            result = run_experiment(name, scale=TINY)
            assert len(result.rows) == 5
            assert "relative_spread" in result.parameters

    def test_deletion_positive_throughput(self):
        result = run_experiment("deletion", scale=TINY)
        assert all(r[-1] > 0 for r in result.rows)

    def test_fig13_runs_thread_sweep(self):
        result = run_experiment("fig13", scale=TINY)
        assert result.column("threads") == [1, 2, 4, 8]
        speedups = result.column("update speedup")
        assert all(s > 0 for s in speedups)


class TestSlowDrivers:
    def test_fig3_min_space_ordering(self):
        result = run_experiment("fig3", scale=TINY)
        rows = _rows_by(result, sweep="vs n")
        largest_n = max(r["n"] for r in rows)
        by_algo = {
            r["algorithm"]: r["space cost"]
            for r in rows
            if r["n"] == largest_n
        }
        assert not math.isnan(by_algo["vision"])
        # Vision must need less minimum space than both two-hash schemes.
        assert by_algo["vision"] < by_algo["othello"]
        assert by_algo["vision"] < by_algo["color"]

    def test_ablation_strategy_vision_fills_tighter(self):
        result = run_experiment("ablation-strategy", scale=TINY)
        vision_rows = _rows_by(result, strategy="vision")
        assert all(r["filled"] == "yes" for r in vision_rows)
        simple_at_17 = _rows_by(result, strategy="simple")[0]
        vision_at_17 = vision_rows[0]
        assert simple_at_17["failures"] >= vision_at_17["failures"]

    def test_ablation_depth_dynamic_fills(self):
        result = run_experiment("ablation-depth", scale=TINY)
        records = {r[0]: r for r in result.rows}
        assert records["dynamic"][1] == "yes"
        # Depth 1 must pay more repair steps than depth 3 at 1.7L.
        assert records["depth=1"][4] >= records["depth=3"][4]

    def test_ablation_ludo_vision_locator_smaller(self):
        result = run_experiment("ablation-ludo", scale=TINY)
        by_locator = {r[0]: r for r in result.rows}
        assert (by_locator["vision"][1] < by_locator["othello"][1])


class TestRendering:
    def test_every_driver_renders(self):
        # Only the genuinely cheap ones; rendering is the point here.
        for name in ("table1", "theory", "table3"):
            text = run_experiment(name, scale=TINY).render()
            assert name in text
