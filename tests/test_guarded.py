"""Bloom-filter guard: alien detection in front of a VO table."""

import random

import numpy as np
import pytest

from repro.apps.guarded import BloomFilter, GuardedTable


class TestBloomFilter:
    def test_no_false_negatives(self):
        bloom = BloomFilter(capacity=2000, false_positive_rate=0.01, seed=2)
        keys = random.Random(1).sample(range(1 << 40), 2000)
        for key in keys:
            bloom.add(key)
        assert all(bloom.might_contain(key) for key in keys)

    def test_false_positive_rate_near_target(self):
        bloom = BloomFilter(capacity=5000, false_positive_rate=0.01, seed=2)
        rng = random.Random(3)
        for key in rng.sample(range(1 << 40), 5000):
            bloom.add(key)
        aliens = [(1 << 50) + i for i in range(20_000)]
        fp = sum(1 for key in aliens if bloom.might_contain(key))
        assert fp / len(aliens) < 0.03  # target 1%, generous ceiling

    def test_batch_matches_scalar(self):
        bloom = BloomFilter(capacity=500, false_positive_rate=0.02, seed=5)
        rng = random.Random(4)
        for key in rng.sample(range(1 << 40), 500):
            bloom.add(key)
        probes = np.arange(2000, dtype=np.uint64)
        batch = bloom.might_contain_batch(probes)
        for key, hit in zip(probes.tolist(), batch.tolist()):
            assert hit == bloom.might_contain(key)

    def test_sizing_formula(self):
        bloom = BloomFilter(capacity=1000, false_positive_rate=0.01)
        assert bloom.num_bits / 1000 == pytest.approx(9.585, rel=0.01)
        assert bloom.num_hashes in (6, 7)

    def test_validation(self):
        with pytest.raises(ValueError):
            BloomFilter(capacity=0)
        with pytest.raises(ValueError):
            BloomFilter(capacity=10, false_positive_rate=1.5)


class TestGuardedTable:
    def _filled(self, n=1500, seed=7):
        table = GuardedTable(capacity=n, value_bits=8, seed=seed)
        rng = random.Random(seed)
        pairs = {}
        while len(pairs) < n:
            pairs[rng.getrandbits(40)] = rng.getrandbits(8)
        for key, value in pairs.items():
            table.insert(key, value)
        return table, pairs

    def test_members_answer_exactly(self):
        table, pairs = self._filled()
        for key, value in pairs.items():
            assert table.lookup(key) == value

    def test_aliens_mostly_return_none(self):
        table, _ = self._filled()
        aliens = [(1 << 50) + i for i in range(10_000)]
        nones = sum(1 for key in aliens if table.lookup(key) is None)
        assert nones / len(aliens) > 0.97

    def test_update(self):
        table, pairs = self._filled(n=300)
        key = next(iter(pairs))
        table.update(key, 99)
        assert table.lookup(key) == 99

    def test_deleted_key_degrades_to_vo_semantics(self):
        table, pairs = self._filled(n=300)
        key = next(iter(pairs))
        table.delete(key)
        assert key not in table
        # Guard bits remain: the lookup may return a meaningless value, but
        # must not crash; after compaction it usually becomes None again.
        _ = table.lookup(key)
        table.compact()
        aliens_after = sum(
            1 for probe in range(10_000)
            if table.lookup((1 << 51) + probe) is None
        )
        assert aliens_after > 9700

    def test_batch_lookup(self):
        table, pairs = self._filled(n=400)
        keys = np.fromiter(pairs, dtype=np.uint64)
        mask, values = table.lookup_batch(keys)
        assert mask.all()
        for key, value in zip(keys.tolist(), values.tolist()):
            assert value == pairs[key]

    def test_space_accounting_includes_guard(self):
        table, _ = self._filled(n=1000)
        # ~1.7·8 bits for values + ~9.6 bits of guard per key.
        per_key = table.space_bits / 1000
        assert 20 < per_key < 27

    def test_custom_inner_table(self):
        from repro.baselines.othello import Othello

        inner = Othello(100, 4, seed=1)
        table = GuardedTable(100, 4, table=inner)
        table.insert(5, 3)
        assert table.lookup(5) == 3
        with pytest.raises(TypeError):
            table.compact()  # Othello does not expose _assistant
