"""The extension ablations: array count and construction method."""

import pytest

from repro.bench.experiments import run_experiment


class TestAblationArrays:
    def test_thresholds_match_theory(self):
        result = run_experiment("ablation-arrays", scale=0.1)
        rows = {r[0]: r for r in result.rows}
        assert rows[3][1] == pytest.approx(1.756, abs=0.01)
        assert rows[4][1] == pytest.approx(1.857, abs=0.01)

    def test_both_geometries_fill(self):
        result = run_experiment("ablation-arrays", scale=0.1)
        assert all(r[3] == "yes" for r in result.rows)

    def test_three_arrays_lookup_faster(self):
        result = run_experiment("ablation-arrays", scale=0.25)
        rows = {r[0]: r for r in result.rows}
        # A 4th memory read per lookup must not come for free.
        assert rows[3][6] > 0 and rows[4][6] > 0


class TestAblationConstruction:
    def test_static_builds_faster(self):
        result = run_experiment("ablation-construction", scale=0.25)
        by_method = {r[0]: r for r in result.rows}
        assert by_method["static"][1] > by_method["dynamic"][1]

    def test_columns(self):
        result = run_experiment("ablation-construction", scale=0.1)
        assert result.columns == ["method", "build Mops", "rebuild ms",
                                  "failures"]
