"""Machine-readable exports and the CLI's format/output options."""

import csv
import io
import json

import pytest

from repro.bench.cli import main
from repro.bench.export import (
    result_to_csv,
    result_to_json,
    results_to_csv,
    results_to_json,
)
from repro.bench.reporting import ExperimentResult


def _result(name="figX"):
    return ExperimentResult(
        experiment=name,
        title="A figure",
        columns=["n", "Mops"],
        rows=[(10, 1.5), (20, 2.5)],
        notes="note",
        parameters={"scale": 0.5},
    )


class TestJson:
    def test_round_trips(self):
        doc = json.loads(result_to_json(_result()))
        assert doc["experiment"] == "figX"
        assert doc["columns"] == ["n", "Mops"]
        assert doc["rows"] == [[10, 1.5], [20, 2.5]]
        assert doc["parameters"] == {"scale": 0.5}

    def test_multiple(self):
        docs = json.loads(results_to_json([_result("a"), _result("b")]))
        assert [d["experiment"] for d in docs] == ["a", "b"]


class TestCsv:
    def test_header_and_rows(self):
        rows = list(csv.reader(io.StringIO(result_to_csv(_result()))))
        assert rows[0] == ["experiment", "n", "Mops"]
        assert rows[1] == ["figX", "10", "1.5"]

    def test_multiple_blocks(self):
        text = results_to_csv([_result("a"), _result("b")])
        assert text.count("experiment,n,Mops") == 2


class TestCliFormats:
    def test_json_format(self, capsys):
        assert main(["table1", "--format", "json"]) == 0
        docs = json.loads(capsys.readouterr().out)
        assert docs[0]["experiment"] == "table1"

    def test_csv_format(self, capsys):
        assert main(["table1", "--format", "csv"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("experiment,")

    def test_output_file(self, tmp_path, capsys):
        target = tmp_path / "out.json"
        assert main(["theory", "--format", "json",
                     "--output", str(target)]) == 0
        docs = json.loads(target.read_text())
        assert docs[0]["experiment"] == "theory"
        assert "wrote 1 experiment" in capsys.readouterr().out

    def test_text_output_file(self, tmp_path):
        target = tmp_path / "out.txt"
        assert main(["table1", "--output", str(target)]) == 0
        assert "Bloomier" in target.read_text()
