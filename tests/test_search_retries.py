"""The randomised retry search (§IV-B "search backtrack feature")."""

import random

import pytest

from repro.bench.workloads import make_pairs, try_fill_table
from repro.core.assistant_table import AssistantTable
from repro.core.errors import UpdateFailure
from repro.core.update import (
    SimpleStrategy,
    VisionStrategy,
    find_update_path,
    search_update_path,
)
from repro.core.value_table import ValueTable
from repro.factory import make_table
from repro.hashing import HashFamily


class TestRetryVariant:
    def test_vision_retry_is_randomised(self):
        base = VisionStrategy()
        retry = base.retry_variant(1, random.Random(0))
        assert isinstance(retry, VisionStrategy)
        assert retry.epsilon > 0
        assert retry.depth_policy is base.depth_policy

    def test_epsilon_grows_and_caps(self):
        base = VisionStrategy()
        rng = random.Random(0)
        eps = [base.retry_variant(a, rng).epsilon for a in (1, 3, 20)]
        assert eps[0] < eps[1] <= 0.5
        assert eps[2] == 0.5

    def test_simple_retry_is_itself(self):
        base = SimpleStrategy(random.Random(0))
        assert base.retry_variant(2, random.Random(1)) is base


class TestSearchUpdatePath:
    def _state(self, n, width, seed):
        table = ValueTable(width, 4)
        assistant = AssistantTable(width)
        family = HashFamily(seed, [width] * 3)
        strategy = VisionStrategy()
        rng = random.Random(seed)
        count = 0
        while count < n:
            key = rng.getrandbits(40)
            if key in assistant:
                continue
            assistant.add(key, rng.getrandbits(4),
                          tuple(enumerate(family.indices(key))))
            plan = search_update_path(
                table, assistant, key, strategy,
                count / table.num_cells, 50, max_attempts=8,
                rng=random.Random(count),
            )
            plan.apply(table)
            count += 1
        return table, assistant, family, strategy

    def test_fills_dense_table(self):
        # 200 keys into 1.7x cells: the regime where retries matter.
        width = 114  # 342 cells for 200 keys
        table, assistant, _family, _strategy = self._state(200, width, 3)
        for key, value in assistant.pairs():
            assert table.xor_sum(assistant.cells(key)) == value

    def test_unsolvable_still_fails(self):
        table = ValueTable(1, 4)
        assistant = AssistantTable(1)
        strategy = VisionStrategy()
        assistant.add(1, 3, ((0, 0), (1, 0), (2, 0)))
        plan = find_update_path(table, assistant, 1, strategy, 0.3, 30)
        plan.apply(table)
        assistant.add(2, 5, ((0, 0), (1, 0), (2, 0)))
        with pytest.raises(UpdateFailure) as info:
            search_update_path(table, assistant, 2, strategy, 0.3, 30,
                               max_attempts=4, rng=random.Random(1))
        # Total steps across all four attempts are reported.
        assert info.value.steps > 4 * 30

    def test_single_attempt_matches_find_update_path(self):
        width = 64
        table = ValueTable(width, 4)
        assistant = AssistantTable(width)
        family = HashFamily(5, [width] * 3)
        strategy = VisionStrategy()
        assistant.add(9, 7, tuple(enumerate(family.indices(9))))
        direct = find_update_path(table, assistant, 9, strategy, 0.0, 50)
        wrapped = search_update_path(table, assistant, 9, strategy, 0.0, 50,
                                     max_attempts=1)
        assert wrapped.path == direct.path
        assert wrapped.v_delta == direct.v_delta


class TestEndToEndFailureRate:
    def test_default_config_fills_without_failures(self):
        """The headline behaviour: at the default 1.7L budget, whole-table
        insertion completes with (near-)zero failure events."""
        total = 0
        trials = 8
        for trial in range(trials):
            keys, values = make_pairs(2048, 1, 100 + trial)
            table = make_table("vision", 2048, 1, seed=trial)
            assert try_fill_table(table, keys, values)
            total += table.failure_events
        assert total <= 1  # O(1/n) collisions may contribute rarely

    def test_retries_disabled_fails_more(self):
        """With max_search_attempts=1 the greedy walk's tail failures at
        high load reappear — quantifying what the retry feature buys."""
        with_retries = 0
        without = 0
        trials = 10
        for trial in range(trials):
            keys, values = make_pairs(2048, 1, 500 + trial)
            default_table = make_table("vision", 2048, 1, seed=trial)
            try_fill_table(default_table, keys, values)
            with_retries += default_table.failure_events
            bare = make_table(
                "vision", 2048, 1, seed=trial,
                config_kwargs={"max_search_attempts": 1,
                               "reconstruct_efficiency_limit": 1.0,
                               "max_reconstruct_attempts": 8},
            )
            try_fill_table(bare, keys, values)
            without += bare.failure_events
        assert with_retries <= without
