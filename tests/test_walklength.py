"""Walk-length (total progeny) model vs theory and the real system."""

import pytest

from repro.analysis.poisson import expected_min_load
from repro.analysis.walklength import (
    expected_walk_length,
    total_progeny_pmf,
    walk_exceeds_budget_probability,
)


class TestTotalProgeny:
    def test_pmf_sums_to_one_subcritical(self):
        pmf = total_progeny_pmf(0.8, max_steps=80)
        assert sum(pmf) == pytest.approx(1.0, abs=1e-6)

    def test_pmf_leaks_mass_supercritical(self):
        pmf = total_progeny_pmf(2.2, max_steps=80)
        assert sum(pmf) < 0.8  # survival probability escapes the budget

    def test_t_equals_one_is_leaf_probability(self):
        # A 1-step walk means the chosen cell had no other keys: P(X_min=0)
        # = 1 − P(both candidate buckets are non-empty).
        import math

        lam = 1.3
        pmf = total_progeny_pmf(lam, max_steps=10)
        p_min_zero = 1 - (1 - math.exp(-lam)) ** 2
        assert pmf[1] == pytest.approx(p_min_zero, abs=1e-9)

    def test_truncated_mean_matches_closed_form(self):
        lam = 1.0
        pmf = total_progeny_pmf(lam, max_steps=120)
        mean = sum(t * p for t, p in enumerate(pmf))
        assert mean == pytest.approx(expected_walk_length(lam), rel=0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            total_progeny_pmf(-1)
        with pytest.raises(ValueError):
            total_progeny_pmf(1.0, max_steps=0)


class TestBudgetExceedance:
    def test_negligible_at_low_load(self):
        assert walk_exceeds_budget_probability(0.8, budget=50) < 1e-9

    def test_material_near_threshold(self):
        assert walk_exceeds_budget_probability(1.709, budget=50) > 0.05

    def test_monotone_in_budget(self):
        p50 = walk_exceeds_budget_probability(1.6, budget=50)
        p150 = walk_exceeds_budget_probability(1.6, budget=150, max_steps=150)
        assert p150 < p50


class TestExpectedLength:
    def test_closed_form(self):
        lam = 1.2
        assert expected_walk_length(lam) == pytest.approx(
            1.0 / (1.0 - expected_min_load(lam))
        )

    def test_infinite_at_supercritical(self):
        assert expected_walk_length(1.8) == float("inf")


class TestAgainstRealSystem:
    def test_measured_steps_match_model(self):
        """Fill a real embedder to a fixed subcritical load and compare the
        mean repair steps per op with E[T] integrated over the fill."""
        from repro.bench.workloads import fill_table, make_pairs
        from repro.factory import make_table

        n = 3000
        factor = 2.2  # end-of-fill lambda = 3/2.2 = 1.36, safely subcritical
        # L=8 so v_delta = 0 inserts (free, zero steps) are negligible and
        # the measured mean is conditioned the way the model assumes.
        keys, values = make_pairs(n, 8, 17)
        table = make_table("vision", n, 8, seed=4, space_factor=factor)
        fill_table(table, keys, values)
        measured_mean = table.stats.repair_steps / table.stats.updates

        # Model: average E[T] over the fill's lambda trajectory.
        samples = 60
        total = 0.0
        for i in range(samples):
            lam = 3.0 * ((i + 0.5) / samples) * n / (factor * n)
            total += expected_walk_length(lam)
        predicted_mean = total / samples
        # First-order model vs a depth-3 strategy: same ballpark.
        assert measured_mean == pytest.approx(predicted_mean, rel=0.5)
