"""Stateful fuzzing: hypothesis rule machines drive tables like a client.

Unlike the sequence-based property tests, a rule machine interleaves
operations adaptively and shrinks whole interaction histories, which is
how bugs in rollback paths and reconstruction bookkeeping get found.
"""

import hypothesis.strategies as st
from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro.apps.guarded import GuardedTable
from repro.core import EmbedderConfig, VisionEmbedder
from repro.core.errors import ReproError

_KEYS = st.integers(0, 59)
_VALUES = st.integers(0, 15)


class VisionEmbedderMachine(RuleBasedStateMachine):
    """Drive a VisionEmbedder against a dict model."""

    def __init__(self):
        super().__init__()
        self.model = {}
        self.dead = False

    @initialize(seed=st.integers(0, 100), packed=st.booleans())
    def build(self, seed, packed):
        config = EmbedderConfig(reconstruct_efficiency_limit=1.0,
                                max_reconstruct_attempts=6)
        self.table = VisionEmbedder(96, 4, config=config, seed=seed,
                                    packed=packed)

    @precondition(lambda self: not self.dead)
    @rule(key=_KEYS, value=_VALUES)
    def insert(self, key, value):
        if key in self.model:
            return
        try:
            self.table.insert(key, value)
            self.model[key] = value
        except ReproError:
            self.dead = True

    @precondition(lambda self: not self.dead)
    @rule(key=_KEYS, value=_VALUES)
    def update(self, key, value):
        if key not in self.model:
            return
        try:
            self.table.update(key, value)
            self.model[key] = value
        except ReproError:
            self.dead = True

    @precondition(lambda self: not self.dead)
    @rule(key=_KEYS)
    def delete(self, key):
        if key not in self.model:
            return
        self.table.delete(key)
        del self.model[key]

    @precondition(lambda self: not self.dead)
    @rule()
    def reconstruct(self):
        try:
            self.table.reconstruct()
        except ReproError:
            self.dead = True

    @precondition(lambda self: not self.dead)
    @rule()
    def reconstruct_static(self):
        try:
            self.table.reconstruct(method="static")
        except ReproError:
            self.dead = True

    @invariant()
    def model_agreement(self):
        if self.dead:
            return
        assert len(self.table) == len(self.model)
        for key, value in self.model.items():
            assert self.table.lookup(key) == value

    @invariant()
    def structural_invariants(self):
        if self.dead:
            return
        self.table.check_invariants()


VisionEmbedderMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=40, deadline=None
)
TestVisionEmbedderStateful = VisionEmbedderMachine.TestCase


class GuardedTableMachine(RuleBasedStateMachine):
    """Drive the Bloom-guarded table; guard semantics included."""

    def __init__(self):
        super().__init__()
        self.model = {}
        self.ever_inserted = set()

    @initialize(seed=st.integers(0, 100))
    def build(self, seed):
        self.table = GuardedTable(capacity=128, value_bits=4, seed=seed)

    @rule(key=_KEYS, value=_VALUES)
    def put(self, key, value):
        if key in self.model:
            self.table.update(key, value)
        else:
            self.table.insert(key, value)
            self.ever_inserted.add(key)
        self.model[key] = value

    @rule(key=_KEYS)
    def delete(self, key):
        if key not in self.model:
            return
        self.table.delete(key)
        del self.model[key]

    @rule()
    def compact(self):
        self.table.compact()

    @invariant()
    def members_exact(self):
        for key, value in self.model.items():
            assert self.table.lookup(key) == value

    @invariant()
    def never_inserted_keys_rejected(self):
        # A key never added cannot have guard bits of its own; it may still
        # collide into a false positive, so only check a key far outside
        # the machine's key space with a fresh-per-state offset.
        probe = 10_000 + len(self.ever_inserted)
        result = self.table.lookup(probe)
        assert result is None or isinstance(result, int)


GuardedTableMachine.TestCase.settings = settings(
    max_examples=15, stateful_step_count=30, deadline=None
)
TestGuardedTableStateful = GuardedTableMachine.TestCase
