"""Metrics registry: bucket math, registration rules, merging, threads."""

import threading

import pytest

from repro.obs.registry import (
    Counter,
    Histogram,
    MetricsRegistry,
    RegistryCollector,
    WALK_STEP_BUCKETS,
    aggregate,
)


class TestHistogramBuckets:
    def test_bucket_edges_are_inclusive_upper_bounds(self):
        hist = Histogram("h", bounds=(1, 2, 4))
        # Prometheus semantics: le="b" includes b itself.
        assert hist.bucket_for(0) == 0
        assert hist.bucket_for(1) == 0
        assert hist.bucket_for(1.5) == 1
        assert hist.bucket_for(2) == 1
        assert hist.bucket_for(4) == 2
        assert hist.bucket_for(4.001) == 3  # +Inf bucket

    def test_observe_fills_counts_sum_count(self):
        hist = Histogram("h", bounds=(1, 2, 4))
        for value in (0, 1, 2, 3, 100):
            hist.observe(value)
        assert hist.counts == [2, 1, 1, 1]
        assert hist.count == 5
        assert hist.sum == 106

    def test_cumulative_ends_at_inf_with_total(self):
        hist = Histogram("h", bounds=(1, 2))
        for value in (1, 1, 2, 9):
            hist.observe(value)
        cumulative = hist.cumulative()
        assert cumulative == [(1.0, 2), (2.0, 3), (float("inf"), 4)]

    def test_bounds_must_strictly_increase(self):
        with pytest.raises(ValueError):
            Histogram("h", bounds=(1, 1, 2))
        with pytest.raises(ValueError):
            Histogram("h", bounds=())

    def test_standard_bucket_constants_are_valid(self):
        # The catalogue constants must themselves satisfy the invariant.
        Histogram("h", bounds=WALK_STEP_BUCKETS)


class TestRegistration:
    def test_get_or_create_returns_same_object(self):
        registry = MetricsRegistry(collectable=False)
        first = registry.counter("repro_x_total", help="x")
        second = registry.counter("repro_x_total")
        assert first is second
        assert len(registry) == 1

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry(collectable=False)
        registry.counter("repro_x_total")
        with pytest.raises(TypeError):
            registry.gauge("repro_x_total")
        with pytest.raises(TypeError):
            registry.histogram("repro_x_total", bounds=(1, 2))

    def test_histogram_bounds_conflict_raises(self):
        registry = MetricsRegistry(collectable=False)
        registry.histogram("repro_h", bounds=(1, 2))
        assert registry.histogram("repro_h", bounds=(1, 2)) is not None
        with pytest.raises(ValueError):
            registry.histogram("repro_h", bounds=(1, 2, 4))

    def test_invalid_name_rejected(self):
        registry = MetricsRegistry(collectable=False)
        for bad in ("", "1starts_with_digit", "has space", "has-dash"):
            with pytest.raises(ValueError):
                registry.counter(bad)

    def test_counter_rejects_negative(self):
        counter = Counter("c")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_reset_zeroes_everything(self):
        registry = MetricsRegistry(collectable=False)
        registry.counter("c").inc(5)
        registry.gauge("g").set(7)
        hist = registry.histogram("h", bounds=(1, 2))
        hist.observe(1)
        registry.reset()
        assert registry.get("c").value == 0
        assert registry.get("g").value == 0
        assert hist.counts == [0, 0, 0]
        assert hist.count == 0 and hist.sum == 0


class TestAggregation:
    def _registry(self, counter, gauge, samples):
        registry = MetricsRegistry(collectable=False)
        registry.counter("c").inc(counter)
        registry.gauge("g").set(gauge)
        hist = registry.histogram("h", bounds=(1, 2))
        for sample in samples:
            hist.observe(sample)
        return registry

    def test_counters_sum_gauges_max_histograms_add(self):
        merged = aggregate([
            self._registry(3, 10, [1, 5]),
            self._registry(4, 2, [2]),
        ])
        assert merged.get("c").value == 7
        assert merged.get("g").value == 10
        assert merged.get("h").counts == [1, 1, 1]
        assert merged.get("h").count == 3
        assert merged.get("h").sum == 8

    def test_merge_copies_unknown_metrics(self):
        target = MetricsRegistry(collectable=False)
        source = self._registry(1, 1, [1])
        target.merge_from(source)
        assert "c" in target and "g" in target and "h" in target
        # and the copies are independent objects
        source.get("c").inc(10)
        assert target.get("c").value == 1

    def test_merge_bounds_mismatch_raises(self):
        target = MetricsRegistry(collectable=False)
        target.histogram("h", bounds=(1, 2, 4))
        with pytest.raises(ValueError):
            target.merge_from(self._registry(0, 0, []))


class TestRegistryCollector:
    def test_captures_registries_created_in_scope(self):
        before = MetricsRegistry()
        with RegistryCollector() as collector:
            inside = MetricsRegistry()
            inside.counter("c").inc(2)
        after = MetricsRegistry()
        captured = collector.registries()
        assert inside in captured
        assert before not in captured and after not in captured
        assert collector.aggregate().get("c").value == 2

    def test_nested_collectors_both_capture(self):
        with RegistryCollector() as outer:
            with RegistryCollector() as inner:
                registry = MetricsRegistry()
        assert registry in outer.registries()
        assert registry in inner.registries()

    def test_non_collectable_registries_invisible(self):
        with RegistryCollector() as collector:
            MetricsRegistry(collectable=False)
        assert collector.registries() == []


class TestThreadSafety:
    def test_concurrent_inc_and_observe_are_exact(self):
        registry = MetricsRegistry(collectable=False)
        counter = registry.counter("c")
        hist = registry.histogram("h", bounds=(1, 2, 4))
        rounds, workers = 2000, 8

        def hammer():
            for i in range(rounds):
                counter.inc()
                hist.observe(i % 5)

        threads = [threading.Thread(target=hammer) for _ in range(workers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == rounds * workers
        assert hist.count == rounds * workers
        assert sum(hist.counts) == rounds * workers

    def test_concurrent_get_or_create_single_instance(self):
        registry = MetricsRegistry(collectable=False)
        seen = []

        def register():
            seen.append(registry.counter("c"))

        threads = [threading.Thread(target=register) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(set(map(id, seen))) == 1
