"""Thread-safe embedder: RWLock semantics and concurrent workloads.

The RWLock exclusion/fairness properties are checked with the
deterministic schedule explorer (:mod:`repro.check.scheduler`) instead of
``time.sleep()`` races: each property is phrased as a postcondition over
an event log and asserted on *every* interleaving the explorer
enumerates, so a regression fails on the exact schedule that breaks it
rather than flaking with timing.
"""

import random
import threading
import time

import numpy as np
import pytest

from repro.check.lockset import LockDisciplineError, LocksetRWLock
from repro.check.scheduler import CooperativeRWLock, Scenario, explore
from repro.core.concurrent import ConcurrentVisionEmbedder, RWLock


def _explore_clean(factory, max_schedules=300):
    """Explore every schedule; fail on the first violated postcondition."""
    outcome = explore(factory, max_schedules=max_schedules)
    failures = outcome.failures
    assert not failures, failures[0].error
    assert outcome.schedules > 1  # the property was actually exercised
    assert outcome.schedules < max_schedules  # tree fully enumerated
    return outcome


class TestRWLock:
    def test_multiple_readers(self):
        lock = RWLock()
        lock.acquire_read()
        lock.acquire_read()
        lock.release_read()
        lock.release_read()

    def test_writer_excludes_readers(self):
        # In no interleaving does a reader enter the write section.
        def factory(run):
            lock = CooperativeRWLock(run)
            log = []

            def writer():
                with lock.write():
                    log.append("w-in")
                    run.yield_point()
                    log.append("w-out")

            def reader():
                with lock.read():
                    log.append("r-in")

            def check():
                w_in, w_out = log.index("w-in"), log.index("w-out")
                if w_in < log.index("r-in") < w_out:
                    raise AssertionError(
                        f"reader entered the write section: {log}"
                    )

            return Scenario(
                tasks={"writer": writer, "reader": reader}, check=check
            )

        _explore_clean(factory)

    def test_writer_waits_for_readers(self):
        # In no interleaving does the writer enter the read section.
        def factory(run):
            lock = CooperativeRWLock(run)
            log = []

            def reader():
                with lock.read():
                    log.append("r-in")
                    run.yield_point()
                    log.append("r-out")

            def writer():
                with lock.write():
                    log.append("w-in")

            def check():
                r_in, r_out = log.index("r-in"), log.index("r-out")
                if r_in < log.index("w-in") < r_out:
                    raise AssertionError(
                        f"writer entered the read section: {log}"
                    )

            return Scenario(
                tasks={"reader": reader, "writer": writer}, check=check
            )

        _explore_clean(factory)

    def test_writer_preference_blocks_new_readers(self):
        # Once a writer is waiting, a late reader never overtakes it.
        # "w-want" is appended in the same atomic segment that parks the
        # writer on acquire_write, so any event logged between "w-want"
        # and "w-in" happened while the writer was provably waiting.
        def factory(run):
            lock = CooperativeRWLock(run)
            log = []

            def holder():
                with lock.read():
                    log.append("r1-in")
                    run.yield_point()
                    run.yield_point()
                    log.append("r1-out")

            def writer():
                log.append("w-want")
                with lock.write():
                    log.append("w-in")

            def late_reader():
                with lock.read():
                    log.append("r2-in")

            def check():
                w_want, w_in = log.index("w-want"), log.index("w-in")
                if w_want < log.index("r2-in") < w_in:
                    raise AssertionError(
                        f"late reader overtook a waiting writer: {log}"
                    )

            return Scenario(
                tasks={
                    "holder": holder,
                    "writer": writer,
                    "late_reader": late_reader,
                },
                check=check,
            )

        _explore_clean(factory, max_schedules=2000)

    def test_context_managers(self):
        lock = RWLock()
        with lock.read():
            pass
        with lock.write():
            pass


class TestLocksetRWLock:
    """Dynamic lock-discipline checking (the runtime counterpart of R3).

    LocksetRWLock raises a typed error *at the misuse site* for patterns
    that would deadlock or corrupt a plain RWLock, so these edge cases
    are testable without hanging the suite.
    """

    def test_drop_in_happy_path(self):
        lock = LocksetRWLock()
        with lock.read():
            assert lock.held_by_current_thread() == (1, 0)
        with lock.write():
            assert lock.held_by_current_thread() == (0, 1)
        lock.assert_quiescent()

    def test_read_write_upgrade_raises(self):
        # Upgrading read -> write self-deadlocks under writer preference:
        # the writer waits for readers to drain, but *is* the reader.
        lock = LocksetRWLock()
        lock.acquire_read()
        with pytest.raises(LockDisciplineError, match="upgrade"):
            lock.acquire_write()
        lock.release_read()
        lock.assert_quiescent()

    def test_write_reentrancy_raises(self):
        # RWLock is not reentrant: a second acquire_write on the owning
        # thread waits on its own holder forever.
        lock = LocksetRWLock()
        lock.acquire_write()
        with pytest.raises(LockDisciplineError, match="re-entrant"):
            lock.acquire_write()
        lock.release_write()
        lock.assert_quiescent()

    def test_read_under_own_write_raises(self):
        lock = LocksetRWLock()
        lock.acquire_write()
        with pytest.raises(LockDisciplineError, match="write lock"):
            lock.acquire_read()
        lock.release_write()

    def test_reentrant_read_with_queued_writer_raises(self):
        # Re-entrant reads are fine on a quiet lock but deadlock once a
        # writer queues: preference blocks the inner read, and the outer
        # read never releases -> cycle. The lockset flags the inner read.
        lock = LocksetRWLock()
        lock.acquire_read()
        writer_waiting = threading.Event()

        def writer():
            writer_waiting.set()
            with lock.write():
                pass

        thread = threading.Thread(target=writer)
        thread.start()
        writer_waiting.wait()
        # Poll: the writer thread must actually be queued inside
        # acquire_write before the inner read is attempted.
        for _ in range(200):
            if lock._writers_waiting:
                break
            time.sleep(0.005)
        assert lock._writers_waiting == 1
        with pytest.raises(LockDisciplineError, match="writer is queued"):
            lock.acquire_read()
        lock.release_read()
        thread.join(timeout=2)
        lock.assert_quiescent()

    def test_reentrant_read_allowed_when_uncontended(self):
        lock = LocksetRWLock()
        with lock.read():
            with lock.read():
                assert lock.held_by_current_thread() == (2, 0)
        lock.assert_quiescent()

    def test_unmatched_releases_raise(self):
        lock = LocksetRWLock()
        with pytest.raises(LockDisciplineError, match="release_read"):
            lock.release_read()
        with pytest.raises(LockDisciplineError, match="release_write"):
            lock.release_write()

    def test_assert_quiescent_reports_leak(self):
        lock = LocksetRWLock()
        lock.acquire_read()
        with pytest.raises(LockDisciplineError, match="unbalanced"):
            lock.assert_quiescent()
        lock.release_read()
        lock.assert_quiescent()

    def test_history_records_events(self):
        lock = LocksetRWLock()
        with lock.write():
            pass
        with lock.read():
            pass
        events = [event for _, event, _, _ in lock.history]
        assert events == [
            "acquire_write", "release_write",
            "acquire_read", "release_read",
        ]

    def test_writer_preference_preserved(self):
        # The instrumented lock must keep the base semantics: a queued
        # writer still blocks late readers on other threads.
        lock = LocksetRWLock()
        lock.acquire_read()
        reader_done = threading.Event()

        def writer():
            with lock.write():
                pass

        def late_reader():
            with lock.read():
                reader_done.set()

        writer_thread = threading.Thread(target=writer)
        writer_thread.start()
        for _ in range(200):
            if lock._writers_waiting:
                break
            time.sleep(0.005)
        reader_thread = threading.Thread(target=late_reader)
        reader_thread.start()
        time.sleep(0.05)
        assert not reader_done.is_set()
        lock.release_read()
        writer_thread.join(timeout=2)
        reader_thread.join(timeout=2)
        assert reader_done.is_set()
        lock.assert_quiescent()

    def test_embedder_workload_obeys_discipline(self):
        # Swap the instrumented lock in for the rebuild gate and drive a
        # real mixed workload; every acquisition must balance.
        n = 300
        table = ConcurrentVisionEmbedder(n, 8, seed=12)
        gate = LocksetRWLock()
        table._rebuild_gate = gate
        items = list(_pairs(n, 12).items())
        errors = []

        def writer(chunk):
            try:
                for key, value in chunk:
                    table.insert(key, value)
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        def reader():
            try:
                for key, _ in items[:50]:
                    table.lookup(key) if key in table else None
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [
            threading.Thread(target=writer, args=(items[i::3],))
            for i in range(3)
        ] + [threading.Thread(target=reader) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors
        table.reconstruct()  # exercise the write side of the gate too
        gate.assert_quiescent()
        table.check_invariants()


class TestUpdateMutexReentrancy:
    def test_reconstruct_reenters_update_mutex(self):
        # insert()/update() hold the update mutex when a failed walk
        # triggers auto-reconstruction, which re-acquires it — the mutex
        # must be an RLock or the embedder deadlocks against itself.
        n = 200
        table = ConcurrentVisionEmbedder(n, 8, seed=14)
        items = list(_pairs(n, 14).items())
        for key, value in items[: n // 2]:
            table.insert(key, value)
        with table._update_mutex:
            table.reconstruct()  # second acquisition on the same thread
        table.check_invariants()
        for key, value in items[: n // 2]:
            assert table.lookup(key) == value


def _pairs(n, seed):
    rng = random.Random(seed)
    pairs = {}
    while len(pairs) < n:
        pairs[rng.getrandbits(48)] = rng.getrandbits(8)
    return pairs


class TestConcurrentEmbedder:
    def test_parallel_inserts_stay_consistent(self):
        n = 1200
        table = ConcurrentVisionEmbedder(n, 8, seed=2)
        items = list(_pairs(n, 2).items())
        errors = []

        def worker(chunk):
            try:
                for key, value in chunk:
                    table.insert(key, value)
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(items[i::6],))
            for i in range(6)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(table) == n
        table.check_invariants()
        for key, value in items:
            assert table.lookup(key) == value

    def test_concurrent_lookups_during_updates(self):
        n = 800
        table = ConcurrentVisionEmbedder(n, 8, seed=4)
        items = list(_pairs(n, 4).items())
        first_half = items[: n // 2]
        for key, value in first_half:
            table.insert(key, value)
        stable_keys = np.array([k for k, _ in first_half], dtype=np.uint64)
        stop = threading.Event()
        mismatches = []

        def reader():
            expected = np.array([v for _, v in first_half], dtype=np.uint64)
            while not stop.is_set():
                got = table.lookup_batch(stable_keys)
                if not np.array_equal(got, expected):
                    mismatches.append(got)

        def writer():
            for key, value in items[n // 2 :]:
                table.insert(key, value)
            stop.set()

        reader_thread = threading.Thread(target=reader)
        writer_thread = threading.Thread(target=writer)
        reader_thread.start()
        writer_thread.start()
        writer_thread.join(timeout=60)
        stop.set()
        reader_thread.join(timeout=10)
        table.check_invariants()
        # Readers may transiently observe a path mid-application for keys
        # *being repaired*, but keys untouched by any in-flight update path
        # can still flip momentarily only if they share cells. Quiescent
        # state must be exact:
        final = table.lookup_batch(stable_keys)
        expected = np.array([v for _, v in first_half], dtype=np.uint64)
        assert np.array_equal(final, expected)

    def test_mixed_update_delete_threads(self):
        n = 600
        table = ConcurrentVisionEmbedder(n, 8, seed=6)
        items = list(_pairs(n, 6).items())
        for key, value in items:
            table.insert(key, value)
        updaters = items[: n // 3]
        deleters = items[n // 3 : 2 * n // 3]

        def update_worker():
            for key, value in updaters:
                table.update(key, (value + 1) % 256)

        def delete_worker():
            for key, _ in deleters:
                table.delete(key)

        threads = [
            threading.Thread(target=update_worker),
            threading.Thread(target=delete_worker),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        table.check_invariants()
        for key, value in updaters:
            assert table.lookup(key) == (value + 1) % 256
        assert len(table) == n - len(deleters)

    def test_eight_thread_mixed_soak(self):
        """Eight threads of mixed inserts/updates/deletes/lookups over
        disjoint key ranges; quiescent state must match per-thread models."""
        table = ConcurrentVisionEmbedder(4000, 8, seed=10)
        models = [dict() for _ in range(8)]
        errors = []

        def worker(worker_id):
            rng = random.Random(worker_id)
            base = worker_id << 32
            model = models[worker_id]
            try:
                for _ in range(500):
                    action = rng.random()
                    key = base + rng.randrange(400)
                    if action < 0.5 and key not in model:
                        value = rng.getrandbits(8)
                        table.insert(key, value)
                        model[key] = value
                    elif action < 0.75 and model:
                        victim = rng.choice(list(model))
                        value = rng.getrandbits(8)
                        table.update(victim, value)
                        model[victim] = value
                    elif action < 0.9 and model:
                        victim = rng.choice(list(model))
                        table.delete(victim)
                        del model[victim]
                    else:
                        table.lookup(key)  # may be stale mid-path: ok
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append((worker_id, exc))

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not errors
        table.check_invariants()
        combined = {}
        for model in models:
            combined.update(model)
        assert len(table) == len(combined)
        for key, value in combined.items():
            assert table.lookup(key) == value

    def test_explicit_reconstruct_under_readers(self):
        n = 400
        table = ConcurrentVisionEmbedder(n, 8, seed=8)
        items = list(_pairs(n, 8).items())
        for key, value in items:
            table.insert(key, value)
        keys = np.array([k for k, _ in items], dtype=np.uint64)
        expected = np.array([v for _, v in items], dtype=np.uint64)
        stop = threading.Event()
        bad = []

        def reader():
            while not stop.is_set():
                got = table.lookup_batch(keys)
                if not np.array_equal(got, expected):
                    bad.append(1)

        thread = threading.Thread(target=reader)
        thread.start()
        for _ in range(3):
            table.reconstruct()
        stop.set()
        thread.join(timeout=10)
        # The rebuild gate must hide every intermediate (cleared) state.
        assert not bad
        table.check_invariants()
