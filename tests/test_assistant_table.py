"""Slow-space assistant table: buckets, counters, consistency."""

import pytest

from repro.core.assistant_table import AssistantTable


def _cells(t0, t1, t2):
    return ((0, t0), (1, t1), (2, t2))


class TestAddRemove:
    def test_add_registers_in_all_buckets(self):
        table = AssistantTable(width=8)
        table.add(42, 3, _cells(1, 2, 3))
        assert 42 in table
        assert table.value(42) == 3
        assert table.cells(42) == _cells(1, 2, 3)
        for cell in _cells(1, 2, 3):
            assert 42 in table.keys_at(cell)
            assert table.count_at(cell) == 1

    def test_add_duplicate_rejected(self):
        table = AssistantTable(width=8)
        table.add(1, 0, _cells(0, 0, 0))
        with pytest.raises(KeyError):
            table.add(1, 1, _cells(1, 1, 1))

    def test_remove_clears_buckets(self):
        table = AssistantTable(width=8)
        table.add(42, 3, _cells(1, 2, 3))
        table.remove(42)
        assert 42 not in table
        assert all(table.count_at(c) == 0 for c in _cells(1, 2, 3))

    def test_remove_unknown_raises(self):
        with pytest.raises(KeyError):
            AssistantTable(width=4).remove(9)

    def test_len_tracks_pairs(self):
        table = AssistantTable(width=8)
        for i in range(5):
            table.add(i, 0, _cells(i % 8, i % 8, i % 8))
        assert len(table) == 5
        table.remove(0)
        assert len(table) == 4


class TestValues:
    def test_set_value(self):
        table = AssistantTable(width=8)
        table.add(7, 1, _cells(0, 1, 2))
        table.set_value(7, 9)
        assert table.value(7) == 9

    def test_set_value_unknown_raises(self):
        with pytest.raises(KeyError):
            AssistantTable(width=4).set_value(1, 2)

    def test_pairs_iteration(self):
        table = AssistantTable(width=8)
        table.add(1, 10, _cells(0, 0, 0))
        table.add(2, 20, _cells(1, 1, 1))
        assert dict(table.pairs()) == {1: 10, 2: 20}


class TestBuckets:
    def test_shared_bucket_counts(self):
        table = AssistantTable(width=8)
        table.add(1, 0, _cells(5, 0, 0))
        table.add(2, 0, _cells(5, 1, 1))
        assert table.count_at((0, 5)) == 2
        assert table.keys_at((0, 5)) == {1, 2}

    def test_same_index_different_arrays_are_distinct(self):
        table = AssistantTable(width=8)
        table.add(1, 0, _cells(5, 5, 5))
        assert table.count_at((0, 5)) == 1
        assert table.count_at((1, 5)) == 1
        assert table.count_at((2, 5)) == 1


class TestLifecycle:
    def test_clear(self):
        table = AssistantTable(width=8)
        table.add(1, 0, _cells(0, 1, 2))
        table.clear()
        assert len(table) == 0
        assert table.count_at((0, 0)) == 0

    def test_consistency_check_passes(self):
        table = AssistantTable(width=8)
        for i in range(20):
            table.add(i, i % 2, _cells(i % 8, (i * 3) % 8, (i * 5) % 8))
        table.check_consistency()

    def test_consistency_check_detects_ghost(self):
        table = AssistantTable(width=8)
        table.add(1, 0, _cells(0, 1, 2))
        table._cell_keys[0][5].add(99)  # corrupt on purpose
        with pytest.raises(AssertionError):
            table.check_consistency()

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            AssistantTable(width=0)
