"""Static (peeling) construction: bulk loads and static reconstruction."""

import random

import pytest

from repro.core import EmbedderConfig, VisionEmbedder
from repro.core.errors import DuplicateKey, UpdateFailure
from repro.core.static_build import peel_order


def _pairs(n, value_bits, seed):
    rng = random.Random(seed)
    pairs = {}
    while len(pairs) < n:
        pairs[rng.getrandbits(48)] = rng.getrandbits(value_bits)
    return pairs


class TestPeelOrder:
    def test_simple_chain_peels(self):
        key_cells = {
            1: ((0, 0), (1, 0), (2, 0)),
            2: ((0, 0), (1, 1), (2, 1)),
        }
        order = peel_order(key_cells)
        assert order is not None
        assert {key for key, _ in order} == {1, 2}
        # Each key's recorded cell is private at peel time.
        for key, cell in order:
            assert cell in key_cells[key]

    def test_two_core_stalls(self):
        # Two keys sharing all three cells: no singleton cell ever appears.
        key_cells = {
            1: ((0, 0), (1, 0), (2, 0)),
            2: ((0, 0), (1, 0), (2, 0)),
        }
        assert peel_order(key_cells) is None

    def test_empty_input(self):
        assert peel_order({}) == []


class TestBulkLoad:
    def test_matches_dynamic_result_semantics(self):
        pairs = _pairs(3000, 8, 1)
        table = VisionEmbedder.from_pairs(pairs.items(), value_bits=8,
                                          seed=4, static=True)
        table.check_invariants()
        for key, value in pairs.items():
            assert table.lookup(key) == value

    def test_faster_than_dynamic(self):
        import time

        pairs = list(_pairs(4000, 8, 2).items())
        started = time.perf_counter()
        VisionEmbedder.from_pairs(pairs, value_bits=8, seed=4, static=True)
        static_time = time.perf_counter() - started
        started = time.perf_counter()
        VisionEmbedder.from_pairs(pairs, value_bits=8, seed=4)
        dynamic_time = time.perf_counter() - started
        assert static_time < dynamic_time

    def test_incremental_after_bulk_load(self):
        pairs = _pairs(500, 4, 3)
        table = VisionEmbedder.from_pairs(pairs.items(), value_bits=4,
                                          seed=2, static=True)
        table.insert("extra", 9)
        assert table.lookup("extra") == 9
        victim = next(iter(pairs))
        table.update(victim, (pairs[victim] + 1) % 16)
        table.delete(victim)
        table.check_invariants()

    def test_bulk_load_onto_existing_pairs(self):
        table = VisionEmbedder(1000, 4, seed=1)
        table.insert("old", 3)
        table.bulk_load([("new-a", 1), ("new-b", 2)])
        assert table.lookup("old") == 3
        assert table.lookup("new-a") == 1
        assert table.lookup("new-b") == 2
        assert len(table) == 3

    def test_duplicate_rejected(self):
        table = VisionEmbedder(100, 4, seed=1)
        table.insert("x", 1)
        with pytest.raises(DuplicateKey):
            table.bulk_load([("x", 2)])
        with pytest.raises(DuplicateKey):
            table.bulk_load([("y", 1), ("y", 2)])

    def test_value_range_validated(self):
        table = VisionEmbedder(100, 4, seed=1)
        with pytest.raises(ValueError):
            table.bulk_load([("x", 16)])

    def test_peel_stall_reseeds(self):
        # Width-1 geometry with two conflicting keys: every seed stalls
        # (all keys share all cells), so bulk_load must exhaust retries.
        from repro.core.errors import ReconstructionFailed

        config = EmbedderConfig(max_reconstruct_attempts=3)
        table = VisionEmbedder(1, 4, config=config, seed=1)
        with pytest.raises(ReconstructionFailed):
            table.bulk_load([("a", 1), ("b", 2)])
        assert table.stats.reconstructions == 3


class TestStaticReconstruct:
    def test_static_reconstruct_preserves_pairs(self):
        pairs = _pairs(1000, 8, 5)
        table = VisionEmbedder.from_pairs(pairs.items(), value_bits=8, seed=3)
        old_seed = table.seed
        table.reconstruct(method="static")
        assert table.seed > old_seed
        table.check_invariants()
        for key, value in pairs.items():
            assert table.lookup(key) == value

    def test_invalid_method_rejected(self):
        table = VisionEmbedder(10, 4, seed=1)
        with pytest.raises(ValueError):
            table.reconstruct(method="magic")

    def test_static_reconstruct_is_faster(self):
        import time

        pairs = _pairs(4000, 8, 6)
        table = VisionEmbedder.from_pairs(pairs.items(), value_bits=8,
                                          seed=3, static=True)
        started = time.perf_counter()
        table.reconstruct(method="static")
        static_time = time.perf_counter() - started
        started = time.perf_counter()
        table.reconstruct(method="dynamic")
        dynamic_time = time.perf_counter() - started
        assert static_time < dynamic_time


class TestConcurrentAndReplicatedVariants:
    def test_concurrent_bulk_load(self):
        from repro.core import ConcurrentVisionEmbedder

        pairs = _pairs(500, 4, 7)
        table = ConcurrentVisionEmbedder(500, 4, seed=2)
        table.bulk_load(pairs.items())
        table.check_invariants()
        for key, value in pairs.items():
            assert table.lookup(key) == value

    def test_publishing_bulk_load_sends_snapshot(self):
        from repro.core.replication import (
            DataPlaneReplica,
            PublishingVisionEmbedder,
        )

        pairs = _pairs(300, 4, 8)
        publisher = PublishingVisionEmbedder(300, 4, seed=2)
        replica = DataPlaneReplica()
        publisher.subscribe(replica.apply)
        publisher.bulk_load(pairs.items())
        assert replica.state_equals(publisher)
        for key, value in pairs.items():
            assert replica.lookup(key) == value
