"""Exporters: Prometheus text stability (golden file), JSON, sidecars."""

import json
import os

import pytest

from repro.core.embedder import VisionEmbedder
from repro.core.stats import TableStats
from repro.obs import (
    instrument,
    json_snapshot,
    json_text,
    parse_prometheus_text,
    prometheus_text,
    write_sidecar,
)
from repro.obs.registry import MetricsRegistry

GOLDEN = os.path.join(os.path.dirname(__file__), "golden",
                      "exporter_sample.prom")


def sample_registry() -> MetricsRegistry:
    """A small fixed registry: one of each metric kind, known values."""
    registry = MetricsRegistry(collectable=False)
    registry.counter("repro_updates_total",
                     help="Insert/update/delete operations applied").inc(42)
    registry.gauge("repro_largest_batch",
                   help="Largest single insert batch", unit="keys").set(7)
    hist = registry.histogram("repro_walk_steps", bounds=(1, 2, 4),
                              help="Repair steps per walk attempt",
                              unit="steps")
    for value in (1, 1, 3, 9):
        hist.observe(value)
    return registry


class TestPrometheusText:
    def test_matches_golden_file(self):
        # The exposition format is an interchange contract: any change
        # must be deliberate (regenerate tests/golden/exporter_sample.prom
        # and say why in the commit).
        with open(GOLDEN) as handle:
            expected = handle.read()
        assert prometheus_text(sample_registry()) == expected

    def test_histogram_series_are_cumulative(self):
        samples = parse_prometheus_text(prometheus_text(sample_registry()))
        assert samples['repro_walk_steps_bucket{le="1"}'] == 2
        assert samples['repro_walk_steps_bucket{le="2"}'] == 2
        assert samples['repro_walk_steps_bucket{le="4"}'] == 3
        assert samples['repro_walk_steps_bucket{le="+Inf"}'] == 4
        assert samples["repro_walk_steps_sum"] == 14
        assert samples["repro_walk_steps_count"] == 4

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_prometheus_text("justonetoken\n")


class TestJsonSnapshot:
    def test_round_trips_through_json(self):
        registry = sample_registry()
        snapshot = json.loads(json_text(registry))
        assert snapshot == json_snapshot(registry)
        assert snapshot["format"] == "repro-metrics/1"

    def test_buckets_non_cumulative_with_inf_entry(self):
        snapshot = json_snapshot(sample_registry())
        walk = snapshot["histograms"]["repro_walk_steps"]
        assert [bucket["count"] for bucket in walk["buckets"]] == [2, 0, 1, 1]
        assert walk["buckets"][-1]["le"] == "+Inf"
        assert walk["count"] == 4 and walk["sum"] == 14

    def test_counters_and_gauges_sections(self):
        snapshot = json_snapshot(sample_registry())
        assert snapshot["counters"]["repro_updates_total"]["value"] == 42
        assert snapshot["gauges"]["repro_largest_batch"]["value"] == 7
        assert snapshot["gauges"]["repro_largest_batch"]["unit"] == "keys"


class TestWriteSidecar:
    def test_strips_results_extension(self, tmp_path):
        out = tmp_path / "run.json"
        json_path, prom_path = write_sidecar(sample_registry(), str(out))
        assert json_path == str(tmp_path / "run.metrics.json")
        assert prom_path == str(tmp_path / "run.metrics.prom")

    def test_bare_base_path_kept(self, tmp_path):
        json_path, _ = write_sidecar(sample_registry(),
                                     str(tmp_path / "run"))
        assert json_path == str(tmp_path / "run.metrics.json")

    def test_both_files_parse(self, tmp_path):
        json_path, prom_path = write_sidecar(sample_registry(),
                                             str(tmp_path / "run.json"))
        with open(json_path) as handle:
            assert json.load(handle)["format"] == "repro-metrics/1"
        with open(prom_path) as handle:
            assert parse_prometheus_text(handle.read())


class TestTableExports:
    def test_stats_counters_export_under_expected_names(self):
        table = VisionEmbedder(capacity=300, value_bits=8, seed=3)
        instrument(table)
        table.insert_many((key, key % 256) for key in range(250))
        samples = parse_prometheus_text(prometheus_text(table.metrics))
        stats = table.stats
        assert samples["repro_updates_total"] == stats.updates == 250
        assert samples["repro_update_failures_total"] == stats.update_failures
        assert samples["repro_reconstructions_total"] == stats.reconstructions
        assert samples["repro_repair_steps_total"] == stats.repair_steps
        assert samples["repro_batch_inserts_total"] == stats.batch_inserts
        assert samples["repro_batch_keys_total"] == stats.batch_keys
        assert samples["repro_largest_batch"] == stats.largest_batch

    def test_plain_stats_export_without_instrumentation(self):
        # Even with no hooks, TableStats-as-view makes metrics exportable.
        stats = TableStats(updates=3, repair_steps=5)
        samples = parse_prometheus_text(prometheus_text(stats.registry))
        assert samples["repro_updates_total"] == 3
        assert samples["repro_repair_steps_total"] == 5
