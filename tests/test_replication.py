"""Control-plane → data-plane replication: messages keep replicas exact."""

import random

import numpy as np
import pytest

from repro.core.replication import (
    DataPlaneReplica,
    PublishingVisionEmbedder,
    SnapshotMessage,
    UpdateMessage,
)


def _pairs(n, value_bits, seed):
    rng = random.Random(seed)
    pairs = {}
    while len(pairs) < n:
        pairs[rng.getrandbits(48)] = rng.getrandbits(value_bits)
    return pairs


class TestSubscription:
    def test_subscribe_sends_snapshot(self):
        publisher = PublishingVisionEmbedder(100, 8, seed=1)
        received = []
        publisher.subscribe(received.append)
        assert len(received) == 1
        assert isinstance(received[0], SnapshotMessage)

    def test_inserts_emit_update_messages(self):
        publisher = PublishingVisionEmbedder(100, 8, seed=1)
        received = []
        publisher.subscribe(received.append)
        publisher.insert("k", 5)
        updates = [m for m in received if isinstance(m, UpdateMessage)]
        assert updates, "an insert that changes the table must emit writes"
        assert all(m.delta != 0 for m in updates)


class TestReplicaConsistency:
    def test_replica_tracks_inserts_exactly(self):
        publisher = PublishingVisionEmbedder(500, 8, seed=2)
        replica = DataPlaneReplica()
        publisher.subscribe(replica.apply)
        pairs = _pairs(500, 8, 2)
        for key, value in pairs.items():
            publisher.insert(key, value)
        assert replica.state_equals(publisher)
        for key, value in pairs.items():
            assert replica.lookup(key) == value

    def test_replica_tracks_updates_and_deletes(self):
        publisher = PublishingVisionEmbedder(300, 4, seed=3)
        replica = DataPlaneReplica()
        publisher.subscribe(replica.apply)
        pairs = _pairs(300, 4, 3)
        for key, value in pairs.items():
            publisher.insert(key, value)
        for key in list(pairs)[:60]:
            pairs[key] = (pairs[key] + 1) % 16
            publisher.update(key, pairs[key])
        for key in list(pairs)[60:90]:
            publisher.delete(key)  # fast space untouched: no message needed
        assert replica.state_equals(publisher)
        keys = np.fromiter(pairs, dtype=np.uint64)
        expected = publisher.lookup_batch(keys)
        assert np.array_equal(replica.lookup_batch(keys), expected)

    def test_reconstruction_resyncs_via_snapshot(self):
        publisher = PublishingVisionEmbedder(200, 4, seed=4)
        replica = DataPlaneReplica()
        publisher.subscribe(replica.apply)
        pairs = _pairs(200, 4, 4)
        for key, value in pairs.items():
            publisher.insert(key, value)
        publisher.reconstruct()
        assert replica.snapshots_applied >= 2
        assert replica.state_equals(publisher)
        for key, value in pairs.items():
            assert replica.lookup(key) == value

    def test_late_subscriber_catches_up(self):
        publisher = PublishingVisionEmbedder(200, 4, seed=5)
        pairs = _pairs(200, 4, 5)
        for key, value in pairs.items():
            publisher.insert(key, value)
        replica = DataPlaneReplica()
        publisher.subscribe(replica.apply)  # snapshot carries full state
        assert replica.state_equals(publisher)

    def test_two_replicas_identical(self):
        publisher = PublishingVisionEmbedder(200, 4, seed=6)
        a, b = DataPlaneReplica(), DataPlaneReplica()
        publisher.subscribe(a.apply)
        publisher.subscribe(b.apply)
        for key, value in _pairs(200, 4, 6).items():
            publisher.insert(key, value)
        keys = np.arange(1000, dtype=np.uint64)
        assert np.array_equal(a.lookup_batch(keys), b.lookup_batch(keys))


class TestReplicaErrors:
    def test_update_before_snapshot_rejected(self):
        replica = DataPlaneReplica()
        with pytest.raises(RuntimeError):
            replica.apply(UpdateMessage(cell=(0, 0), delta=1))
        with pytest.raises(RuntimeError):
            replica.lookup(1)

    def test_unknown_message_rejected(self):
        replica = DataPlaneReplica()
        with pytest.raises(TypeError):
            replica.apply("not a message")

    def test_ready_flag(self):
        publisher = PublishingVisionEmbedder(10, 4, seed=1)
        replica = DataPlaneReplica()
        assert not replica.ready
        publisher.subscribe(replica.apply)
        assert replica.ready
