"""Dataset generators: sizes, determinism, distributions."""

import numpy as np
import pytest

from repro.datasets import (
    DATASET_NAMES,
    dblp,
    load,
    mac_table,
    machine_learning,
    random_keys,
    random_pairs,
    synthetic_like,
    uniform_queries,
    zipf_queries,
)
from repro.datasets.real_world import (
    DBLP_SIZE,
    MAC_TABLE_SIZE,
    MACHINE_LEARNING_SIZE,
)


class TestRandomKeys:
    def test_exact_count_and_uniqueness(self):
        keys = random_keys(5000, seed=1)
        assert len(keys) == 5000
        assert len(np.unique(keys)) == 5000

    def test_deterministic(self):
        assert np.array_equal(random_keys(100, seed=7), random_keys(100, seed=7))

    def test_seed_changes_keys(self):
        assert not np.array_equal(random_keys(100, seed=1),
                                  random_keys(100, seed=2))

    def test_key_bits_bound(self):
        keys = random_keys(1000, seed=1, key_bits=20)
        assert int(keys.max()) < 1 << 20

    def test_impossible_request_rejected(self):
        with pytest.raises(ValueError):
            random_keys(10, seed=1, key_bits=3)

    def test_dense_small_space(self):
        # Drawing all 2^8 distinct keys must terminate and be exact.
        keys = random_keys(256, seed=1, key_bits=8)
        assert len(np.unique(keys)) == 256


class TestRandomPairs:
    def test_value_range(self):
        _keys, values = random_pairs(2000, value_bits=3, seed=5)
        assert int(values.max()) < 8

    def test_values_use_full_range(self):
        _keys, values = random_pairs(2000, value_bits=2, seed=5)
        assert set(np.unique(values).tolist()) == {0, 1, 2, 3}


class TestQueries:
    def test_uniform_queries_from_key_set(self):
        keys = random_keys(500, seed=2)
        queries = uniform_queries(keys, 2000, seed=3)
        assert len(queries) == 2000
        assert set(queries.tolist()) <= set(keys.tolist())

    def test_zipf_queries_are_skewed(self):
        keys = random_keys(1000, seed=4)
        queries = zipf_queries(keys, 20_000, seed=5, alpha=1.0)
        _unique, counts = np.unique(queries, return_counts=True)
        top_share = np.sort(counts)[::-1][:10].sum() / len(queries)
        # With alpha=1 over 1000 ranks, the top-10 keys draw far more than
        # the uniform 1% share.
        assert top_share > 0.2

    def test_zipf_alpha_validation(self):
        with pytest.raises(ValueError):
            zipf_queries(random_keys(10, seed=1), 10, seed=1, alpha=0)

    def test_zipf_empty_keys_rejected(self):
        with pytest.raises(ValueError):
            zipf_queries(np.array([], dtype=np.uint64), 10, seed=1)


class TestRealWorldStandins:
    def test_paper_sizes(self):
        assert mac_table().size == MAC_TABLE_SIZE == 2731
        assert machine_learning(scale=0.01).size == round(
            MACHINE_LEARNING_SIZE * 0.01
        )
        assert load("DBLP", scale=0.001).size == round(DBLP_SIZE * 0.001)

    def test_mac_table_key_width(self):
        dataset = mac_table()
        assert dataset.key_bits == 48
        assert int(dataset.keys.max()) < 1 << 48

    def test_all_values_fit_value_bits(self):
        for name in DATASET_NAMES:
            dataset = load(name, scale=0.01)
            assert int(dataset.values.max()) < 1 << dataset.value_bits

    def test_keys_unique(self):
        dataset = mac_table()
        assert len(np.unique(dataset.keys)) == dataset.size

    def test_deterministic(self):
        a = dblp(scale=0.005)
        b = dblp(scale=0.005)
        assert np.array_equal(a.keys, b.keys)
        assert np.array_equal(a.values, b.values)

    def test_scale_validation(self):
        with pytest.raises(ValueError):
            mac_table(scale=0)
        with pytest.raises(ValueError):
            mac_table(scale=1.5)

    def test_pairs_iteration(self):
        dataset = mac_table(scale=0.01)
        pairs = list(dataset.pairs())
        assert len(pairs) == dataset.size
        assert all(isinstance(k, int) for k, _ in pairs)


class TestRegistry:
    def test_unknown_name(self):
        with pytest.raises(ValueError):
            load("NotADataset")

    def test_synthetic_like_matches_scale(self):
        real = mac_table(scale=0.5)
        twin = synthetic_like(real, seed=9)
        assert twin.size == real.size
        assert twin.value_bits == real.value_bits
        assert twin.name == "SynMACTable"
        assert not np.array_equal(twin.keys, real.keys)
