"""Paper-adjacent scale: the packed + static path at 10^5 pairs.

The throughput experiments run laptop-scale by design (DESIGN.md §4), but
the *capacity* machinery — static peeling, bit-packed storage, vectorised
lookups — handles paper-adjacent sizes directly. This suite loads 100k+
pairs (the paper's MACTable x40, ~6% of its 1M FPGA case) and checks
correctness, memory, and failure counts at that size.
"""

import numpy as np
import pytest

from repro.core import VisionEmbedder
from repro.datasets.synthetic import random_pairs

N = 120_000


@pytest.fixture(scope="module")
def big_table():
    keys, values = random_pairs(N, 4, seed=99)
    table = VisionEmbedder(N, value_bits=4, seed=12, packed=True)
    table.bulk_load(zip(keys.tolist(), values.tolist()))
    return table, keys, values


class TestPaperScale:
    def test_all_pairs_loaded(self, big_table):
        table, keys, _values = big_table
        assert len(table) == N

    def test_batch_lookups_exact(self, big_table):
        table, keys, values = big_table
        assert np.array_equal(table.lookup_batch(keys), values)

    def test_static_build_had_no_failures(self, big_table):
        table, _keys, _values = big_table
        # Peeling at 1.7 cells/key succeeds on the first seed w.h.p.
        assert table.stats.update_failures == 0
        assert table.stats.reconstructions == 0

    def test_memory_is_bit_level(self, big_table):
        table, _keys, _values = big_table
        # 120k pairs x 4 bits x 1.7 = ~102 KB packed (+pad); far below
        # the ~1.6 MB a word-per-cell table would hold.
        assert table._table.backing_bytes < 0.2e6
        assert table.space_cost == pytest.approx(1.7, abs=0.01)

    def test_dynamic_updates_still_work_at_scale(self, big_table):
        table, keys, values = big_table
        sample = keys[:200].tolist()
        for key in sample:
            table.update(key, 9)
        assert all(table.lookup(key) == 9 for key in sample)
        # Restore for other tests (module-scoped fixture).
        for key, value in zip(sample, values[:200].tolist()):
            table.update(key, int(value))

    def test_failure_probability_model_at_scale(self):
        """At n >= 1e5 the theoretical failure probability is below 1e-4 —
        the paper's '< 0.001 at 1M' claim, from the Theorem 2+3 model."""
        from repro.analysis.failure import update_failure_probability

        assert update_failure_probability(120_000, value_bits=4) < 1e-4
