"""Key-stored cuckoo baseline: the contrast class to VO tables."""

import random

import numpy as np
import pytest

from repro.baselines.keystore import CuckooKeyValueTable
from repro.core.errors import DuplicateKey, KeyNotFound


def _pairs(n, value_bits, seed):
    rng = random.Random(seed)
    pairs = {}
    while len(pairs) < n:
        pairs[rng.getrandbits(48)] = rng.getrandbits(value_bits)
    return pairs


def _filled(n=800, value_bits=8, seed=2, **kwargs):
    table = CuckooKeyValueTable(n, value_bits, seed=seed, **kwargs)
    pairs = _pairs(n, value_bits, seed)
    for key, value in pairs.items():
        table.insert(key, value)
    return table, pairs


class TestBasics:
    def test_insert_lookup(self):
        table, pairs = _filled()
        for key, value in pairs.items():
            assert table.lookup(key) == value
        table.check_invariants()

    def test_absence_is_detectable(self):
        """The key-stored advantage VO tables give up."""
        table, _ = _filled(mode="full")
        assert table.lookup("never-added") is None
        assert table.lookup(1 << 60) is None

    def test_duplicate_rejected(self):
        table, pairs = _filled(n=50)
        with pytest.raises(DuplicateKey):
            table.insert(next(iter(pairs)), 0)

    def test_update_and_delete(self):
        table, pairs = _filled(n=300)
        changed = list(pairs)[:40]
        for key in changed:
            table.update(key, (pairs[key] + 1) % 256)
        for key in list(pairs)[40:80]:
            table.delete(key)
        for key in changed:
            assert table.lookup(key) == (pairs[key] + 1) % 256
        for key in list(pairs)[40:80]:
            assert table.lookup(key) is None
        assert len(table) == 260
        table.check_invariants()

    def test_missing_key_operations_rejected(self):
        table, _ = _filled(n=30)
        with pytest.raises(KeyNotFound):
            table.update("ghost", 1)
        with pytest.raises(KeyNotFound):
            table.delete("ghost")

    def test_value_validation(self):
        table = CuckooKeyValueTable(10, 4)
        with pytest.raises(ValueError):
            table.insert(1, 16)

    def test_high_load_insertion_with_kicks(self):
        table, pairs = _filled(n=1500, seed=5)
        assert len(table) == 1500
        table.check_invariants()

    def test_batch_lookup_encoding(self):
        table, pairs = _filled(n=200)
        keys = np.fromiter(pairs, dtype=np.uint64)
        out = table.lookup_batch(keys)
        for key, encoded in zip(keys.tolist(), out.tolist()):
            assert encoded == pairs[key] + 1
        aliens = np.array([1 << 60], dtype=np.uint64)
        assert table.lookup_batch(aliens)[0] == 0


class TestFingerprintMode:
    def test_members_answer_exactly(self):
        table, pairs = _filled(mode="fingerprint", fingerprint_bits=16)
        for key, value in pairs.items():
            assert table.lookup(key) == value

    def test_false_positive_rate_formula(self):
        table = CuckooKeyValueTable(100, 4, mode="fingerprint",
                                    fingerprint_bits=12)
        assert table.false_positive_rate == pytest.approx(8 / 4096)
        assert CuckooKeyValueTable(100, 4).false_positive_rate == 0.0

    def test_alien_false_positives_near_rate(self):
        table, _ = _filled(n=1000, mode="fingerprint", fingerprint_bits=8)
        aliens = range(1 << 60, (1 << 60) + 20_000)
        hits = sum(1 for key in aliens if table.lookup(key) is not None)
        # Expected rate ~ occupancy-adjusted 8/256 ≈ 3%; assert the order.
        assert hits / 20_000 < 0.08

    def test_fingerprint_space_much_smaller_than_full(self):
        full = CuckooKeyValueTable(1000, 4, key_bits=64, mode="full")
        fp = CuckooKeyValueTable(1000, 4, mode="fingerprint",
                                 fingerprint_bits=12)
        assert fp.space_bits < full.space_bits / 3


class TestSpaceContrast:
    def test_vo_table_is_an_order_smaller(self):
        """The paper's §I motivation, measured: for 48-bit keys and 1-bit
        values, the VO table beats the key-stored design by >10x."""
        from repro.core import VisionEmbedder

        pairs = _pairs(2000, 1, 7)
        vo = VisionEmbedder(2000, 1, seed=3)
        kv = CuckooKeyValueTable(2000, 1, key_bits=48, seed=3)
        for key, value in pairs.items():
            vo.insert(key, value)
            kv.insert(key, value)
        assert kv.space_bits > 10 * vo.space_bits

    def test_fingerprint_is_intermediate(self):
        from repro.core import VisionEmbedder

        pairs = _pairs(1000, 1, 8)
        vo = VisionEmbedder(1000, 1, seed=3)
        fp = CuckooKeyValueTable(1000, 1, mode="fingerprint",
                                 fingerprint_bits=12, seed=3)
        kv = CuckooKeyValueTable(1000, 1, key_bits=48, seed=3)
        for key, value in pairs.items():
            vo.insert(key, value)
            fp.insert(key, value)
            kv.insert(key, value)
        assert vo.space_bits < fp.space_bits < kv.space_bits


class TestReconstruction:
    def test_overload_reconstructs_or_survives(self):
        # Push past the nominal load; the table reseeds as needed and must
        # stay correct throughout.
        table = CuckooKeyValueTable(200, 4, seed=9, bucket_load=0.99,
                                    max_kicks=30)
        pairs = _pairs(200, 4, 9)
        for key, value in pairs.items():
            table.insert(key, value)
        table.check_invariants()
        for key, value in pairs.items():
            assert table.lookup(key) == value

    def test_validation(self):
        with pytest.raises(ValueError):
            CuckooKeyValueTable(0, 4)
        with pytest.raises(ValueError):
            CuckooKeyValueTable(10, 4, mode="psychic")
