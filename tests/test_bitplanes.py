"""Bit-plane value store used by the two-hash baselines."""

import numpy as np
import pytest

from repro.baselines.bitplanes import BitPlaneStore


class TestBasics:
    def test_initially_zero(self):
        store = BitPlaneStore(8, 4)
        assert all(store.get(i) == 0 for i in range(8))

    def test_space_bits(self):
        assert BitPlaneStore(100, 7).space_bits == 700

    def test_xor_roundtrip(self):
        store = BitPlaneStore(8, 8)
        store.xor(3, 0xA5)
        assert store.get(3) == 0xA5
        store.xor(3, 0xA5)
        assert store.get(3) == 0

    def test_xor_many(self):
        store = BitPlaneStore(8, 4)
        store.xor_many(np.array([0, 2, 4]), 0b1011)
        assert store.get(0) == 0b1011
        assert store.get(1) == 0
        assert store.get(2) == 0b1011

    @pytest.mark.parametrize("cells,bits", [(0, 4), (4, 0), (4, 65)])
    def test_invalid_parameters(self, cells, bits):
        with pytest.raises(ValueError):
            BitPlaneStore(cells, bits)

    def test_clear(self):
        store = BitPlaneStore(4, 4)
        store.xor(1, 7)
        store.clear()
        assert store.get(1) == 0


class TestPairLookup:
    def test_scalar_pair(self):
        a = BitPlaneStore(4, 8)
        b = BitPlaneStore(4, 8)
        a.xor(1, 0b1100)
        b.xor(2, 0b1010)
        assert a.xor_pair_lookup(b, 1, 2) == 0b0110

    def test_self_pair(self):
        store = BitPlaneStore(4, 8)
        store.xor(0, 9)
        store.xor(1, 12)
        assert store.xor_pair_lookup(store, 0, 1) == 9 ^ 12
        assert store.xor_pair_lookup(store, 0, 0) == 0

    def test_batch_matches_scalar(self):
        rng = np.random.default_rng(0)
        a = BitPlaneStore(32, 6)
        b = BitPlaneStore(16, 6)
        for i in range(32):
            a.xor(i, int(rng.integers(0, 64)))
        for i in range(16):
            b.xor(i, int(rng.integers(0, 64)))
        us = rng.integers(0, 32, size=200)
        vs = rng.integers(0, 16, size=200)
        batch = a.xor_pair_lookup_batch(b, us, vs)
        for pos in range(200):
            assert int(batch[pos]) == a.xor_pair_lookup(
                b, int(us[pos]), int(vs[pos])
            )

    def test_single_bit_values(self):
        store = BitPlaneStore(4, 1)
        store.xor(0, 1)
        assert store.xor_pair_lookup(store, 0, 1) == 1
