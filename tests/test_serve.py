"""The serving layer: batcher semantics, protocol, and the live server.

Three tiers, each one event loop per test via ``asyncio.run`` (the suite
has no async plugin, and a fresh loop per test is also the isolation the
batcher's lazily-started flush task wants):

- :class:`MicroBatcher` in isolation against a recording handler — the
  ordering, admission-control, window-expiry, and drain guarantees its
  docstring promises, including the edge cases (single op flushed by
  window expiry, oversized op admitted on an empty queue, shutdown
  mid-batch draining accepted work, a handler raise failing the whole
  batch but only that batch).
- The wire protocol's pure functions — body validation, the
  exception ↔ status-code table round-tripping both directions, HTTP
  framing parsers against hand-built byte streams.
- A real :class:`TableServer` over a small :class:`ShardedEmbedder`,
  driven by the async client (and :class:`ServerThread` by the sync
  client): end-to-end operations, per-request error isolation inside a
  coalesced batch, 429 shedding, the observability endpoints, and
  graceful shutdown answering everything it accepted.
"""

import asyncio
import json

import pytest

from repro.core.errors import (
    DuplicateKey,
    KeyNotFound,
    ReconstructionFailed,
    SpaceExhausted,
    UpdateFailure,
)
from repro.core.sharded import ShardedEmbedder
from repro.obs import MetricsRegistry, parse_prometheus_text
from repro.serve import (
    AsyncServeClient,
    BatchOp,
    BatcherClosed,
    MicroBatcher,
    Overloaded,
    ProtocolError,
    ServeClient,
    ServeConfig,
    ServeError,
    ServerThread,
    TableServer,
)
from repro.serve.protocol import (
    ServeProtocolError,
    error_response,
    exception_from,
    parse_keys,
    parse_pairs,
    read_http_request,
    read_http_response,
    render_http_request,
    render_http_response,
)


def make_table(n_keys=0, capacity=4096, value_bits=12):
    table = ShardedEmbedder(
        capacity=capacity, value_bits=value_bits, num_shards=2, seed=5
    )
    if n_keys:
        table.insert_batch(
            list(range(1, n_keys + 1)),
            [k % (1 << value_bits) for k in range(1, n_keys + 1)],
        )
    return table


# ---------------------------------------------------------------------------
# MicroBatcher semantics (recording handler, no table, no sockets)
# ---------------------------------------------------------------------------


class RecordingHandler:
    """Echoes each op's keys back as its result; records batch shapes."""

    def __init__(self):
        self.batches = []

    def __call__(self, batch):
        self.batches.append([(op.kind, list(op.keys)) for op in batch])
        return [list(op.keys) for op in batch]


def test_batcher_single_op_flushed_by_window_expiry():
    """One lone op must not wait for a full batch — the window flushes it."""
    async def scenario():
        handler = RecordingHandler()
        batcher = MicroBatcher(handler, max_batch=1024, window_s=0.005)
        result = await batcher.submit(BatchOp("lookup", [1, 2, 3]))
        assert result == [1, 2, 3]
        assert handler.batches == [[("lookup", [1, 2, 3])]]
        await batcher.close()

    asyncio.run(scenario())


def test_batcher_zero_window_flushes_immediately():
    async def scenario():
        handler = RecordingHandler()
        batcher = MicroBatcher(handler, max_batch=1024, window_s=0.0)
        assert await batcher.submit(BatchOp("lookup", [9])) == [9]
        assert batcher.batches_flushed == 1
        await batcher.close()

    asyncio.run(scenario())


def test_batcher_coalesces_concurrent_submissions():
    """Ops arriving within one window land in one handler call, in order."""
    async def scenario():
        handler = RecordingHandler()
        batcher = MicroBatcher(handler, max_batch=1024, window_s=0.02)
        results = await asyncio.gather(
            batcher.submit(BatchOp("lookup", [1])),
            batcher.submit(BatchOp("insert", [2], [20])),
            batcher.submit(BatchOp("lookup", [3])),
        )
        assert results == [[1], [2], [3]]
        assert len(handler.batches) == 1
        assert [kind for kind, _ in handler.batches[0]] == \
            ["lookup", "insert", "lookup"]
        await batcher.close()

    asyncio.run(scenario())


def test_batcher_full_batch_flushes_before_window():
    """max_batch key-ops flush at once even with a very long window."""
    async def scenario():
        handler = RecordingHandler()
        batcher = MicroBatcher(handler, max_batch=4, window_s=60.0)
        results = await asyncio.gather(
            *[batcher.submit(BatchOp("lookup", [i, i])) for i in range(4)]
        )
        assert results == [[i, i] for i in range(4)]
        # 8 key-ops with a 4-op budget: two batches of two requests each,
        # neither waiting out the 60 s window.
        assert [len(b) for b in handler.batches] == [2, 2]
        await batcher.close()

    asyncio.run(scenario())


def test_batcher_never_splits_a_request():
    """An op larger than max_batch is admitted (empty queue) and flushes
    alone rather than being chopped."""
    async def scenario():
        handler = RecordingHandler()
        batcher = MicroBatcher(handler, max_batch=4, max_queue=4,
                               window_s=0.001)
        result = await batcher.submit(BatchOp("lookup", list(range(10))))
        assert result == list(range(10))
        assert [len(b) for b in handler.batches] == [1]
        await batcher.close()

    asyncio.run(scenario())


def test_batcher_sheds_past_queue_bound():
    """Admission control: the op that would exceed max_queue raises
    Overloaded before enqueueing; earlier ops are unaffected."""
    async def scenario():
        release = asyncio.Event()

        async def run():
            batcher = MicroBatcher(
                lambda batch: [list(op.keys) for op in batch],
                max_batch=4, max_queue=8, window_s=60.0,
            )
            first = asyncio.ensure_future(
                batcher.submit(BatchOp("lookup", [1, 2, 3])))
            await asyncio.sleep(0)  # let it enqueue (depth 3 < max_batch 4)
            with pytest.raises(Overloaded):
                await batcher.submit(BatchOp("lookup", list(range(6))))
            assert batcher.ops_shed == 1
            assert batcher.depth == 3  # the shed op left no residue
            await batcher.close()  # drains the queued op
            assert await first == [1, 2, 3]

        await run()
        release.set()

    asyncio.run(scenario())


def test_batcher_close_drains_accepted_work_and_rejects_new():
    """Shutdown mid-batch: everything accepted resolves, late submitters
    get BatcherClosed."""
    async def scenario():
        handler = RecordingHandler()
        batcher = MicroBatcher(handler, max_batch=1024, window_s=60.0)
        pending = [
            asyncio.ensure_future(batcher.submit(BatchOp("lookup", [i])))
            for i in range(5)
        ]
        await asyncio.sleep(0)  # all five queued, window far away
        await batcher.close()
        assert [await f for f in pending] == [[i] for i in range(5)]
        with pytest.raises(BatcherClosed):
            await batcher.submit(BatchOp("lookup", [99]))
        await batcher.close()  # idempotent

    asyncio.run(scenario())


def test_batcher_handler_raise_fails_batch_not_loop():
    """A handler exception fails that batch's futures; the next batch
    executes normally."""
    async def scenario():
        calls = {"n": 0}

        def flaky(batch):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("boom")
            return [list(op.keys) for op in batch]

        batcher = MicroBatcher(flaky, max_batch=1024, window_s=0.001)
        with pytest.raises(RuntimeError):
            await batcher.submit(BatchOp("lookup", [1]))
        assert await batcher.submit(BatchOp("lookup", [2])) == [2]
        await batcher.close()

    asyncio.run(scenario())


def test_batcher_per_op_exception_result():
    """An Exception instance in the result list fails only that op."""
    async def scenario():
        def handler(batch):
            return [
                KeyNotFound("nope") if op.kind == "update" else list(op.keys)
                for op in batch
            ]

        batcher = MicroBatcher(handler, max_batch=1024, window_s=0.02)
        good, bad = await asyncio.gather(
            batcher.submit(BatchOp("lookup", [1])),
            batcher.submit(BatchOp("update", [2], [20])),
            return_exceptions=True,
        )
        assert good == [1]
        assert isinstance(bad, KeyNotFound)
        await batcher.close()

    asyncio.run(scenario())


def test_batcher_result_length_mismatch_fails_batch():
    async def scenario():
        batcher = MicroBatcher(lambda batch: [], max_batch=8,
                               window_s=0.001)
        with pytest.raises(ValueError, match="0 results"):
            await batcher.submit(BatchOp("lookup", [1]))
        await batcher.close()

    asyncio.run(scenario())


def test_batcher_rejects_bad_parameters():
    async def scenario():
        with pytest.raises(ValueError):
            MicroBatcher(lambda b: [], max_batch=0)
        with pytest.raises(ValueError):
            MicroBatcher(lambda b: [], max_batch=8, max_queue=4)
        with pytest.raises(ValueError):
            MicroBatcher(lambda b: [], window_s=-1.0)

    asyncio.run(scenario())


# ---------------------------------------------------------------------------
# Protocol: schemas, the error table, HTTP framing
# ---------------------------------------------------------------------------


def test_parse_keys_validation():
    assert parse_keys({"keys": [1, "a"]}) == [1, "a"]
    for bad in ({}, {"keys": []}, {"keys": "a"}, {"keys": [1.5]},
                {"keys": [True]}, {"keys": [None]}):
        with pytest.raises(ProtocolError):
            parse_keys(bad)


def test_parse_pairs_validation():
    assert parse_pairs({"keys": [1], "values": [2]}) == ([1], [2])
    for bad in ({"keys": [1]}, {"keys": [1], "values": [1, 2]},
                {"keys": [1], "values": ["x"]},
                {"keys": [1], "values": [True]}):
        with pytest.raises(ProtocolError):
            parse_pairs(bad)


@pytest.mark.parametrize("exc,status,code", [
    (Overloaded("q"), 429, "overloaded"),
    (BatcherClosed("d"), 503, "shutting_down"),
    (DuplicateKey("k"), 409, "duplicate_key"),
    (KeyNotFound("k"), 404, "key_not_found"),
    (ValueError("v"), 400, "bad_request"),
])
def test_error_table_round_trips(exc, status, code):
    got_status, body = error_response(exc)
    assert got_status == status
    assert body["error"] == code
    rebuilt = exception_from(got_status, body)
    assert type(rebuilt) is type(exc)


def test_unknown_error_code_becomes_protocol_drift_error():
    # an unrecognised code means server/client version drift — the
    # typed ServeProtocolError (still a ServeError) says so
    rebuilt = exception_from(418, {"error": "teapot", "detail": "short"})
    assert isinstance(rebuilt, ServeProtocolError)
    assert isinstance(rebuilt, ServeError)
    assert rebuilt.status == 418
    assert "teapot" in str(rebuilt)


def test_internal_code_stays_plain_serve_error():
    rebuilt = exception_from(500, {"error": "internal", "detail": "boom"})
    assert isinstance(rebuilt, ServeError)
    assert not isinstance(rebuilt, ServeProtocolError)


@pytest.mark.parametrize("exc,status,code", [
    (UpdateFailure("walk budget"), 500, "update_failure"),
    (ReconstructionFailed("peel stalled"), 507, "reconstruction_failed"),
    (TypeError("bad key type"), 400, "bad_request"),
])
def test_new_error_table_entries_mapped(exc, status, code):
    got_status, body = error_response(exc)
    assert got_status == status
    assert body["error"] == code


def test_missing_response_field_raises_protocol_error():
    from repro.serve.client import _field_int, _field_list

    with pytest.raises(ServeProtocolError):
        _field_list({"nope": []}, "values")
    with pytest.raises(ServeProtocolError):
        _field_list({"values": 3}, "values")
    with pytest.raises(ServeProtocolError):
        _field_int({"values": []}, "inserted")
    with pytest.raises(ServeProtocolError):
        _field_int({"inserted": True}, "inserted")
    with pytest.raises(ServeProtocolError):
        _field_int("not a dict", "inserted")
    assert _field_int({"inserted": 4}, "inserted") == 4
    assert _field_list({"values": [1, 2]}, "values") == [1, 2]


def test_http_framing_round_trip():
    async def scenario():
        reader = asyncio.StreamReader()
        reader.feed_data(render_http_request(
            "POST", "/v1/lookup", b'{"keys":[1]}', host="h"))
        reader.feed_eof()
        method, path, headers, body = await read_http_request(reader, 1 << 20)
        assert (method, path, body) == ("POST", "/v1/lookup", b'{"keys":[1]}')
        assert headers["content-length"] == "12"

        reader = asyncio.StreamReader()
        reader.feed_data(render_http_response(200, b'{"values":[5]}'))
        reader.feed_eof()
        status, headers, body = await read_http_response(reader)
        assert (status, body) == (200, b'{"values":[5]}')
        assert headers["connection"] == "keep-alive"

    asyncio.run(scenario())


def test_http_request_rejects_transfer_encoding():
    """Chunked framing is refused outright — honouring Content-Length
    only while ignoring Transfer-Encoding would parse the chunk bytes as
    the next pipelined request."""
    async def scenario():
        reader = asyncio.StreamReader()
        reader.feed_data(
            b"POST /v1/lookup HTTP/1.1\r\n"
            b"Host: h\r\n"
            b"Transfer-Encoding: chunked\r\n"
            b"\r\n"
            b"c\r\n{\"keys\":[1]}\r\n0\r\n\r\n"
        )
        reader.feed_eof()
        with pytest.raises(ProtocolError) as info:
            await read_http_request(reader, 1 << 20)
        assert info.value.status == 501

    asyncio.run(scenario())


def test_http_request_body_limit_and_eof():
    async def scenario():
        reader = asyncio.StreamReader()
        reader.feed_data(render_http_request("POST", "/x", b"12345"))
        reader.feed_eof()
        with pytest.raises(ProtocolError) as info:
            await read_http_request(reader, max_body_bytes=4)
        assert info.value.status == 413

        reader = asyncio.StreamReader()
        reader.feed_eof()
        assert await read_http_request(reader, 1 << 20) is None

    asyncio.run(scenario())


def test_serve_config_validation_and_unbatched():
    config = ServeConfig(batch_window_ms=2.0, max_batch=64, max_queue=128)
    assert config.batch_window_s == 0.002
    solo = config.unbatched()
    assert solo.max_batch == 1 and solo.batch_window_ms == 0.0
    assert solo.max_queue == 128  # admission bound survives
    with pytest.raises(ValueError):
        ServeConfig(max_batch=0)
    with pytest.raises(ValueError):
        ServeConfig(max_batch=64, max_queue=32)
    with pytest.raises(ValueError):
        ServeConfig(batch_window_ms=-1.0)


# ---------------------------------------------------------------------------
# End-to-end: TableServer + AsyncServeClient
# ---------------------------------------------------------------------------


def run_with_server(scenario, table=None, config=None, registry=None):
    """Start a TableServer on an ephemeral port, run ``scenario(server,
    table)``, always stop the server."""
    table = table if table is not None else make_table()
    config = config if config is not None else ServeConfig()

    async def main():
        server = TableServer(table, config, registry=registry)
        await server.start()
        try:
            await scenario(server, table)
        finally:
            await server.stop()

    asyncio.run(main())


def test_server_crud_round_trip():
    async def scenario(server, table):
        async with AsyncServeClient(port=server.port) as client:
            assert await client.insert([("a", 1), ("b", 2), (7, 3)]) == 3
            assert await client.lookup(["a", "b", 7]) == [1, 2, 3]
            assert await client.update([("a", 9)]) == 1
            assert await client.lookup(["a"]) == [9]
            assert await client.delete(["a", "b"]) == 2
            assert len(table) == 1  # the int key survives

    run_with_server(scenario)


def test_server_maps_library_errors_to_statuses():
    async def scenario(server, table):
        async with AsyncServeClient(port=server.port) as client:
            await client.insert([("dup", 1)])
            with pytest.raises(DuplicateKey):
                await client.insert([("dup", 2)])
            with pytest.raises(KeyNotFound):
                await client.update([("missing", 1)])
            with pytest.raises(KeyNotFound):
                await client.delete(["missing"])
            # an empty keys array is a 400; the client rebuilds the
            # error table's inverse for bad_request, which is ValueError
            with pytest.raises(ValueError):
                await client.lookup([])
            # the failures left the table consistent
            assert await client.lookup(["dup"]) == [1]

    run_with_server(scenario)


def test_server_isolates_failing_request_within_batch():
    """Two inserts coalesced into one batch: the duplicate fails, the
    innocent one lands."""
    async def scenario(server, table):
        async with AsyncServeClient(port=server.port) as c1, \
                AsyncServeClient(port=server.port) as c2:
            await c1.insert([("taken", 5)])
            good, bad = await asyncio.gather(
                c1.insert([("fresh", 6)]),
                c2.insert([("taken", 7), ("casualty", 8)]),
                return_exceptions=True,
            )
            assert good == 1
            assert isinstance(bad, DuplicateKey)
            assert await c1.lookup(["fresh"]) == [6]
            # the failing request was all-or-nothing rejected
            assert len(table) == 2

    run_with_server(
        scenario, config=ServeConfig(batch_window_ms=20.0))


class _PrefixExhaustingTable:
    """``insert_batch`` applies a prefix, then raises SpaceExhausted —
    the partial-application contract the real tables document."""

    def __init__(self):
        self.calls = 0
        self.applied = []

    def insert_batch(self, keys, values):
        self.calls += 1
        self.applied.extend(keys[:1])
        raise SpaceExhausted("no room")


class _PerKeyTable:
    """Scalar-insert-only stub: no ``insert_batch``, no rollback."""

    def __init__(self):
        self.data = {}

    def insert(self, key, value):
        if key in self.data:
            raise DuplicateKey(f"key {key!r} already inserted")
        self.data[key] = value


def test_insert_run_space_exhausted_answers_all_without_retry():
    """SpaceExhausted on the merged call leaves a prefix applied, so the
    server must not blind-retry per request (that would answer spurious
    409s for committed keys) — every coalesced request gets the 507."""
    async def scenario():
        table = _PrefixExhaustingTable()
        server = TableServer(table, ServeConfig())
        run = [BatchOp("insert", ["a"], [1]), BatchOp("insert", ["b"], [2])]
        results = server._run_inserts(run)
        assert table.calls == 1  # exactly the merged attempt, no retry
        assert all(isinstance(r, SpaceExhausted) for r in results)

    asyncio.run(scenario())


def test_insert_runs_never_coalesce_without_insert_batch():
    """A table with only scalar ``insert`` has no all-or-nothing batch,
    so requests must execute separately: the first request commits and
    is answered as a success (a merged per-key attempt would apply its
    key, fail on the duplicate, then blind-retry it into a spurious
    409)."""
    async def scenario():
        table = _PerKeyTable()
        server = TableServer(table, ServeConfig())
        run = [
            BatchOp("insert", ["a"], [1]),
            BatchOp("insert", ["a", "b"], [2, 3]),
        ]
        results = server._run_inserts(run)
        assert results[0] == 1
        assert isinstance(results[1], DuplicateKey)
        assert table.data == {"a": 1}

    asyncio.run(scenario())


def test_server_mixed_kind_batch_preserves_arrival_order():
    """A lookup submitted after an insert, coalesced into the same
    micro-batch, observes the insert."""
    async def scenario(server, table):
        async with AsyncServeClient(port=server.port) as c1, \
                AsyncServeClient(port=server.port) as c2:
            insert_result, lookup_result = await asyncio.gather(
                c1.insert([("new", 3)]),
                c2.lookup(["new"]),
            )
            assert insert_result == 1
            assert lookup_result == [3]

    # A long window so both requests land in one batch; gather issues
    # the insert first, so arrival order is insert-then-lookup.
    run_with_server(scenario, config=ServeConfig(batch_window_ms=50.0))


def test_server_sheds_when_queue_full():
    async def scenario(server, table):
        async with AsyncServeClient(port=server.port) as c1, \
                AsyncServeClient(port=server.port) as c2, \
                AsyncServeClient(port=server.port) as c3:
            results = await asyncio.gather(
                c1.lookup([1, 2, 3]),       # admitted (queue empty)
                c2.lookup([4, 5, 6]),       # depth 3+3 = 6 <= 6
                c3.lookup([7, 8]),          # 6+2 > 6 -> shed
                return_exceptions=True,
            )
            overloaded = [r for r in results if isinstance(r, Overloaded)]
            served = [r for r in results if isinstance(r, list)]
            assert len(overloaded) == 1
            assert len(served) == 2

    run_with_server(
        scenario,
        table=make_table(n_keys=10),
        # window long enough that all three arrive while queued
        config=ServeConfig(batch_window_ms=100.0, max_batch=6, max_queue=6),
    )


def test_server_observability_endpoints():
    registry = MetricsRegistry()

    async def scenario(server, table):
        async with AsyncServeClient(port=server.port) as client:
            await client.insert([(1, 1), (2, 2)])
            await client.lookup([1, 2])
            health = await client.health()
            assert health["status"] == "ok"
            assert health["keys"] == 2

            stats = await client.stats()
            assert stats["format"] == "repro-metrics/1"
            assert stats["serve"]["batches_flushed"] >= 2
            assert stats["serve"]["latency"]["p99_s"] > 0
            assert stats["counters"]["repro_serve_requests_total"][
                "value"] >= 2

            text = await client.metrics_text()
            samples = parse_prometheus_text(text)
            assert samples["repro_serve_keys_total"] == 4.0
            assert samples["repro_serve_batch_size_count"] >= 2.0
            # table metrics ride along in the merged registry
            assert "repro_serve_queue_depth" in samples

        # instruments live on the caller's registry too
        assert "repro_serve_requests_total" in registry

    run_with_server(scenario, registry=registry)


def test_server_graceful_stop_answers_inflight_then_rejects():
    """stop() drains: the queued request gets its answer, a request after
    the drain gets connection refused / 503."""
    async def scenario():
        table = make_table(n_keys=4)
        server = TableServer(
            table, ServeConfig(batch_window_ms=200.0))
        await server.start()
        port = server.port
        client = AsyncServeClient(port=port)
        pending = asyncio.ensure_future(client.lookup([1, 2]))
        await asyncio.sleep(0.02)  # parked in the 200 ms window
        await server.stop()
        assert await pending == [1 % (1 << 12), 2 % (1 << 12)]
        await client.close()
        with pytest.raises((ConnectionError, OSError, ProtocolError)):
            fresh = AsyncServeClient(port=port)
            await fresh.lookup([1])

    asyncio.run(scenario())


def test_server_rejects_chunked_request_and_closes():
    """A chunked request gets a 501 and the connection is closed — the
    chunk bytes must never be parsed as the next pipelined request."""
    async def scenario(server, table):
        reader, writer = await asyncio.open_connection(
            "127.0.0.1", server.port)
        writer.write(
            b"POST /v1/lookup HTTP/1.1\r\n"
            b"Host: h\r\n"
            b"Transfer-Encoding: chunked\r\n"
            b"\r\n"
            b"c\r\n{\"keys\":[1]}\r\n0\r\n\r\n"
        )
        await writer.drain()
        status, headers, body = await read_http_response(reader)
        assert status == 501
        assert headers["connection"] == "close"
        assert json.loads(body)["error"] == "bad_request"
        assert await reader.read() == b""  # server hung up
        writer.close()

    run_with_server(scenario)


def test_async_client_timeout_drops_poisoned_connection():
    """After a response timeout the keep-alive stream still owes the old
    response; the client must reconnect rather than read it (or any
    later bytes) as the next request's answer."""
    async def scenario():
        connections = []

        async def handler(reader, writer):
            connections.append(writer)
            first = len(connections) == 1
            while True:
                request = await read_http_request(reader, 1 << 20)
                if request is None:
                    return
                if first:
                    continue  # never answer on the first connection
                writer.write(render_http_response(200, b'{"values":[42]}'))
                await writer.drain()

        server = await asyncio.start_server(
            handler, host="127.0.0.1", port=0)
        port = server.sockets[0].getsockname()[1]
        client = AsyncServeClient(port=port, timeout_s=0.1)
        try:
            with pytest.raises(asyncio.TimeoutError):
                await client.lookup([1])
            assert client._writer is None  # connection was dropped
            assert await client.lookup([1]) == [42]
            assert len(connections) == 2  # ...and a fresh one opened
        finally:
            await client.close()
            server.close()
            await server.wait_closed()

    asyncio.run(scenario())


def test_server_rejects_unknown_paths_and_methods():
    async def scenario(server, table):
        async with AsyncServeClient(port=server.port) as client:
            with pytest.raises(ServeError) as info:
                await client._request("GET", "/nope")
            assert info.value.status == 404
            with pytest.raises(ServeError) as info:
                await client._request("GET", "/v1/lookup")
            assert info.value.status == 405

    run_with_server(scenario)


def test_server_thread_with_sync_client():
    """The synchronous operator path: ServerThread + ServeClient."""
    table = make_table()
    with ServerThread(table, ServeConfig()) as handle:
        with ServeClient(port=handle.port) as client:
            assert client.insert([("k", 4)]) == 1
            assert client.lookup(["k"]) == [4]
            with pytest.raises(DuplicateKey):
                client.insert([("k", 5)])
            health = client.health()
            assert health["keys"] == 1
            samples = parse_prometheus_text(client.metrics_text())
            assert samples["repro_serve_requests_total"] >= 4.0
    # after stop() the port no longer answers
    with pytest.raises((ConnectionError, OSError)):
        with ServeClient(port=handle.port, timeout_s=0.5) as client:
            client.lookup([1])


def test_serve_module_exports_match_api_doc():
    """Every public symbol the package advertises imports from the top."""
    import repro.serve as serve

    for name in serve.__all__:
        assert getattr(serve, name) is not None


# ---------------------------------------------------------------------------
# Loop-lag monitoring: the runtime counterpart of the R6xx static rules
# ---------------------------------------------------------------------------


def test_loop_lag_monitor_samples_and_detects_stalls():
    """The sentinel sees a deliberate blocking sleep as one large sample."""
    import time

    from repro.obs import LoopLagMonitor

    async def scenario():
        registry = MetricsRegistry()
        monitor = LoopLagMonitor(registry, interval_s=0.002)
        monitor.start()
        assert monitor.running
        await asyncio.sleep(0.03)
        healthy = monitor.samples
        assert healthy > 0
        assert monitor.p99_s() < 0.1  # idle loop: lag is scheduling noise
        time.sleep(0.05)  # block the loop on purpose
        await asyncio.sleep(0.01)  # let the late sentinel fire
        buckets = monitor.histogram
        assert buckets.count > healthy
        # the stall shows up: max observed lag is at least ~the sleep
        assert buckets.sum >= 0.04
        await monitor.stop()
        assert not monitor.running

    asyncio.run(scenario())


def test_loop_lag_monitor_rejects_bad_interval():
    from repro.obs import LoopLagMonitor

    with pytest.raises(ValueError):
        LoopLagMonitor(MetricsRegistry(), interval_s=0.0)
    with pytest.raises(ValueError):
        ServeConfig(loop_lag_interval_ms=-1.0)


def test_server_loop_lag_p99_under_budget_during_batched_crud():
    """E2E runtime assertion: batch execution never blocks the loop
    beyond budget, and the histogram is exported on every surface."""
    registry = MetricsRegistry()
    config = ServeConfig(loop_lag_interval_ms=2.0)

    async def scenario(server, table):
        assert server.loop_lag.running
        async with AsyncServeClient(port=server.port) as client:
            pairs = [(f"k{i}", i % 256) for i in range(512)]
            for start in range(0, 512, 128):
                await client.insert(pairs[start:start + 128])
            assert await client.lookup(
                [f"k{i}" for i in range(512)]
            ) == [i % 256 for i in range(512)]
            await client.update([("k0", 9), ("k1", 8)])
            await client.delete([f"k{i}" for i in range(256, 512)])
            await asyncio.sleep(0.03)  # guarantee sentinel wakeups
            assert server.loop_lag.samples > 0
            # generous CI budget: the point is "no multi-hundred-ms
            # stall", not a latency SLO
            assert server.loop_lag.p99_s() < 0.25
            stats = await client.stats()
            lag = stats["serve"]["loop_lag"]
            assert lag["samples"] >= 1 and lag["p99_s"] < 0.25
            metrics = parse_prometheus_text(await client.metrics_text())
            assert metrics["repro_serve_loop_lag_seconds_count"] >= 1

    run_with_server(scenario, config=config, registry=registry)
    # after stop() the monitor task is gone but the histogram survives
    histogram = registry.get("repro_serve_loop_lag_seconds")
    assert histogram is not None and histogram.count > 0


def test_server_loop_lag_disabled_keeps_schema():
    """interval 0 disables sampling; the histogram still registers so
    dashboards keep a stable schema."""
    config = ServeConfig(loop_lag_interval_ms=0.0)

    async def scenario(server, table):
        assert not server.loop_lag.running
        async with AsyncServeClient(port=server.port) as client:
            await client.insert([("a", 1)])
            stats = await client.stats()
            assert stats["serve"]["loop_lag"] == {}
            metrics = parse_prometheus_text(await client.metrics_text())
            assert metrics["repro_serve_loop_lag_seconds_count"] == 0

    run_with_server(scenario, config=config)
