"""Fast-space value table: cell access, XOR lookups, space accounting."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.value_table import ValueTable


class TestConstruction:
    def test_initially_zero(self):
        table = ValueTable(width=8, value_bits=4)
        assert all(table.get((j, t)) == 0 for j in range(3) for t in range(8))

    def test_num_cells_and_space(self):
        table = ValueTable(width=100, value_bits=7)
        assert table.num_cells == 300
        assert table.space_bits == 2100

    def test_custom_array_count(self):
        table = ValueTable(width=10, value_bits=1, num_arrays=4)
        assert table.num_cells == 40

    @pytest.mark.parametrize("width,bits,arrays", [(0, 4, 3), (4, 0, 3),
                                                   (4, 65, 3), (4, 4, 1)])
    def test_invalid_parameters(self, width, bits, arrays):
        with pytest.raises(ValueError):
            ValueTable(width=width, value_bits=bits, num_arrays=arrays)


class TestCellOperations:
    def test_set_get_roundtrip(self):
        table = ValueTable(width=4, value_bits=8)
        table.set((1, 2), 0xAB)
        assert table.get((1, 2)) == 0xAB

    def test_set_masks_to_value_bits(self):
        table = ValueTable(width=4, value_bits=4)
        table.set((0, 0), 0xFF)
        assert table.get((0, 0)) == 0xF

    def test_xor_accumulates(self):
        table = ValueTable(width=4, value_bits=8)
        table.xor((2, 3), 0b1010)
        table.xor((2, 3), 0b0110)
        assert table.get((2, 3)) == 0b1100

    def test_xor_is_involution(self):
        table = ValueTable(width=4, value_bits=8)
        table.set((0, 1), 77)
        table.xor((0, 1), 13)
        table.xor((0, 1), 13)
        assert table.get((0, 1)) == 77

    def test_xor_sum_over_cells(self):
        table = ValueTable(width=4, value_bits=8)
        table.set((0, 0), 0b0001)
        table.set((1, 1), 0b0010)
        table.set((2, 2), 0b0100)
        assert table.xor_sum([(0, 0), (1, 1), (2, 2)]) == 0b0111

    def test_xor_sum_empty_is_zero(self):
        assert ValueTable(4, 8).xor_sum([]) == 0

    def test_64_bit_values(self):
        table = ValueTable(width=2, value_bits=64)
        big = (1 << 64) - 1
        table.set((0, 0), big)
        assert table.get((0, 0)) == big


class TestBatchLookup:
    def test_matches_scalar_xor_sum(self):
        rng = np.random.default_rng(0)
        table = ValueTable(width=32, value_bits=8)
        for j in range(3):
            for t in range(32):
                table.set((j, t), int(rng.integers(0, 256)))
        indices = [rng.integers(0, 32, size=100) for _ in range(3)]
        batch = table.lookup_batch(indices)
        for pos in range(100):
            cells = [(j, int(indices[j][pos])) for j in range(3)]
            assert int(batch[pos]) == table.xor_sum(cells)

    def test_wrong_arity_rejected(self):
        table = ValueTable(width=4, value_bits=8)
        with pytest.raises(ValueError):
            table.lookup_batch([np.zeros(3, dtype=np.int64)] * 2)


class TestLifecycle:
    def test_clear_zeroes_everything(self):
        table = ValueTable(width=4, value_bits=8)
        table.set((0, 0), 9)
        table.clear()
        assert table.get((0, 0)) == 0

    def test_copy_is_independent(self):
        table = ValueTable(width=4, value_bits=8)
        table.set((1, 1), 5)
        clone = table.copy()
        clone.set((1, 1), 7)
        assert table.get((1, 1)) == 5
        assert clone.get((1, 1)) == 7

    def test_equality(self):
        a = ValueTable(width=4, value_bits=8)
        b = ValueTable(width=4, value_bits=8)
        assert a == b
        b.set((0, 0), 1)
        assert a != b

    def test_equality_different_shape(self):
        assert ValueTable(4, 8) != ValueTable(5, 8)

    @given(st.lists(st.tuples(st.integers(0, 2), st.integers(0, 7),
                              st.integers(0, 255)), max_size=40))
    def test_model_based_set_get(self, writes):
        table = ValueTable(width=8, value_bits=8)
        model = {}
        for j, t, value in writes:
            table.set((j, t), value)
            model[(j, t)] = value
        for cell, value in model.items():
            assert table.get(cell) == value
