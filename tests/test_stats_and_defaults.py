"""Small shared pieces: TableStats, workload helpers, interface defaults."""

import numpy as np
import pytest

from repro.bench.workloads import fill_table, make_pairs, try_fill_table
from repro.core.stats import TableStats
from repro.factory import make_table
from repro.table import ValueOnlyTable


class TestTableStats:
    def test_snapshot_is_independent(self):
        stats = TableStats(updates=5, update_failures=1)
        snap = stats.snapshot()
        stats.updates = 99
        assert snap.updates == 5
        assert snap.update_failures == 1

    def test_reset(self):
        stats = TableStats(updates=5, reconstructions=2,
                           reconstruct_seconds=1.5, repair_steps=7,
                           update_failures=3)
        stats.reset()
        assert stats.updates == 0
        assert stats.reconstructions == 0
        assert stats.reconstruct_seconds == 0.0
        assert stats.repair_steps == 0
        assert stats.update_failures == 0

    # -- the registry-view contract (docs/observability.md) -------------

    def test_fields_are_views_over_registry_counters(self):
        stats = TableStats(updates=3)
        counter = stats.registry.get("repro_updates_total")
        assert counter.value == 3
        stats.updates += 1          # attribute write reaches the registry
        assert counter.value == 4
        counter.inc(2)              # registry write reaches the attribute
        assert stats.updates == 6

    def test_unknown_kwarg_rejected(self):
        with pytest.raises(TypeError):
            TableStats(walks=1)

    def test_equality_and_repr(self):
        stats = TableStats(updates=2, repair_steps=5)
        assert stats == TableStats(updates=2, repair_steps=5)
        assert stats != TableStats(updates=2, repair_steps=6)
        assert "updates=2" in repr(stats)

    def test_note_batch_counts_and_histogram(self):
        stats = TableStats()
        stats.note_batch(10)
        stats.note_batch(3)
        assert stats.batch_inserts == 2
        assert stats.batch_keys == 13
        assert stats.largest_batch == 10
        assert stats.registry.get("repro_batch_size").count == 2

    def test_cost_cache_hit_rate(self):
        stats = TableStats()
        assert stats.cost_cache_hit_rate == 0.0
        stats.cost_cache_hits = 3
        stats.cost_cache_misses = 1
        assert stats.cost_cache_hit_rate == pytest.approx(0.75)

    def test_counter_for_hot_path_handles(self):
        stats = TableStats()
        handle = stats.counter_for("cost_cache_hits")
        handle.value += 5           # the raw single-writer fast path
        assert stats.cost_cache_hits == 5


class TestWorkloadHelpers:
    def test_make_pairs_distinct_keys(self):
        keys, values = make_pairs(500, 4, seed=3)
        assert len(np.unique(keys)) == 500
        assert int(values.max()) < 16

    def test_fill_table_dynamic_and_bulk(self):
        keys, values = make_pairs(200, 4, seed=4)
        for name in ("vision", "bloomier"):
            table = make_table(name, 200, 4, seed=1)
            fill_table(table, keys, values)
            assert len(table) == 200

    def test_try_fill_reports_failure(self):
        keys, values = make_pairs(400, 4, seed=5)
        # A table far too small must give up rather than raise.
        tiny = make_table(
            "vision", 50, 4, seed=1,
            config_kwargs={"max_reconstruct_attempts": 2,
                           "reconstruct_efficiency_limit": 1.0},
        )
        assert try_fill_table(tiny, keys, values) is False

    def test_try_fill_success(self):
        keys, values = make_pairs(100, 4, seed=6)
        table = make_table("vision", 100, 4, seed=1)
        assert try_fill_table(table, keys, values) is True


class TestInterfaceDefaults:
    class _MinimalTable(ValueOnlyTable):
        """Smallest conforming implementation, to exercise the defaults."""

        name = "minimal"

        def __init__(self):
            self._store = {}
            self._stats = TableStats()

        @property
        def value_bits(self):
            return 8

        @property
        def space_bits(self):
            return 100

        @property
        def stats(self):
            return self._stats

        def __len__(self):
            return len(self._store)

        def __contains__(self, key):
            return key in self._store

        def insert(self, key, value):
            self._store[key] = value

        def update(self, key, value):
            self._store[key] = value

        def delete(self, key):
            del self._store[key]

        def lookup(self, key):
            return self._store.get(key, 0)

    def test_default_lookup_batch_loops(self):
        table = self._MinimalTable()
        table.insert(3, 7)
        table.insert(4, 9)
        out = table.lookup_batch(np.array([3, 4, 5], dtype=np.uint64))
        assert out.tolist() == [7, 9, 0]

    def test_default_put_and_insert_many(self):
        table = self._MinimalTable()
        table.insert_many([(1, 2), (3, 4)])
        table.put(1, 9)
        assert table.lookup(1) == 9

    def test_default_space_metrics(self):
        table = self._MinimalTable()
        assert table.bits_per_key == float("inf")
        assert table.space_cost == float("inf")
        table.insert(1, 1)
        assert table.bits_per_key == 100
        assert table.space_cost == pytest.approx(100 / 8)
        assert table.failure_events == 0
