"""Coloring Embedder baseline: single-array two-hash table."""

import random

import numpy as np
import pytest

from repro.baselines.coloring import ColoringEmbedder
from repro.core.errors import DuplicateKey, KeyNotFound, UpdateFailure


def _pairs(n, value_bits, seed):
    rng = random.Random(seed)
    pairs = {}
    while len(pairs) < n:
        pairs[rng.getrandbits(48)] = rng.getrandbits(value_bits)
    return pairs


def _filled(n=500, value_bits=4, seed=2):
    table = ColoringEmbedder(n, value_bits, seed=seed)
    pairs = _pairs(n, value_bits, seed)
    for key, value in pairs.items():
        table.insert(key, value)
    return table, pairs


class TestBasics:
    def test_insert_lookup(self):
        table, pairs = _filled()
        for key, value in pairs.items():
            assert table.lookup(key) == value
        table.check_invariants()

    def test_duplicate_rejected(self):
        table, pairs = _filled(50)
        with pytest.raises(DuplicateKey):
            table.insert(next(iter(pairs)), 0)

    def test_update_and_delete(self):
        table, pairs = _filled(300)
        changed = list(pairs)[:50]
        for key in changed:
            table.update(key, (pairs[key] + 3) % 16)
        for key in list(pairs)[50:100]:
            table.delete(key)
        table.check_invariants()
        for key in changed:
            assert table.lookup(key) == (pairs[key] + 3) % 16
        assert len(table) == 250

    def test_unknown_key_operations_rejected(self):
        table, _ = _filled(20)
        with pytest.raises(KeyNotFound):
            table.update("ghost", 1)
        with pytest.raises(KeyNotFound):
            table.delete("ghost")


class TestSpace:
    def test_default_sizing_is_2_2(self):
        table = ColoringEmbedder(1000, 4, seed=1)
        assert table.space_bits == pytest.approx(2.2 * 4 * 1000, rel=0.01)


class TestSelfCollision:
    def _find_self_colliding_key(self, table):
        for key in range(100_000):
            if table._hashes[0].index(key) == table._hashes[1].index(key):
                return key
        pytest.skip("no self-colliding key found")

    def test_self_loop_with_zero_value_is_fine(self):
        table = ColoringEmbedder(20, 4, seed=1)
        key = self._find_self_colliding_key(table)
        table.insert(key, 0)
        assert table.lookup(key) == 0

    def test_self_loop_with_nonzero_value_fails_and_reconstructs(self):
        table = ColoringEmbedder(20, 4, seed=1)
        key = self._find_self_colliding_key(table)
        table.insert(key, 5)
        # The insert triggered the unsolvable self-collision, counted as a
        # failure, then reconstruction with new hashes made it fit.
        assert table.stats.update_failures >= 1
        assert table.stats.reconstructions >= 1
        assert table.lookup(key) == 5


class TestFailures:
    def test_constant_failure_rate(self):
        failures = 0
        for trial in range(30):
            table = ColoringEmbedder(300, 4, seed=trial)
            for key, value in _pairs(300, 4, trial + 500).items():
                table.insert(key, value)
            failures += table.stats.reconstructions
        assert failures >= 3


class TestBatchLookup:
    def test_matches_scalar(self):
        table, pairs = _filled(300)
        keys = np.fromiter(pairs, dtype=np.uint64)
        batch = table.lookup_batch(keys)
        for key, value in zip(keys.tolist(), batch.tolist()):
            assert value == table.lookup(key)
