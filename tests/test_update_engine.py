"""FPGA data plane under update load: FIFO, ports, end-to-end replication."""

import random

import pytest

from repro.core.replication import PublishingVisionEmbedder, UpdateMessage
from repro.core.value_table import ValueTable
from repro.fpga.update_engine import DataPlaneDevice, UpdateEngine


def _pairs(n, value_bits, seed):
    rng = random.Random(seed)
    pairs = {}
    while len(pairs) < n:
        pairs[rng.getrandbits(48)] = rng.getrandbits(value_bits)
    return pairs


class TestUpdateEngine:
    def test_one_write_per_cycle(self):
        table = ValueTable(8, 4)
        engine = UpdateEngine(table)
        for i in range(5):
            engine.enqueue(UpdateMessage(cell=(0, i), delta=1))
        applied = sum(1 for _ in range(5) if engine.step())
        assert applied == 5
        assert engine.occupancy == 0
        assert all(table.get((0, i)) == 1 for i in range(5))

    def test_idle_step(self):
        engine = UpdateEngine(ValueTable(4, 4))
        assert engine.step() is False

    def test_max_occupancy_tracked(self):
        engine = UpdateEngine(ValueTable(4, 4))
        for i in range(7):
            engine.enqueue(UpdateMessage(cell=(0, 0), delta=1))
        assert engine.max_occupancy == 7


class TestDataPlaneDevice:
    def _device_with_publisher(self, n=600, seed=4):
        publisher = PublishingVisionEmbedder(n, 8, seed=seed)
        device = DataPlaneDevice()
        publisher.subscribe(device.apply)
        return publisher, device

    def test_requires_snapshot(self):
        device = DataPlaneDevice()
        with pytest.raises(RuntimeError):
            device.step(1)
        with pytest.raises(RuntimeError):
            device.apply(UpdateMessage(cell=(0, 0), delta=1))

    def test_tracks_control_plane_exactly(self):
        publisher, device = self._device_with_publisher()
        pairs = _pairs(600, 8, 4)
        for key, value in pairs.items():
            publisher.insert(key, value)
        # Drain the FIFO, then every lookup must be bit-exact.
        while device._engine.occupancy:
            device.step(None)
        keys = list(pairs)
        results, stats = device.run_queries(keys)
        assert results == [pairs[k] for k in keys]
        assert stats.writes_applied > 0

    def test_lookup_throughput_unaffected_by_update_load(self):
        publisher, device = self._device_with_publisher(n=400)
        pairs = _pairs(400, 8, 5)
        items = list(pairs.items())
        for key, value in items[:200]:
            publisher.insert(key, value)
        while device._engine.occupancy:
            device.step(None)
        # Enqueue a burst of updates, then stream queries: port B drains
        # one write per cycle while port A still accepts one lookup per
        # cycle — II stays 1.
        for key, value in items[200:]:
            publisher.insert(key, value)
        backlog = device._engine.occupancy
        assert backlog > 0
        stable = [k for k, _ in items[:200]]
        results, stats = device.run_queries(stable)
        assert stats.lookups_completed == len(stable)
        # Cycles spent on lookups: len + pipeline drain; the update FIFO
        # drained concurrently, not additively (plus any leftover cycles
        # if the backlog outlasted the query stream).
        assert stats.max_fifo_occupancy >= backlog

    def test_updates_eventually_visible(self):
        publisher, device = self._device_with_publisher(n=300)
        pairs = _pairs(300, 8, 6)
        for key, value in pairs.items():
            publisher.insert(key, value)
        victim = next(iter(pairs))
        publisher.update(victim, (pairs[victim] + 1) % 256)
        while device._engine.occupancy:
            device.step(None)
        assert device.lookup_now(victim) == (pairs[victim] + 1) % 256

    def test_snapshot_stall_accounting(self):
        publisher, device = self._device_with_publisher(n=300)
        stalls_before = device.stats().snapshot_stall_cycles
        publisher.reconstruct()
        stalls_after = device.stats().snapshot_stall_cycles
        # A reconstruction ships a snapshot: a full-RAM rewrite worth of
        # stall cycles — the cost the paper's O(1/n) failure rate avoids.
        assert stalls_after - stalls_before >= publisher.num_cells

    def test_throughput_metric(self):
        publisher, device = self._device_with_publisher(n=200)
        pairs = _pairs(200, 8, 7)
        for key, value in pairs.items():
            publisher.insert(key, value)
        while device._engine.occupancy:
            device.step(None)
        _results, stats = device.run_queries(list(pairs))
        mops = stats.lookup_throughput(279.64)
        assert mops == pytest.approx(279.64 * stats.lookups_completed
                                     / stats.cycles)
