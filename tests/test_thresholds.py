"""Hypergraph space thresholds, measured by the repository's own peeler."""

import pytest

from repro.analysis.thresholds import (
    empirical_peel_threshold,
    empirical_xorsat_threshold,
    peel_success,
    space_landscape,
    two_core_balance,
)


class TestPeelThreshold:
    def test_succeeds_well_above(self):
        assert peel_success(1.35, num_cells=30_000, seed=1)

    def test_fails_well_below(self):
        assert not peel_success(1.10, num_cells=30_000, seed=1)

    def test_threshold_near_asymptote(self):
        measured = empirical_peel_threshold(num_cells=36_000, seed=2, steps=7)
        # Asymptote 1.222; finite-size drift allowed.
        assert measured == pytest.approx(1.222, abs=0.04)


class TestXorsatThreshold:
    def test_core_overdetermined_below(self):
        assert two_core_balance(1.03, num_cells=30_000, seed=3) > 0

    def test_core_underdetermined_above(self):
        assert two_core_balance(1.15, num_cells=30_000, seed=3) < 0

    def test_threshold_near_asymptote(self):
        measured = empirical_xorsat_threshold(num_cells=36_000, seed=4,
                                              steps=7)
        assert measured == pytest.approx(1.089, abs=0.03)


class TestLandscape:
    def test_ladder_is_ordered(self):
        rows = space_landscape(num_cells=18_000, seed=5)
        ratios = [ratio for _name, ratio, _prov in rows]
        assert ratios == sorted(ratios)

    def test_contains_the_papers_constants(self):
        rows = {name: ratio for name, ratio, _ in
                space_landscape(num_cells=18_000, seed=6)}
        assert rows["vision measured minimum"] == 1.58
        assert rows["depth-1 vision convergence"] == pytest.approx(1.756,
                                                                   abs=0.01)
        assert rows["Othello as shipped"] == 2.33

    def test_vision_sits_in_the_open_gap(self):
        """The paper's contribution located: between the peel bound and
        the depth-1 bound."""
        rows = {name: ratio for name, ratio, _ in
                space_landscape(num_cells=18_000, seed=7)}
        assert (rows["peelability / Bloomier"]
                < rows["vision measured minimum"]
                < rows["depth-1 vision convergence"])
