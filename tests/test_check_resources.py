"""R804/R805 — OS-resource lifecycle and corruption-swallow rules
(repro.check.rules_resources)."""

import textwrap

from repro.check import check_source


def run(source, rel="repro/other/module.py"):
    return check_source(textwrap.dedent(source), rel)


def rules_of(violations):
    return [v.rule for v in violations]


class TestR804ResourceLifecycle:
    def test_unclosed_binding_flagged(self):
        found = run(
            """
            def fetch(host, port):
                conn = HTTPConnection(host, port)
                return conn
            """
        )
        assert rules_of(found) == ["R804"]
        assert "conn" in found[0].message

    def test_unbound_acquisition_flagged(self):
        found = run(
            """
            def slurp(path):
                return open(path).read()
            """
        )
        assert rules_of(found) == ["R804"]
        assert "not bound" in found[0].message

    def test_with_managed_clean(self):
        found = run(
            """
            def slurp(path):
                with open(path) as handle:
                    return handle.read()
            """
        )
        assert found == []

    def test_binding_with_closer_elsewhere_clean(self):
        found = run(
            """
            class Client:
                def connect(self, host, port):
                    self._conn = HTTPConnection(host, port)

                def close(self):
                    self._conn.close()
            """
        )
        assert found == []

    def test_executor_shutdown_counts_as_closer(self):
        found = run(
            """
            class Pool:
                def start(self):
                    self._pool = ThreadPoolExecutor(4)

                def stop(self):
                    self._pool.shutdown()
            """
        )
        assert found == []

    def test_noqa_sanctions_handoff(self):
        found = run(
            """
            def acquire(path):
                handle = open(path)  # repro: noqa[R804] -- ownership handed to the caller, which closes it
                return handle
            """
        )
        assert found == []


class TestR805CorruptionSwallow:
    def test_silent_corruption_swallow_flagged(self):
        found = run(
            """
            def load(path):
                try:
                    return parse(path)
                except ReconstructionFailed:
                    pass
            """
        )
        assert rules_of(found) == ["R805"]
        assert "ReconstructionFailed" in found[0].message

    def test_blanket_exception_swallow_flagged(self):
        found = run(
            """
            def load(path):
                try:
                    return parse(path)
                except Exception:
                    pass
            """
        )
        assert rules_of(found) == ["R805"]

    def test_logging_handler_clean(self):
        found = run(
            """
            def load(path, log):
                try:
                    return parse(path)
                except ReconstructionFailed as exc:
                    log.warning("reconstruction failed: %s", exc)
                    return None
            """
        )
        assert found == []

    def test_recording_handler_clean(self):
        # assigning the exception somewhere counts as handling
        found = run(
            """
            def load(path, task):
                try:
                    return parse(path)
                except Exception as exc:
                    task.error = exc
            """
        )
        assert found == []

    def test_narrow_handler_not_checked(self):
        found = run(
            """
            def load(mapping, key):
                try:
                    return mapping[key]
                except KeyError:
                    pass
            """
        )
        assert found == []

    def test_noqa_sanctions_teardown(self):
        found = run(
            """
            def teardown(tasks):
                for task in tasks:
                    try:
                        task.cancel()
                    except Exception:  # repro: noqa[R805] -- teardown drain: every task already answered
                        pass
            """
        )
        assert found == []
