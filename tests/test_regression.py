"""Regression comparison of experiment results across runs."""

import json

import pytest

from repro.bench.cli import main
from repro.bench.regression import (
    Delta,
    compare_documents,
    compare_run,
    load_baseline,
    result_to_document,
)
from repro.bench.reporting import ExperimentResult


def _result(rows, name="figX", columns=("algorithm", "Mops")):
    return ExperimentResult(
        experiment=name, title="t", columns=list(columns), rows=rows
    )


class TestCompareDocuments:
    def _docs(self, old_rows, new_rows):
        return (
            result_to_document(_result(old_rows)),
            result_to_document(_result(new_rows)),
        )

    def test_identical_runs_no_deltas(self):
        old, new = self._docs([("vision", 1.0)], [("vision", 1.0)])
        assert compare_documents(old, new) == []

    def test_small_drift_within_tolerance(self):
        old, new = self._docs([("vision", 1.0)], [("vision", 1.3)])
        assert compare_documents(old, new, tolerance=0.5) == []

    def test_large_drift_flagged(self):
        old, new = self._docs([("vision", 1.0)], [("vision", 3.0)])
        deltas = compare_documents(old, new, tolerance=0.5)
        assert len(deltas) == 1
        assert deltas[0].column == "Mops"
        assert deltas[0].ratio == pytest.approx(3.0)
        assert "x3.00" in deltas[0].render()

    def test_rows_matched_by_labels_not_order(self):
        old, new = self._docs(
            [("vision", 1.0), ("othello", 2.0)],
            [("othello", 2.0), ("vision", 1.0)],
        )
        assert compare_documents(old, new) == []

    def test_new_rows_ignored(self):
        old, new = self._docs([("vision", 1.0)],
                              [("vision", 1.0), ("ludo", 9.0)])
        assert compare_documents(old, new) == []

    def test_schema_change_reported(self):
        old = result_to_document(_result([("vision", 1.0)]))
        new = result_to_document(
            _result([("vision", 1.0, 2.0)],
                    columns=("algorithm", "Mops", "extra"))
        )
        deltas = compare_documents(old, new)
        assert deltas[0].row_label == "<schema>"

    def test_zero_baseline(self):
        old, new = self._docs([("vision", 0.0)], [("vision", 1.0)])
        deltas = compare_documents(old, new)
        assert deltas and deltas[0].ratio == float("inf")


class TestCompareRun:
    def test_missing_experiment_reported(self, tmp_path):
        path = tmp_path / "base.json"
        path.write_text(json.dumps([result_to_document(_result([]))]))
        deltas, missing = compare_run(
            str(path), [_result([], name="other")]
        )
        assert missing == ["other"]
        assert deltas == []

    def test_load_single_document(self, tmp_path):
        path = tmp_path / "base.json"
        path.write_text(json.dumps(result_to_document(_result([]))))
        assert "figX" in load_baseline(str(path))


class TestCliCompare:
    def test_no_regressions_exit_zero(self, tmp_path, capsys):
        base = tmp_path / "base.json"
        assert main(["table1", "--format", "json",
                     "--output", str(base)]) == 0
        capsys.readouterr()
        assert main(["table1", "--compare", str(base)]) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_regression_exit_one(self, tmp_path, capsys):
        base = tmp_path / "base.json"
        doc = result_to_document(
            ExperimentResult(
                experiment="theory", title="t",
                columns=["quantity", "computed", "paper"],
                rows=[["lambda' (E[X_min]=1)", 99.0, 1.709]],
            )
        )
        base.write_text(json.dumps([doc]))
        assert main(["theory", "--compare", str(base)]) == 1
        out = capsys.readouterr().out
        assert "cell(s) moved" in out
