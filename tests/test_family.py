"""Key canonicalisation and seeded index-hash families."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.hashing.family import HashFamily, IndexHasher, key_to_bytes, key_to_u64


class TestKeyToBytes:
    def test_bytes_pass_through(self):
        assert key_to_bytes(b"abc") == b"abc"

    def test_str_utf8(self):
        assert key_to_bytes("héllo") == "héllo".encode("utf-8")

    def test_small_int_is_8_bytes(self):
        assert key_to_bytes(5) == (5).to_bytes(8, "little")

    def test_large_int_grows_in_8_byte_steps(self):
        big = 1 << 100
        encoded = key_to_bytes(big)
        assert len(encoded) == 16
        assert int.from_bytes(encoded, "little") == big

    def test_negative_int_rejected(self):
        with pytest.raises(ValueError):
            key_to_bytes(-1)

    def test_unsupported_type_rejected(self):
        with pytest.raises(TypeError):
            key_to_bytes(3.14)

    def test_numpy_integer_accepted(self):
        assert key_to_bytes(np.uint64(7)) == (7).to_bytes(8, "little")


class TestKeyToU64:
    @given(st.integers(0, (1 << 64) - 1))
    def test_small_ints_identity(self, key):
        assert key_to_u64(key) == key

    def test_str_and_bytes_hash_down(self):
        handle = key_to_u64("alpha")
        assert 0 <= handle < 1 << 64
        assert handle == key_to_u64("alpha")
        assert handle != key_to_u64("beta")

    def test_oversized_int_hashes_down(self):
        handle = key_to_u64(1 << 100)
        assert 0 <= handle < 1 << 64

    def test_distinct_strings_rarely_collide(self):
        handles = {key_to_u64(f"key-{i}") for i in range(5000)}
        assert len(handles) == 5000


class TestIndexHasher:
    def test_range(self):
        hasher = IndexHasher(seed=3, width=17)
        for key in range(500):
            assert 0 <= hasher.index(key) < 17

    def test_str_and_equivalent_bytes_agree(self):
        hasher = IndexHasher(seed=3, width=100)
        assert hasher.index("abc") == hasher.index(b"abc")

    def test_batch_matches_scalar(self):
        hasher = IndexHasher(seed=8, width=101)
        keys = np.arange(1000, dtype=np.uint64)
        batch = hasher.index_batch(keys)
        for key, idx in zip(keys.tolist(), batch.tolist()):
            assert idx == hasher.index(key)

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            IndexHasher(seed=1, width=0)

    def test_width_one_always_zero(self):
        hasher = IndexHasher(seed=1, width=1)
        assert all(hasher.index(k) == 0 for k in range(10))


class TestHashFamily:
    def test_functions_are_independent(self):
        family = HashFamily(7, [1000, 1000, 1000])
        keys = list(range(2000))
        agreement = sum(
            1 for k in keys if family[0].index(k) == family[1].index(k)
        )
        # Independent functions agree with probability ~1/1000.
        assert agreement < 20

    def test_indices_matches_items(self):
        family = HashFamily(1, [10, 20, 30])
        for key in range(50):
            assert family.indices(key) == tuple(h.index(key) for h in family)

    def test_unequal_widths(self):
        family = HashFamily(1, [10, 99])
        assert family[0].width == 10
        assert family[1].width == 99

    def test_indices_batch_matches_scalar(self):
        family = HashFamily(4, [64, 64, 64])
        keys = np.arange(300, dtype=np.uint64)
        batches = family.indices_batch(keys)
        for pos, key in enumerate(keys.tolist()):
            assert tuple(int(b[pos]) for b in batches) == family.indices(key)

    def test_reseeded_changes_all_functions(self):
        family = HashFamily(1, [1000, 1000, 1000])
        fresh = family.reseeded(2)
        for j in range(3):
            diffs = sum(
                1 for k in range(500) if family[j].index(k) != fresh[j].index(k)
            )
            assert diffs > 450

    def test_reseeded_preserves_widths(self):
        family = HashFamily(1, [10, 20])
        assert [h.width for h in family.reseeded(9)] == [10, 20]

    def test_adjacent_master_seeds_uncorrelated(self):
        a = HashFamily(100, [1 << 20])
        b = HashFamily(101, [1 << 20])
        agreement = sum(1 for k in range(300) if a[0].index(k) == b[0].index(k))
        assert agreement == 0

    def test_len_and_iter(self):
        family = HashFamily(1, [5, 5, 5])
        assert len(family) == 3
        assert len(list(family)) == 3
