"""Alien-key value distributions: the VO caveat, measured."""

import pytest

from repro.analysis.alien import (
    alien_value_histogram,
    alien_zero_fraction,
    predicted_zero_fraction_sparse,
    specific_value_collision_probability,
)
from repro.bench.workloads import fill_table, make_pairs
from repro.factory import make_table


def _table_at_load(n, capacity, value_bits=4, seed=3):
    keys, values = make_pairs(n, value_bits, seed)
    # Bias values away from 0 so alien zeros are table zeros, not stored
    # zeros echoed back.
    values = values | 1
    table = make_table("vision", capacity, value_bits, seed=seed)
    fill_table(table, keys, values)
    return table


class TestZeroBias:
    def test_sparse_table_aliens_read_mostly_zero(self):
        table = _table_at_load(n=300, capacity=6000)
        assert alien_zero_fraction(table, num_probes=20_000) > 0.7

    def test_full_table_aliens_spread_out(self):
        table = _table_at_load(n=3000, capacity=3000)
        assert alien_zero_fraction(table, num_probes=20_000) < 0.3

    def test_model_tracks_measurement_when_sparse(self):
        n, capacity = 400, 8000
        table = _table_at_load(n=n, capacity=capacity)
        predicted = predicted_zero_fraction_sparse(n, table.num_cells)
        measured = alien_zero_fraction(table, num_probes=20_000)
        # The model is a lower bound; measurement sits at or above it.
        assert measured >= predicted - 0.05
        assert measured - predicted < 0.25


class TestHistogram:
    def test_probabilities_sum_to_one(self):
        table = _table_at_load(n=1000, capacity=1500)
        histogram = alien_value_histogram(table, num_probes=10_000)
        assert sum(histogram.values()) == pytest.approx(1.0)
        assert all(0 <= value < 16 for value in histogram)

    def test_specific_value_bounded_by_uniform(self):
        """Near full load no single value soaks up the alien mass."""
        table = _table_at_load(n=3000, capacity=3000)
        worst = max(
            specific_value_collision_probability(table, v, num_probes=20_000)
            for v in range(1, 16)
        )
        assert worst < 3.0 / 16  # within 3x of uniform

    def test_deterministic_given_seed(self):
        table = _table_at_load(n=500, capacity=1000)
        a = alien_value_histogram(table, num_probes=5000, seed=7)
        b = alien_value_histogram(table, num_probes=5000, seed=7)
        assert a == b
