"""MurmurHash3 correctness: reference vectors, variants agreement, mixing."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.hashing.murmur3 import murmur3_32, murmur3_32_u64, murmur3_32_u64_batch


class TestReferenceVectors:
    """Published MurmurHash3 x86_32 test vectors."""

    def test_empty_seed_zero(self):
        assert murmur3_32(b"", 0) == 0

    def test_empty_seed_one(self):
        assert murmur3_32(b"", 1) == 0x514E28B7

    def test_empty_seed_all_ones(self):
        assert murmur3_32(b"", 0xFFFFFFFF) == 0x81F16F39

    def test_test_string(self):
        assert murmur3_32(b"test", 0) == 0xBA6BD213

    def test_hello_world(self):
        assert murmur3_32(b"Hello, world!", 0) == 0xC0363E43

    def test_single_byte_tail(self):
        # 1-byte input exercises the tail path alone.
        assert murmur3_32(b"a", 0) == 0x3C2569B2


class TestScalarProperties:
    def test_output_is_32_bit(self):
        for data in (b"", b"x", b"hello world", bytes(range(256))):
            assert 0 <= murmur3_32(data, 7) < 1 << 32

    def test_deterministic(self):
        assert murmur3_32(b"abcdef", 5) == murmur3_32(b"abcdef", 5)

    def test_seed_changes_output(self):
        data = b"some key material"
        outputs = {murmur3_32(data, seed) for seed in range(32)}
        assert len(outputs) == 32

    def test_tail_lengths_all_distinct(self):
        # 0..3 tail bytes take different code paths; results must differ.
        outputs = {murmur3_32(b"abcdefgh"[:n], 3) for n in range(9)}
        assert len(outputs) == 9

    @given(st.binary(max_size=64), st.integers(0, 0xFFFFFFFF))
    def test_always_in_range(self, data, seed):
        assert 0 <= murmur3_32(data, seed) < 1 << 32


class TestU64Variant:
    @given(st.integers(0, (1 << 64) - 1), st.integers(0, 0xFFFFFFFF))
    def test_matches_bytes_encoding(self, key, seed):
        expected = murmur3_32(key.to_bytes(8, "little"), seed)
        assert murmur3_32_u64(key, seed) == expected

    def test_zero_key(self):
        assert murmur3_32_u64(0, 0) == murmur3_32(b"\x00" * 8, 0)


class TestBatchVariant:
    def test_matches_scalar(self):
        rng = np.random.default_rng(1)
        keys = rng.integers(0, 1 << 63, size=500, dtype=np.uint64)
        batch = murmur3_32_u64_batch(keys, seed=9)
        for key, hashed in zip(keys.tolist(), batch.tolist()):
            assert hashed == murmur3_32_u64(key, 9)

    def test_empty_batch(self):
        out = murmur3_32_u64_batch(np.array([], dtype=np.uint64), 3)
        assert out.shape == (0,)

    def test_extreme_keys(self):
        keys = np.array([0, 1, (1 << 64) - 1, 1 << 32], dtype=np.uint64)
        batch = murmur3_32_u64_batch(keys, 0)
        for key, hashed in zip(keys.tolist(), batch.tolist()):
            assert hashed == murmur3_32_u64(key, 0)

    def test_output_dtype_and_range(self):
        keys = np.arange(100, dtype=np.uint64)
        out = murmur3_32_u64_batch(keys, 5)
        assert out.dtype == np.uint64
        assert int(out.max()) < 1 << 32


class TestDistribution:
    def test_avalanche_bucket_spread(self):
        # Sequential keys must spread near-uniformly over buckets.
        keys = np.arange(40_000, dtype=np.uint64)
        buckets = murmur3_32_u64_batch(keys, 11) % np.uint64(64)
        counts = np.bincount(buckets.astype(np.int64), minlength=64)
        expected = len(keys) / 64
        assert counts.min() > expected * 0.8
        assert counts.max() < expected * 1.2

    def test_bit_balance(self):
        keys = np.arange(20_000, dtype=np.uint64)
        hashes = murmur3_32_u64_batch(keys, 2)
        for bit in range(32):
            ones = int(((hashes >> np.uint64(bit)) & np.uint64(1)).sum())
            assert 0.45 < ones / len(keys) < 0.55, f"bit {bit} is biased"
