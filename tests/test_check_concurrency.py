"""Dynamic concurrency tooling: vector-clock races, schedule explorer.

Two halves mirror the two modules:

- :mod:`repro.check.vectorclock` — happens-before tracking must order
  fork/join, mutex and RW-gate edges correctly, report unordered
  conflicting accesses with both stacks, and file the documented benign
  race (lock-free lookup vs. in-flight path application) under the
  allowlist instead of failing.
- :mod:`repro.check.scheduler` — deterministic interleavings: exact
  replay, exhaustive/pruned/random enumeration, deadlock detection, and
  the seeded-bug fixtures (a no-op rebuild gate whose bad interleaving
  the explorer provably finds; an unsynchronised writer the detector
  provably catches) while the shipped primitives run clean.

None of these tests sleep: every schedule is driven step-by-step, and
the race fixtures rely on vector-clock ordering (not timing) so they
are deterministic under any OS scheduling.
"""

import json
import threading

import pytest

from repro.check import main
from repro.check.scheduler import (
    CooperativeMutex,
    CooperativeRWLock,
    Scenario,
    ScheduleError,
    embedder_scenario,
    explore,
    footprints_conflict,
    gate_bypass_scenario,
    run_schedule,
)
from repro.check.vectorclock import (
    ClockedMutex,
    ClockedRWLock,
    ClockedValueTable,
    RaceDetector,
    TracedThread,
    VectorClock,
    instrument_concurrent,
)
from repro.core.concurrent import ConcurrentVisionEmbedder
from repro.core.value_table import ValueTable
from repro.hashing import key_to_u64


# ---------------------------------------------------------------------------
# vector clocks / race detector
# ---------------------------------------------------------------------------

class TestVectorClock:
    def test_covers_and_join(self):
        clock = VectorClock()
        clock.increment("a")
        clock.increment("a")
        assert clock.covers("a", 2)
        assert not clock.covers("a", 3)
        assert not clock.covers("b", 1)
        other = VectorClock()
        other.increment("b")
        clock.join(other)
        assert clock.covers("b", 1)


class TestRaceDetector:
    def test_sequential_fork_join_is_ordered(self):
        # t2 starts after t1 joined: the join edge orders every access.
        detector = RaceDetector()
        table = ClockedValueTable(detector, ValueTable(8, 8))
        t1 = TracedThread(detector, lambda: table.xor((0, 1), 3))
        t1.start()
        t1.join()
        t2 = TracedThread(detector, lambda: table.xor((0, 1), 5))
        t2.start()
        t2.join()
        summary = detector.summary()
        assert summary["races"] == 0
        assert summary["benign"] == 0

    def test_unordered_writes_race_with_both_stacks(self):
        # Both started before either joined: no happens-before edge
        # exists, so this is a race regardless of real execution order.
        detector = RaceDetector()
        table = ClockedValueTable(detector, ValueTable(8, 8))
        t1 = TracedThread(detector, lambda: table.xor((0, 1), 3))
        t2 = TracedThread(detector, lambda: table.xor((0, 1), 5))
        t1.start()
        t2.start()
        t1.join()
        t2.join()
        assert detector.summary()["races"] == 1
        report = detector.races[0].describe()
        assert "RACE" in report
        assert "earlier access" in report
        assert "later access" in report
        with pytest.raises(AssertionError):
            detector.assert_race_free()

    def test_mutex_edges_order_writers(self):
        detector = RaceDetector()
        table = ClockedValueTable(detector, ValueTable(8, 8))
        mutex = ClockedMutex(detector, threading.RLock())

        def locked_write(delta):
            with mutex:
                table.xor((0, 1), delta)

        t1 = TracedThread(detector, locked_write, args=(3,))
        t2 = TracedThread(detector, locked_write, args=(5,))
        t1.start()
        t2.start()
        t1.join()
        t2.join()
        summary = detector.summary()
        assert summary["races"] == 0
        assert summary["benign"] == 0
        detector.assert_race_free()

    def test_rw_gate_readers_stay_unordered_but_safe(self):
        # Two gate-protected readers are deliberately unordered; with no
        # writer there is nothing to conflict with.
        detector = RaceDetector()
        table = ClockedValueTable(detector, ValueTable(8, 8))
        gate = ClockedRWLock(detector)

        def gated_read():
            with gate.read():
                table.get((0, 1))

        threads = [TracedThread(detector, gated_read) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert detector.summary()["races"] == 0

    def test_lockfree_lookup_vs_update_is_benign(self):
        # The paper's documented race: xor_sum reading cells while a
        # path application XORs them. Allowlisted, reported separately.
        detector = RaceDetector()
        table = ClockedValueTable(detector, ValueTable(8, 8))
        t1 = TracedThread(
            detector, lambda: table.xor_sum([(0, 1), (1, 1)])
        )
        t2 = TracedThread(detector, lambda: table.xor((0, 1), 5))
        t1.start()
        t2.start()
        t1.join()
        t2.join()
        summary = detector.summary()
        assert summary["races"] == 0
        assert summary["benign"] >= 1
        assert detector.benign[0].benign
        assert "IV-B" in detector.benign[0].why
        detector.assert_race_free()  # benign records do not fail

    def test_instrumented_embedder_workload_race_free(self):
        # The shipped synchronisation discipline: concurrent updates and
        # lookups through the public surface produce no *real* race.
        detector = RaceDetector()
        embedder = ConcurrentVisionEmbedder(256, 8, seed=3)
        for i in range(32):
            embedder.insert(i + 1, (i * 7) % 256)
        instrument_concurrent(embedder, detector)

        def writer():
            for i in range(32):
                embedder.update(i + 1, (i * 11) % 256)

        def reader():
            for i in range(128):
                embedder.lookup(i % 32 + 1)

        t1 = TracedThread(detector, writer, name="writer")
        t2 = TracedThread(detector, reader, name="reader")
        t1.start()
        t2.start()
        t1.join()
        t2.join()
        assert detector.summary()["races"] == 0
        embedder.check_invariants()

    def test_seeded_unsynchronised_write_caught(self):
        # Seeded bug: a rogue thread writing a cell with set() while a
        # legitimate update of the key owning that cell runs under the
        # mutex. The update's search always reads the key's own cells,
        # so an unordered read/set pair is guaranteed — and set() is not
        # on the benign allowlist.
        detector = RaceDetector()
        embedder = ConcurrentVisionEmbedder(256, 8, seed=3)
        for i in range(8):
            embedder.insert(i + 1, i + 1)
        instrument_concurrent(embedder, detector)
        victim_cell = embedder._cells_for(key_to_u64(1))[0]

        def legit():
            for value in range(10, 20):
                embedder.update(1, value)

        def rogue():
            for _ in range(10):
                embedder._table.set(victim_cell, 7)

        t1 = TracedThread(detector, legit, name="legit")
        t2 = TracedThread(detector, rogue, name="rogue")
        t1.start()
        t2.start()
        t1.join()
        t2.join()
        assert detector.summary()["races"] >= 1
        assert any(
            "set" in (race.first.op, race.second.op)
            for race in detector.races
        )


# ---------------------------------------------------------------------------
# schedule explorer
# ---------------------------------------------------------------------------

class TestFootprints:
    def test_conflict_rules(self):
        write = frozenset({(("cell", 0, 1), "write")})
        read_same = frozenset({(("cell", 0, 1), "read")})
        read_other = frozenset({(("cell", 2, 3), "read")})
        table = frozenset({(("table",), "write")})
        lock = frozenset({(("lock", 0), "write")})
        assert footprints_conflict(write, read_same)
        assert not footprints_conflict(read_same, read_same)
        assert not footprints_conflict(write, read_other)
        assert footprints_conflict(table, read_other)
        assert not footprints_conflict(lock, table)
        assert footprints_conflict(None, read_other)


class TestRunSchedule:
    def test_deterministic_and_replayable(self):
        first = run_schedule(embedder_scenario)
        second = run_schedule(embedder_scenario)
        assert first.error is None
        assert first.schedule == second.schedule
        replay = run_schedule(embedder_scenario, prefix=first.schedule)
        assert replay.schedule == first.schedule
        assert replay.error is None

    def test_bad_prefix_reports_divergence(self):
        result = run_schedule(embedder_scenario, prefix=("nonesuch",))
        assert result.error is not None
        assert "diverged" in result.error

    def test_empty_scenario_rejected(self):
        with pytest.raises(ScheduleError, match="no tasks"):
            run_schedule(lambda run: Scenario(tasks={}))


class TestExplore:
    def test_exhaustive_100_distinct_deterministic(self):
        # The acceptance bar: >= 100 distinct interleavings of the
        # insert/lookup/reconstruct scenario, identical across runs.
        first = explore(embedder_scenario, max_schedules=150)
        second = explore(embedder_scenario, max_schedules=150)
        assert first.distinct >= 100
        assert first.schedules == first.distinct  # DFS never repeats
        assert [r.schedule for r in first.results] == \
               [r.schedule for r in second.results]
        assert not first.failures

    def test_correct_gate_tree_exhausts_clean(self):
        outcome = explore(gate_bypass_scenario, max_schedules=500)
        assert outcome.schedules < 500  # tree fully enumerated
        assert not outcome.failures

    def test_broken_gate_interleaving_found(self):
        # Seeded bug: with a no-op rebuild gate the explorer must find a
        # schedule where the lookup reads a half-rebuilt table.
        outcome = explore(
            lambda run: gate_bypass_scenario(run, broken=True),
            max_schedules=500,
        )
        assert outcome.failures
        assert any("torn" in r.error for r in outcome.failures)

    def test_pruning_preserves_the_bug_with_fewer_schedules(self):
        exhaustive = explore(
            lambda run: gate_bypass_scenario(run, broken=True),
            mode="exhaustive", max_schedules=500,
        )
        pruned = explore(
            lambda run: gate_bypass_scenario(run, broken=True),
            mode="pruned", max_schedules=500,
        )
        assert pruned.schedules < exhaustive.schedules
        assert pruned.failures  # sleep sets only skip commuting swaps

    def test_random_mode_is_seeded(self):
        first = explore(
            embedder_scenario, mode="random", max_schedules=10, seed=7
        )
        second = explore(
            embedder_scenario, mode="random", max_schedules=10, seed=7
        )
        assert [r.schedule for r in first.results] == \
               [r.schedule for r in second.results]
        assert not first.failures

    def test_unknown_mode_rejected(self):
        with pytest.raises(ScheduleError, match="unknown"):
            explore(embedder_scenario, mode="chaotic")

    def test_deadlock_found_and_reported(self):
        # Classic lock-order inversion: some interleavings complete,
        # and the explorer finds the ones that deadlock — as findings,
        # not hung tests.
        def factory(run):
            first = CooperativeMutex(run)
            second = CooperativeMutex(run)

            def forward():
                with first:
                    with second:
                        pass

            def backward():
                with second:
                    with first:
                        pass

            return Scenario(tasks={"fwd": forward, "bwd": backward})

        outcome = explore(factory, max_schedules=100)
        assert outcome.deadlocks
        assert any(r.error is None for r in outcome.results)
        report = outcome.deadlocks[0].error
        assert "CooperativeMutex" in report


# ---------------------------------------------------------------------------
# CLI integration
# ---------------------------------------------------------------------------

class TestCliDynamicSections:
    def test_explore_json_sections(self, capsys):
        code = main([
            "src/repro/check/scheduler.py", "--no-baseline",
            "--explore", "--max-schedules", "25", "--format", "json",
        ])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["format"] == "repro-check/1"
        scenarios = payload["explore"]["scenarios"]
        assert scenarios["insert-lookup-reconstruct"]["distinct"] > 0
        assert scenarios["gate-exclusion"]["failures"] == 0

    def test_races_text_section(self, capsys):
        code = main([
            "src/repro/check/vectorclock.py", "--no-baseline", "--races",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "0 real" in out
        assert "benign" in out
