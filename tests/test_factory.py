"""Table factory: names, budget overrides, passthrough options."""

import pytest

from repro.baselines import Bloomier, ColoringEmbedder, Ludo, Othello
from repro.core import ConcurrentVisionEmbedder, EmbedderConfig, VisionEmbedder
from repro.factory import TABLE_NAMES, make_table


class TestNames:
    def test_all_registered_names_build(self):
        for name in TABLE_NAMES:
            table = make_table(name, 100, 4)
            assert table.value_bits == 4

    def test_types(self):
        assert isinstance(make_table("vision", 10, 4), VisionEmbedder)
        assert isinstance(make_table("vision-mt", 10, 4),
                          ConcurrentVisionEmbedder)
        assert isinstance(make_table("bloomier", 10, 4), Bloomier)
        assert isinstance(make_table("othello", 10, 4), Othello)
        assert isinstance(make_table("color", 10, 4), ColoringEmbedder)
        assert isinstance(make_table("ludo", 10, 4), Ludo)

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_table("magic", 10, 4)


class TestSpaceFactorOverrides:
    def test_vision_factor(self):
        table = make_table("vision", 300, 4, space_factor=2.0)
        assert table.num_cells >= 600

    def test_othello_factor_keeps_split(self):
        table = make_table("othello", 1000, 4, space_factor=2.8)
        assert table.space_bits == pytest.approx(2.8 * 4 * 1000, rel=0.01)
        assert table._ma / table._mb == pytest.approx(1.33, rel=0.02)

    def test_color_factor(self):
        table = make_table("color", 1000, 4, space_factor=2.5)
        assert table.space_bits == pytest.approx(2.5 * 4 * 1000, rel=0.01)

    def test_bloomier_factor(self):
        table = make_table("bloomier", 100, 4, space_factor=1.5)
        assert table.space_factor == 1.5

    def test_ludo_factor_adjusts_load(self):
        loose = make_table("ludo", 1000, 4, space_factor=2.0)
        tight = make_table("ludo", 1000, 4, space_factor=1.1)
        assert loose._num_buckets > tight._num_buckets


class TestConfigPassthrough:
    def test_vision_config_kwargs(self):
        table = make_table(
            "vision", 100, 4,
            config_kwargs={"strategy": "simple", "space_factor": 3.0},
        )
        assert table.config.strategy == "simple"
        assert table.config.space_factor == 3.0

    def test_vision_explicit_config(self):
        config = EmbedderConfig(max_repair_steps=99)
        table = make_table("vision", 100, 4, config=config)
        assert table.config.max_repair_steps == 99

    def test_ludo_locator_kwarg(self):
        table = make_table("ludo", 100, 4, locator="vision")
        assert table.locator_kind == "vision"
