"""Result rendering: text tables and experiment reports."""

from repro.bench.reporting import ExperimentResult, format_table


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["name", "value"], [("a", 1), ("long-name", 22)])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert len({len(line.rstrip()) for line in lines}) >= 1
        assert "long-name" in lines[3]

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text and "b" in text

    def test_float_formatting(self):
        text = format_table(["x"], [(0.00012345,), (1234567.0,), (1.5,)])
        assert "0.000123" in text
        assert "1.23e+06" in text
        assert "1.5" in text

    def test_zero(self):
        assert "0" in format_table(["x"], [(0.0,)])


class TestExperimentResult:
    def _result(self):
        return ExperimentResult(
            experiment="figX",
            title="A test figure",
            columns=["n", "Mops"],
            rows=[(10, 1.5), (20, 2.5)],
            notes="shape only",
            parameters={"scale": 1.0},
        )

    def test_render_contains_everything(self):
        text = self._result().render()
        assert "figX" in text
        assert "A test figure" in text
        assert "scale=1.0" in text
        assert "shape only" in text
        assert "Mops" in text

    def test_column_accessor(self):
        result = self._result()
        assert result.column("n") == [10, 20]
        assert result.column("Mops") == [1.5, 2.5]

    def test_column_unknown_raises(self):
        import pytest

        with pytest.raises(ValueError):
            self._result().column("nope")
