"""Ludo baseline: cuckoo buckets, slot seeds, pluggable locator."""

import random

import numpy as np
import pytest

from repro.baselines.ludo import SLOTS_PER_BUCKET, Ludo
from repro.core.errors import DuplicateKey, KeyNotFound


def _pairs(n, value_bits, seed):
    rng = random.Random(seed)
    pairs = {}
    while len(pairs) < n:
        pairs[rng.getrandbits(48)] = rng.getrandbits(value_bits)
    return pairs


def _filled(n=500, value_bits=4, seed=2, **kwargs):
    table = Ludo(n, value_bits, seed=seed, **kwargs)
    pairs = _pairs(n, value_bits, seed)
    for key, value in pairs.items():
        table.insert(key, value)
    return table, pairs


class TestBasics:
    def test_insert_lookup(self):
        table, pairs = _filled()
        for key, value in pairs.items():
            assert table.lookup(key) == value
        table.check_invariants()

    def test_duplicate_rejected(self):
        table, pairs = _filled(50)
        with pytest.raises(DuplicateKey):
            table.insert(next(iter(pairs)), 0)

    def test_update_is_in_place(self):
        table, pairs = _filled(300)
        reconstructions_before = table.stats.reconstructions
        for key in list(pairs)[:60]:
            table.update(key, (pairs[key] + 1) % 16)
        assert table.stats.reconstructions == reconstructions_before
        table.check_invariants()
        for key in list(pairs)[:60]:
            assert table.lookup(key) == (pairs[key] + 1) % 16

    def test_delete(self):
        table, pairs = _filled(200)
        victims = list(pairs)[:50]
        for key in victims:
            table.delete(key)
        assert len(table) == 150
        table.check_invariants()
        with pytest.raises(KeyNotFound):
            table.delete(victims[0])

    def test_unknown_update_rejected(self):
        table, _ = _filled(20)
        with pytest.raises(KeyNotFound):
            table.update("ghost", 1)


class TestBucketMechanics:
    def test_buckets_never_overflow(self):
        table, _ = _filled(800)
        assert all(
            len(members) <= SLOTS_PER_BUCKET for members in table._members
        )

    def test_bucket_seeds_give_distinct_slots(self):
        table, _ = _filled(800)
        table.check_invariants()  # includes the per-bucket slot check

    def test_keys_live_in_candidate_buckets(self):
        table, pairs = _filled(300)
        for key in pairs:
            handle = key
            home = table._home[handle]
            assert home in table._candidates(handle)

    def test_high_load_fill(self):
        # 0.95 slot load must be reachable (the sizing default).
        table, pairs = _filled(1000)
        assert len(table) == 1000


class TestSpace:
    def test_space_formula(self):
        table, _ = _filled(1000, value_bits=4)
        expected = (3.76 + 1.05 * 4) * 1000
        # Vision/othello locator overheads differ a little from the paper's
        # constant; allow 15%.
        assert table.space_bits == pytest.approx(expected, rel=0.15)

    def test_vision_locator_is_smaller(self):
        othello_table = Ludo(1000, 4, seed=1, locator="othello")
        vision_table = Ludo(1000, 4, seed=1, locator="vision")
        assert vision_table.space_bits < othello_table.space_bits

    def test_unknown_locator_rejected(self):
        with pytest.raises(ValueError):
            Ludo(100, 4, locator="martian")


class TestLocatorSwap:
    def test_vision_locator_correctness(self):
        table, pairs = _filled(500, seed=5, locator="vision")
        for key, value in pairs.items():
            assert table.lookup(key) == value
        table.check_invariants()

    def test_failure_events_include_locator(self):
        table, _ = _filled(300, seed=7)
        assert table.failure_events >= table.stats.reconstructions


class TestBatchLookup:
    def test_matches_scalar(self):
        table, pairs = _filled(300)
        keys = np.fromiter(pairs, dtype=np.uint64)
        batch = table.lookup_batch(keys)
        for key, value in zip(keys.tolist(), batch.tolist()):
            assert value == table.lookup(key)

    def test_batch_with_vision_locator(self):
        table, pairs = _filled(300, seed=3, locator="vision")
        keys = np.fromiter(pairs, dtype=np.uint64)
        batch = table.lookup_batch(keys)
        for key, value in zip(keys.tolist(), batch.tolist()):
            assert value == pairs[key]


class TestReconstruction:
    def test_reconstruct_preserves_pairs(self):
        table, pairs = _filled(400, seed=11)
        table._reconstruct()
        table.check_invariants()
        for key, value in pairs.items():
            assert table.lookup(key) == value
