"""Update machinery: strategies, GetCost, deferred paths, eager equivalence."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.assistant_table import AssistantTable
from repro.core.config import DepthPolicy
from repro.core.errors import UpdateFailure
from repro.core.update import (
    SimpleStrategy,
    VisionStrategy,
    eager_update,
    find_update_path,
    make_strategy,
)
from repro.core.value_table import ValueTable
from repro.hashing import HashFamily


def _cells_for(family, key):
    return tuple(enumerate(family.indices(key)))


def _build_state(n, width, value_bits, seed):
    """A consistent (table, assistant) pair built by deferred updates."""
    table = ValueTable(width, value_bits)
    assistant = AssistantTable(width)
    family = HashFamily(seed, [width] * 3)
    strategy = VisionStrategy()
    rng = random.Random(seed)
    for _ in range(n):
        key = rng.getrandbits(48)
        if key in assistant:
            continue
        value = rng.getrandbits(value_bits)
        assistant.add(key, value, _cells_for(family, key))
        plan = find_update_path(table, assistant, key, strategy,
                                len(assistant) / table.num_cells, 200)
        plan.apply(table)
    return table, assistant, family, strategy


def _assert_all_hold(table, assistant):
    for key, value in assistant.pairs():
        assert table.xor_sum(assistant.cells(key)) == value


class TestGetCost:
    def test_depth_limit_returns_bucket_count(self):
        assistant = AssistantTable(width=8)
        assistant.add(1, 0, ((0, 3), (1, 0), (2, 0)))
        assistant.add(2, 0, ((0, 3), (1, 1), (2, 1)))
        strategy = VisionStrategy(DepthPolicy(fixed=1))
        # depth >= max_depth immediately: cost is C_j[t].
        assert strategy._get_cost((0, 3), 99, 1, 1, assistant) == 2
        assert strategy._get_cost((1, 0), 99, 1, 1, assistant) == 1

    def test_deeper_cost_counts_forced_repairs(self):
        assistant = AssistantTable(width=8)
        # Key 1 at cell (0,0); its other cells are private.
        assistant.add(1, 0, ((0, 0), (1, 1), (2, 1)))
        # Key 2 shares (0,0) and has two private alternatives.
        assistant.add(2, 0, ((0, 0), (1, 2), (2, 2)))
        strategy = VisionStrategy(DepthPolicy(fixed=2))
        # Modifying (0,0) for key 1 forces repairing key 2 through one of
        # its free cells (cost C=1 each at the depth limit): total 1 + 1.
        cost = strategy._get_cost((0, 0), 1, 1, 2, assistant)
        assert cost == 2

    def test_choose_prefers_empty_cell(self):
        assistant = AssistantTable(width=8)
        assistant.add(1, 0, ((0, 0), (1, 0), (2, 0)))
        assistant.add(2, 0, ((0, 0), (1, 1), (2, 1)))  # crowds (0,0)
        strategy = VisionStrategy(DepthPolicy(fixed=1))
        choice = strategy.choose(
            [(0, 0), (1, 0), (2, 0)], 1, assistant, 0.1
        )
        # (1,0) and (2,0) hold only key 1 itself; (0,0) holds two keys.
        assert choice in ((1, 0), (2, 0))


class TestSimpleStrategy:
    def test_choice_is_among_candidates(self):
        strategy = SimpleStrategy(random.Random(0))
        assistant = AssistantTable(width=4)
        candidates = [(0, 1), (1, 2), (2, 3)]
        for _ in range(50):
            assert strategy.choose(candidates, 1, assistant, 0.5) in candidates

    def test_uniformity(self):
        strategy = SimpleStrategy(random.Random(0))
        assistant = AssistantTable(width=4)
        candidates = [(0, 1), (1, 2), (2, 3)]
        counts = {c: 0 for c in candidates}
        for _ in range(3000):
            counts[strategy.choose(candidates, 1, assistant, 0.5)] += 1
        assert all(800 < count < 1200 for count in counts.values())


class TestMakeStrategy:
    def test_names(self):
        assert isinstance(make_strategy("vision"), VisionStrategy)
        assert isinstance(make_strategy("simple"), SimpleStrategy)

    def test_unknown(self):
        with pytest.raises(ValueError):
            make_strategy("nope")


class TestFindUpdatePath:
    def test_noop_when_equation_already_holds(self):
        table, assistant, family, strategy = _build_state(0, 64, 4, 1)
        assistant.add(5, 0, _cells_for(family, 5))  # all cells zero, value 0
        plan = find_update_path(table, assistant, 5, strategy, 0.0, 50)
        assert plan.path == set()
        assert plan.steps == 0

    def test_single_key_modifies_one_cell(self):
        table, assistant, family, strategy = _build_state(0, 64, 4, 1)
        assistant.add(5, 9, _cells_for(family, 5))
        plan = find_update_path(table, assistant, 5, strategy, 0.0, 50)
        assert len(plan.path) == 1
        assert plan.v_delta == 9
        plan.apply(table)
        _assert_all_hold(table, assistant)

    def test_table_untouched_until_apply(self):
        table, assistant, family, strategy = _build_state(20, 64, 4, 2)
        snapshot = table.copy()
        key = 1 << 40
        assistant.add(key, 7, _cells_for(family, key))
        plan = find_update_path(table, assistant, key, strategy, 0.1, 50)
        assert table == snapshot
        plan.apply(table)
        _assert_all_hold(table, assistant)

    def test_failure_raises_and_reports_steps(self):
        # A width-1 table cannot satisfy two conflicting equations.
        table = ValueTable(1, 4)
        assistant = AssistantTable(1)
        strategy = VisionStrategy()
        assistant.add(1, 3, ((0, 0), (1, 0), (2, 0)))
        plan = find_update_path(table, assistant, 1, strategy, 0.5, 30)
        plan.apply(table)
        assistant.add(2, 5, ((0, 0), (1, 0), (2, 0)))
        with pytest.raises(UpdateFailure) as info:
            find_update_path(table, assistant, 2, strategy, 0.5, 30)
        assert info.value.steps > 30

    def test_many_inserts_stay_consistent(self):
        table, assistant, _family, _strategy = _build_state(300, 256, 6, 3)
        _assert_all_hold(table, assistant)

    def test_value_change_repairs_neighbours(self):
        table, assistant, family, strategy = _build_state(150, 128, 4, 4)
        key = next(iter(dict(assistant.pairs())))
        assistant.set_value(key, (assistant.value(key) + 1) % 16)
        plan = find_update_path(table, assistant, key, strategy, 0.4, 200)
        plan.apply(table)
        _assert_all_hold(table, assistant)


class TestEagerEquivalence:
    @settings(deadline=None, max_examples=25)
    @given(st.integers(0, 10_000), st.integers(1, 120))
    def test_deferred_matches_eager(self, seed, n):
        """Same strategy, same inserts: both modes satisfy every equation.

        (Choices are deterministic for VisionStrategy, so the final tables
        are identical, not just equivalent.)
        """
        width = max(8, int(n * 1.9 / 3) + 2)
        family = HashFamily(seed, [width] * 3)
        rng = random.Random(seed)
        pairs = []
        seen = set()
        while len(pairs) < n:
            key = rng.getrandbits(40)
            if key in seen:
                continue
            seen.add(key)
            pairs.append((key, rng.getrandbits(4)))

        deferred_table = ValueTable(width, 4)
        deferred_assist = AssistantTable(width)
        eager_table = ValueTable(width, 4)
        eager_assist = AssistantTable(width)
        strategy = VisionStrategy()

        for key, value in pairs:
            cells = tuple(enumerate(family.indices(key)))
            deferred_assist.add(key, value, cells)
            eff = len(deferred_assist) / deferred_table.num_cells
            try:
                plan = find_update_path(
                    deferred_table, deferred_assist, key, strategy, eff, 500
                )
                deferred_failed = False
            except UpdateFailure:
                deferred_failed = True
            eager_assist.add(key, value, cells)
            try:
                eager_update(eager_table, eager_assist, key, strategy, eff, 500)
                eager_failed = False
            except UpdateFailure:
                eager_failed = True
            # A genuinely unsolvable input (e.g. a full 3-cell collision)
            # must fail in both modes; comparison stops there.
            assert deferred_failed == eager_failed
            if deferred_failed:
                return
            plan.apply(deferred_table)

        _assert_all_hold(deferred_table, deferred_assist)
        _assert_all_hold(eager_table, eager_assist)
        assert deferred_table == eager_table
