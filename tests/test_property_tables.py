"""Hypothesis model-based testing: every table vs a plain dict.

The central VO-table invariant — after any sequence of successful inserts,
updates, and deletes, ``lookup(k)`` equals the model's value for every live
key — is exercised with random operation sequences against each algorithm.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.errors import ReproError
from repro.factory import make_table

#: Algorithms cheap enough for hypothesis-scale operation sequences.
NAMES = ("vision", "othello", "color", "ludo")

_ops = st.lists(
    st.tuples(
        st.sampled_from(["insert", "update", "delete", "lookup"]),
        st.integers(0, 39),      # small key space forces collisions
        st.integers(0, 15),
    ),
    max_size=120,
)


def _run_model(name, operations, seed):
    table = make_table(name, capacity=64, value_bits=4, seed=seed)
    model = {}
    for op, key, value in operations:
        try:
            if op == "insert":
                if key not in model:
                    table.insert(key, value)
                    model[key] = value
            elif op == "update":
                if key in model:
                    table.update(key, value)
                    model[key] = value
            elif op == "delete":
                if key in model:
                    table.delete(key)
                    del model[key]
            else:
                if key in model:
                    assert table.lookup(key) == model[key]
        except ReproError:
            # A table may legitimately give up (space); stop the sequence
            # and verify what the model still agrees on below — except for
            # tables whose failure recovery rebuilt state, where we simply
            # accept the exception as a valid terminal outcome.
            break
    assert len(table) == len(model)
    for key, value in model.items():
        assert table.lookup(key) == value, (name, key)


@pytest.mark.parametrize("name", NAMES)
@settings(deadline=None, max_examples=40,
          suppress_health_check=[HealthCheck.too_slow])
@given(operations=_ops, seed=st.integers(0, 1000))
def test_random_operation_sequences(name, operations, seed):
    _run_model(name, operations, seed)


@settings(deadline=None, max_examples=25)
@given(operations=_ops, seed=st.integers(0, 1000))
def test_vision_invariants_hold_throughout(operations, seed):
    """VisionEmbedder additionally exposes check_invariants(); run it after
    every mutation."""
    table = make_table("vision", capacity=64, value_bits=4, seed=seed)
    model = {}
    for op, key, value in operations:
        try:
            if op == "insert" and key not in model:
                table.insert(key, value)
                model[key] = value
            elif op == "update" and key in model:
                table.update(key, value)
                model[key] = value
            elif op == "delete" and key in model:
                table.delete(key)
                del model[key]
        except ReproError:
            break
        table.check_invariants()
    for key, value in model.items():
        assert table.lookup(key) == value


@settings(deadline=None, max_examples=25)
@given(
    st.dictionaries(st.integers(0, 1 << 40), st.integers(0, 255),
                    min_size=1, max_size=80),
    st.integers(0, 100),
)
def test_bloomier_bulk_matches_model(pairs, seed):
    table = make_table("bloomier", capacity=len(pairs), value_bits=8,
                       seed=seed)
    table.insert_many(pairs.items())
    for key, value in pairs.items():
        assert table.lookup(key) == value


@settings(deadline=None, max_examples=20)
@given(
    st.dictionaries(st.integers(0, 1 << 40), st.integers(0, 15),
                    min_size=1, max_size=60),
    st.integers(0, 50),
)
def test_reconstruction_is_lossless(pairs, seed):
    """reconstruct() must preserve every pair under any content."""
    table = make_table("vision", capacity=max(len(pairs), 4), value_bits=4,
                       seed=seed)
    for key, value in pairs.items():
        table.insert(key, value)
    table.reconstruct()
    for key, value in pairs.items():
        assert table.lookup(key) == value
