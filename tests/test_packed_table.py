"""Bit-packed fast-space storage: semantics and real memory compactness."""

import random

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.packed_table import PackedValueTable
from repro.core.value_table import ValueTable


class TestGeometry:
    def test_space_bits_analytic(self):
        table = PackedValueTable(width=100, value_bits=7)
        assert table.space_bits == 2100
        assert table.num_cells == 300

    def test_backing_is_actually_compact(self):
        # 3000 one-bit cells: ~47 words + pad, not 3000 words.
        table = PackedValueTable(width=1000, value_bits=1)
        assert table.backing_bytes <= (3000 // 64 + 2) * 8
        dense = ValueTable(width=1000, value_bits=1)
        assert table.backing_bytes < dense._cells.nbytes / 50

    @pytest.mark.parametrize("width,bits,arrays", [(0, 4, 3), (4, 0, 3),
                                                   (4, 65, 3), (4, 4, 1)])
    def test_invalid_parameters(self, width, bits, arrays):
        with pytest.raises(ValueError):
            PackedValueTable(width=width, value_bits=bits, num_arrays=arrays)


@pytest.mark.parametrize("value_bits", [1, 3, 5, 8, 13, 32, 63, 64])
class TestAgainstDenseReference:
    """Every operation must agree with the word-per-cell reference table."""

    def _tables(self, value_bits, width=37):
        return (
            PackedValueTable(width, value_bits),
            ValueTable(width, value_bits),
        )

    def test_set_get_roundtrip(self, value_bits):
        packed, dense = self._tables(value_bits)
        rng = random.Random(value_bits)
        for _ in range(300):
            cell = (rng.randrange(3), rng.randrange(37))
            value = rng.getrandbits(value_bits)
            packed.set(cell, value)
            dense.set(cell, value)
        for j in range(3):
            for t in range(37):
                assert packed.get((j, t)) == dense.get((j, t))

    def test_xor_agrees(self, value_bits):
        packed, dense = self._tables(value_bits)
        rng = random.Random(value_bits + 99)
        for _ in range(300):
            cell = (rng.randrange(3), rng.randrange(37))
            delta = rng.getrandbits(value_bits)
            packed.xor(cell, delta)
            dense.xor(cell, delta)
        for j in range(3):
            for t in range(37):
                assert packed.get((j, t)) == dense.get((j, t))

    def test_lookup_batch_agrees(self, value_bits):
        packed, dense = self._tables(value_bits)
        rng = random.Random(value_bits + 7)
        for _ in range(200):
            cell = (rng.randrange(3), rng.randrange(37))
            value = rng.getrandbits(value_bits)
            packed.set(cell, value)
            dense.set(cell, value)
        indices = [np.random.default_rng(j).integers(0, 37, size=100)
                   for j in range(3)]
        assert np.array_equal(
            packed.lookup_batch(indices), dense.lookup_batch(indices)
        )

    def test_to_dense_matches(self, value_bits):
        packed, dense = self._tables(value_bits)
        rng = random.Random(value_bits + 3)
        for _ in range(100):
            cell = (rng.randrange(3), rng.randrange(37))
            value = rng.getrandbits(value_bits)
            packed.set(cell, value)
            dense.set(cell, value)
        assert np.array_equal(packed.to_dense(), dense._cells)


class TestLifecycle:
    def test_clear(self):
        table = PackedValueTable(8, 5)
        table.set((1, 3), 17)
        table.clear()
        assert table.get((1, 3)) == 0

    def test_copy_independent(self):
        table = PackedValueTable(8, 5)
        table.set((0, 0), 9)
        clone = table.copy()
        clone.set((0, 0), 3)
        assert table.get((0, 0)) == 9

    def test_equality(self):
        a = PackedValueTable(8, 5)
        b = PackedValueTable(8, 5)
        assert a == b
        b.set((2, 7), 1)
        assert a != b

    def test_load_dense_roundtrip(self):
        table = PackedValueTable(9, 6)
        rng = np.random.default_rng(1)
        dense = rng.integers(0, 64, size=(3, 9), dtype=np.uint64)
        table.load_dense(dense)
        assert np.array_equal(table.to_dense(), dense)

    def test_load_dense_shape_checked(self):
        with pytest.raises(ValueError):
            PackedValueTable(9, 6).load_dense(np.zeros((3, 8), dtype=np.uint64))

    @settings(deadline=None, max_examples=30)
    @given(st.integers(1, 64), st.lists(
        st.tuples(st.integers(0, 2), st.integers(0, 10),
                  st.integers(0, (1 << 64) - 1)),
        max_size=30,
    ))
    def test_model_based(self, value_bits, writes):
        table = PackedValueTable(11, value_bits)
        model = {}
        mask = (1 << value_bits) - 1
        for j, t, value in writes:
            table.set((j, t), value & mask)
            model[(j, t)] = value & mask
        for cell, value in model.items():
            assert table.get(cell) == value


class TestPackedEmbedder:
    def test_full_lifecycle(self):
        from repro.core import VisionEmbedder

        table = VisionEmbedder(1500, value_bits=3, seed=4, packed=True)
        rng = random.Random(4)
        pairs = {}
        while len(pairs) < 1500:
            pairs[rng.getrandbits(44)] = rng.getrandbits(3)
        for key, value in pairs.items():
            table.insert(key, value)
        table.check_invariants()
        keys = np.fromiter(pairs, dtype=np.uint64)
        expected = np.array([pairs[int(k)] for k in keys], dtype=np.uint64)
        assert np.array_equal(table.lookup_batch(keys), expected)
        # Real compactness: ~1.7*3 bits per pair, so ~1 KB for 1500 pairs.
        assert table._table.backing_bytes < 2048

    def test_packed_matches_unpacked_lookups(self):
        from repro.core import VisionEmbedder

        rng = random.Random(6)
        pairs = {rng.getrandbits(44): rng.getrandbits(8) for _ in range(500)}
        packed = VisionEmbedder(500, 8, seed=2, packed=True)
        unpacked = VisionEmbedder(500, 8, seed=2, packed=False)
        for key, value in pairs.items():
            packed.insert(key, value)
            unpacked.insert(key, value)
        keys = np.fromiter(pairs, dtype=np.uint64)
        assert np.array_equal(
            packed.lookup_batch(keys), unpacked.lookup_batch(keys)
        )

    def test_packed_persistence(self, tmp_path):
        from repro.core import VisionEmbedder
        from repro.core.persist import load_embedder, save_embedder

        table = VisionEmbedder(300, 4, seed=3, packed=True)
        rng = random.Random(3)
        pairs = {rng.getrandbits(44): rng.getrandbits(4) for _ in range(300)}
        for key, value in pairs.items():
            table.insert(key, value)
        path = tmp_path / "packed.npz"
        save_embedder(table, path)
        loaded = load_embedder(path)
        assert loaded.packed is True
        for key, value in pairs.items():
            assert loaded.lookup(key) == value

    def test_packed_replication(self):
        from repro.core.replication import (
            DataPlaneReplica,
            PublishingVisionEmbedder,
        )

        publisher = PublishingVisionEmbedder(200, 4, seed=5, packed=True)
        replica = DataPlaneReplica()
        publisher.subscribe(replica.apply)
        rng = random.Random(5)
        pairs = {rng.getrandbits(40): rng.getrandbits(4) for _ in range(200)}
        for key, value in pairs.items():
            publisher.insert(key, value)
        assert replica.state_equals(publisher)
        for key, value in pairs.items():
            assert replica.lookup(key) == value
