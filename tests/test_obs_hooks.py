"""Tracing hooks: event wiring, ring buffer, metrics, thread exactness."""

import threading

import numpy as np
import pytest

from repro.core.concurrent import ConcurrentVisionEmbedder
from repro.core.embedder import VisionEmbedder
from repro.obs import (
    CompositeHooks,
    MetricsHooks,
    WalkHooks,
    WalkTraceRecorder,
    default_metrics,
    instrument,
)


class EventLog(WalkHooks):
    """Records every event as (name, args) for wiring assertions."""

    def __init__(self):
        self.events = []

    def on_walk_start(self, key, attempt, budget):
        self.events.append(("walk_start", key, attempt, budget))

    def on_kick(self, key, cell, stack_depth):
        self.events.append(("kick", key, cell, stack_depth))

    def on_walk_end(self, key, success, steps):
        self.events.append(("walk_end", key, success, steps))

    def on_reconstruct(self, seed, method, seconds, success):
        self.events.append(("reconstruct", seed, method, seconds, success))

    def on_peel_round(self, round_index, peeled):
        self.events.append(("peel", round_index, peeled))

    def named(self, name):
        return [event for event in self.events if event[0] == name]


def fill(table, n, offset=0):
    table.insert_many((key, (key % 255) + 1) for key in range(offset,
                                                             offset + n))


class TestEventWiring:
    def test_walk_events_fire_and_pair_up(self):
        log = EventLog()
        table = VisionEmbedder(capacity=500, value_bits=8, seed=3, hooks=log)
        fill(table, 400)
        starts = log.named("walk_start")
        ends = log.named("walk_end")
        assert len(starts) > 0
        assert len(starts) == len(ends)  # every attempt quiesces or fails
        assert all(event[2] is True for event in ends)  # none exhausted here

    def test_reconstruct_event(self):
        log = EventLog()
        table = VisionEmbedder(capacity=300, value_bits=8, seed=3, hooks=log)
        fill(table, 100)
        old_seed = table.seed
        table.reconstruct("static")
        events = log.named("reconstruct")
        assert len(events) == 1
        _, seed, method, seconds, success = events[0]
        assert seed == table.seed and seed != old_seed
        assert method == "static"
        assert seconds >= 0 and success is True

    def test_peel_events_on_bulk_load(self):
        log = EventLog()
        table = VisionEmbedder(capacity=400, value_bits=8, seed=3, hooks=log)
        table.bulk_load((key, key % 256) for key in range(300))
        peels = log.named("peel")
        assert peels, "bulk_load must emit peel rounds"
        assert [event[1] for event in peels] == list(range(len(peels)))
        assert sum(event[2] for event in peels) == 300

    def test_no_hooks_is_the_default(self):
        table = VisionEmbedder(capacity=100, value_bits=8, seed=3)
        assert table.hooks is None

    def test_set_hooks_after_construction(self):
        log = EventLog()
        table = VisionEmbedder(capacity=200, value_bits=8, seed=3)
        fill(table, 50)
        assert log.events == []
        table.set_hooks(log)
        fill(table, 50, offset=50)
        assert log.named("walk_start")

    def test_default_metrics_context(self):
        with default_metrics(True):
            inside = VisionEmbedder(capacity=100, value_bits=8, seed=3)
        outside = VisionEmbedder(capacity=100, value_bits=8, seed=3)
        assert isinstance(inside.hooks, MetricsHooks)
        assert inside.hooks.registry is inside.stats.registry
        assert outside.hooks is None


class TestHooksParity:
    def test_hooked_table_is_bit_identical(self):
        plain = VisionEmbedder(capacity=500, value_bits=8, seed=9)
        hooked = VisionEmbedder(capacity=500, value_bits=8, seed=9)
        instrument(hooked, traces=8)
        fill(plain, 450)
        fill(hooked, 450)
        assert plain.seed == hooked.seed
        assert np.array_equal(plain._table.to_dense(),
                              hooked._table.to_dense())
        assert plain.stats.updates == hooked.stats.updates
        assert plain.stats.repair_steps == hooked.stats.repair_steps


class TestMetricsHooks:
    def test_histograms_populated_and_consistent(self):
        table = VisionEmbedder(capacity=500, value_bits=8, seed=3)
        instrument(table)
        fill(table, 450)
        registry = table.metrics
        walk = registry.get("repro_walk_steps")
        attempts = registry.get("repro_walk_attempts_total")
        assert walk.count == attempts.value > 0
        # total steps across attempts covers the stats aggregate (retries
        # and rebuild re-walks can only add attempts, never lose steps)
        assert walk.sum >= table.stats.repair_steps
        assert registry.get("repro_kick_depth").count > 0
        assert registry.get("repro_getcost_subtree_cells").count > 0

    def test_shares_the_stats_registry(self):
        table = VisionEmbedder(capacity=200, value_bits=8, seed=3)
        instrument(table)
        fill(table, 100)
        exported = table.metrics.get("repro_updates_total").value
        assert exported == table.stats.updates == 100


class TestWalkTraceRecorder:
    def test_keep_all_ring_buffer_caps_capacity(self):
        recorder = WalkTraceRecorder(capacity=4, keep="all")
        table = VisionEmbedder(capacity=300, value_bits=8, seed=3,
                               hooks=recorder)
        fill(table, 200)
        assert len(recorder) == 4
        assert all(trace.success is True for trace in recorder.traces())
        assert recorder.last() is recorder.traces()[-1]

    def test_keep_failed_records_only_failures(self):
        from repro.core.config import EmbedderConfig
        from repro.core.errors import ReproError

        config = EmbedderConfig(space_factor=1.15, auto_reconstruct=False,
                                max_search_attempts=2)
        table = VisionEmbedder(capacity=400, value_bits=8, seed=7,
                               config=config)
        recorder = instrument(table, traces=16)
        with pytest.raises(ReproError):
            for key in range(2000):
                table.insert(key, key % 256)
        failed = recorder.failed()
        assert failed and failed == recorder.traces()
        trace = failed[-1]
        assert trace.success is False
        assert trace.steps > trace.budget
        assert trace.kicks  # (cell, stack_depth) pairs for the post-mortem
        assert "FAILED" in trace.describe()
        recorder.clear()
        assert len(recorder) == 0

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            WalkTraceRecorder(keep="sometimes")
        with pytest.raises(ValueError):
            WalkTraceRecorder(capacity=0)


class TestCompositeHooks:
    def test_fans_out_all_events(self):
        logs = (EventLog(), EventLog())
        table = VisionEmbedder(capacity=300, value_bits=8, seed=3,
                               hooks=CompositeHooks(*logs))
        fill(table, 200)
        table.reconstruct("static")
        assert logs[0].events == logs[1].events
        assert logs[0].named("walk_start") and logs[0].named("reconstruct")

    def test_subtree_histogram_proxied_from_metrics_child(self):
        metrics = MetricsHooks()
        composite = CompositeHooks(WalkTraceRecorder(), metrics)
        assert composite.subtree_histogram is metrics.subtree_histogram
        assert CompositeHooks(WalkTraceRecorder()).subtree_histogram is None


class TestConcurrentWrapper:
    def test_threaded_inserts_keep_counts_exact(self):
        table = ConcurrentVisionEmbedder(capacity=2000, value_bits=8, seed=3)
        instrument(table)
        workers, per_worker = 4, 250

        def insert_range(start):
            for key in range(start, start + per_worker):
                table.insert(key, (key % 255) + 1)

        threads = [
            threading.Thread(target=insert_range, args=(w * per_worker,))
            for w in range(workers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        total = workers * per_worker
        assert len(table) == total
        assert table.stats.updates == total
        registry = table.metrics
        assert registry.get("repro_updates_total").value == total
        walk = registry.get("repro_walk_steps")
        assert walk.count == registry.get("repro_walk_attempts_total").value
        table.check_invariants()

    def test_set_hooks_under_load_is_safe(self):
        table = ConcurrentVisionEmbedder(capacity=1000, value_bits=8, seed=3)
        stop = threading.Event()

        def writer():
            key = 0
            while not stop.is_set():
                table.insert(key, (key % 255) + 1)
                key += 1

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            for _ in range(20):
                table.set_hooks(MetricsHooks(table.stats.registry))
                table.set_hooks(None)
        finally:
            stop.set()
            thread.join()
        table.check_invariants()
