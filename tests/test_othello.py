"""Othello baseline: bipartite XOR forest, flips, cycle failures."""

import random

import numpy as np
import pytest

from repro.baselines.othello import Othello
from repro.core.errors import DuplicateKey, KeyNotFound


def _pairs(n, value_bits, seed):
    rng = random.Random(seed)
    pairs = {}
    while len(pairs) < n:
        pairs[rng.getrandbits(48)] = rng.getrandbits(value_bits)
    return pairs


def _filled(n=500, value_bits=4, seed=2):
    table = Othello(n, value_bits, seed=seed)
    pairs = _pairs(n, value_bits, seed)
    for key, value in pairs.items():
        table.insert(key, value)
    return table, pairs


class TestBasics:
    def test_insert_lookup(self):
        table, pairs = _filled()
        for key, value in pairs.items():
            assert table.lookup(key) == value
        table.check_invariants()

    def test_duplicate_rejected(self):
        table, pairs = _filled(50)
        with pytest.raises(DuplicateKey):
            table.insert(next(iter(pairs)), 0)

    def test_update(self):
        table, pairs = _filled(300)
        for key in list(pairs)[:60]:
            table.update(key, (pairs[key] + 1) % 16)
        table.check_invariants()
        for key in list(pairs)[:60]:
            assert table.lookup(key) == (pairs[key] + 1) % 16

    def test_update_unknown_rejected(self):
        table, _ = _filled(20)
        with pytest.raises(KeyNotFound):
            table.update(b"ghost", 1)

    def test_update_same_value_is_noop(self):
        table, pairs = _filled(50)
        key = next(iter(pairs))
        table.update(key, pairs[key])
        assert table.lookup(key) == pairs[key]

    def test_delete(self):
        table, pairs = _filled(200)
        victims = list(pairs)[:50]
        for key in victims:
            table.delete(key)
        assert len(table) == 150
        table.check_invariants()
        with pytest.raises(KeyNotFound):
            table.delete(victims[0])

    def test_delete_frees_topology(self):
        # After deleting, reinserting different values must succeed (the
        # deleted edges no longer constrain the graph).
        table, pairs = _filled(200)
        for key in pairs:
            table.delete(key)
        for key in pairs:
            table.insert(key, 5)
        assert all(table.lookup(k) == 5 for k in pairs)


class TestSpace:
    def test_default_sizing_is_2_33(self):
        table = Othello(1000, 4, seed=1)
        assert table.space_bits == pytest.approx(2.33 * 4 * 1000, rel=0.01)

    def test_space_cost(self):
        table, _ = _filled(1000)
        assert 2.3 < table.space_cost < 2.4

    def test_power_of_two_sizing(self):
        table = Othello(1000, 4, seed=1, power_of_two=True)
        assert table._ma == 2048  # next power of two above 1330
        assert table._mb == 1024
        # Still fully functional at the quantised geometry.
        for key in range(500):
            table.insert(key, key % 16)
        table.check_invariants()

    def test_power_of_two_costs_at_least_continuous(self):
        rounded = Othello(1000, 4, seed=1, power_of_two=True)
        continuous = Othello(1000, 4, seed=1)
        assert rounded.space_bits >= continuous.space_bits


class TestFailures:
    def test_two_hash_failures_are_constant_rate(self):
        """The paper's core criticism: failures per insertion don't vanish
        as n grows (birthday paradox)."""
        failures = 0
        trials = 30
        for trial in range(trials):
            table = Othello(300, 4, seed=trial)
            for key, value in _pairs(300, 4, trial + 1000).items():
                table.insert(key, value)
            failures += table.stats.reconstructions
        # Expect a constant-order rate; with 30 trials at least a few.
        assert failures >= 3

    def test_reconstruction_restores_all_pairs(self):
        table, pairs = _filled(400, seed=9)
        before = table.seed
        table._reconstruct()
        assert table.seed > before
        table.check_invariants()
        for key, value in pairs.items():
            assert table.lookup(key) == value


class TestBatchLookup:
    def test_matches_scalar(self):
        table, pairs = _filled(300)
        keys = np.fromiter(pairs, dtype=np.uint64)
        batch = table.lookup_batch(keys)
        for key, value in zip(keys.tolist(), batch.tolist()):
            assert value == table.lookup(key)

    def test_alien_keys_return_values(self):
        table, _ = _filled(100)
        aliens = np.arange(50, dtype=np.uint64)
        out = table.lookup_batch(aliens)
        assert all(0 <= int(v) < 16 for v in out)


class TestBitPlaneStorage:
    def test_value_bits_respected(self):
        table = Othello(100, 10, seed=1)
        table.insert(1, 1023)
        assert table.lookup(1) == 1023
