#!/usr/bin/env python3
"""An LSM-tree SSTable locator built on a value-only table.

The paper (§I) suggests VO structures inside Log-Structured Merge-trees to
answer "which SSTable holds this key?" without touching disk. This example
implements a miniature LSM store — a memtable, levelled SSTables,
compaction — and puts a VisionEmbedder in front of the SSTables: point
reads check the locator first and open exactly one table instead of
probing newest-to-oldest.

Run:  python examples/lsm_sstable_locator.py
"""

import random
from typing import Dict, List, Optional

from repro import VisionEmbedder

MEMTABLE_LIMIT = 512
MAX_TABLES = 16  # 4-bit SSTable ids


class SSTable:
    """An immutable sorted run (sorted dict stands in for the file)."""

    def __init__(self, table_id: int, entries: Dict[int, str]):
        self.table_id = table_id
        self.entries = dict(sorted(entries.items()))
        self.reads = 0

    def get(self, key: int) -> Optional[str]:
        self.reads += 1
        return self.entries.get(key)


class LsmStore:
    """Memtable + SSTables + a VO locator in fast memory."""

    def __init__(self, capacity: int, seed: int = 3):
        self.memtable: Dict[int, str] = {}
        self.sstables: List[SSTable] = []
        self.locator = VisionEmbedder(capacity, value_bits=4, seed=seed)

    # -- writes ----------------------------------------------------------

    def put(self, key: int, value: str) -> None:
        self.memtable[key] = value
        if len(self.memtable) >= MEMTABLE_LIMIT:
            self._flush()

    def _flush(self) -> None:
        table_id = len(self.sstables)
        if table_id >= MAX_TABLES:
            self._compact()
            table_id = len(self.sstables)
        sstable = SSTable(table_id, self.memtable)
        self.sstables.append(sstable)
        for key in sstable.entries:
            # Newer data shadows older: the locator always points at the
            # newest table holding the key.
            self.locator.put(key, table_id)
        self.memtable = {}

    def _compact(self) -> None:
        merged: Dict[int, str] = {}
        for sstable in self.sstables:  # oldest first; newest wins
            merged.update(sstable.entries)
        survivor = SSTable(0, merged)
        self.sstables = [survivor]
        for key in merged:
            self.locator.put(key, 0)

    # -- reads -----------------------------------------------------------

    def get(self, key: int) -> Optional[str]:
        if key in self.memtable:
            return self.memtable[key]
        if not self.sstables:
            return None
        table_id = self.locator.lookup(key)
        if table_id < len(self.sstables):
            value = self.sstables[table_id].get(key)
            if value is not None:
                return value
        # Alien key (or shadowed garbage id): fall back to the full scan a
        # locator-less LSM would always pay.
        return self.get_without_locator(key)

    def get_without_locator(self, key: int) -> Optional[str]:
        if key in self.memtable:
            return self.memtable[key]
        for sstable in reversed(self.sstables):
            value = sstable.get(key)
            if value is not None:
                return value
        return None


def main() -> None:
    rng = random.Random(13)
    store = LsmStore(capacity=40_000)

    keys = rng.sample(range(1 << 40), 6000)
    for key in keys:
        store.put(key, f"row:{key}")
    print(f"wrote {len(keys)} rows -> {len(store.sstables)} SSTables, "
          f"{len(store.memtable)} rows in the memtable")

    # -- point reads with the locator -------------------------------------
    for sstable in store.sstables:
        sstable.reads = 0
    sample = rng.sample(keys, 3000)
    assert all(store.get(k) == f"row:{k}" for k in sample)
    with_locator = sum(t.reads for t in store.sstables)

    for sstable in store.sstables:
        sstable.reads = 0
    assert all(store.get_without_locator(k) == f"row:{k}" for k in sample)
    without_locator = sum(t.reads for t in store.sstables)

    print(f"SSTable probes for 3000 point reads: "
          f"{with_locator} with the locator vs {without_locator} without "
          f"({without_locator / max(1, with_locator):.1f}x fewer)")
    bits_per_row = store.locator.space_bits / len(store.locator)
    print(f"locator cost: {bits_per_row:.1f} bits per row in fast memory "
          f"({store.locator.space_bits / 8 / 1024:.1f} KiB total)")


if __name__ == "__main__":
    main()
