#!/usr/bin/env python3
"""A network switch's MAC-address table on VisionEmbedder.

The paper's first motivating application (§I): a switch maps 48-bit MAC
addresses to output information in scarce SRAM. This example simulates a
learning switch — MAC learning on ingress frames, aging of stale entries,
and forwarding lookups — with the forwarding table held in a VO table, and
compares the fast-space bill against a key-storing design.

Run:  python examples/mac_address_table.py
"""

import random

from repro import VisionEmbedder
from repro.datasets import mac_table

PORTS = 48  # a 48-port switch: 6-bit port values


def main() -> None:
    rng = random.Random(2024)
    dataset = mac_table()  # 2731 distinct MACs, paper-sized

    # The forwarding table: MAC (48-bit) -> egress port (6-bit).
    fdb = VisionEmbedder(capacity=4096, value_bits=6, seed=9)
    port_of = {}

    # --- MAC learning: each source MAC is bound to its ingress port -----
    for mac in dataset.keys.tolist():
        port = rng.randrange(PORTS)
        fdb.put(mac, port)
        port_of[mac] = port
    print(f"learned {len(fdb)} MACs on {PORTS} ports")

    # --- forwarding: data-plane lookups, fast space only ----------------
    frames = rng.choices(dataset.keys.tolist(), k=100_000)
    wrong = sum(1 for mac in frames if fdb.lookup(mac) != port_of[mac])
    print(f"forwarded 100k frames, {wrong} misforwarded (must be 0)")

    # --- station moves: a host reappears on another port ----------------
    movers = rng.sample(dataset.keys.tolist(), 200)
    for mac in movers:
        new_port = (port_of[mac] + 1) % PORTS
        fdb.update(mac, new_port)
        port_of[mac] = new_port
    assert all(fdb.lookup(mac) == port_of[mac] for mac in movers)
    print(f"re-learned {len(movers)} moved stations in place")

    # --- aging: idle entries leave the table ----------------------------
    aged = rng.sample(dataset.keys.tolist(), 700)
    for mac in aged:
        fdb.delete(mac)
        del port_of[mac]
    print(f"aged out {len(aged)} entries; {len(fdb)} remain")

    # --- the space argument ----------------------------------------------
    # A key-storing table pays >= 48 (key) + 6 (port) bits per entry even
    # before load-factor overheads; the VO table pays 1.7 * 6 bits.
    vo_bits = fdb.space_bits
    key_stored_bits = len(fdb) * (48 + 6)
    print(f"fast-space bill: VO table {vo_bits} bits "
          f"vs key-storing >= {key_stored_bits} bits "
          f"({key_stored_bits / vo_bits:.1f}x more)")
    print("trade-off: an unknown (alien) MAC reads a meaningless port —")
    print("switches flood unknown unicast anyway, so the control plane")
    print("(the slow-space assistant table) remains the authority.")


if __name__ == "__main__":
    main()
