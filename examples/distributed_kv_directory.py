#!/usr/bin/env python3
"""A client-side directory for distributed KV storage (Smash-style).

The paper's second motivating application (§I): clients of a sharded KV
store keep a tiny local directory mapping every key to the backend node
holding it (values of ~4 bits), instead of consulting a directory server
or settling for consistent hashing's placement constraints. This example
builds a 16-node cluster, places keys arbitrarily (e.g. by load), serves
reads via the client-side VO directory, and rebalances a hot node — all
with dynamic updates, no directory rebuild.

Run:  python examples/distributed_kv_directory.py
"""

import random
from collections import Counter

from repro import VisionEmbedder

NODES = 16
KEYS = 20_000


class Cluster:
    """The backend: 16 nodes of real storage (the slow space)."""

    def __init__(self):
        self.nodes = [dict() for _ in range(NODES)]

    def put(self, node_id: int, key: int, payload: str) -> None:
        self.nodes[node_id][key] = payload

    def get(self, node_id: int, key: int):
        return self.nodes[node_id].get(key)

    def move(self, key: int, src: int, dst: int) -> None:
        self.nodes[dst][key] = self.nodes[src].pop(key)


def main() -> None:
    rng = random.Random(5)
    cluster = Cluster()
    directory = VisionEmbedder(capacity=KEYS, value_bits=4, seed=11)

    # --- load the cluster with arbitrary (load-aware) placement ---------
    keys = rng.sample(range(1 << 48), KEYS)
    for key in keys:
        node = rng.randrange(NODES)            # any placement policy works
        cluster.put(node, key, payload=f"value-of-{key}")
        directory.insert(key, node)
    print(f"placed {KEYS} keys on {NODES} nodes; client directory costs "
          f"{directory.space_bits / 8 / 1024:.1f} KiB "
          f"({directory.space_bits / KEYS:.1f} bits/key)")

    # --- reads: one directory lookup, one network hop --------------------
    misses = 0
    for key in rng.sample(keys, 5000):
        node = directory.lookup(key)
        if cluster.get(node, key) is None:
            misses += 1
    print(f"5000 reads via the directory: {misses} misrouted (must be 0)")

    # --- rebalance: drain the hottest node -------------------------------
    load = Counter()
    for key in keys:
        load[directory.lookup(key)] += 1
    hot, hot_count = load.most_common(1)[0]
    cold = min(load, key=load.get)
    moved = [k for k in keys if directory.lookup(k) == hot][: hot_count // 2]
    for key in moved:
        cluster.move(key, hot, cold)
        directory.update(key, cold)           # O(1) dynamic update
    print(f"rebalanced {len(moved)} keys from node {hot} to node {cold} "
          f"with in-place directory updates")

    # verify the directory still routes everything correctly
    wrong = sum(
        1 for key in keys if cluster.get(directory.lookup(key), key) is None
    )
    print(f"post-rebalance audit over all {KEYS} keys: {wrong} misroutes")

    # --- why a VO table: the size ledger ---------------------------------
    key_stored = KEYS * (48 + 4)
    print(f"a key-storing client cache would need >= "
          f"{key_stored / 8 / 1024:.0f} KiB; the VO directory uses "
          f"{directory.space_bits / 8 / 1024:.1f} KiB "
          f"({key_stored / directory.space_bits:.1f}x smaller)")


if __name__ == "__main__":
    main()
