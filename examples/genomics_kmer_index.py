#!/usr/bin/env python3
"""SeqOthello-style genomics indexing on VisionEmbedder (§I "Others").

Bioinformatics pipelines ask "which sequencing experiment contains this
k-mer?" over billions of k-mers; SeqOthello [13] answers from a value-only
structure so the whole index fits in memory. This example builds a small
version: eight synthetic "experiments" (genomes with shared backbone and
private mutations), a k-mer → experiment index, and read classification —
including what happens for reads from an unindexed organism (the VO
alien-key caveat) and how the Bloom-guarded variant handles it.

Run:  python examples/genomics_kmer_index.py
"""

import random

from repro.apps import KmerExperimentIndex
from repro.apps.guarded import BloomFilter
from repro.apps.seqindex import kmers_of

K = 16
NUM_EXPERIMENTS = 8


def _mutate(sequence: str, rate: float, rng: random.Random) -> str:
    bases = "ACGT"
    out = []
    for base in sequence:
        if rng.random() < rate:
            out.append(rng.choice([b for b in bases if b != base]))
        else:
            out.append(base)
    return "".join(out)


def main() -> None:
    rng = random.Random(42)

    # --- eight related genomes: a shared backbone plus a private region
    # (k-mers from the backbone occur in every sample and are genuinely
    # ambiguous; the private regions are what identifies a sample) -------
    backbone = "".join(rng.choice("ACGT") for _ in range(2500))
    genomes = {}
    private_regions = {}
    for i in range(NUM_EXPERIMENTS):
        private = "".join(rng.choice("ACGT") for _ in range(1500))
        private_regions[i] = private
        genomes[i] = _mutate(backbone, rate=0.01, rng=rng) + private

    index = KmerExperimentIndex(
        capacity=20_000, num_experiments=NUM_EXPERIMENTS, k=K, seed=7
    )
    total = 0
    for experiment_id, genome in genomes.items():
        total += index.add_experiment(experiment_id, f"sample-{experiment_id}",
                                      genome)
    print(f"indexed {total} distinct {K}-mers from {NUM_EXPERIMENTS} "
          f"experiments ({index.value_bits}-bit experiment ids, "
          f"{index.space_bits / 8 / 1024:.1f} KiB fast space, "
          f"{index.space_bits / max(1, len(index)):.2f} bits per k-mer)")

    # --- classify reads from the discriminative (private) regions --------
    correct = 0
    reads = 200
    for _ in range(reads):
        source = rng.randrange(NUM_EXPERIMENTS)
        region = private_regions[source]
        start = rng.randrange(len(region) - 150)
        read = region[start : start + 150]
        histogram = index.query_sequence(read)
        called = max(histogram, key=histogram.get)
        correct += called == source
    print(f"read classification: {correct}/{reads} private-region reads "
          f"called to the right experiment (majority vote over each "
          f"read's k-mers)")

    # --- the alien-read caveat, and the guard -----------------------------
    alien_read = "".join(rng.choice("ACGT") for _ in range(150))
    histogram = index.query_sequence(alien_read)
    print(f"\nalien read (unindexed organism) still 'matches': {histogram} "
          f"— meaningless ids, the VO trade-off")

    guard = BloomFilter(capacity=total, false_positive_rate=0.01, seed=9)
    for genome in genomes.values():
        for kmer in kmers_of(genome, K):
            guard.add(kmer)
    alien_kmers = list(kmers_of(alien_read, K))
    passed = sum(1 for kmer in alien_kmers if guard.might_contain(kmer))
    guard_bits = guard.space_bits / total
    print(f"with a {guard_bits:.1f}-bit/k-mer Bloom guard: "
          f"{passed}/{len(alien_kmers)} alien k-mers slip through "
          f"(~the guard's 1% false-positive rate), the rest answer "
          f"'not indexed'")


if __name__ == "__main__":
    main()
