#!/usr/bin/env python3
"""The FPGA case study (§VI-I) end to end, in simulation.

Builds a VisionEmbedder in software (the control plane / CPU side), wires
its fast space into the cycle-stepped lookup pipeline (the data plane /
FPGA side), verifies the pipeline answers bit-exactly at one lookup per
cycle, and prints the Table III resource report for the paper's geometry
and a few alternatives.

Run:  python examples/fpga_lookup_sim.py
"""

import random

from repro import VisionEmbedder
from repro.fpga import LookupPipeline, estimate_resources


def main() -> None:
    rng = random.Random(99)

    # --- control plane: build the table in software ---------------------
    n = 4096
    table = VisionEmbedder(capacity=n, value_bits=8, seed=7)
    pairs = {}
    while len(pairs) < n:
        pairs[rng.getrandbits(48)] = rng.getrandbits(8)
    for key, value in pairs.items():
        table.insert(key, value)
    print(f"control plane: built table with {len(table)} pairs "
          f"({table.space_bits // 8 // 1024} KiB of BRAM content)")

    # --- data plane: stream queries through the pipeline ----------------
    report = estimate_resources(depth=table._table.width, value_bits=8)
    pipeline = LookupPipeline.from_embedder(
        table, frequency_mhz=report.frequency_mhz
    )
    queries = list(pairs)
    result = pipeline.run(queries)
    correct = sum(
        1 for key, value in zip(queries, result.values)
        if value == pairs[key]
    )
    print(f"data plane: {correct}/{len(queries)} pipeline lookups bit-exact")
    print(f"  cycles: {result.cycles} for {len(queries)} lookups "
          f"(II = 1, latency {result.latency_cycles} cycles)")
    print(f"  clock {report.frequency_mhz:.2f} MHz -> "
          f"{result.throughput_mops:.2f} Mops sustained")

    # --- Table III: the paper's geometry ---------------------------------
    print("\nTable III geometry (depth 2^19, 8-bit values):")
    paper = estimate_resources(depth=1 << 19, value_bits=8)
    usage = paper.usage()
    print(f"  Hash module     : {paper.hash_luts} LUTs, "
          f"{paper.hash_registers} registers")
    print(f"  VisionEmbedder  : {paper.engine_luts} LUTs, "
          f"{paper.engine_registers} registers, {paper.block_rams} BRAMs")
    print(f"  Total           : {paper.total_luts} LUTs, "
          f"{paper.total_registers} registers ({usage['clb_luts']:.2%} / "
          f"{usage['clb_registers']:.2%} / {usage['block_ram']:.2%} used)")
    print(f"  Clock           : {paper.frequency_mhz:.2f} MHz "
          f"=> {paper.lookup_mops:.2f} M lookups/s for "
          f"~{paper.capacity_pairs / 1e6:.2f}M pairs")

    # --- what-if: other geometries ---------------------------------------
    print("\nWhat-if geometries:")
    for depth_log2, value_bits in ((16, 8), (19, 4), (20, 16)):
        what_if = estimate_resources(depth=1 << depth_log2,
                                     value_bits=value_bits)
        print(f"  depth 2^{depth_log2}, L={value_bits:>2}: "
              f"{what_if.block_rams:>4} BRAMs, "
              f"{what_if.frequency_mhz:6.2f} MHz, "
              f"capacity ~{what_if.capacity_pairs / 1e6:.2f}M pairs")


if __name__ == "__main__":
    main()
