#!/usr/bin/env python3
"""Quickstart: the VisionEmbedder public API in two minutes.

Run:  python examples/quickstart.py
"""

import random

from repro import EmbedderConfig, VisionEmbedder


def main() -> None:
    # A table provisioned for 10k pairs with 8-bit values. Fast-space cost
    # is 1.7 bits per value bit (the paper's default budget).
    table = VisionEmbedder(capacity=10_000, value_bits=8, seed=42)

    # --- insert ---------------------------------------------------------
    table.insert("alpha", 200)
    table.insert(b"raw-bytes-key", 13)
    table.insert(123456789, 77)
    print(f"inserted {len(table)} pairs")

    # --- lookup (fast space only, three reads + XOR) --------------------
    print("alpha        ->", table.lookup("alpha"))
    print("raw-bytes    ->", table.lookup(b"raw-bytes-key"))
    print("123456789    ->", table.lookup(123456789))

    # Value-only semantics: an alien key returns a *meaningless* value,
    # never an error — the table cannot detect absence.
    print("never-added  ->", table.lookup("never-added"), "(meaningless)")

    # --- dynamic updates -------------------------------------------------
    table.update("alpha", 201)
    print("alpha updated ->", table.lookup("alpha"))

    # --- delete (slow-space only; frees the pair's constraints) ---------
    table.delete(b"raw-bytes-key")
    print(f"after delete: {len(table)} pairs")

    # --- bulk load + space report ----------------------------------------
    rng = random.Random(7)
    pairs = {rng.getrandbits(48): rng.getrandbits(8) for _ in range(9000)}
    for key, value in pairs.items():
        table.put(key, value)
    ok = all(table.lookup(k) == v for k, v in pairs.items())
    print(f"bulk load of {len(pairs)} pairs: all lookups correct = {ok}")
    print(f"fast space: {table.space_bits} bits "
          f"({table.space_cost:.2f} bits per value bit; "
          f"space efficiency {table.space_efficiency:.2f})")
    print(f"update failures so far: {table.stats.update_failures}, "
          f"reconstructions: {table.stats.reconstructions}")

    # --- observability ---------------------------------------------------
    # instrument() attaches walk/kick/reconstruction histograms to the
    # table's own metrics registry; exporters render it as Prometheus
    # text or JSON (the full guide is docs/observability.md).
    from repro.obs import instrument, json_snapshot

    watched = VisionEmbedder(capacity=2000, value_bits=8, seed=42)
    instrument(watched)
    for key, value in list(pairs.items())[:1500]:
        watched.put(key, value)
    snap = json_snapshot(watched.metrics)
    walk = snap["histograms"]["repro_walk_steps"]
    print(f"instrumented table: {snap['counters']['repro_updates_total']['value']}"
          f" updates, {walk['count']} repair walks observed")

    # --- tuning ----------------------------------------------------------
    # A tighter budget (closer to the measured minimum 1.58) trades update
    # speed; a looser one buys headroom. The depth schedule and repair
    # budget are configurable too.
    tight = VisionEmbedder(
        1000, value_bits=4,
        config=EmbedderConfig(space_factor=1.62,
                              reconstruct_efficiency_limit=1.0),
        seed=1,
    )
    for key, value in list(pairs.items())[:1000]:
        tight.put(key, value & 0xF)
    print(f"tight table at {tight.space_cost:.2f} bits/value-bit holds "
          f"{len(tight)} pairs")


if __name__ == "__main__":
    main()
