#!/usr/bin/env python3
"""The paper's full deployment architecture (§I, §VI-I), end to end.

A switch's control plane (CPU) owns the assistant table and computes
vision updates; its data plane (FPGA) holds only the fast-space value
table, consumes the CPU's *update messages* through the dual-port BRAM
write port, and serves one lookup per cycle throughout. This example wires
the whole chain together in simulation:

    PublishingVisionEmbedder  --messages-->  DataPlaneDevice
        (control plane)                   (lookup pipeline + update FIFO)

and shows why the paper's O(1/n) failure rate matters operationally: a
reconstruction forces a full-RAM snapshot that stalls the data plane for
hundreds of thousands of cycles, while ordinary updates ride along for
free.

Run:  python examples/replicated_switch.py
"""

import random

from repro.core.replication import PublishingVisionEmbedder
from repro.fpga import estimate_resources
from repro.fpga.update_engine import DataPlaneDevice

PORTS = 32


def main() -> None:
    rng = random.Random(77)

    # --- bring-up: control plane builds, data plane receives a snapshot --
    capacity = 4096
    control = PublishingVisionEmbedder(capacity, value_bits=5, seed=8)
    report = estimate_resources(depth=control._table.width, value_bits=5)
    device = DataPlaneDevice(frequency_mhz=report.frequency_mhz)
    control.subscribe(device.apply)
    print(f"device online: {report.frequency_mhz:.2f} MHz, "
          f"{report.block_rams} BRAMs for depth {control._table.width}")

    macs = rng.sample(range(1 << 48), capacity)
    port_of = {}
    for mac in macs:
        port = rng.randrange(PORTS)
        control.insert(mac, port)
        port_of[mac] = port
    # Let the device's update FIFO drain the bring-up burst.
    while device._engine.occupancy:
        device.step(None)
    print(f"learned {len(control)} MACs; device applied "
          f"{device.stats().writes_applied} cell writes")

    # --- steady state: line-rate lookups with updates riding along ------
    moved = rng.sample(macs, 400)
    for mac in moved:
        port_of[mac] = (port_of[mac] + 1) % PORTS
        control.update(mac, port_of[mac])
    queries = rng.choices(macs, k=20_000)
    results, stats = device.run_queries(queries)
    stale = sum(1 for mac, port in zip(queries, results)
                if port != port_of[mac])
    print(f"streamed {len(queries)} lookups while draining "
          f"{stats.writes_applied} update writes: sustained "
          f"{stats.lookup_throughput(report.frequency_mhz):.1f} Mops "
          f"(clock {report.frequency_mhz:.2f} MHz)")
    print(f"{stale} lookups landed inside the update window (a lookup that "
          f"races an in-flight modification path may read a transient "
          f"value — the paper's data plane behaves identically); FIFO "
          f"peaked at {stats.max_fifo_occupancy} entries "
          f"(~{stats.max_fifo_occupancy / report.frequency_mhz:.2f} µs)")
    # Once the FIFO drains, the device answers every moved MAC exactly.
    recheck, _ = device.run_queries(moved)
    assert recheck == [port_of[mac] for mac in moved]
    print(f"after the window: all {len(moved)} moved MACs answer exactly")

    # --- the failure story: what a reconstruction would cost -------------
    stall_before = device.stats().snapshot_stall_cycles
    control.reconstruct()
    while device._engine.occupancy:
        device.step(None)
    stall = device.stats().snapshot_stall_cycles - stall_before
    print(f"\none forced reconstruction shipped a full snapshot: "
          f"{stall} stall cycles "
          f"(~{stall / report.frequency_mhz:.0f} µs of data-plane outage)")
    print("VisionEmbedder's O(1/n) failure probability makes this a "
          "once-in-n-insertions event; the two-hash schemes it replaces "
          "pay it with constant probability per insertion.")

    # verify the device is still exact after the snapshot
    sample = rng.sample(macs, 2000)
    results, _ = device.run_queries(sample)
    assert results == [port_of[mac] for mac in sample]
    print("post-snapshot audit: device bit-exact with the control plane")


if __name__ == "__main__":
    main()
