#!/usr/bin/env python
"""Write-path benchmark: scalar vs batched insert and static build.

Times five legs at the same workload (uniform random uint64 keys, 12-bit
values, capacity == n so the final space efficiency matches a full table):

- ``scalar_insert_reference`` — per-key :meth:`VisionEmbedder.insert` with
  the cost cache and the minimal-bucket shortcut disabled: the
  unoptimised write path (full GetCost DFS + per-key hashing).
- ``scalar_insert`` — per-key insert under the default configuration.
- ``insert_many`` — the batched pipeline (vectorised hashing + cost cache).
- ``bulk_load_reference`` — static build through the dict-of-sets
  reference peel with per-key scalar hashing.
- ``bulk_load`` — static build through the flat-array (IBLT-style) peel
  fed by one vectorised hashing pass.

A sixth, untimed-for-thresholds leg (``insert_many_traced``) repeats the
batched insert with full observability hooks attached and writes the
table's metrics registry as ``<out-base>.metrics.json`` /
``<out-base>.metrics.prom`` sidecars — the timed legs above stay
hook-free so the speedup numbers measure the bare write path.

Results, speedups, and cost-cache counters are written to
``BENCH_build.json``. ``--check`` exits non-zero when the speedups fall
below the thresholds (halved in ``--smoke`` mode, whose small n keeps the
whole run under ~30 s for CI while still catching a >2x write-path
regression), when the metrics sidecar fails to parse, when the
walk-length histogram is empty, or when the exported counter totals
disagree with the legacy ``TableStats`` fields.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_build_path.py [--smoke] [--check]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import numpy as np

if __package__ in (None, ""):  # script invocation: make src/ importable
    sys.path.insert(
        0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
    )

from repro.core.config import EmbedderConfig
from repro.core.embedder import VisionEmbedder
from repro.core.static_build import static_build_reference
from repro.hashing import key_to_u64
from repro.obs import instrument, parse_prometheus_text, write_sidecar

SEED = 3
VALUE_BITS = 12

FULL_THRESHOLDS = {"insert_many": 2.0, "bulk_load": 3.0}
SMOKE_THRESHOLDS = {"insert_many": 1.0, "bulk_load": 1.5}


def make_workload(n: int):
    rng = np.random.default_rng(SEED)
    keys = rng.choice(
        np.arange(1, max(10 * n, 1 << 20), dtype=np.uint64),
        size=n, replace=False,
    )
    values = rng.integers(0, 1 << VALUE_BITS, size=n, dtype=np.uint64)
    return keys, values


def make_embedder(n: int, cache: bool = True,
                  shortcut: bool = True) -> VisionEmbedder:
    table = VisionEmbedder(
        capacity=n, value_bits=VALUE_BITS, seed=SEED,
        config=EmbedderConfig(cost_cache=cache),
    )
    if not shortcut:
        table._strategy.shortcut = False
    return table


def run_legs(n: int) -> dict:
    keys, values = make_workload(n)
    key_list, value_list = keys.tolist(), values.tolist()
    legs: dict = {}

    def record(name: str, seconds: float, extra: dict | None = None) -> None:
        legs[name] = {
            "seconds": round(seconds, 4),
            "kops": round(n / seconds / 1000, 2),
            **(extra or {}),
        }
        print(f"{name:>24}: {seconds:7.2f}s  ({legs[name]['kops']:8.1f} kops)")

    # -- scalar insert, unoptimised reference ---------------------------
    table = make_embedder(n, cache=False, shortcut=False)
    start = time.perf_counter()
    for key, value in zip(key_list, value_list):
        table.insert(key, value)
    record("scalar_insert_reference", time.perf_counter() - start)

    # -- scalar insert, current defaults --------------------------------
    table = make_embedder(n)
    start = time.perf_counter()
    for key, value in zip(key_list, value_list):
        table.insert(key, value)
    record("scalar_insert", time.perf_counter() - start)

    # -- batched insert --------------------------------------------------
    table = make_embedder(n)
    start = time.perf_counter()
    table.insert_many(zip(key_list, value_list))
    stats = table.stats
    record("insert_many", time.perf_counter() - start, {
        "cost_cache_hits": stats.cost_cache_hits,
        "cost_cache_misses": stats.cost_cache_misses,
        "cost_cache_hit_rate": round(stats.cost_cache_hit_rate, 4),
        "largest_batch": stats.largest_batch,
    })
    table.check_invariants()

    # -- static build, dict-of-sets reference ---------------------------
    # Mirrors the pre-optimisation bulk_load: per-key validation and
    # scalar hashing feeding the reference peel.
    table = make_embedder(n)
    start = time.perf_counter()
    triples = []
    seen = set()
    for key, value in zip(key_list, value_list):
        handle = key_to_u64(key)
        if handle in table._assistant or handle in seen:
            raise SystemExit("duplicate key in benchmark workload")
        table._check_value(value)
        seen.add(handle)
        cells = tuple(enumerate(table._hashes.indices(handle)))
        triples.append((handle, cells, value))
    static_build_reference(table._table, table._assistant, triples)
    record("bulk_load_reference", time.perf_counter() - start)
    table.check_invariants()

    # -- static build, flat-array engine --------------------------------
    table = make_embedder(n)
    start = time.perf_counter()
    table.bulk_load(zip(key_list, value_list))
    record("bulk_load", time.perf_counter() - start)
    table.check_invariants()

    # -- batched insert with hooks on (observability sidecar leg) -------
    # Not part of the speedup thresholds; its registry becomes the
    # metrics sidecar and its timing shows the cost of instrumentation.
    table = make_embedder(n)
    instrument(table, traces=64)
    start = time.perf_counter()
    table.insert_many(zip(key_list, value_list))
    record("insert_many_traced", time.perf_counter() - start)
    table.check_invariants()

    return legs, table


#: Exported counter name -> TableStats attribute it must equal.
SIDECAR_COUNTERS = {
    "repro_updates_total": "updates",
    "repro_update_failures_total": "update_failures",
    "repro_reconstructions_total": "reconstructions",
    "repro_repair_steps_total": "repair_steps",
    "repro_batch_inserts_total": "batch_inserts",
    "repro_batch_keys_total": "batch_keys",
}


def check_sidecar(json_path: str, prom_path: str, table) -> list:
    """Validate the metrics sidecars against the traced table's stats.

    Returns a list of problem strings (empty when everything checks out):
    both files must parse, the walk-length histogram must be non-empty,
    and the exported counter totals must equal the legacy ``TableStats``
    fields they are a view over.
    """
    problems = []
    try:
        with open(json_path) as handle:
            snapshot = json.load(handle)
    except (OSError, ValueError) as exc:
        return [f"{json_path} unreadable: {exc}"]
    try:
        with open(prom_path) as handle:
            samples = parse_prometheus_text(handle.read())
    except (OSError, ValueError) as exc:
        return [f"{prom_path} unreadable: {exc}"]

    if snapshot.get("format") != "repro-metrics/1":
        problems.append(f"unexpected format marker {snapshot.get('format')!r}")
    walk = snapshot.get("histograms", {}).get("repro_walk_steps")
    if walk is None or walk["count"] == 0:
        problems.append("walk-length histogram missing or empty")
    if samples.get("repro_walk_steps_count", 0) != (walk or {}).get("count"):
        problems.append("prom/json walk-step counts disagree")

    stats = table.stats
    rate = stats.cost_cache_hit_rate
    exported_rate = (
        snapshot.get("gauges", {})
        .get("repro_cost_cache_hit_rate", {})
        .get("value")
    )
    if exported_rate is None or abs(exported_rate - rate) > 1e-9:
        problems.append(
            f"repro_cost_cache_hit_rate gauge={exported_rate!r} but "
            f"TableStats.cost_cache_hit_rate={rate!r}"
        )
    for name, attr in SIDECAR_COUNTERS.items():
        expected = getattr(stats, attr)
        exported = snapshot.get("counters", {}).get(name, {}).get("value")
        if exported != expected:
            problems.append(
                f"{name}={exported!r} but TableStats.{attr}={expected!r}"
            )
        if samples.get(name) != float(expected):
            problems.append(
                f"prom {name}={samples.get(name)!r} != {expected!r}"
            )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=100_000,
                        help="number of pairs (default 100000)")
    parser.add_argument("--smoke", action="store_true",
                        help="small-n CI mode (~30 s) with halved thresholds")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero when speedups miss the thresholds")
    parser.add_argument("--out", default="BENCH_build.json",
                        help="output path (default BENCH_build.json)")
    args = parser.parse_args(argv)

    n = 20_000 if args.smoke else args.n
    thresholds = SMOKE_THRESHOLDS if args.smoke else FULL_THRESHOLDS
    print(f"write-path benchmark: n={n} smoke={args.smoke}")
    legs, traced_table = run_legs(n)

    speedups = {
        "insert_many": round(
            legs["scalar_insert_reference"]["seconds"]
            / legs["insert_many"]["seconds"], 2),
        "bulk_load": round(
            legs["bulk_load_reference"]["seconds"]
            / legs["bulk_load"]["seconds"], 2),
    }
    report = {
        "benchmark": "bench_build_path",
        "n": n,
        "smoke": args.smoke,
        "value_bits": VALUE_BITS,
        "seed": SEED,
        "legs": legs,
        "speedups": speedups,
        "thresholds": thresholds,
    }
    # Reading the hit-rate property refreshes its gauge so the sidecar
    # export carries the rate the --check validation recomputes.
    report["cost_cache_hit_rate"] = round(
        traced_table.stats.cost_cache_hit_rate, 4
    )
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    json_path, prom_path = write_sidecar(traced_table.metrics, args.out)
    print(f"speedups: {speedups}  (thresholds: {thresholds})")
    print(f"wrote {args.out} (+ {json_path}, {prom_path})")

    if args.check:
        failed = {
            name: (speedups[name], minimum)
            for name, minimum in thresholds.items()
            if speedups[name] < minimum
        }
        if failed:
            for name, (got, minimum) in failed.items():
                print(f"FAIL {name}: {got:.2f}x < required {minimum:.2f}x",
                      file=sys.stderr)
            return 1
        sidecar_problems = check_sidecar(json_path, prom_path, traced_table)
        if sidecar_problems:
            for problem in sidecar_problems:
                print(f"FAIL sidecar: {problem}", file=sys.stderr)
            return 1
        print("all speedup thresholds met; metrics sidecar validated")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
