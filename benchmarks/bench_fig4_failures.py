"""Fig 4 — update failure frequency: the paper's robustness headline.

The benchmarked kernel is a full insertion including any failure-induced
reconstructions, per algorithm; the regeneration prints failures per
insertion across n, where vision must sit far below the two-hash schemes.
"""

import pytest

from benchmarks.conftest import BENCH_SEED, attach_result
from repro.bench.experiments import run_experiment
from repro.bench.workloads import make_pairs, try_fill_table
from repro.factory import make_table

ALGORITHMS = ("vision", "othello", "color", "ludo")


@pytest.mark.parametrize("name", ALGORITHMS)
def test_insertion_with_failures(benchmark, name):
    keys, values = make_pairs(1024, 1, BENCH_SEED)

    def fill():
        table = make_table(name, 1024, 1, seed=BENCH_SEED)
        try_fill_table(table, keys, values)
        return table

    table = benchmark.pedantic(fill, rounds=3, iterations=1)
    benchmark.extra_info["failure_events"] = table.failure_events


def test_regenerate_fig4(benchmark, bench_scale):
    result = benchmark.pedantic(
        run_experiment, args=("fig4",),
        kwargs={"scale": max(0.5, bench_scale), "trials": 20},
        rounds=1, iterations=1,
    )
    attach_result(benchmark, result)
    records = [dict(zip(result.columns, row)) for row in result.rows]
    largest = max(r["n"] for r in records if r["algorithm"] == "vision")

    def rate(algorithm):
        return next(
            r["failures/insertion"] for r in records
            if r["algorithm"] == algorithm and r["n"] == largest
        )

    # Who wins, by what factor: vision below the two-hash average.
    assert rate("vision") < (rate("othello") + rate("color")) / 2
