"""Fig 6 — update throughput with reconstruction time excluded.

The paper's point: subtracting reconstruction time helps the two-hash
schemes (they reconstruct often) far more than it helps VisionEmbedder.
"""

import pytest

from benchmarks.conftest import attach_result
from repro.bench.experiments import run_experiment


def test_regenerate_fig6(benchmark, bench_scale):
    result = benchmark.pedantic(
        run_experiment, args=("fig6",), kwargs={"scale": bench_scale},
        rounds=1, iterations=1,
    )
    attach_result(benchmark, result)
    assert all(row[-1] > 0 for row in result.rows)


def test_fig6_vs_fig5_reconstruction_share(benchmark, bench_scale):
    """Excluding reconstruction must never reduce reported throughput."""

    def both():
        with_reconstruct = run_experiment("fig5", scale=bench_scale, seed=3)
        without = run_experiment("fig6", scale=bench_scale, seed=3)
        return with_reconstruct, without

    with_reconstruct, without = benchmark.pedantic(
        both, rounds=1, iterations=1
    )
    including = dict(
        ((r[0], r[1], r[2], r[3]), r[4]) for r in with_reconstruct.rows
    )
    excluding = dict(((r[0], r[1], r[2], r[3]), r[4]) for r in without.rows)
    # Same (sweep, n, L, algorithm) keys must exist in both runs; workloads
    # are regenerated so allow timing jitter, but series must be complete.
    assert set(including) == set(excluding)
