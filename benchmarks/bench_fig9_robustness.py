"""Fig 9 — robustness across real-style and synthetic datasets."""

import pytest

from benchmarks.conftest import BENCH_SEED, attach_result
from repro.bench.experiments import run_experiment
from repro.core import VisionEmbedder
from repro.datasets import load, zipf_queries


@pytest.mark.parametrize("dataset_name", ["MACTable", "MachineLearning",
                                          "DBLP"])
def test_dataset_fill(benchmark, dataset_name):
    scale = 1.0 if dataset_name == "MACTable" else 0.01
    dataset = load(dataset_name, scale=scale)

    def fill():
        table = VisionEmbedder(dataset.size, dataset.value_bits,
                               seed=BENCH_SEED)
        for key, value in dataset.pairs():
            table.insert(key, value)
        return table

    table = benchmark.pedantic(fill, rounds=3, iterations=1)
    assert len(table) == dataset.size


def test_zipf_query_throughput(benchmark):
    dataset = load("MACTable")
    table = VisionEmbedder(dataset.size, 1, seed=BENCH_SEED)
    for key, value in dataset.pairs():
        table.insert(key, value)
    queries = zipf_queries(dataset.keys, 100_000, BENCH_SEED, alpha=1.0)
    benchmark(table.lookup_batch, queries)


def test_regenerate_fig9(benchmark, bench_scale):
    result = benchmark.pedantic(
        run_experiment, args=("fig9",), kwargs={"scale": bench_scale},
        rounds=1, iterations=1,
    )
    attach_result(benchmark, result)
    records = [dict(zip(result.columns, row)) for row in result.rows]
    # Real vs synthetic twin must be a wash: same space cost per pair.
    by_name = {r["dataset"]: r for r in records}
    for real in ("MACTable", "MachineLearning", "DBLP"):
        twin = f"Syn{real}"
        assert by_name[real]["space cost"] == pytest.approx(
            by_name[twin]["space cost"], rel=0.02
        )
