"""Key-stored vs value-only (extension of §I's motivating comparison)."""

import pytest

from benchmarks.conftest import BENCH_SEED, attach_result
from repro.baselines.keystore import CuckooKeyValueTable
from repro.bench.experiments import run_experiment
from repro.bench.workloads import make_pairs


def test_cuckoo_insert_throughput(benchmark):
    keys, values = make_pairs(2048, 8, BENCH_SEED)

    def fill():
        table = CuckooKeyValueTable(2048, 8, seed=BENCH_SEED)
        for key, value in zip(keys.tolist(), values.tolist()):
            table.insert(key, value)
        return table

    table = benchmark.pedantic(fill, rounds=3, iterations=1)
    assert len(table) == 2048


def test_cuckoo_lookup_latency(benchmark):
    keys, values = make_pairs(2048, 8, BENCH_SEED)
    table = CuckooKeyValueTable(2048, 8, seed=BENCH_SEED)
    for key, value in zip(keys.tolist(), values.tolist()):
        table.insert(key, value)
    probe = int(keys[99])
    benchmark(table.lookup, probe)


def test_regenerate_keystored_vs_vo(benchmark, bench_scale):
    result = benchmark.pedantic(
        run_experiment, args=("keystored-vs-vo",),
        kwargs={"scale": bench_scale}, rounds=1, iterations=1,
    )
    attach_result(benchmark, result)
    mac_row = next(r for r in result.rows if r[0] == 48 and r[1] == 1)
    # The headline gap: >10x for MAC-table-shaped pairs.
    assert mac_row[5] > 10
