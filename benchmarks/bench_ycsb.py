"""YCSB mixed workloads (extension): per-workload kernels + full sweep."""

import pytest

from benchmarks.conftest import BENCH_SEED, attach_result
from repro.bench.experiments import run_experiment
from repro.bench.workloads import fill_table, make_pairs
from repro.bench.ycsb import WORKLOADS, generate_operations, run_workload
from repro.factory import make_table


@pytest.mark.parametrize("workload", ["A", "B", "C", "F"])
def test_vision_under_mixed_load(benchmark, workload):
    keys, values = make_pairs(2048, 8, BENCH_SEED)
    table = make_table("vision", 4096, 8, seed=BENCH_SEED)
    fill_table(table, keys, values)
    ops = generate_operations(WORKLOADS[workload], keys, 4096,
                              seed=BENCH_SEED)

    def run():
        return run_workload(table, ops, workload)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.extra_info["reads"] = result.reads
    benchmark.extra_info["writes"] = result.writes


def test_regenerate_ycsb(benchmark, bench_scale):
    result = benchmark.pedantic(
        run_experiment, args=("ycsb",), kwargs={"scale": bench_scale},
        rounds=1, iterations=1,
    )
    attach_result(benchmark, result)
    assert set(result.column("workload")) == {"A", "B", "C", "D", "F"}
