"""Fig 12 — minimum-space stability across hash seeds."""

from benchmarks.conftest import attach_result
from repro.bench.experiments import run_experiment


def test_regenerate_fig12(benchmark, bench_scale):
    result = benchmark.pedantic(
        run_experiment, args=("fig12",), kwargs={"scale": bench_scale},
        rounds=1, iterations=1,
    )
    attach_result(benchmark, result)
    costs = result.column("space cost (bits/value bit)")
    # The paper: hash seed has nearly no impact on space efficiency.
    assert max(costs) - min(costs) < 0.25
