#!/usr/bin/env python
"""Sharded-embedder benchmark: shard count x build workers, plus lookups.

Sweeps :class:`repro.core.sharded.ShardedEmbedder` against the single
:class:`~repro.core.embedder.VisionEmbedder` at the same workload (uniform
random uint64 keys, 12-bit values, capacity == n):

- ``single_sequential_reference`` — per-key ``insert`` into one table
  with the cost cache and the minimal-bucket shortcut disabled: the
  unsharded, unbatched, unoptimised write path every speedup is
  measured against (the same leg, and the same gate framing, as
  ``bench_build_path``'s ``scalar_insert_reference``).
- ``single_sequential`` — per-key ``insert`` under the default
  configuration, for context.
- ``single_insert_many`` / ``single_bulk_load`` — the single-table
  batched and static paths, for context.
- ``sharded_s{S}_w{W}`` — the sharded dynamic build for each shard count
  S and worker count W in the sweep: one vectorised partition pass, then
  per-shard batched builds on a thread pool.
- ``sharded_s8_static`` — the sharded static build (per-shard peel).
- ``sharded_s8_w4_process`` — the process-pool build (guarded: recorded
  as informational, never gates, since spawning interpreters on a small
  CI box can cost more than it saves).
- ``lookup_single`` / ``lookup_sharded`` — full-batch ``lookup_batch``
  over all n keys, min of several repetitions (single-digit-ms legs need
  min-of-reps to survive shared-box noise).

On a one-core box the sharded build speedup is *algorithmic*, not
parallel: each shard's repair graph is ~n/S keys, so GetCost walks stay
shallow, and the slack head-room keeps per-shard occupancy below the
expensive deep-walk regime. Worker threads only overlap the numpy
segments under the GIL.

``BENCH_shards.json`` records every leg plus the derived gates:
``build_speedup`` (single_sequential_reference / sharded S=8 W=4, must
be >= 2.0 full, >= 1.0 smoke) and ``lookup_ratio`` (sharded / single batch lookup,
must be <= 1.3 full, <= 2.6 smoke — smoke legs are sub-millisecond and
noisy). ``--check`` exits non-zero when a gate fails.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_shards.py [--smoke] [--check]
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import sys
import time

import numpy as np

if __package__ in (None, ""):  # script invocation: make src/ importable
    sys.path.insert(
        0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
    )

from repro.core.config import EmbedderConfig
from repro.core.embedder import VisionEmbedder
from repro.core.sharded import ShardedEmbedder

SEED = 3
VALUE_BITS = 12

#: (name, minimum?) gates — build_speedup has a floor, lookup_ratio a cap.
FULL_THRESHOLDS = {"build_speedup": 2.0, "lookup_ratio": 1.3}
SMOKE_THRESHOLDS = {"build_speedup": 1.0, "lookup_ratio": 2.6}

FULL_SWEEP = {"shards": (1, 2, 4, 8, 16), "workers": (1, 4)}
SMOKE_SWEEP = {"shards": (1, 8), "workers": (1, 4)}

#: The gating sharded configuration (the acceptance criterion's S and W).
GATE_SHARDS = 8
GATE_WORKERS = 4

LOOKUP_REPS = 5


def make_workload(n: int):
    rng = np.random.default_rng(SEED)
    keys = rng.choice(
        np.arange(1, max(10 * n, 1 << 20), dtype=np.uint64),
        size=n, replace=False,
    )
    values = rng.integers(0, 1 << VALUE_BITS, size=n, dtype=np.uint64)
    return keys, values


def make_single(n: int, *, cache: bool = True,
                shortcut: bool = True) -> VisionEmbedder:
    table = VisionEmbedder(
        capacity=n, value_bits=VALUE_BITS, seed=SEED,
        config=EmbedderConfig(cost_cache=cache),
    )
    if not shortcut:
        table._strategy.shortcut = False
    return table


def make_sharded(n: int, num_shards: int) -> ShardedEmbedder:
    return ShardedEmbedder(
        capacity=n, value_bits=VALUE_BITS, num_shards=num_shards, seed=SEED,
        config=EmbedderConfig(),
    )


def time_lookup(table, keys) -> float:
    """Min-of-reps full-batch lookup time (seconds)."""
    best = float("inf")
    for _ in range(LOOKUP_REPS):
        start = time.perf_counter()
        table.lookup_batch(keys)
        best = min(best, time.perf_counter() - start)
    return best


def run_legs(n: int, sweep: dict) -> dict:
    keys, values = make_workload(n)
    pairs = list(zip(keys.tolist(), values.tolist()))
    legs: dict = {}

    def record(name: str, seconds: float, extra: dict | None = None) -> None:
        legs[name] = {
            "seconds": round(seconds, 4),
            "kops": round(n / seconds / 1000, 2),
            **(extra or {}),
        }
        print(f"{name:>24}: {seconds:8.3f}s  ({legs[name]['kops']:8.1f} kops)")

    def verify(table) -> None:
        if not np.array_equal(table.lookup_batch(keys), values):
            raise SystemExit(f"lookup mismatch after building {table!r}")

    def release(table) -> None:
        # A built 100k-key table is a large live heap (assistant-table key
        # sets + cost cache); keeping one alive would tax every later
        # allocation-heavy leg with whole-heap gen-2 GC passes. Each leg
        # therefore times its lookups immediately and frees its table.
        del table
        gc.collect()

    # -- single-table baselines -----------------------------------------
    single = make_single(n, cache=False, shortcut=False)
    start = time.perf_counter()
    for key, value in pairs:
        single.insert(key, value)
    record("single_sequential_reference", time.perf_counter() - start)
    verify(single)
    release(single)

    single = make_single(n)
    start = time.perf_counter()
    for key, value in pairs:
        single.insert(key, value)
    record("single_sequential", time.perf_counter() - start)
    verify(single)
    record("lookup_single", time_lookup(single, keys), {"reps": LOOKUP_REPS})
    release(single)

    table = make_single(n)
    start = time.perf_counter()
    table.insert_many(pairs)
    record("single_insert_many", time.perf_counter() - start)
    verify(table)
    release(table)

    table = make_single(n)
    start = time.perf_counter()
    table.bulk_load(pairs)
    record("single_bulk_load", time.perf_counter() - start)
    verify(table)
    release(table)

    # -- sharded dynamic sweep -------------------------------------------
    for num_shards in sweep["shards"]:
        for workers in sweep["workers"]:
            if num_shards == 1 and workers != 1:
                continue  # one shard has nothing to parallelise
            sharded = make_sharded(n, num_shards)
            start = time.perf_counter()
            sharded.build(pairs, workers=workers)
            seconds = time.perf_counter() - start
            rows = sharded.shard_stats()
            extra = {
                "shards": num_shards,
                "workers": workers,
                "shard_keys_min": min(row["keys"] for row in rows),
                "shard_keys_max": max(row["keys"] for row in rows),
                "space_efficiency_max": round(
                    max(row["space_efficiency"] for row in rows), 4),
                "reconstructions": int(
                    sum(row["reconstructions"] for row in rows)),
                "cost_cache_hits": int(
                    sum(row["cost_cache_hits"] for row in rows)),
                "cost_cache_misses": int(
                    sum(row["cost_cache_misses"] for row in rows)),
                "cost_cache_invalidations": int(
                    sum(row["cost_cache_invalidations"] for row in rows)),
            }
            record(f"sharded_s{num_shards}_w{workers}", seconds, extra)
            verify(sharded)
            sharded.check_invariants()
            if num_shards == GATE_SHARDS and workers == GATE_WORKERS:
                record("lookup_sharded", time_lookup(sharded, keys),
                       {"reps": LOOKUP_REPS, "shards": GATE_SHARDS})
            release(sharded)

    # -- sharded static build ---------------------------------------------
    sharded = make_sharded(n, GATE_SHARDS)
    start = time.perf_counter()
    sharded.build(pairs, workers=GATE_WORKERS, method="static")
    record(f"sharded_s{GATE_SHARDS}_static", time.perf_counter() - start,
           {"shards": GATE_SHARDS, "workers": GATE_WORKERS})
    verify(sharded)
    release(sharded)

    # -- sharded process-pool build (informational, never gates) ----------
    try:
        sharded = make_sharded(n, GATE_SHARDS)
        start = time.perf_counter()
        sharded.build(pairs, workers=GATE_WORKERS, executor="process")
        record(f"sharded_s{GATE_SHARDS}_w{GATE_WORKERS}_process",
               time.perf_counter() - start,
               {"shards": GATE_SHARDS, "workers": GATE_WORKERS})
        verify(sharded)
        release(sharded)
    except OSError as exc:  # sandboxes without fork/spawn support
        print(f"process leg skipped: {exc}", file=sys.stderr)

    return legs


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=100_000,
                        help="number of pairs (default 100000)")
    parser.add_argument("--smoke", action="store_true",
                        help="small-n CI mode with relaxed thresholds")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero when a gate fails")
    parser.add_argument("--out", default="BENCH_shards.json",
                        help="output path (default BENCH_shards.json)")
    args = parser.parse_args(argv)

    n = 20_000 if args.smoke else args.n
    sweep = SMOKE_SWEEP if args.smoke else FULL_SWEEP
    thresholds = SMOKE_THRESHOLDS if args.smoke else FULL_THRESHOLDS
    print(f"sharded benchmark: n={n} smoke={args.smoke} sweep={sweep}")
    legs = run_legs(n, sweep)

    gate_leg = f"sharded_s{GATE_SHARDS}_w{GATE_WORKERS}"
    gates = {
        "build_speedup": round(
            legs["single_sequential_reference"]["seconds"]
            / legs[gate_leg]["seconds"], 2),
        "lookup_ratio": round(
            legs["lookup_sharded"]["seconds"]
            / legs["lookup_single"]["seconds"], 2),
    }
    report = {
        "benchmark": "bench_shards",
        "n": n,
        "smoke": args.smoke,
        "value_bits": VALUE_BITS,
        "seed": SEED,
        "gate_config": {"shards": GATE_SHARDS, "workers": GATE_WORKERS},
        "legs": legs,
        "gates": gates,
        "thresholds": thresholds,
    }
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"gates: {gates}  (thresholds: {thresholds})")
    print(f"wrote {args.out}")

    if args.check:
        problems = []
        if gates["build_speedup"] < thresholds["build_speedup"]:
            problems.append(
                f"build_speedup {gates['build_speedup']:.2f}x < required "
                f"{thresholds['build_speedup']:.2f}x")
        if gates["lookup_ratio"] > thresholds["lookup_ratio"]:
            problems.append(
                f"lookup_ratio {gates['lookup_ratio']:.2f}x > allowed "
                f"{thresholds['lookup_ratio']:.2f}x")
        if problems:
            for problem in problems:
                print(f"FAIL {problem}", file=sys.stderr)
            return 1
        print("all sharded gates met")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
