"""§V — theory: threshold solving and failure-model evaluation speed."""

import pytest

from benchmarks.conftest import attach_result
from repro.analysis import (
    expected_min_load,
    solve_lambda_threshold,
    update_failure_probability,
)
from repro.bench.experiments import run_experiment


def test_threshold_solver(benchmark):
    lam = benchmark(solve_lambda_threshold)
    assert lam == pytest.approx(1.709, abs=0.002)


def test_expected_min_load_eval(benchmark):
    value = benchmark(expected_min_load, 1.7)
    assert 0.9 < value < 1.1


def test_failure_model_eval(benchmark):
    p = benchmark(update_failure_probability, 1_000_000)
    assert p < 1e-4


def test_regenerate_theory(benchmark):
    result = benchmark.pedantic(
        run_experiment, args=("theory",), rounds=1, iterations=1
    )
    attach_result(benchmark, result)
