"""Table III — the FPGA case study: resources and the cycle model."""

import pytest

from benchmarks.conftest import BENCH_SEED, attach_result, filled_table
from repro.bench.experiments import run_experiment
from repro.fpga import LookupPipeline, estimate_resources


def test_resource_estimation_speed(benchmark):
    report = benchmark(estimate_resources, 1 << 19, 8)
    assert report.block_rams == 385
    assert report.frequency_mhz == pytest.approx(279.64, abs=0.01)


def test_pipeline_simulation_rate(benchmark):
    """Simulated cycles per second of the functional pipeline model."""
    table, keys, _values = filled_table("vision", 2048, 8)
    pipeline = LookupPipeline.from_embedder(table)
    batch = keys[:1024].tolist()
    result = benchmark(pipeline.run, batch)
    assert len(result.values) == len(batch)


def test_regenerate_table3(benchmark, bench_scale):
    result = benchmark.pedantic(
        run_experiment, args=("table3",), kwargs={"scale": bench_scale},
        rounds=1, iterations=1,
    )
    attach_result(benchmark, result)
    totals = next(r for r in result.rows if r[0] == "Total")
    assert totals[1] == 581 and totals[2] == 697 and totals[3] == 385
