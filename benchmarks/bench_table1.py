"""Table I — algorithm comparison: benchmark each table's lookup path.

Table I's lookup column says every compared algorithm answers in O(1); this
target measures the actual constant for a single scalar lookup, and
regenerates the analytic table.
"""

import pytest

from benchmarks.conftest import attach_result, filled_table
from repro.bench.experiments import run_experiment

ALGORITHMS = ("vision", "othello", "color", "bloomier", "ludo")


@pytest.mark.parametrize("name", ALGORITHMS)
def test_scalar_lookup_constant(benchmark, name):
    table, keys, _values = filled_table(name, 4096, 8)
    probe = int(keys[1234])
    benchmark(table.lookup, probe)


def test_regenerate_table1(benchmark):
    result = benchmark(run_experiment, "table1")
    attach_result(benchmark, result)
    assert len(result.rows) == 3
