"""Fig 11 — update-throughput stability across hash seeds."""

import pytest

from benchmarks.conftest import attach_result
from repro.bench.experiments import run_experiment
from repro.bench.workloads import fill_table, make_pairs
from repro.factory import make_table


@pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
def test_fill_per_seed(benchmark, seed):
    keys, values = make_pairs(2048, 8, 1)

    def fill():
        table = make_table("vision", 2048, 8, seed=seed)
        fill_table(table, keys, values)
        return table

    table = benchmark.pedantic(fill, rounds=3, iterations=1)
    assert len(table) == 2048


def test_regenerate_fig11(benchmark, bench_scale):
    result = benchmark.pedantic(
        run_experiment, args=("fig11",), kwargs={"scale": bench_scale},
        rounds=1, iterations=1,
    )
    attach_result(benchmark, result)
    mops = result.column("update Mops")
    assert max(mops) < 2.0 * min(mops)
