"""Fig 10 — lookup-throughput stability across hash seeds."""

import pytest

from benchmarks.conftest import BENCH_SEED, attach_result, filled_table
from repro.bench.experiments import run_experiment
from repro.datasets import uniform_queries


@pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
def test_lookup_per_seed(benchmark, seed):
    table, keys, _values = filled_table("vision", 8192, 8, seed=seed)
    queries = uniform_queries(keys, 100_000, BENCH_SEED)
    benchmark(table.lookup_batch, queries)


def test_regenerate_fig10(benchmark, bench_scale):
    result = benchmark.pedantic(
        run_experiment, args=("fig10",), kwargs={"scale": bench_scale},
        rounds=1, iterations=1,
    )
    attach_result(benchmark, result)
    mops = result.column("lookup Mops")
    # Stability: seed choice must not change throughput by integer factors.
    assert max(mops) < 2.0 * min(mops)
