"""Fig 8 — lookup throughput vs n and vs L.

The benchmarked kernels are vectorised batch lookups; the L-sweep must
show the two-hash schemes' bit-plane cost growing with L while
VisionEmbedder stays flat.
"""

import numpy as np
import pytest

from benchmarks.conftest import BENCH_SEED, attach_result, filled_table
from repro.bench.experiments import run_experiment
from repro.datasets import uniform_queries

ALGORITHMS = ("vision", "othello", "color", "bloomier", "ludo")


@pytest.mark.parametrize("name", ALGORITHMS)
def test_batch_lookup_L1(benchmark, name):
    table, keys, _values = filled_table(name, 8192, 1)
    queries = uniform_queries(keys, 100_000, BENCH_SEED)
    benchmark(table.lookup_batch, queries)
    benchmark.extra_info["queries"] = len(queries)


@pytest.mark.parametrize("name", ("vision", "othello"))
@pytest.mark.parametrize("value_bits", (1, 10))
def test_batch_lookup_L_extremes(benchmark, name, value_bits):
    table, keys, _values = filled_table(name, 4096, value_bits)
    queries = uniform_queries(keys, 100_000, BENCH_SEED)
    benchmark(table.lookup_batch, queries)


def test_regenerate_fig8(benchmark, bench_scale):
    result = benchmark.pedantic(
        run_experiment, args=("fig8",), kwargs={"scale": bench_scale},
        rounds=1, iterations=1,
    )
    attach_result(benchmark, result)
    records = [dict(zip(result.columns, row)) for row in result.rows]

    def series(name):
        rows = [r for r in records if r["sweep"] == "vs L"
                and r["algorithm"] == name]
        rows.sort(key=lambda r: r["L"])
        return [r["Mops"] for r in rows]

    # Crossover shape: othello loses most of its L=1 speed by L=10,
    # vision's spread stays comparatively small.
    othello = series("othello")
    vision = series("vision")
    assert othello[-1] < 0.7 * othello[0]
    assert vision[-1] > 0.5 * vision[0]
