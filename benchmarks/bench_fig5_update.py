"""Fig 5 — update throughput including reconstruction time."""

import pytest

from benchmarks.conftest import BENCH_SEED, attach_result
from repro.bench.experiments import run_experiment
from repro.bench.workloads import fill_table, make_pairs
from repro.factory import make_table

DYNAMIC = ("vision", "othello", "color", "ludo")


@pytest.mark.parametrize("name", DYNAMIC)
def test_dynamic_insert_throughput(benchmark, name):
    keys, values = make_pairs(2048, 8, BENCH_SEED)

    def fill():
        table = make_table(name, 2048, 8, seed=BENCH_SEED)
        fill_table(table, keys, values)
        return table

    benchmark.pedantic(fill, rounds=3, iterations=1)
    benchmark.extra_info["ops_per_round"] = 2048


def test_bloomier_insert_is_linear_time(benchmark):
    keys, values = make_pairs(2048, 8, BENCH_SEED)
    table = make_table("bloomier", 2048, 8, seed=BENCH_SEED)
    fill_table(table, keys, values)
    extra = iter(range(1 << 50, (1 << 50) + 10_000))

    def one_insert():
        table.insert(next(extra), 1)

    benchmark.pedantic(one_insert, rounds=10, iterations=1)


def test_regenerate_fig5(benchmark, bench_scale):
    result = benchmark.pedantic(
        run_experiment, args=("fig5",), kwargs={"scale": bench_scale},
        rounds=1, iterations=1,
    )
    attach_result(benchmark, result)
    records = [dict(zip(result.columns, row)) for row in result.rows]
    vision = [r["Mops"] for r in records if r["algorithm"] == "vision"]
    bloomier = [r["Mops"] for r in records if r["algorithm"] == "bloomier"]
    # Bloomier's O(n) insert is orders of magnitude below the O(1) schemes.
    assert max(bloomier) < min(vision) / 10
