"""Space-constant ladder (extension): measured hypergraph thresholds."""

import pytest

from benchmarks.conftest import attach_result
from repro.analysis.thresholds import peel_success
from repro.bench.experiments import run_experiment


def test_peel_kernel(benchmark):
    """One peel attempt at Bloomier's operating point (succeeds)."""
    ok = benchmark.pedantic(
        peel_success, args=(1.23, 30_000, 1), rounds=3, iterations=1
    )
    assert ok


def test_regenerate_landscape(benchmark, bench_scale):
    result = benchmark.pedantic(
        run_experiment, args=("landscape",),
        kwargs={"scale": max(0.25, bench_scale)}, rounds=1, iterations=1,
    )
    attach_result(benchmark, result)
    ratios = result.column("m/n")
    assert ratios == sorted(ratios)
