"""§VI-G — deletion performance: slow-space-only removal."""

import pytest

from benchmarks.conftest import BENCH_SEED, attach_result, filled_table
from repro.bench.experiments import run_experiment


def test_delete_throughput(benchmark):
    """Drain-and-refill kernel: delete half the table each round."""
    table, keys, values = filled_table("vision", 4096, 8)
    half = keys[:2048].tolist()
    half_values = values[:2048].tolist()

    def drain_and_refill():
        for key in half:
            table.delete(key)
        for key, value in zip(half, half_values):
            table.insert(key, value)

    benchmark.pedantic(drain_and_refill, rounds=3, iterations=1)
    benchmark.extra_info["deletes_per_round"] = len(half)


def test_regenerate_deletion(benchmark, bench_scale):
    result = benchmark.pedantic(
        run_experiment, args=("deletion",), kwargs={"scale": bench_scale},
        rounds=1, iterations=1,
    )
    attach_result(benchmark, result)
    by_budget = [r[-1] for r in result.rows if r[0] == "vs space"]
    # Nearly flat in the space budget (paper: 6.60 -> 6.24 over 1.7..2.3).
    assert max(by_budget) < 2.0 * min(by_budget)
