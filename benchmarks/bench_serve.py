#!/usr/bin/env python
"""Serving-layer benchmark: micro-batched vs unbatched request handling.

One asyncio event loop hosts a :class:`~repro.serve.TableServer` over a
pre-loaded :class:`~repro.core.sharded.ShardedEmbedder` plus a fleet of
closed-loop clients (each keeps exactly one request outstanding, so
concurrency equals the client count). Every request carries a handful of
keys and the mix is 90% lookups / 10% updates of resident keys, i.e. the
mixed concurrent read+write traffic the serving layer exists for.

Two legs run the identical workload:

- ``batched`` — the default :class:`~repro.serve.ServeConfig`: requests
  queue for up to ``--window-ms`` (or until ``max_batch`` key-ops are
  pending) and one fused ``lookup_many``/scalar-write pass answers the
  whole batch.
- ``unbatched`` — ``ServeConfig.unbatched()``: every request becomes its
  own table call; this is the per-request baseline the batching win is
  measured against.

Each leg records served throughput (key-ops/s across all clients) and
client-observed request latency percentiles (p50/p99 over the whole
run). ``--check`` gates the batched leg: p99 below a latency ceiling and
sustained throughput above a floor (relaxed in ``--smoke`` mode for CI).
Results go to ``BENCH_serve.json``; ``--metrics-out BASE`` additionally
writes the server's metrics registry as ``BASE.metrics.json`` /
``BASE.metrics.prom`` sidecars, which ``--check`` then validates against
the client-side request count.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_serve.py [--smoke] [--check]
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import random
import sys
import time

if __package__ in (None, ""):  # script invocation: make src/ importable
    sys.path.insert(
        0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
    )

from repro.core.sharded import ShardedEmbedder
from repro.obs import parse_prometheus_text, write_sidecar
from repro.serve import AsyncServeClient, ServeConfig, TableServer

SEED = 7
VALUE_BITS = 16
WRITE_FRACTION = 0.1

#: Gates for the *batched* leg. Full mode asks for the serving target —
#: 50 kops sustained under concurrent mixed traffic (measured ~92 kops at
#: the 32-client default) — with a 40 ms p99 ceiling (measured ~24 ms);
#: smoke mode (small table, short run, shared CI runners) only guards
#: against order-of-magnitude regressions.
#: The loop-lag ceiling is the runtime face of the R601 static rule: a
#: batched drain that blocks the event loop shows up here long before it
#: shows up in client p99.
FULL_GATES = {"min_kops": 50.0, "max_p99_s": 0.040,
              "max_loop_lag_p99_s": 0.050}
SMOKE_GATES = {"min_kops": 10.0, "max_p99_s": 0.25,
               "max_loop_lag_p99_s": 0.25}


def make_table(n_keys: int) -> ShardedEmbedder:
    """A sharded table pre-loaded with ``n_keys`` resident pairs."""
    table = ShardedEmbedder(
        capacity=max(2 * n_keys, 1024), value_bits=VALUE_BITS,
        num_shards=4, seed=SEED,
    )
    rng = random.Random(SEED)
    keys = list(range(1, n_keys + 1))
    values = [rng.randrange(1 << VALUE_BITS) for _ in keys]
    table.insert_batch(keys, values)
    return table


def make_requests(
    n_keys: int, keys_per_request: int, seed: int, count: int,
) -> list:
    """Pre-generated request plan so the timed loop only does I/O.

    Each entry is ``("lookup", keys)`` or ``("update", pairs)``; the loop
    cycles through the plan if it outlasts ``count`` requests.
    """
    rng = random.Random(seed)
    plan = []
    for _ in range(count):
        keys = [rng.randrange(1, n_keys + 1) for _ in range(keys_per_request)]
        if rng.random() < WRITE_FRACTION:
            plan.append(("update", [
                (k, rng.randrange(1 << VALUE_BITS)) for k in keys]))
        else:
            plan.append(("lookup", keys))
    return plan


async def run_client(
    port: int, plan: list, keys_per_request: int, duration_s: float,
    latencies: list, counters: dict,
) -> None:
    """Closed loop: one outstanding request until the clock runs out."""
    loop = asyncio.get_running_loop()
    deadline = loop.time() + duration_s
    index = 0
    async with AsyncServeClient(port=port) as client:
        while loop.time() < deadline:
            kind, payload = plan[index % len(plan)]
            index += 1
            start = loop.time()
            if kind == "update":
                await client.update(payload)
            else:
                await client.lookup(payload)
            latencies.append(loop.time() - start)
            counters["requests"] += 1
            counters["keys"] += keys_per_request


async def run_leg(
    table: ShardedEmbedder, config: ServeConfig,
    clients: int, n_keys: int, keys_per_request: int, duration_s: float,
) -> tuple:
    """Serve one leg; returns ``(stats_dict, server_registry)``."""
    server = TableServer(table, config)
    await server.start()
    latencies: list = []
    counters = {"requests": 0, "keys": 0}
    plans = [
        make_requests(n_keys, keys_per_request, SEED + i, 512)
        for i in range(clients)
    ]
    start = time.perf_counter()
    try:
        await asyncio.gather(*[
            run_client(server.port, plans[i], keys_per_request, duration_s,
                       latencies, counters)
            for i in range(clients)
        ])
    finally:
        elapsed = time.perf_counter() - start
        await server.stop()
    latencies.sort()

    def pct(q: float) -> float:
        if not latencies:
            return 0.0
        return latencies[min(len(latencies) - 1, int(q * len(latencies)))]

    stats = {
        "requests": counters["requests"],
        "keys_served": counters["keys"],
        "seconds": round(elapsed, 3),
        "kops": round(counters["keys"] / elapsed / 1000, 2),
        "requests_per_s": round(counters["requests"] / elapsed, 1),
        "latency_p50_ms": round(pct(0.50) * 1000, 3),
        "latency_p99_ms": round(pct(0.99) * 1000, 3),
        "batches_flushed": server._batcher.batches_flushed,
        "mean_batch_keys": round(
            counters["keys"] / max(server._batcher.batches_flushed, 1), 1),
        # the LoopLagMonitor's histogram survives server.stop(): these are
        # the sentinel's own counts, the truth the sidecar must agree with
        "loop_lag_samples": server.loop_lag.samples,
        "loop_lag_p99_ms": round(server.loop_lag.p99_s() * 1000, 3),
    }
    return stats, server.registry


def check_sidecar(json_path: str, prom_path: str, requests: int,
                  lag_samples: int = -1) -> list:
    """Validate the serve-metrics sidecars against client-side truth.

    ``lag_samples`` is the LoopLagMonitor's live count recorded by the
    leg; the exported ``repro_serve_loop_lag_seconds`` histogram must
    agree in both sidecar formats (pass ``-1`` to skip the check)."""
    problems = []
    try:
        with open(json_path) as handle:
            snapshot = json.load(handle)
    except (OSError, ValueError) as exc:
        return [f"{json_path} unreadable: {exc}"]
    try:
        with open(prom_path) as handle:
            samples = parse_prometheus_text(handle.read())
    except (OSError, ValueError) as exc:
        return [f"{prom_path} unreadable: {exc}"]

    if snapshot.get("format") != "repro-metrics/1":
        problems.append(f"unexpected format marker {snapshot.get('format')!r}")
    batch = snapshot.get("histograms", {}).get("repro_serve_batch_size")
    if batch is None or batch["count"] == 0:
        problems.append("batch-size histogram missing or empty")
    served = snapshot.get("counters", {}).get(
        "repro_serve_requests_total", {}).get("value")
    if served != requests:
        problems.append(
            f"repro_serve_requests_total={served!r} but the clients "
            f"completed {requests} requests"
        )
    if samples.get("repro_serve_requests_total") != served:
        problems.append("prom/json request counts disagree")
    if lag_samples >= 0:
        lag = snapshot.get("histograms", {}).get(
            "repro_serve_loop_lag_seconds")
        if lag is None:
            problems.append("loop-lag histogram missing from json sidecar")
        elif lag["count"] != lag_samples:
            problems.append(
                f"loop-lag histogram count {lag['count']} but the monitor "
                f"observed {lag_samples} sentinel wakeups")
        prom_count = samples.get("repro_serve_loop_lag_seconds_count")
        if prom_count != lag_samples:
            problems.append(
                f"prom loop-lag count {prom_count!r} but the monitor "
                f"observed {lag_samples}")
    return problems


async def run_benchmark(args: argparse.Namespace) -> dict:
    n_keys = 5_000 if args.smoke else 50_000
    duration_s = 1.0 if args.smoke else 5.0
    table = make_table(n_keys)
    batched_config = ServeConfig(
        batch_window_ms=args.window_ms, max_batch=args.max_batch)

    legs: dict = {}
    registries = {}
    for name, config in (
        ("unbatched", batched_config.unbatched()),
        ("batched", batched_config),
    ):
        legs[name], registries[name] = await run_leg(
            table, config, args.clients, n_keys, args.keys_per_request,
            duration_s)
        print(f"{name:>10}: {legs[name]['kops']:8.1f} kops  "
              f"p50={legs[name]['latency_p50_ms']:6.2f}ms  "
              f"p99={legs[name]['latency_p99_ms']:6.2f}ms  "
              f"mean_batch={legs[name]['mean_batch_keys']:.1f} keys  "
              f"loop_lag_p99={legs[name]['loop_lag_p99_ms']:.2f}ms")

    if args.metrics_out:
        json_path, prom_path = write_sidecar(
            registries["batched"], args.metrics_out)
        print(f"wrote {json_path} and {prom_path}")

    return {"legs": legs}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--clients", type=int, default=32,
                        help="concurrent closed-loop clients (default 32)")
    parser.add_argument("--keys-per-request", type=int, default=32,
                        help="keys per client request (default 32)")
    parser.add_argument("--window-ms", type=float, default=1.0,
                        help="micro-batch window for the batched leg "
                             "(default 1.0)")
    parser.add_argument("--max-batch", type=int, default=1024,
                        help="batched-leg flush size in key-ops "
                             "(default 1024)")
    parser.add_argument("--smoke", action="store_true",
                        help="short CI mode (~5 s) with relaxed gates")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero when the batched leg misses "
                             "a gate")
    parser.add_argument("--out", default="BENCH_serve.json",
                        help="output path (default BENCH_serve.json)")
    parser.add_argument("--metrics-out", default=None, metavar="BASE",
                        help="also write the batched leg's server metrics "
                             "as BASE.metrics.{json,prom}")
    args = parser.parse_args(argv)

    gates = SMOKE_GATES if args.smoke else FULL_GATES
    print(f"serve benchmark: clients={args.clients} smoke={args.smoke} "
          f"window={args.window_ms}ms keys/request={args.keys_per_request} "
          f"write_fraction={WRITE_FRACTION}")
    result = asyncio.run(run_benchmark(args))
    legs = result["legs"]

    report = {
        "benchmark": "bench_serve",
        "smoke": args.smoke,
        "clients": args.clients,
        "keys_per_request": args.keys_per_request,
        "write_fraction": WRITE_FRACTION,
        "seed": SEED,
        "legs": legs,
        "gates": gates,
        "batching_speedup": round(
            legs["batched"]["kops"] / max(legs["unbatched"]["kops"], 0.001),
            2),
    }
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"batching speedup: {report['batching_speedup']}x  "
          f"(gates: {gates})")
    print(f"wrote {args.out}")

    if args.check:
        failures = []
        batched = legs["batched"]
        if batched["kops"] < gates["min_kops"]:
            failures.append(
                f"throughput {batched['kops']:.1f} kops < required "
                f"{gates['min_kops']:.1f} kops")
        if batched["latency_p99_ms"] / 1000 > gates["max_p99_s"]:
            failures.append(
                f"p99 {batched['latency_p99_ms']:.2f} ms > allowed "
                f"{gates['max_p99_s'] * 1000:.1f} ms")
        if batched["loop_lag_samples"] == 0:
            failures.append("loop-lag monitor recorded no samples")
        elif batched["loop_lag_p99_ms"] / 1000 > gates["max_loop_lag_p99_s"]:
            failures.append(
                f"loop-lag p99 {batched['loop_lag_p99_ms']:.2f} ms > "
                f"allowed {gates['max_loop_lag_p99_s'] * 1000:.1f} ms — "
                "something blocked the event loop")
        if args.metrics_out:
            base, _ = os.path.splitext(args.metrics_out)
            if not args.metrics_out.endswith((".json", ".csv", ".txt",
                                              ".prom")):
                base = args.metrics_out
            failures.extend(check_sidecar(
                base + ".metrics.json", base + ".metrics.prom",
                batched["requests"], batched["loop_lag_samples"]))
        if failures:
            for failure in failures:
                print(f"FAIL batched leg: {failure}", file=sys.stderr)
            return 1
        print("all serving gates met")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
