#!/usr/bin/env python
"""Serving-layer benchmark: micro-batched vs unbatched request handling.

One asyncio event loop hosts a :class:`~repro.serve.TableServer` over a
pre-loaded :class:`~repro.core.sharded.ShardedEmbedder` plus a fleet of
closed-loop clients (each keeps exactly one request outstanding, so
concurrency equals the client count). Every request carries a handful of
keys and the mix is 90% lookups / 10% updates of resident keys, i.e. the
mixed concurrent read+write traffic the serving layer exists for.

Two legs run the identical workload:

- ``batched`` — the default :class:`~repro.serve.ServeConfig`: requests
  queue for up to ``--window-ms`` (or until ``max_batch`` key-ops are
  pending) and one fused ``lookup_many``/scalar-write pass answers the
  whole batch.
- ``unbatched`` — ``ServeConfig.unbatched()``: every request becomes its
  own table call; this is the per-request baseline the batching win is
  measured against.

Each leg records served throughput (key-ops/s across all clients) and
client-observed request latency percentiles (p50/p99 over the whole
run). ``--check`` gates the batched leg: p99 below a latency ceiling and
sustained throughput above a floor (relaxed in ``--smoke`` mode for CI).

With ``--workers N`` (the default, 4; ``--workers 0`` skips) two more
closed-loop legs run against a :class:`~repro.serve.WorkerPool` —
``workers1`` and ``workersN`` — the multi-process scale-out comparison:
same workload, same p99 budget, N per-core processes answering lookups
from shared-memory planes. The speedup gate adapts to the machine: on
≥4 usable cores the full gate demands ``workersN ≥ 2.5× workers1``; on
smaller runners it degrades to a pool-overhead floor and records which
mode judged the run (``workers_gate_mode`` in the JSON).

The final leg is **open-loop**: requests depart on a fixed arrival-rate
schedule regardless of completions, and each latency is measured from
the *intended* send time — so queueing delay that closed-loop clients
silently absorb (coordinated omission) is visible in the reported p99.

Results go to ``BENCH_serve.json``; ``--metrics-out BASE`` additionally
writes the server's metrics registry as ``BASE.metrics.json`` /
``BASE.metrics.prom`` sidecars, which ``--check`` then validates against
the client-side request count.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_serve.py [--smoke] [--check]
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import random
import sys
import time

if __package__ in (None, ""):  # script invocation: make src/ importable
    sys.path.insert(
        0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
    )

from repro.core.sharded import ShardedEmbedder
from repro.obs import parse_prometheus_text, write_sidecar
from repro.serve import AsyncServeClient, ServeConfig, TableServer, WorkerPool

SEED = 7
VALUE_BITS = 16
WRITE_FRACTION = 0.1

#: Cores this process may actually run on — the honest parallelism
#: budget (cgroup/affinity aware, unlike ``os.cpu_count``).
CPU_CORES = len(os.sched_getaffinity(0))

#: Full-mode workers gate on a machine with enough cores to scale:
#: N per-core workers must deliver ≥ this × the single-worker pool's
#: throughput at the same p99 budget.
FULL_WORKERS_SPEEDUP = 2.5
#: Degraded-mode floor on small runners (nothing to parallelise onto):
#: the pool must not *cost* more than this fraction of one worker's
#: throughput — guards the RPC/seqlock overhead, not the scaling.
DEGRADED_WORKERS_FLOOR = 0.4
#: Degraded-mode p99 relaxation: N processes time-slicing one core queue
#: behind each other, so the equal-p99 budget only binds in full mode.
DEGRADED_P99_FACTOR = 3.0

#: Gates for the *batched* leg. Full mode asks for the serving target —
#: 50 kops sustained under concurrent mixed traffic (measured ~92 kops at
#: the 32-client default) — with a 40 ms p99 ceiling (measured ~24 ms);
#: smoke mode (small table, short run, shared CI runners) only guards
#: against order-of-magnitude regressions.
#: The loop-lag ceiling is the runtime face of the R601 static rule: a
#: batched drain that blocks the event loop shows up here long before it
#: shows up in client p99.
FULL_GATES = {"min_kops": 50.0, "max_p99_s": 0.040,
              "max_loop_lag_p99_s": 0.050, "max_open_loop_p99_s": 0.150}
SMOKE_GATES = {"min_kops": 10.0, "max_p99_s": 0.25,
               "max_loop_lag_p99_s": 0.25, "max_open_loop_p99_s": 0.75}


def make_table(n_keys: int) -> ShardedEmbedder:
    """A sharded table pre-loaded with ``n_keys`` resident pairs."""
    table = ShardedEmbedder(
        capacity=max(2 * n_keys, 1024), value_bits=VALUE_BITS,
        num_shards=4, seed=SEED,
    )
    rng = random.Random(SEED)
    keys = list(range(1, n_keys + 1))
    values = [rng.randrange(1 << VALUE_BITS) for _ in keys]
    table.insert_batch(keys, values)
    return table


def make_requests(
    n_keys: int, keys_per_request: int, seed: int, count: int,
) -> list:
    """Pre-generated request plan so the timed loop only does I/O.

    Each entry is ``("lookup", keys)`` or ``("update", pairs)``; the loop
    cycles through the plan if it outlasts ``count`` requests.
    """
    rng = random.Random(seed)
    plan = []
    for _ in range(count):
        keys = [rng.randrange(1, n_keys + 1) for _ in range(keys_per_request)]
        if rng.random() < WRITE_FRACTION:
            plan.append(("update", [
                (k, rng.randrange(1 << VALUE_BITS)) for k in keys]))
        else:
            plan.append(("lookup", keys))
    return plan


async def run_client(
    port: int, plan: list, keys_per_request: int, duration_s: float,
    latencies: list, counters: dict,
) -> None:
    """Closed loop: one outstanding request until the clock runs out."""
    loop = asyncio.get_running_loop()
    deadline = loop.time() + duration_s
    index = 0
    async with AsyncServeClient(port=port) as client:
        while loop.time() < deadline:
            kind, payload = plan[index % len(plan)]
            index += 1
            start = loop.time()
            if kind == "update":
                await client.update(payload)
            else:
                await client.lookup(payload)
            latencies.append(loop.time() - start)
            counters["requests"] += 1
            counters["keys"] += keys_per_request


async def run_leg(
    table: ShardedEmbedder, config: ServeConfig,
    clients: int, n_keys: int, keys_per_request: int, duration_s: float,
) -> tuple:
    """Serve one leg; returns ``(stats_dict, server_registry)``."""
    server = TableServer(table, config)
    await server.start()
    latencies: list = []
    counters = {"requests": 0, "keys": 0}
    plans = [
        make_requests(n_keys, keys_per_request, SEED + i, 512)
        for i in range(clients)
    ]
    start = time.perf_counter()
    try:
        await asyncio.gather(*[
            run_client(server.port, plans[i], keys_per_request, duration_s,
                       latencies, counters)
            for i in range(clients)
        ])
    finally:
        elapsed = time.perf_counter() - start
        await server.stop()
    latencies.sort()

    def pct(q: float) -> float:
        if not latencies:
            return 0.0
        return latencies[min(len(latencies) - 1, int(q * len(latencies)))]

    stats = {
        "requests": counters["requests"],
        "keys_served": counters["keys"],
        "seconds": round(elapsed, 3),
        "kops": round(counters["keys"] / elapsed / 1000, 2),
        "requests_per_s": round(counters["requests"] / elapsed, 1),
        "latency_p50_ms": round(pct(0.50) * 1000, 3),
        "latency_p99_ms": round(pct(0.99) * 1000, 3),
        "batches_flushed": server._batcher.batches_flushed,
        "mean_batch_keys": round(
            counters["keys"] / max(server._batcher.batches_flushed, 1), 1),
        # the LoopLagMonitor's histogram survives server.stop(): these are
        # the sentinel's own counts, the truth the sidecar must agree with
        "loop_lag_samples": server.loop_lag.samples,
        "loop_lag_p99_ms": round(server.loop_lag.p99_s() * 1000, 3),
    }
    return stats, server.registry


def _percentiles(latencies: list) -> tuple:
    """(p50, p99) seconds from an unsorted latency list."""
    if not latencies:
        return 0.0, 0.0
    ordered = sorted(latencies)

    def pct(q: float) -> float:
        return ordered[min(len(ordered) - 1, int(q * len(ordered)))]

    return pct(0.50), pct(0.99)


async def _drive_closed_loop(
    port: int, clients: int, n_keys: int, keys_per_request: int,
    duration_s: float,
) -> dict:
    """The closed-loop client fleet alone (server runs elsewhere)."""
    latencies: list = []
    counters = {"requests": 0, "keys": 0}
    plans = [
        make_requests(n_keys, keys_per_request, SEED + i, 512)
        for i in range(clients)
    ]
    start = time.perf_counter()
    await asyncio.gather(*[
        run_client(port, plans[i], keys_per_request, duration_s,
                   latencies, counters)
        for i in range(clients)
    ])
    elapsed = time.perf_counter() - start
    p50, p99 = _percentiles(latencies)
    return {
        "requests": counters["requests"],
        "keys_served": counters["keys"],
        "seconds": round(elapsed, 3),
        "kops": round(counters["keys"] / elapsed / 1000, 2),
        "requests_per_s": round(counters["requests"] / elapsed, 1),
        "latency_p50_ms": round(p50 * 1000, 3),
        "latency_p99_ms": round(p99 * 1000, 3),
    }


def run_pool_leg(
    table: ShardedEmbedder, config: ServeConfig, workers: int,
    clients: int, n_keys: int, keys_per_request: int, duration_s: float,
) -> dict:
    """One closed-loop leg against a ``workers``-process WorkerPool."""
    pool = WorkerPool(table, workers=workers, config=config)
    pool.start()
    try:
        stats = asyncio.run(_drive_closed_loop(
            pool.port, clients, n_keys, keys_per_request, duration_s))
        stats["workers"] = workers
        stats["socket_mode"] = pool.socket_mode
    finally:
        pool.stop()
    return stats


async def _drive_open_loop(
    port: int, rate_rps: float, duration_s: float, n_keys: int,
    keys_per_request: int, connections: int,
) -> dict:
    """Open loop: requests depart on schedule, not on completion.

    A fixed pool of persistent connections serves the in-flight requests;
    when every connection is busy the next departure *waits for one* —
    but its latency is still measured from the intended send time, so
    that queueing shows up in the percentiles instead of being silently
    omitted (the coordinated-omission correction).
    """
    loop = asyncio.get_running_loop()
    plan = make_requests(n_keys, keys_per_request, SEED + 991, 2048)
    free: asyncio.Queue = asyncio.Queue()
    opened = []
    for _ in range(connections):
        client = AsyncServeClient(port=port)
        await client.connect()
        opened.append(client)
        free.put_nowait(client)

    latencies: list = []       # from intended send time (reported)
    service_times: list = []   # from actual send (diagnostic)
    counters = {"requests": 0, "keys": 0, "errors": 0}

    async def fire(index: int, intended: float) -> None:
        client = await free.get()
        try:
            kind, payload = plan[index % len(plan)]
            sent = loop.time()
            try:
                if kind == "update":
                    await client.update(payload)
                else:
                    await client.lookup(payload)
            except Exception:  # noqa: BLE001 - overload shows as errors
                counters["errors"] += 1
                return
            done = loop.time()
            latencies.append(done - intended)
            service_times.append(done - sent)
            counters["requests"] += 1
            counters["keys"] += keys_per_request
        finally:
            free.put_nowait(client)

    total = int(rate_rps * duration_s)
    interval = 1.0 / rate_rps
    start = loop.time() + 0.05
    tasks = []
    try:
        for index in range(total):
            intended = start + index * interval
            delay = intended - loop.time()
            if delay > 0:
                await asyncio.sleep(delay)
            tasks.append(asyncio.ensure_future(fire(index, intended)))
        await asyncio.gather(*tasks)
    finally:
        for client in opened:
            await client.close()
    elapsed = max(loop.time() - start, 1e-9)
    p50, p99 = _percentiles(latencies)
    sp50, sp99 = _percentiles(service_times)
    return {
        "arrival_rate_rps": rate_rps,
        "connections": connections,
        "requests": counters["requests"],
        "errors": counters["errors"],
        "keys_served": counters["keys"],
        "seconds": round(elapsed, 3),
        "kops": round(counters["keys"] / elapsed / 1000, 2),
        "latency_p50_ms": round(p50 * 1000, 3),
        "latency_p99_ms": round(p99 * 1000, 3),
        "service_p50_ms": round(sp50 * 1000, 3),
        "service_p99_ms": round(sp99 * 1000, 3),
    }


def run_open_loop_leg(
    table: ShardedEmbedder, config: ServeConfig, workers: int,
    rate_rps: float, duration_s: float, n_keys: int,
    keys_per_request: int, connections: int,
) -> dict:
    """Open-loop arrival schedule against the multi-worker pool."""
    pool = WorkerPool(table, workers=workers, config=config)
    pool.start()
    try:
        stats = asyncio.run(_drive_open_loop(
            pool.port, rate_rps, duration_s, n_keys, keys_per_request,
            connections))
        stats["workers"] = workers
        stats["socket_mode"] = pool.socket_mode
    finally:
        pool.stop()
    return stats


def check_sidecar(json_path: str, prom_path: str, requests: int,
                  lag_samples: int = -1) -> list:
    """Validate the serve-metrics sidecars against client-side truth.

    ``lag_samples`` is the LoopLagMonitor's live count recorded by the
    leg; the exported ``repro_serve_loop_lag_seconds`` histogram must
    agree in both sidecar formats (pass ``-1`` to skip the check)."""
    problems = []
    try:
        with open(json_path) as handle:
            snapshot = json.load(handle)
    except (OSError, ValueError) as exc:
        return [f"{json_path} unreadable: {exc}"]
    try:
        with open(prom_path) as handle:
            samples = parse_prometheus_text(handle.read())
    except (OSError, ValueError) as exc:
        return [f"{prom_path} unreadable: {exc}"]

    if snapshot.get("format") != "repro-metrics/1":
        problems.append(f"unexpected format marker {snapshot.get('format')!r}")
    batch = snapshot.get("histograms", {}).get("repro_serve_batch_size")
    if batch is None or batch["count"] == 0:
        problems.append("batch-size histogram missing or empty")
    served = snapshot.get("counters", {}).get(
        "repro_serve_requests_total", {}).get("value")
    if served != requests:
        problems.append(
            f"repro_serve_requests_total={served!r} but the clients "
            f"completed {requests} requests"
        )
    if samples.get("repro_serve_requests_total") != served:
        problems.append("prom/json request counts disagree")
    if lag_samples >= 0:
        lag = snapshot.get("histograms", {}).get(
            "repro_serve_loop_lag_seconds")
        if lag is None:
            problems.append("loop-lag histogram missing from json sidecar")
        elif lag["count"] != lag_samples:
            problems.append(
                f"loop-lag histogram count {lag['count']} but the monitor "
                f"observed {lag_samples} sentinel wakeups")
        prom_count = samples.get("repro_serve_loop_lag_seconds_count")
        if prom_count != lag_samples:
            problems.append(
                f"prom loop-lag count {prom_count!r} but the monitor "
                f"observed {lag_samples}")
    return problems


async def run_benchmark(args: argparse.Namespace) -> dict:
    n_keys = 5_000 if args.smoke else 50_000
    duration_s = 1.0 if args.smoke else 5.0
    table = make_table(n_keys)
    batched_config = ServeConfig(
        batch_window_ms=args.window_ms, max_batch=args.max_batch)

    legs: dict = {}
    registries = {}
    for name, config in (
        ("unbatched", batched_config.unbatched()),
        ("batched", batched_config),
    ):
        legs[name], registries[name] = await run_leg(
            table, config, args.clients, n_keys, args.keys_per_request,
            duration_s)
        print(f"{name:>10}: {legs[name]['kops']:8.1f} kops  "
              f"p50={legs[name]['latency_p50_ms']:6.2f}ms  "
              f"p99={legs[name]['latency_p99_ms']:6.2f}ms  "
              f"mean_batch={legs[name]['mean_batch_keys']:.1f} keys  "
              f"loop_lag_p99={legs[name]['loop_lag_p99_ms']:.2f}ms")

    if args.metrics_out:
        json_path, prom_path = write_sidecar(
            registries["batched"], args.metrics_out)
        print(f"wrote {json_path} and {prom_path}")

    return {"legs": legs}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--clients", type=int, default=32,
                        help="concurrent closed-loop clients (default 32)")
    parser.add_argument("--keys-per-request", type=int, default=32,
                        help="keys per client request (default 32)")
    parser.add_argument("--window-ms", type=float, default=1.0,
                        help="micro-batch window for the batched leg "
                             "(default 1.0)")
    parser.add_argument("--max-batch", type=int, default=1024,
                        help="batched-leg flush size in key-ops "
                             "(default 1024)")
    parser.add_argument("--workers", type=int, default=4,
                        help="upper leg of the worker-pool sweep "
                             "(workers=1 vs workers=N); 0 skips the pool "
                             "and open-loop legs entirely (default 4)")
    parser.add_argument("--arrival-rate", type=float, default=None,
                        help="open-loop arrival rate in requests/s "
                             "(default: 400 smoke, 1000 full)")
    parser.add_argument("--open-loop-conns", type=int, default=64,
                        help="persistent connections serving the "
                             "open-loop schedule (default 64)")
    parser.add_argument("--smoke", action="store_true",
                        help="short CI mode (~5 s) with relaxed gates")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero when the batched leg misses "
                             "a gate")
    parser.add_argument("--out", default="BENCH_serve.json",
                        help="output path (default BENCH_serve.json)")
    parser.add_argument("--metrics-out", default=None, metavar="BASE",
                        help="also write the batched leg's server metrics "
                             "as BASE.metrics.{json,prom}")
    args = parser.parse_args(argv)

    gates = dict(SMOKE_GATES if args.smoke else FULL_GATES)
    print(f"serve benchmark: clients={args.clients} smoke={args.smoke} "
          f"window={args.window_ms}ms keys/request={args.keys_per_request} "
          f"write_fraction={WRITE_FRACTION} cpu_cores={CPU_CORES} "
          f"workers={args.workers}")
    result = asyncio.run(run_benchmark(args))
    legs = result["legs"]

    n_keys = 5_000 if args.smoke else 50_000
    duration_s = 1.0 if args.smoke else 5.0
    workers_gate_mode = "skipped"
    workers_speedup = None
    if args.workers > 0:
        # The worker-pool sweep: same table, same closed-loop fleet and
        # p99 budget; only the process count changes. Full-scale gating
        # needs cores to scale onto — smaller runners judge overhead only.
        workers_gate_mode = (
            "full" if CPU_CORES >= 4 and args.workers >= 4 else "degraded"
        )
        table = make_table(n_keys)
        pool_config = ServeConfig(
            batch_window_ms=args.window_ms, max_batch=args.max_batch)
        for count in (1, args.workers):
            name = f"workers{count}"
            if name in legs:
                continue
            legs[name] = run_pool_leg(
                table, pool_config, count, args.clients, n_keys,
                args.keys_per_request, duration_s)
            print(f"{name:>10}: {legs[name]['kops']:8.1f} kops  "
                  f"p50={legs[name]['latency_p50_ms']:6.2f}ms  "
                  f"p99={legs[name]['latency_p99_ms']:6.2f}ms  "
                  f"socket={legs[name]['socket_mode']}")
        workers_speedup = round(
            legs[f"workers{args.workers}"]["kops"]
            / max(legs["workers1"]["kops"], 0.001), 2)

        # Default full-mode arrival rate scales with the cores actually
        # available — open loop at a rate the machine cannot reach only
        # measures the queue, not the server.
        rate = args.arrival_rate or (
            400.0 if args.smoke else min(1000.0, 250.0 * CPU_CORES))
        legs["open_loop"] = run_open_loop_leg(
            table, pool_config, args.workers, rate, duration_s, n_keys,
            args.keys_per_request, args.open_loop_conns)
        print(f" open_loop: {legs['open_loop']['kops']:8.1f} kops  "
              f"rate={rate:.0f}rps  "
              f"p99={legs['open_loop']['latency_p99_ms']:6.2f}ms "
              f"(from intended send; service "
              f"p99={legs['open_loop']['service_p99_ms']:.2f}ms)  "
              f"errors={legs['open_loop']['errors']}")

    if workers_gate_mode == "full":
        gates["min_workers_speedup"] = FULL_WORKERS_SPEEDUP
        gates["max_workers_p99_s"] = gates["max_p99_s"]
    elif workers_gate_mode == "degraded":
        gates["min_workers_speedup"] = DEGRADED_WORKERS_FLOOR
        gates["max_workers_p99_s"] = round(
            gates["max_p99_s"] * DEGRADED_P99_FACTOR, 3)
        # Intended-send latency includes dispatcher scheduling slip,
        # which N processes time-slicing one core makes unavoidable.
        gates["max_open_loop_p99_s"] = round(
            gates["max_open_loop_p99_s"] * DEGRADED_P99_FACTOR, 3)

    report = {
        "benchmark": "bench_serve",
        "smoke": args.smoke,
        "clients": args.clients,
        "keys_per_request": args.keys_per_request,
        "write_fraction": WRITE_FRACTION,
        "seed": SEED,
        "cpu_cores": CPU_CORES,
        "workers": args.workers,
        "workers_gate_mode": workers_gate_mode,
        "workers_speedup": workers_speedup,
        "legs": legs,
        "gates": gates,
        "batching_speedup": round(
            legs["batched"]["kops"] / max(legs["unbatched"]["kops"], 0.001),
            2),
    }
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"batching speedup: {report['batching_speedup']}x  "
          f"(gates: {gates})")
    print(f"wrote {args.out}")

    if args.check:
        failures = []
        batched = legs["batched"]
        if batched["kops"] < gates["min_kops"]:
            failures.append(
                f"throughput {batched['kops']:.1f} kops < required "
                f"{gates['min_kops']:.1f} kops")
        if batched["latency_p99_ms"] / 1000 > gates["max_p99_s"]:
            failures.append(
                f"p99 {batched['latency_p99_ms']:.2f} ms > allowed "
                f"{gates['max_p99_s'] * 1000:.1f} ms")
        if batched["loop_lag_samples"] == 0:
            failures.append("loop-lag monitor recorded no samples")
        elif batched["loop_lag_p99_ms"] / 1000 > gates["max_loop_lag_p99_s"]:
            failures.append(
                f"loop-lag p99 {batched['loop_lag_p99_ms']:.2f} ms > "
                f"allowed {gates['max_loop_lag_p99_s'] * 1000:.1f} ms — "
                "something blocked the event loop")
        if args.workers > 0:
            # Equal p99 budget: the scaled pool must stay inside the
            # same ceiling the batched single process is held to.
            top = legs[f"workers{args.workers}"]
            if top["latency_p99_ms"] / 1000 > gates["max_workers_p99_s"]:
                failures.append(
                    f"workers{args.workers} p99 "
                    f"{top['latency_p99_ms']:.2f} ms > allowed "
                    f"{gates['max_workers_p99_s'] * 1000:.1f} ms "
                    f"({workers_gate_mode} gate)")
            floor = gates["min_workers_speedup"]
            if workers_speedup is not None and workers_speedup < floor:
                failures.append(
                    f"workers speedup {workers_speedup:.2f}x < required "
                    f"{floor:.2f}x ({workers_gate_mode} gate, "
                    f"{CPU_CORES} cores)")
            open_loop = legs["open_loop"]
            if open_loop["errors"]:
                failures.append(
                    f"open-loop leg saw {open_loop['errors']} errors")
            if (open_loop["latency_p99_ms"] / 1000
                    > gates["max_open_loop_p99_s"]):
                failures.append(
                    f"open-loop p99 {open_loop['latency_p99_ms']:.2f} ms "
                    f"(from intended send) > allowed "
                    f"{gates['max_open_loop_p99_s'] * 1000:.1f} ms")
        if args.metrics_out:
            base, _ = os.path.splitext(args.metrics_out)
            if not args.metrics_out.endswith((".json", ".csv", ".txt",
                                              ".prom")):
                base = args.metrics_out
            failures.extend(check_sidecar(
                base + ".metrics.json", base + ".metrics.prom",
                batched["requests"], batched["loop_lag_samples"]))
        if failures:
            for failure in failures:
                print(f"FAIL batched leg: {failure}", file=sys.stderr)
            return 1
        print("all serving gates met")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
