"""Shared fixtures for the per-figure benchmark targets.

Each ``bench_*.py`` file owns one table/figure of the paper:

- a ``test_regenerate_*`` case runs the experiment driver at benchmark
  scale and prints the regenerated rows (visible with ``-s``; always
  attached to the pytest-benchmark ``extra_info``), and
- ``test_*_throughput``-style cases put the figure's core operation under
  pytest-benchmark so timings are tracked run over run.

Workload sizes are deliberately modest (seconds per target, minutes for
the whole directory); pass ``--bench-scale`` to grow them.
"""

from __future__ import annotations

import pytest

from repro.bench.workloads import fill_table, make_pairs
from repro.factory import make_table

BENCH_SEED = 1


def pytest_addoption(parser):
    parser.addoption(
        "--bench-scale",
        action="store",
        type=float,
        default=0.25,
        help="workload multiplier for experiment regeneration (default 0.25)",
    )


@pytest.fixture(scope="session")
def bench_scale(request) -> float:
    return request.config.getoption("--bench-scale")


@pytest.fixture(scope="session")
def workload_8k():
    """8k random pairs with 8-bit values, shared across files."""
    return make_pairs(8192, 8, BENCH_SEED)


def filled_table(name: str, n: int, value_bits: int, seed: int = BENCH_SEED):
    """Build and fill one table (bulk path for Bloomier)."""
    keys, values = make_pairs(n, value_bits, seed)
    table = make_table(name, n, value_bits, seed=seed)
    fill_table(table, keys, values)
    return table, keys, values


def attach_result(benchmark, result) -> None:
    """Record a regenerated experiment's rows in the benchmark report."""
    benchmark.extra_info["experiment"] = result.experiment
    benchmark.extra_info["rows"] = [list(map(str, row)) for row in result.rows]
    print()
    print(result.render())
