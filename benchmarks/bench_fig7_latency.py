"""Fig 7 — update latency distribution (tail behaviour)."""

import pytest

from benchmarks.conftest import BENCH_SEED, attach_result
from repro.bench.experiments import run_experiment
from repro.bench.workloads import make_pairs
from repro.factory import make_table

DYNAMIC = ("vision", "othello", "color", "ludo")


@pytest.mark.parametrize("name", DYNAMIC)
def test_single_update_latency(benchmark, name):
    """Per-op latency of one insert into a half-full table."""
    n = 2048
    keys, values = make_pairs(n, 8, BENCH_SEED)
    table = make_table(name, n, 8, seed=BENCH_SEED)
    for key, value in zip(keys[: n // 2].tolist(), values[: n // 2].tolist()):
        table.insert(key, value)
    pending = iter(
        zip(keys[n // 2 :].tolist(), values[n // 2 :].tolist())
    )

    def one_insert():
        key, value = next(pending)
        table.insert(key, value)

    benchmark.pedantic(one_insert, rounds=min(500, n // 2 - 8), iterations=1)


def test_regenerate_fig7(benchmark, bench_scale):
    result = benchmark.pedantic(
        run_experiment, args=("fig7",), kwargs={"scale": bench_scale},
        rounds=1, iterations=1,
    )
    attach_result(benchmark, result)
    for row in result.rows:
        _algo, _ops, p50, p90, p99, p999, latency_max = row
        assert p50 <= p90 <= p99 <= p999 <= latency_max
