#!/usr/bin/env python
"""Engine benchmark: scalar vs array-native backend on the same workload.

Times four legs (uniform random uint64 keys, 12-bit values, capacity == n
so the final space efficiency matches a full table):

- ``scalar_insert_many`` — the batched write path on the default scalar
  backend: vectorised validation + hashing feeding per-key repair walks.
- ``vector_insert_many`` — the same call on ``backend="vector"``: the
  base-occupancy-masked peel retires most of the batch in a handful of
  numpy rounds and only the blocked remainder takes scalar walks.
- ``scalar_lookup_batch`` / ``vector_lookup_batch`` — batched lookup; the
  vector number exercises the fused one-gather-per-plane + XOR kernel
  (both backends share it, so the two legs should be close — the scalar
  leg is the regression reference).
- ``numba_insert_many`` — only when numba is importable; otherwise the
  leg is recorded as skipped (the backend silently degrades to the
  vector kernels, so timing it without numba would duplicate the vector
  leg).

Results and throughput gates are written to ``BENCH_engine.json``.
``--check`` exits non-zero when a leg misses its threshold (relaxed in
``--smoke`` mode, whose small n keeps the run under ~30 s for CI while
still catching an order-of-magnitude engine regression).

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_engine.py [--smoke] [--check]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import numpy as np

if __package__ in (None, ""):  # script invocation: make src/ importable
    sys.path.insert(
        0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
    )

from repro.core import HAVE_NUMBA, EmbedderConfig, VisionEmbedder
from repro.obs import parse_prometheus_text, write_sidecar

SEED = 3
VALUE_BITS = 12

#: Minimum throughput in kops. The full-run vector gate is 10x the
#: ~21 kops scalar insert_many baseline recorded in BENCH_build.json;
#: the lookup gate is 1 Mops through the fused gather+XOR kernel.
FULL_THRESHOLDS = {"vector_insert_many": 210.0, "vector_lookup_batch": 1000.0}
SMOKE_THRESHOLDS = {"vector_insert_many": 100.0, "vector_lookup_batch": 500.0}


def make_workload(n: int):
    rng = np.random.default_rng(SEED)
    keys = rng.choice(
        np.arange(1, max(10 * n, 1 << 20), dtype=np.uint64),
        size=n, replace=False,
    )
    values = rng.integers(0, 1 << VALUE_BITS, size=n, dtype=np.uint64)
    return keys, values


def make_embedder(n: int, backend: str) -> VisionEmbedder:
    return VisionEmbedder(
        capacity=n, value_bits=VALUE_BITS, seed=SEED,
        config=EmbedderConfig(backend=backend),
    )


def run_legs(n: int) -> tuple:
    """Times every leg; returns ``(legs, vector_table)``.

    The vector-backend table rides along so ``--metrics-out`` can export
    its engine instruments (``repro_engine_peeled_total`` & co) after the
    timed work, exactly as they accumulated during the benchmark.
    """
    keys, values = make_workload(n)
    key_list, value_list = keys.tolist(), values.tolist()
    legs: dict = {}
    vector_table = None

    def record(name: str, seconds: float, extra: dict | None = None) -> None:
        legs[name] = {
            "seconds": round(seconds, 4),
            "kops": round(n / seconds / 1000, 2),
            **(extra or {}),
        }
        print(f"{name:>22}: {seconds:7.2f}s  ({legs[name]['kops']:9.1f} kops)")

    backends = ["scalar", "vector"] + (["numba"] if HAVE_NUMBA else [])
    for backend in backends:
        table = make_embedder(n, backend)
        if backend == "vector":
            vector_table = table
        start = time.perf_counter()
        table.insert_many(zip(key_list, value_list))
        record(f"{backend}_insert_many", time.perf_counter() - start)
        table.check_invariants()

        # Batched lookup over the freshly built table, repeated so the
        # leg is not dominated by one-off warmup at small n.
        repeats = 5
        start = time.perf_counter()
        for _ in range(repeats):
            out = table.lookup_batch(keys)
        seconds = (time.perf_counter() - start) / repeats
        legs[f"{backend}_lookup_batch"] = {
            "seconds": round(seconds, 4),
            "kops": round(n / seconds / 1000, 2),
        }
        print(f"{backend + '_lookup_batch':>22}: {seconds:7.2f}s  "
              f"({legs[backend + '_lookup_batch']['kops']:9.1f} kops)")
        if not np.array_equal(out, values):
            raise SystemExit(f"{backend} lookup_batch returned wrong values")

    if not HAVE_NUMBA:
        legs["numba_insert_many"] = {"skipped": "numba not importable"}
        print(f"{'numba_insert_many':>22}: skipped (numba not importable)")
    return legs, vector_table


def check_sidecar(json_path: str, prom_path: str, table) -> list:
    """Validate the engine-metrics sidecars against the vector table.

    Returns a list of problem strings (empty when everything checks out):
    both files must parse, the peel counter must have retired keys during
    the vector insert leg, and the prom/json exports must agree with the
    live registry.
    """
    problems = []
    try:
        with open(json_path) as handle:
            snapshot = json.load(handle)
    except (OSError, ValueError) as exc:
        return [f"{json_path} unreadable: {exc}"]
    try:
        with open(prom_path) as handle:
            samples = parse_prometheus_text(handle.read())
    except (OSError, ValueError) as exc:
        return [f"{prom_path} unreadable: {exc}"]

    if snapshot.get("format") != "repro-metrics/1":
        problems.append(f"unexpected format marker {snapshot.get('format')!r}")
    counters = snapshot.get("counters", {})
    peeled = counters.get("repro_engine_peeled_total", {}).get("value", 0)
    fallback = counters.get(
        "repro_engine_fallback_walks_total", {}).get("value", 0)
    if peeled <= 0:
        problems.append("repro_engine_peeled_total is zero — the vector "
                        "insert leg did not report peel progress")
    if peeled + fallback != len(table):
        problems.append(
            f"peeled({peeled}) + fallback({fallback}) != "
            f"{len(table)} inserted keys"
        )
    if samples.get("repro_engine_peeled_total") != peeled:
        problems.append("prom/json peel counts disagree")
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=100_000,
                        help="number of pairs (default 100000)")
    parser.add_argument("--smoke", action="store_true",
                        help="small-n CI mode (~30 s) with relaxed gates")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero when a leg misses its gate")
    parser.add_argument("--out", default="BENCH_engine.json",
                        help="output path (default BENCH_engine.json)")
    parser.add_argument("--metrics-out", default=None, metavar="BASE",
                        help="also write the vector table's engine metrics "
                             "as BASE.metrics.{json,prom}")
    args = parser.parse_args(argv)

    n = 20_000 if args.smoke else args.n
    thresholds = SMOKE_THRESHOLDS if args.smoke else FULL_THRESHOLDS
    print(f"engine benchmark: n={n} smoke={args.smoke} numba={HAVE_NUMBA}")
    legs, vector_table = run_legs(n)

    sidecar_paths = None
    if args.metrics_out:
        sidecar_paths = write_sidecar(vector_table.metrics, args.metrics_out)
        print(f"wrote {sidecar_paths[0]} and {sidecar_paths[1]}")

    report = {
        "benchmark": "bench_engine",
        "n": n,
        "smoke": args.smoke,
        "value_bits": VALUE_BITS,
        "seed": SEED,
        "numba_available": HAVE_NUMBA,
        "legs": legs,
        "thresholds_kops": thresholds,
        "speedups": {
            "insert_many": round(
                legs["scalar_insert_many"]["seconds"]
                / legs["vector_insert_many"]["seconds"], 2),
            "lookup_batch": round(
                legs["scalar_lookup_batch"]["seconds"]
                / legs["vector_lookup_batch"]["seconds"], 2),
        },
    }
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"speedups: {report['speedups']}  "
          f"(gates, kops: {thresholds})")
    print(f"wrote {args.out}")

    if args.check:
        failed = {
            name: (legs[name]["kops"], minimum)
            for name, minimum in thresholds.items()
            if legs[name]["kops"] < minimum
        }
        if failed:
            for name, (got, minimum) in failed.items():
                print(f"FAIL {name}: {got:.1f} kops < required "
                      f"{minimum:.1f} kops", file=sys.stderr)
            return 1
        if sidecar_paths is not None:
            problems = check_sidecar(*sidecar_paths, vector_table)
            if problems:
                for problem in problems:
                    print(f"FAIL metrics sidecar: {problem}",
                          file=sys.stderr)
                return 1
            print("all engine throughput gates met; metrics sidecar "
                  "validated")
        else:
            print("all engine throughput gates met")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
