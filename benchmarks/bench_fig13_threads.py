"""Fig 13 — multi-threaded lookup/update scaling."""

import threading

import pytest

from benchmarks.conftest import BENCH_SEED, attach_result
from repro.bench.experiments import run_experiment
from repro.bench.workloads import make_pairs
from repro.core import ConcurrentVisionEmbedder
from repro.datasets import uniform_queries


@pytest.mark.parametrize("threads", [1, 2, 4])
def test_threaded_batch_lookups(benchmark, threads):
    n = 8192
    keys, values = make_pairs(n, 8, BENCH_SEED)
    table = ConcurrentVisionEmbedder(n, 8, seed=BENCH_SEED)
    for key, value in zip(keys.tolist(), values.tolist()):
        table.insert(key, value)
    queries = uniform_queries(keys, 200_000, BENCH_SEED)
    chunks = [queries[i::threads] for i in range(threads)]

    def run_all():
        workers = [
            threading.Thread(target=table.lookup_batch, args=(chunk,))
            for chunk in chunks
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()

    benchmark.pedantic(run_all, rounds=3, iterations=1)
    benchmark.extra_info["queries"] = len(queries)


def test_regenerate_fig13(benchmark, bench_scale):
    result = benchmark.pedantic(
        run_experiment, args=("fig13",), kwargs={"scale": bench_scale},
        rounds=1, iterations=1,
    )
    attach_result(benchmark, result)
    assert result.column("threads") == [1, 2, 4, 8]
