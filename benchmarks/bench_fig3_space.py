"""Fig 3 — minimum space cost: regenerate the searched minima.

The benchmarked kernel is one full insertion at the paper's default 1.7L
budget (the operation the bisection repeats); the regeneration prints the
searched minimum space per algorithm.
"""

import pytest

from benchmarks.conftest import BENCH_SEED, attach_result
from repro.bench.experiments import run_experiment
from repro.bench.workloads import fill_table, make_pairs
from repro.factory import make_table


def test_vision_fill_at_default_budget(benchmark):
    keys, values = make_pairs(2048, 1, BENCH_SEED)

    def fill():
        table = make_table("vision", 2048, 1, seed=BENCH_SEED)
        fill_table(table, keys, values)
        return table

    table = benchmark.pedantic(fill, rounds=3, iterations=1)
    assert len(table) == 2048
    assert table.space_cost < 1.75


def test_regenerate_fig3(benchmark, bench_scale):
    result = benchmark.pedantic(
        run_experiment, args=("fig3",), kwargs={"scale": bench_scale},
        rounds=1, iterations=1,
    )
    attach_result(benchmark, result)
    rows = {(r[0], r[1], r[3]): r[4] for r in result.rows}
    largest = max(r[1] for r in result.rows if r[0] == "vs n")
    # Who wins: vision needs less minimum space than both two-hash schemes.
    assert rows[("vs n", largest, "vision")] < rows[("vs n", largest, "othello")]
    assert rows[("vs n", largest, "vision")] < rows[("vs n", largest, "color")]
