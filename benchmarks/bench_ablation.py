"""Ablations — the design choices §IV calls out.

- vision vs the simple random-kick strategy,
- GetCost lookahead depth (fixed 1/2/3 vs the dynamic schedule),
- Ludo's locator: original Othello vs the VisionEmbedder swap.
"""

import pytest

from benchmarks.conftest import BENCH_SEED, attach_result
from repro.bench.experiments import run_experiment
from repro.bench.workloads import make_pairs, try_fill_table
from repro.core import EmbedderConfig, VisionEmbedder
from repro.core.config import DepthPolicy


@pytest.mark.parametrize("policy_name,policy", [
    ("depth1", DepthPolicy(fixed=1)),
    ("depth3", DepthPolicy(fixed=3)),
    ("dynamic", DepthPolicy()),
])
def test_fill_by_depth_policy(benchmark, policy_name, policy):
    keys, values = make_pairs(1024, 4, BENCH_SEED)
    config = EmbedderConfig(
        depth_policy=policy,
        reconstruct_efficiency_limit=1.0,
        max_reconstruct_attempts=8,
    )

    def fill():
        # Theorem 1: depth 1 cannot converge at 1.7L (< 1.756), so its
        # fills legitimately exhaust the reconstruction budget — that cost
        # is exactly what this ablation measures.
        table = VisionEmbedder(1024, 4, config=config, seed=BENCH_SEED)
        filled = try_fill_table(table, keys, values)
        return table, filled

    table, filled = benchmark.pedantic(fill, rounds=3, iterations=1)
    benchmark.extra_info["failure_events"] = table.failure_events
    benchmark.extra_info["filled"] = filled


def test_regenerate_ablation_strategy(benchmark, bench_scale):
    result = benchmark.pedantic(
        run_experiment, args=("ablation-strategy",),
        kwargs={"scale": bench_scale}, rounds=1, iterations=1,
    )
    attach_result(benchmark, result)
    vision_rows = [r for r in result.rows if r[0] == "vision"]
    assert all(r[2] == "yes" for r in vision_rows)


def test_regenerate_ablation_depth(benchmark, bench_scale):
    result = benchmark.pedantic(
        run_experiment, args=("ablation-depth",),
        kwargs={"scale": bench_scale}, rounds=1, iterations=1,
    )
    attach_result(benchmark, result)
    records = {r[0]: r for r in result.rows}
    assert records["dynamic"][1] == "yes"


def test_regenerate_ablation_arrays(benchmark, bench_scale):
    result = benchmark.pedantic(
        run_experiment, args=("ablation-arrays",),
        kwargs={"scale": bench_scale}, rounds=1, iterations=1,
    )
    attach_result(benchmark, result)
    thresholds = {row[0]: row[1] for row in result.rows}
    # Theorem 1 generalised: a 4th array raises the depth-1 threshold.
    assert thresholds[4] > thresholds[3]


def test_regenerate_ablation_construction(benchmark, bench_scale):
    result = benchmark.pedantic(
        run_experiment, args=("ablation-construction",),
        kwargs={"scale": bench_scale}, rounds=1, iterations=1,
    )
    attach_result(benchmark, result)
    by_method = {row[0]: row for row in result.rows}
    # The O(n) peel builds faster than n dynamic repair walks.
    assert by_method["static"][1] > by_method["dynamic"][1]


def test_regenerate_ablation_ludo(benchmark, bench_scale):
    result = benchmark.pedantic(
        run_experiment, args=("ablation-ludo",),
        kwargs={"scale": bench_scale}, rounds=1, iterations=1,
    )
    attach_result(benchmark, result)
    by_locator = {r[0]: r for r in result.rows}
    # The paper's proposed swap: smaller and at least as reliable.
    assert by_locator["vision"][1] < by_locator["othello"][1]
    assert by_locator["vision"][2] <= by_locator["othello"][2] + 0.5
