"""Clients for the serving layer: asyncio-native and blocking.

Both speak the protocol of :mod:`repro.serve.protocol` and translate
error responses back into the library's own exception types — a 409 from
the server raises :class:`~repro.core.errors.DuplicateKey` exactly as a
local ``insert`` would, a 429 raises
:class:`~repro.serve.batcher.Overloaded`, so caller code is the same
whether the table is in-process or behind the wire.

- :class:`AsyncServeClient` — one keep-alive connection on the calling
  event loop; requests on one client are sequential (use one client per
  concurrent task — the benchmark's load generator does exactly that).
- :class:`ServeClient` — synchronous, built on ``http.client``; pairs
  with :class:`~repro.serve.server.ServerThread` or an out-of-process
  ``python -m repro.serve``.
"""

from __future__ import annotations

import asyncio
import http.client
import json
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.serve.protocol import (
    ProtocolError,
    ServeProtocolError,
    dump_json,
    exception_from,
    read_http_response,
    render_http_request,
)

__all__ = ["AsyncServeClient", "ServeClient"]

JsonKey = Union[int, str]


def _pairs_body(pairs: Iterable[Tuple[JsonKey, int]]) -> Dict[str, Any]:
    keys: List[JsonKey] = []
    values: List[int] = []
    for key, value in pairs:
        keys.append(key)
        values.append(int(value))
    return {"keys": keys, "values": values}


def _field_list(response: Any, name: str) -> List[Any]:
    """``response[name]`` as a list, or :class:`ServeProtocolError`.

    A success response missing its documented field (or carrying the
    wrong shape) means the server speaks a different protocol version —
    surface that as the typed drift error, not a bare ``KeyError``.
    """
    if not isinstance(response, dict) or not isinstance(
        response.get(name), list
    ):
        raise ServeProtocolError(
            f'server response is missing the "{name}" array'
        )
    return list(response[name])


def _field_int(response: Any, name: str) -> int:
    """``response[name]`` as an int, or :class:`ServeProtocolError`."""
    if not isinstance(response, dict):
        raise ServeProtocolError("server response is not a JSON object")
    value = response.get(name)
    if isinstance(value, bool) or not isinstance(value, int):
        raise ServeProtocolError(
            f'server response is missing the integer "{name}" field'
        )
    return value


def _decode(status: int, content_type: str, body: bytes) -> Any:
    """Raise the protocol's exception on error statuses, else decode."""
    if "json" in content_type:
        try:
            decoded = json.loads(body)
        except ValueError as exc:
            raise ProtocolError(
                f"server sent invalid JSON: {exc}", status=502
            ) from exc
    else:
        decoded = body.decode("utf-8", "replace")
    if status >= 400:
        payload = decoded if isinstance(decoded, dict) else {}
        raise exception_from(status, payload)
    return decoded


class AsyncServeClient:
    """One keep-alive connection to a :class:`TableServer`.

    ``connect()`` is implicit on first use; also an async context
    manager. Not task-safe: a client serialises its own requests, so give
    each concurrent task its own client.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 timeout_s: float = 30.0) -> None:
        self.host = host
        self.port = port
        self.timeout_s = timeout_s
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    async def connect(self) -> "AsyncServeClient":
        if self._writer is None:
            self._reader, self._writer = await asyncio.open_connection(
                self.host, self.port
            )
        return self

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass
            self._reader = None
            self._writer = None

    async def __aenter__(self) -> "AsyncServeClient":
        return await self.connect()

    async def __aexit__(self, *exc: object) -> None:
        await self.close()

    async def _request(self, method: str, path: str,
                       body: Optional[Dict[str, Any]] = None) -> Any:
        await self.connect()
        if self._reader is None or self._writer is None:
            raise ProtocolError("client not connected", status=502)
        payload = dump_json(body) if body is not None else None
        try:
            self._writer.write(render_http_request(
                method, path, payload, host=self.host))
            await self._writer.drain()
            status, headers, raw = await asyncio.wait_for(
                read_http_response(self._reader), self.timeout_s
            )
        except BaseException:
            # A timeout, cancellation, or read failure leaves the stream
            # mid-exchange — the late response would be read by the NEXT
            # request as its own. Drop the connection (synchronously: this
            # must hold even while being cancelled) so the next request
            # reconnects fresh.
            writer = self._writer
            self._reader = None
            self._writer = None
            if writer is not None:
                writer.close()
            raise
        if headers.get("connection", "").lower() == "close":
            await self.close()
        return _decode(status, headers.get("content-type", ""), raw)

    # -- table operations ----------------------------------------------

    async def lookup(self, keys: Sequence[JsonKey]) -> List[int]:
        """Batched lookup; value-only semantics (alien keys answer noise)."""
        response = await self._request(
            "POST", "/v1/lookup", {"keys": list(keys)})
        return _field_list(response, "values")

    async def insert(self, pairs: Iterable[Tuple[JsonKey, int]]) -> int:
        response = await self._request(
            "POST", "/v1/insert", _pairs_body(pairs))
        return _field_int(response, "inserted")

    async def update(self, pairs: Iterable[Tuple[JsonKey, int]]) -> int:
        response = await self._request(
            "POST", "/v1/update", _pairs_body(pairs))
        return _field_int(response, "updated")

    async def delete(self, keys: Sequence[JsonKey]) -> int:
        response = await self._request(
            "POST", "/v1/delete", {"keys": list(keys)})
        return _field_int(response, "deleted")

    # -- operational endpoints -----------------------------------------

    async def health(self) -> Dict[str, Any]:
        result = await self._request("GET", "/healthz")
        return dict(result)

    async def stats(self) -> Dict[str, Any]:
        result = await self._request("GET", "/stats")
        return dict(result)

    async def metrics_text(self) -> str:
        return str(await self._request("GET", "/metrics"))


class ServeClient:
    """Blocking client over ``http.client`` (one keep-alive connection)."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 timeout_s: float = 30.0) -> None:
        self.host = host
        self.port = port
        self.timeout_s = timeout_s
        self._conn: Optional[http.client.HTTPConnection] = None

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def _request(self, method: str, path: str,
                 body: Optional[Dict[str, Any]] = None) -> Any:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout_s
            )
        try:
            self._conn.request(
                method, path,
                body=dump_json(body) if body is not None else None,
                headers={"Content-Type": "application/json"},
            )
            response = self._conn.getresponse()
            raw = response.read()
        except (http.client.HTTPException, ConnectionError, OSError):
            # Drop the connection so the next call reconnects fresh
            # (covers the server closing an idle keep-alive). No
            # automatic replay: the request may have been applied before
            # the failure, so retrying is the caller's idempotency-aware
            # decision.
            self.close()
            raise
        if response.getheader("Connection", "").lower() == "close":
            self.close()
        return _decode(
            response.status, response.getheader("Content-Type", "") or "",
            raw,
        )

    # -- table operations ----------------------------------------------

    def lookup(self, keys: Sequence[JsonKey]) -> List[int]:
        return _field_list(
            self._request("POST", "/v1/lookup", {"keys": list(keys)}),
            "values",
        )

    def insert(self, pairs: Iterable[Tuple[JsonKey, int]]) -> int:
        return _field_int(
            self._request("POST", "/v1/insert", _pairs_body(pairs)),
            "inserted",
        )

    def update(self, pairs: Iterable[Tuple[JsonKey, int]]) -> int:
        return _field_int(
            self._request("POST", "/v1/update", _pairs_body(pairs)),
            "updated",
        )

    def delete(self, keys: Sequence[JsonKey]) -> int:
        return _field_int(
            self._request("POST", "/v1/delete", {"keys": list(keys)}),
            "deleted",
        )

    # -- operational endpoints -----------------------------------------

    def health(self) -> Dict[str, Any]:
        return dict(self._request("GET", "/healthz"))

    def stats(self) -> Dict[str, Any]:
        return dict(self._request("GET", "/stats"))

    def metrics_text(self) -> str:
        return str(self._request("GET", "/metrics"))
