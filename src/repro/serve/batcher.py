"""Micro-batching queue: many awaiting requests, one vectorised table call.

The serving problem this solves: the table's batch primitives
(``lookup_batch``/``insert_batch``) amortise per-call Python overhead over
thousands of keys, but network clients arrive one small request at a time.
:class:`MicroBatcher` funnels concurrent requests into batches — an
operation queues until either ``max_batch`` key-operations are pending or
the *oldest* queued operation has waited ``batch_window_ms`` — then one
handler call executes the whole batch and each result is scattered back to
its awaiting future.

Three properties the server (and the tests) rely on:

- **Order preservation.** Operations execute in arrival order; the
  handler receives them as one list and must process it in order. A
  lookup enqueued after an insert therefore observes that insert, even
  when both land in the same batch.
- **Bounded queue.** Admission control is at ``submit``: an operation
  that would push the queued key-op count past ``max_queue`` raises
  :class:`Overloaded` *before* enqueueing anything — shed work costs one
  exception, not queue space. (One oversized operation is still admitted
  when the queue is empty, so ``max_batch``-sized requests cannot
  deadlock.)
- **Graceful drain.** ``close()`` stops admissions (:class:`BatcherClosed`)
  and executes everything already queued — ignoring the window, batch by
  batch — before returning, so an orderly shutdown loses no accepted work.

The batcher is asyncio-single-threaded: the handler runs inline on the
event loop (table calls are synchronous numpy), which is also what makes
it safe to front a non-thread-safe ``VisionEmbedder``— the flush loop is
the single writer.
"""

from __future__ import annotations

import asyncio
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, List, Optional, Sequence

from repro.core.errors import ReproError

__all__ = ["BatchOp", "BatcherClosed", "MicroBatcher", "Overloaded"]


class Overloaded(ReproError):
    """The queue bound would be exceeded — the operation was shed.

    Maps to HTTP 429 on the wire; the client raises it back. The request
    was rejected *before* execution, so retrying after a backoff is safe.
    """


class BatcherClosed(ReproError):
    """The batcher is draining or closed; no new operations are admitted.

    Maps to HTTP 503 on the wire (the server is shutting down).
    """


@dataclass
class BatchOp:
    """One queued operation: a kind tag, its keys/values, and the future
    the caller awaits. ``cost`` (the key count) is what the queue bound
    and the batch budget are measured in."""

    kind: str
    keys: Sequence[Any]
    values: Optional[Sequence[int]] = None
    future: "asyncio.Future[Any]" = field(
        default_factory=lambda: asyncio.get_running_loop().create_future()
    )

    @property
    def cost(self) -> int:
        return len(self.keys)


#: The handler contract: given the batch in arrival order, return one
#: result per op, aligned by position. An ``Exception`` instance as a
#: result marks that single op failed (it is set on the op's future);
#: a raise from the handler fails the whole batch.
BatchHandler = Callable[[List[BatchOp]], List[Any]]


class MicroBatcher:
    """Collect :class:`BatchOp`\\ s and flush them through ``handler``.

    Parameters mirror :class:`repro.serve.config.ServeConfig`:
    ``max_batch`` and ``max_queue`` are in key-operations, ``window_s``
    is the oldest-op hold time in seconds. Create it on a running event
    loop; ``start()`` is implicit on first ``submit``.
    """

    def __init__(
        self,
        handler: BatchHandler,
        max_batch: int = 1024,
        window_s: float = 0.001,
        max_queue: int = 8192,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_queue < max_batch:
            raise ValueError("max_queue must be >= max_batch")
        if window_s < 0:
            raise ValueError("window_s must be >= 0")
        self._handler = handler
        self.max_batch = max_batch
        self.window_s = window_s
        self.max_queue = max_queue
        self._queue: Deque[BatchOp] = deque()
        self._depth = 0
        self._deadlines: Deque[float] = deque()
        self._arrived = asyncio.Event()
        self._closing = False
        self._task: Optional["asyncio.Task[None]"] = None
        # Flush-shape telemetry for the server's gauges/histograms (the
        # batcher itself stays obs-free so it is testable in isolation).
        self.batches_flushed = 0
        self.ops_shed = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def depth(self) -> int:
        """Queued key-operations right now (the queue-depth gauge)."""
        return self._depth

    @property
    def closing(self) -> bool:
        return self._closing

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    async def submit(self, op: BatchOp) -> Any:
        """Queue ``op`` and await its result.

        Raises :class:`Overloaded` when admission control sheds it,
        :class:`BatcherClosed` during shutdown, or whatever per-op error
        the handler assigned.
        """
        if self._closing:
            self.ops_shed += 1
            raise BatcherClosed("server is shutting down")
        if self._queue and self._depth + op.cost > self.max_queue:
            self.ops_shed += 1
            raise Overloaded(
                f"queue depth {self._depth} + {op.cost} exceeds "
                f"bound {self.max_queue}"
            )
        self._ensure_running()
        loop = asyncio.get_running_loop()
        if op.future.done():  # pragma: no cover - defensive re-submission
            raise ValueError("BatchOp already resolved")
        self._queue.append(op)
        self._deadlines.append(loop.time() + self.window_s)
        self._depth += op.cost
        self._arrived.set()
        return await op.future

    # ------------------------------------------------------------------
    # Flush loop
    # ------------------------------------------------------------------

    def _ensure_running(self) -> None:
        if self._task is None or self._task.done():
            # The task's lifetime IS owned: close() awaits or cancels it
            # through a local alias, which name-based R602 cannot see.
            self._task = asyncio.get_running_loop().create_task(  # repro: noqa[R602] -- close() awaits/cancels self._task via a local alias; exceptions surface through the drained futures
                self._run(), name="repro-serve-batcher"
            )

    def _take_batch(self) -> List[BatchOp]:
        """Dequeue whole ops, oldest first, up to ``max_batch`` key-ops.

        Always takes at least one op (a request is never split), so an
        op larger than ``max_batch`` flushes alone.
        """
        batch: List[BatchOp] = []
        budget = self.max_batch
        while self._queue:
            cost = self._queue[0].cost
            if batch and cost > budget:
                break
            batch.append(self._queue.popleft())
            self._deadlines.popleft()
            self._depth -= cost
            budget -= cost
            if budget <= 0:
                break
        return batch

    def _execute(self, batch: List[BatchOp]) -> None:
        self.batches_flushed += 1
        try:
            results = self._handler(batch)
        except Exception as exc:  # noqa: BLE001 - fail the batch, not the loop
            for op in batch:
                if not op.future.done():
                    op.future.set_exception(exc)
            return
        if len(results) != len(batch):
            mismatch = ValueError(
                f"batch handler returned {len(results)} results for "
                f"{len(batch)} operations"
            )
            for op in batch:
                if not op.future.done():
                    op.future.set_exception(mismatch)
            return
        for op, result in zip(batch, results):
            if op.future.done():
                continue  # caller went away (connection dropped)
            if isinstance(result, Exception):
                op.future.set_exception(result)
            else:
                op.future.set_result(result)

    async def _run(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            if not self._queue:
                if self._closing:
                    return
                self._arrived.clear()
                # Re-check after clear: an op may have arrived (or close()
                # fired) between the emptiness test and the clear.
                if not self._queue and not self._closing:
                    await self._arrived.wait()
                continue
            # Hold until the batch fills or the oldest op's window expires.
            # close() skips straight to draining.
            while (not self._closing
                   and self._depth < self.max_batch):
                remaining = self._deadlines[0] - loop.time()
                if remaining <= 0:
                    break
                self._arrived.clear()
                try:
                    await asyncio.wait_for(self._arrived.wait(), remaining)
                except (asyncio.TimeoutError, TimeoutError):
                    break
            self._execute(self._take_batch())
            # Yield once per flush so responses write out between batches
            # even under continuous arrival pressure.
            await asyncio.sleep(0)

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------

    async def close(self, timeout_s: Optional[float] = None) -> None:
        """Stop admissions and drain the queue.

        Everything already queued executes (batch by batch, windows
        ignored); new ``submit`` calls raise :class:`BatcherClosed`.
        With a ``timeout_s`` the drain is abandoned after that long and
        still-queued ops fail with :class:`BatcherClosed`. Idempotent.
        """
        self._closing = True
        self._arrived.set()
        task = self._task
        if task is not None and not task.done():
            try:
                if timeout_s is None:
                    await task
                else:
                    await asyncio.wait_for(
                        asyncio.shield(task), timeout_s
                    )
            except (asyncio.TimeoutError, TimeoutError):
                task.cancel()
                try:
                    await task
                except asyncio.CancelledError:
                    pass
        # Anything left (drain timeout, or ops enqueued before the loop
        # ever ran) fails loudly rather than hanging its awaiter.
        while self._queue:
            op = self._queue.popleft()
            self._depth -= op.cost
            if not op.future.done():
                op.future.set_exception(
                    BatcherClosed("shutdown drain abandoned this operation")
                )
        self._deadlines.clear()
