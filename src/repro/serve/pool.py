"""Multi-process serving: per-core workers over shared plane storage.

One asyncio event loop tops out far below what the planes can deliver
(BENCH_serve.json vs BENCH_engine.json), so :class:`WorkerPool` runs N
worker processes, each hosting the existing
:class:`~repro.serve.server.TableServer` loop:

- **Lookups never leave the worker.** The owner process promotes the
  table's planes into shared memory
  (:func:`~repro.core.shared_planes.share_table`); each worker attaches a
  reader-role :class:`~repro.core.shared_planes.SharedPlanes` per shard
  and answers ``/v1/lookup`` with the same hash→gather→XOR pipeline as
  :class:`~repro.core.embedder.VisionEmbedder`, wrapped in the seqlock
  read protocol so a concurrent owner write is retried, never torn.
- **Writes route to the single owner.** Workers forward
  insert/update/delete over a per-worker pipe; the owner service thread
  applies them to the real table — whose plane mutations now land in the
  shared segments — inside one seqlock transaction spanning the affected
  shards, then republishes the per-shard seed and key count (readers pick
  up reconstruction reseeds from the segment header).
- **Accepting scales with the kernel.** Every worker listens on its own
  ``SO_REUSEPORT`` socket bound to one address (the kernel load-balances
  connections); platforms without ``SO_REUSEPORT`` fall back to one
  pre-fork listening socket shared by all workers.
- **Metrics stay whole.** ``/stats`` and ``/metrics`` on any worker fold
  in the other workers' registries (collected over the control pipes) and
  the owner table's stats, so one scrape sees the entire pool — the
  multi-process blind spot the single-process instruments had.

Lifecycle (synchronous, owner side)::

    pool = WorkerPool(table, workers=4)
    pool.start()                      # promote planes, fork, handshake
    ...                               # clients hit 127.0.0.1:pool.port
    pool.stop()                       # drain workers, demote planes

The pool uses the ``fork`` start method: workers inherit the listening
socket, their pipe ends, and the page mappings. ``stop()`` is graceful
(workers drain their batchers) with a terminate fallback, and always
demotes the table back to private storage.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import os
import socket
import threading
from contextlib import ExitStack
from multiprocessing import connection as mp_connection
from typing import Any, Dict, List, Optional, Tuple, cast

import numpy as np
import numpy.typing as npt

from repro.core.shared_planes import (
    SharedPlanes,
    SharedTableSpec,
    refresh_meta,
    share_table,
    unshare_table,
)
from repro.core.sharded import route_handle, route_handles
from repro.core.stats import TableStats
from repro.hashing import HashFamily, key_to_u64
from repro.obs.exporters import json_snapshot, registry_from_snapshot
from repro.obs.registry import MetricsRegistry, aggregate
from repro.serve.config import ServeConfig
from repro.serve.server import TableServer
from repro.table import Key, ValueOnlyTable

__all__ = ["WorkerPool", "WorkerTable"]

#: Seconds the owner waits for each worker's ready handshake.
_READY_TIMEOUT_S = 30.0
#: Seconds a worker waits for the owner's reply to one write RPC.
_RPC_TIMEOUT_S = 30.0
#: Seconds the owner waits for one worker's metrics snapshot.
_SNAPSHOT_TIMEOUT_S = 2.0
#: Write operations the owner service accepts from workers.
_WRITE_OPS = frozenset(
    {"insert", "insert_batch", "update", "update_batch", "delete"}
)


class WorkerTable(ValueOnlyTable):
    """Worker-process view of a pool-served table.

    Lookups run locally against reader-role :class:`SharedPlanes` (same
    route → hash → gather → XOR pipeline as the owning embedder, under the
    seqlock read protocol); writes and membership checks forward to the
    owner process over the RPC pipe. Constructed inside worker processes
    by :class:`WorkerPool` — not part of the public construction surface.
    """

    name = "vision-worker"

    def __init__(
        self,
        spec: SharedTableSpec,
        rpc: mp_connection.Connection,
        rpc_timeout_s: float = _RPC_TIMEOUT_S,
    ) -> None:
        self._spec = spec
        self._rpc = rpc
        self._rpc_timeout_s = rpc_timeout_s
        # The server's event loop and the cluster-collect executor thread
        # both issue RPCs; the lock keeps each send/recv pair whole.
        self._rpc_lock = threading.Lock()
        self._planes: List[SharedPlanes] = [
            SharedPlanes.attach(shard_spec) for shard_spec in spec.shards
        ]
        # Hash families are cached per shard and invalidated by the seed
        # word in the segment header — a reconstruction reseeds the shard,
        # and the next stable read rebuilds the family before hashing.
        self._families: List[Optional[Tuple[int, HashFamily]]] = [
            None
        ] * len(self._planes)
        self._offsets: List[npt.NDArray[np.int64]] = [
            (
                np.arange(planes.num_arrays, dtype=np.int64) * planes.width
            )[:, None]
            for planes in self._planes
        ]
        self._registry = MetricsRegistry()
        self._retries_counter = self._registry.counter(
            "repro_planes_generation_retries_total",
            "Shared-plane lookups retried because the generation moved",
            "",
        )
        self._retries_seen = 0

    # -- plumbing -----------------------------------------------------------

    def rpc_call(self, op: str, *args: Any) -> Any:
        """One owner round-trip; re-raises errors the owner sent back."""
        with self._rpc_lock:
            self._rpc.send((op, *args))
            if not self._rpc.poll(self._rpc_timeout_s):
                raise TimeoutError(
                    f"owner did not answer {op!r} within "
                    f"{self._rpc_timeout_s:.0f}s"
                )
            status, payload = self._rpc.recv()
        if status == "err":
            raise payload
        return payload

    def _family(self, shard: int, seed: int) -> HashFamily:
        cached = self._families[shard]
        if cached is not None and cached[0] == seed:
            return cached[1]
        planes = self._planes[shard]
        family = HashFamily(seed, [planes.width] * planes.num_arrays)
        self._families[shard] = (seed, family)
        return family

    def _sync_retries(self) -> None:
        total = sum(planes.retries for planes in self._planes)
        if total > self._retries_seen:
            self._retries_counter.inc(total - self._retries_seen)
            self._retries_seen = total

    def _shard_of(self, handle: int) -> int:
        if len(self._planes) == 1:
            return 0
        return route_handle(
            handle, self._spec.shard_seed, len(self._planes)
        )

    # -- reads (local, torn-free) -------------------------------------------

    # repro: raises(ValueError, TypeError)
    def lookup(self, key: Key) -> int:  # repro: hotpath
        """Three-read XOR lookup straight from the shared planes."""
        handle = key_to_u64(key)
        shard = self._shard_of(handle)
        planes = self._planes[shard]

        def compute() -> int:
            family = self._family(shard, planes.seed)
            cells = tuple(enumerate(family.indices(handle)))
            return planes.xor_sum(cells)

        value = planes.read_stable(compute)
        self._sync_retries()
        return value

    def lookup_batch(  # repro: hotpath
        self, keys: npt.NDArray[np.uint64]
    ) -> npt.NDArray[np.uint64]:
        """Vectorised scatter/gather lookup mirroring the sharded table."""
        handles = np.asarray(keys, dtype=np.uint64)
        n = int(handles.size)
        if n == 0:
            return np.zeros(0, dtype=np.uint64)
        if len(self._planes) == 1:
            out = self._shard_lookup(0, handles)
            self._sync_retries()
            return out
        ids = route_handles(
            handles, self._spec.shard_seed, len(self._planes)
        )
        order = np.argsort(ids, kind="stable").astype(np.int64)
        bounds = np.searchsorted(
            ids[order], np.arange(len(self._planes) + 1, dtype=np.uint8)
        ).astype(np.int64)
        grouped = handles[order]
        answers = np.empty(n, dtype=np.uint64)
        for shard in range(len(self._planes)):
            lo = int(bounds[shard])
            hi = int(bounds[shard + 1])
            if lo != hi:
                answers[lo:hi] = self._shard_lookup(shard, grouped[lo:hi])
        out = np.empty(n, dtype=np.uint64)
        out[order] = answers
        self._sync_retries()
        return out

    def _shard_lookup(
        self, shard: int, handles: npt.NDArray[np.uint64]
    ) -> npt.NDArray[np.uint64]:
        """One shard's fused gather, whole-computation seqlock protected.

        The seed read, the hashing, and the gather must all see the same
        generation — a reconstruction changes seeds *and* cells together —
        so the entire slice computation sits inside one ``read_stable``.
        """
        planes = self._planes[shard]

        def compute() -> npt.NDArray[np.uint64]:
            family = self._family(shard, planes.seed)
            index_arrays = family.indices_batch(handles)
            flat_mat = (
                np.stack(index_arrays).astype(np.int64)
                + self._offsets[shard]
            )
            return planes.gather_xor(flat_mat)

        return planes.read_stable(compute)

    def __len__(self) -> int:
        return sum(planes.length for planes in self._planes)

    def __contains__(self, key: Key) -> bool:
        return bool(self.rpc_call("contains", key))

    # -- writes (forwarded to the owner) ------------------------------------

    # repro: raises(DuplicateKey, ValueError, TypeError, UpdateFailure)
    # repro: raises(SpaceExhausted, ReconstructionFailed)
    def insert(self, key: Key, value: int) -> None:
        self.rpc_call("insert", key, value)

    # repro: raises(DuplicateKey, ValueError, TypeError, UpdateFailure)
    # repro: raises(SpaceExhausted, ReconstructionFailed)
    def insert_batch(self, keys: Any, values: Any) -> None:
        self.rpc_call("insert_batch", list(keys), list(values))

    # repro: raises(KeyNotFound, ValueError, TypeError, UpdateFailure)
    # repro: raises(SpaceExhausted, ReconstructionFailed)
    def update(self, key: Key, value: int) -> None:
        self.rpc_call("update", key, value)

    # repro: raises(KeyNotFound, ValueError, TypeError, UpdateFailure)
    # repro: raises(SpaceExhausted, ReconstructionFailed)
    def update_batch(self, keys: Any, values: Any) -> None:
        """One owner round-trip for a run of updates (prefix-applied on
        error, matching the serving layer's scalar-write semantics)."""
        self.rpc_call("update_batch", list(keys), list(values))

    # repro: raises(KeyNotFound, ValueError, TypeError)
    def delete(self, key: Key) -> None:
        self.rpc_call("delete", key)

    # -- surface ------------------------------------------------------------

    @property
    def value_bits(self) -> int:
        return self._spec.value_bits

    @property
    def space_bits(self) -> int:
        return sum(planes.space_bits for planes in self._planes)

    @property
    def stats(self) -> TableStats:
        """Worker-local instruments only (seqlock retries); the owner's
        table stats arrive via the pool's cluster merge."""
        self._sync_retries()
        return TableStats(registry=self._registry)

    def close(self) -> None:
        """Detach from every shared segment."""
        for planes in self._planes:
            planes.close()


# ---------------------------------------------------------------------------
# Worker process entry points
# ---------------------------------------------------------------------------


def _worker_bind_socket(host: str, port: int) -> socket.socket:
    """Bind this worker's own SO_REUSEPORT accept socket."""
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        sock.bind((host, port))
    except BaseException:
        sock.close()
        raise
    return sock


def _worker_main(
    spec: SharedTableSpec,
    config: ServeConfig,
    host: str,
    port: int,
    rpc: mp_connection.Connection,
    ctrl: mp_connection.Connection,
    listener: Optional[socket.socket],
) -> None:
    """Worker process body: serve one TableServer over the shared planes."""
    table = WorkerTable(spec, rpc)
    if listener is None:
        sock = _worker_bind_socket(host, port)
    else:
        sock = listener
    try:
        asyncio.run(_worker_async_main(table, config, sock, ctrl))
    finally:
        sock.close()
        table.close()


async def _worker_async_main(
    table: WorkerTable,
    config: ServeConfig,
    sock: socket.socket,
    ctrl: mp_connection.Connection,
) -> None:
    loop = asyncio.get_running_loop()
    stop_event = asyncio.Event()
    server = TableServer(table, config)

    async def cluster_collect() -> List[MetricsRegistry]:
        def fetch() -> List[MetricsRegistry]:
            snapshots = table.rpc_call("collect")
            return [
                registry_from_snapshot(snapshot) for snapshot in snapshots
            ]

        return await loop.run_in_executor(None, fetch)

    server.cluster_collect = cluster_collect
    await server.start(sock=sock)

    def ctrl_loop() -> None:
        # Owner-facing control plane, off the event loop so a busy worker
        # still answers snapshot requests and stop orders promptly.
        while True:
            try:
                message = ctrl.recv()
            except (EOFError, OSError):
                loop.call_soon_threadsafe(stop_event.set)
                return
            if message[0] == "stop":
                loop.call_soon_threadsafe(stop_event.set)
                return
            if message[0] == "snapshot":
                merged = aggregate([server.registry, table.stats.registry])
                try:
                    ctrl.send(("snapshot", json_snapshot(merged)))
                except (OSError, BrokenPipeError):
                    loop.call_soon_threadsafe(stop_event.set)
                    return

    control_thread = threading.Thread(
        target=ctrl_loop, name="repro-pool-ctrl", daemon=True
    )
    control_thread.start()
    ctrl.send(("ready", os.getpid(), server.port))
    await stop_event.wait()
    await server.stop()


# ---------------------------------------------------------------------------
# Owner side
# ---------------------------------------------------------------------------


class WorkerPool:
    """Owner-process front: fork N workers, own the table's write path.

    Parameters
    ----------
    table:
        The table to serve — a
        :class:`~repro.core.sharded.ShardedEmbedder` or a single
        :class:`~repro.core.embedder.VisionEmbedder`. ``start()``
        promotes its planes into shared memory; the pool is the table's
        single writer until ``stop()`` demotes it back.
    workers:
        Worker-process count (each runs one TableServer event loop).
    config:
        Per-worker :class:`ServeConfig`. ``config.port=0`` picks a free
        port once; every worker accepts on the same address.
    force_inherited_socket:
        Test hook: use the pre-fork shared-listener fallback even where
        ``SO_REUSEPORT`` is available.
    """

    def __init__(
        self,
        table: Any,
        workers: int = 2,
        config: Optional[ServeConfig] = None,
        *,
        force_inherited_socket: bool = False,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.table = table
        self.workers = workers
        self.config = config if config is not None else ServeConfig()
        self._force_inherited = force_inherited_socket
        self.socket_mode = "unstarted"
        self._spec: Optional[SharedTableSpec] = None
        self._port: Optional[int] = None
        self._probe: Optional[socket.socket] = None
        self._listener: Optional[socket.socket] = None
        self._processes: List[Any] = []
        self._rpc_conns: List[mp_connection.Connection] = []
        self._ctrl_conns: List[mp_connection.Connection] = []
        self._ctrl_lock = threading.Lock()
        self._service_thread: Optional[threading.Thread] = None
        self._service_stop = threading.Event()
        self._started = False

    # -- lifecycle ----------------------------------------------------------

    @property
    def port(self) -> int:
        if self._port is None:
            raise RuntimeError("pool not started")
        return self._port

    @property
    def spec(self) -> SharedTableSpec:
        if self._spec is None:
            raise RuntimeError("pool not started")
        return self._spec

    def start(self) -> "WorkerPool":
        """Promote the planes, fork the workers, wait for every ready."""
        if self._started:
            raise RuntimeError("pool already started")
        ctx = multiprocessing.get_context("fork")
        self._spec = share_table(self.table)
        try:
            self._bind_sockets()
            self._spawn_workers(ctx)
            self._await_ready()
        except BaseException:
            self._teardown(graceful=False)
            raise
        self._service_stop.clear()
        self._service_thread = threading.Thread(
            target=self._service_loop, name="repro-pool-owner", daemon=True
        )
        self._service_thread.start()
        self._started = True
        return self

    def _bind_sockets(self) -> None:
        host, port = self.config.host, self.config.port
        use_reuseport = (
            hasattr(socket, "SO_REUSEPORT") and not self._force_inherited
        )
        if use_reuseport:
            # A bound, *non-listening* socket reserves the port for the
            # pool's lifetime without joining the accept group — workers
            # bind their own listening SO_REUSEPORT sockets to it and the
            # kernel balances connections across them.
            probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            try:
                probe.setsockopt(
                    socket.SOL_SOCKET, socket.SO_REUSEADDR, 1
                )
                probe.setsockopt(
                    socket.SOL_SOCKET, socket.SO_REUSEPORT, 1
                )
                probe.bind((host, port))
            except BaseException:
                probe.close()
                raise
            self._probe = probe
            self._port = int(probe.getsockname()[1])
            self.socket_mode = "reuseport"
        else:
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            try:
                listener.setsockopt(
                    socket.SOL_SOCKET, socket.SO_REUSEADDR, 1
                )
                listener.bind((host, port))
                listener.listen(1024)
            except BaseException:
                listener.close()
                raise
            self._listener = listener
            self._port = int(listener.getsockname()[1])
            self.socket_mode = "inherited"

    def _spawn_workers(self, ctx: Any) -> None:
        if self._spec is None or self._port is None:
            raise RuntimeError("_spawn_workers before share/bind")
        for _ in range(self.workers):
            parent_rpc, child_rpc = ctx.Pipe(duplex=True)
            parent_ctrl, child_ctrl = ctx.Pipe(duplex=True)
            process = ctx.Process(
                target=_worker_main,
                args=(
                    self._spec, self.config, self.config.host, self._port,
                    child_rpc, child_ctrl, self._listener,
                ),
                daemon=True,
            )
            process.start()
            child_rpc.close()
            child_ctrl.close()
            self._processes.append(process)
            self._rpc_conns.append(parent_rpc)
            self._ctrl_conns.append(parent_ctrl)

    def _await_ready(self) -> None:
        for index, ctrl in enumerate(self._ctrl_conns):
            if not ctrl.poll(_READY_TIMEOUT_S):
                raise RuntimeError(
                    f"worker {index} did not report ready within "
                    f"{_READY_TIMEOUT_S:.0f}s"
                )
            message = ctrl.recv()
            if message[0] != "ready":
                raise RuntimeError(
                    f"worker {index} sent {message[0]!r} instead of ready"
                )

    def stop(self) -> None:
        """Graceful shutdown: drain workers, reap, demote the planes."""
        if not self._started and self._spec is None:
            return
        self._teardown(graceful=True)
        self._started = False

    def _teardown(self, graceful: bool) -> None:
        with self._ctrl_lock:
            for ctrl in self._ctrl_conns:
                try:
                    ctrl.send(("stop",))
                except (OSError, BrokenPipeError):
                    pass
        join_timeout = (
            self.config.drain_timeout_s + 10.0 if graceful else 2.0
        )
        for process in self._processes:
            process.join(timeout=join_timeout)
            if process.is_alive():
                process.terminate()
                process.join(timeout=5.0)
        self._service_stop.set()
        if self._service_thread is not None:
            self._service_thread.join(timeout=5.0)
            self._service_thread = None
        for conn in self._rpc_conns + self._ctrl_conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
        self._rpc_conns.clear()
        self._ctrl_conns.clear()
        self._processes.clear()
        if self._probe is not None:
            self._probe.close()
            self._probe = None
        if self._listener is not None:
            self._listener.close()
            self._listener = None
        if self._spec is not None:
            unshare_table(self.table)
            self._spec = None
        self._port = None
        self.socket_mode = "unstarted"

    def __enter__(self) -> "WorkerPool":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()

    # -- owner write service ------------------------------------------------

    def _service_loop(self) -> None:
        """Serve worker RPCs until stop: the table's single write path."""
        while not self._service_stop.is_set():
            live = [conn for conn in self._rpc_conns if not conn.closed]
            if not live:
                return
            ready = mp_connection.wait(live, timeout=0.1)
            for waited in ready:
                conn = cast(mp_connection.Connection, waited)
                try:
                    message = conn.recv()
                except (EOFError, OSError):
                    # Worker died; its pipe stays out of future waits.
                    try:
                        conn.close()
                    except OSError:  # pragma: no cover
                        pass
                    continue
                sender = self._rpc_conns.index(conn)
                try:
                    result = self._handle_rpc(message, sender)
                except Exception as exc:  # noqa: BLE001 - travels to worker
                    reply: Tuple[str, Any] = ("err", exc)
                else:
                    reply = ("ok", result)
                try:
                    conn.send(reply)
                except (OSError, BrokenPipeError):  # pragma: no cover
                    pass

    def _handle_rpc(self, message: Tuple[Any, ...], sender: int) -> Any:
        op = message[0]
        if op in _WRITE_OPS:
            return self._apply_write(op, message[1:])
        if op == "contains":
            return message[1] in self.table
        if op == "len":
            return len(self.table)
        if op == "collect":
            return self._collect_snapshots(exclude=sender)
        raise ValueError(f"unknown pool RPC {op!r}")

    def _apply_write(self, op: str, args: Tuple[Any, ...]) -> Any:
        """Apply one worker write under a seqlock transaction.

        The transaction spans every promoted shard for the whole logical
        operation (an insert's repair walk XORs several cells; readers
        must see none or all of them) and the header metadata republish,
        so a reader's stable view always pairs consistent seeds, lengths,
        and cells.
        """
        with ExitStack() as stack:
            for shard in _pool_shards(self.table):
                planes = shard._table
                if isinstance(planes, SharedPlanes):
                    stack.enter_context(planes.transaction())
            try:
                if op == "insert":
                    self.table.insert(args[0], args[1])
                    return None
                if op == "insert_batch":
                    self.table.insert_batch(args[0], args[1])
                    return None
                if op == "update":
                    self.table.update(args[0], args[1])
                    return None
                if op == "update_batch":
                    for key, value in zip(args[0], args[1]):
                        self.table.update(key, value)
                    return len(args[0])
                self.table.delete(args[0])
                return None
            finally:
                refresh_meta(self.table)

    def _collect_snapshots(self, exclude: int) -> List[Dict[str, Any]]:
        """The *other* workers' metrics snapshots plus the owner table's.

        Runs on the service thread in response to worker ``exclude``'s
        ``collect`` RPC (that worker merges its own registries itself —
        shipping them back would double-count); the other workers answer
        from their control threads, so nobody waits on a busy event loop.
        Workers that fail to answer within the timeout are skipped — a
        scrape during a worker crash degrades to partial totals instead
        of failing.
        """
        snapshots: List[Dict[str, Any]] = [
            json_snapshot(self.table.stats.registry)
        ]
        with self._ctrl_lock:
            pending: List[mp_connection.Connection] = []
            for index, ctrl in enumerate(self._ctrl_conns):
                if index == exclude:
                    continue
                try:
                    ctrl.send(("snapshot",))
                    pending.append(ctrl)
                except (OSError, BrokenPipeError):
                    continue
            for ctrl in pending:
                if not ctrl.poll(_SNAPSHOT_TIMEOUT_S):
                    continue
                try:
                    message = ctrl.recv()
                except (EOFError, OSError):
                    continue
                if message[0] == "snapshot":
                    snapshots.append(message[1])
        return snapshots


def _pool_shards(table: Any) -> Tuple[Any, ...]:
    shards = getattr(table, "shards", None)
    if shards is not None:
        return tuple(shards)
    return (table,)
