"""The wire protocol: JSON bodies over minimal HTTP/1.1.

One module defines both directions so the server and the clients cannot
drift: request/response body schemas, the error-code ↔ exception mapping,
and the HTTP framing helpers (request/response rendering plus the
stream-reader parsers the asyncio server and client share).

Endpoints (full spec with examples: docs/serving.md):

====================  ======  =========================================
Path                  Method  Body → Response
====================  ======  =========================================
``/v1/lookup``        POST    ``{"keys": [...]}`` → ``{"values": [...]}``
``/v1/insert``        POST    ``{"keys": [...], "values": [...]}`` → ``{"inserted": n}``
``/v1/update``        POST    ``{"keys": [...], "values": [...]}`` → ``{"updated": n}``
``/v1/delete``        POST    ``{"keys": [...]}`` → ``{"deleted": n}``
``/healthz``          GET     → ``{"status": "ok", "keys": n, ...}``
``/stats``            GET     → the ``repro-metrics/1`` JSON snapshot
``/metrics``          GET     → Prometheus text exposition
====================  ======  =========================================

Keys are JSON integers or strings (the table canonicalises both; bytes
keys are not representable in JSON). Errors come back as
``{"error": CODE, "detail": "..."}`` with a matching HTTP status, and
the client raises them as the library's own exception types — a 409 is a
:class:`~repro.core.errors.DuplicateKey` on both sides of the wire.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, List, Optional, Tuple, Type, Union

from repro.core.errors import (
    DuplicateKey,
    KeyNotFound,
    ReconstructionFailed,
    ReproError,
    SpaceExhausted,
    UpdateFailure,
)
from repro.serve.batcher import BatcherClosed, Overloaded

__all__ = [
    "ProtocolError",
    "ServeError",
    "ServeProtocolError",
    "dump_json",
    "error_response",
    "exception_from",
    "json_body",
    "parse_keys",
    "parse_pairs",
    "read_http_request",
    "read_http_response",
    "render_http_request",
    "render_http_response",
]

#: HTTP status + wire code per exception type, and the inverse. Order
#: matters: subclasses must precede base classes.
_ERROR_TABLE: Tuple[Tuple[Type[BaseException], int, str], ...] = (
    (Overloaded, 429, "overloaded"),
    (BatcherClosed, 503, "shutting_down"),
    (DuplicateKey, 409, "duplicate_key"),
    (KeyNotFound, 404, "key_not_found"),
    (SpaceExhausted, 507, "space_exhausted"),
    (ReconstructionFailed, 507, "reconstruction_failed"),
    (UpdateFailure, 500, "update_failure"),
    (TypeError, 400, "bad_request"),
    (ValueError, 400, "bad_request"),
)

_CODE_TO_EXCEPTION: Dict[str, Type[BaseException]] = {
    code: exc_type for exc_type, _, code in _ERROR_TABLE
}

_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found", 405: "Method Not "
    "Allowed", 409: "Conflict", 413: "Payload Too Large", 429: "Too Many "
    "Requests", 500: "Internal Server Error", 501: "Not Implemented",
    503: "Service Unavailable", 507: "Insufficient Storage",
}

JsonKey = Union[int, str]


class ServeError(ReproError):
    """A server-reported error with no more specific library type."""

    def __init__(self, message: str, status: int = 500,
                 code: str = "internal"):
        super().__init__(message)
        self.status = status
        self.code = code


class ProtocolError(ServeError):
    """The peer sent something that is not valid protocol traffic."""

    def __init__(self, message: str, status: int = 400) -> None:
        super().__init__(message, status=status, code="bad_request")


class ServeProtocolError(ServeError):
    """The server spoke a dialect this client does not understand.

    Raised client-side for wire error codes with no local exception type
    and for responses missing a required field — both mean server and
    client versions have drifted, which deserves a distinct type rather
    than a silent ``KeyError`` or a catch-all :class:`ServeError`.
    """

    def __init__(self, message: str, status: int = 502,
                 code: str = "protocol") -> None:
        super().__init__(message, status=status, code=code)


# ---------------------------------------------------------------------------
# Body schemas
# ---------------------------------------------------------------------------


def parse_keys(body: Dict[str, Any]) -> List[JsonKey]:
    """Validate and extract ``{"keys": [...]}`` (lookup/delete bodies)."""
    keys = body.get("keys")
    if not isinstance(keys, list) or not keys:
        raise ProtocolError('body must carry a non-empty "keys" array')
    for key in keys:
        if isinstance(key, bool) or not isinstance(key, (int, str)):
            raise ProtocolError(
                f"keys must be integers or strings, got {type(key).__name__}"
            )
    return keys


def parse_pairs(
    body: Dict[str, Any]
) -> Tuple[List[JsonKey], List[int]]:
    """Validate ``{"keys": [...], "values": [...]}`` (insert/update)."""
    keys = parse_keys(body)
    values = body.get("values")
    if not isinstance(values, list) or len(values) != len(keys):
        raise ProtocolError('"values" must be an array aligned with "keys"')
    for value in values:
        if isinstance(value, bool) or not isinstance(value, int):
            raise ProtocolError(
                f"values must be integers, got {type(value).__name__}"
            )
    return keys, values


def error_response(exc: BaseException) -> Tuple[int, Dict[str, Any]]:
    """Map an exception to ``(status, error_body)`` for the wire."""
    if isinstance(exc, ServeError):
        return exc.status, {"error": exc.code, "detail": str(exc)}
    for exc_type, status, code in _ERROR_TABLE:
        if isinstance(exc, exc_type):
            return status, {"error": code, "detail": str(exc)}
    return 500, {"error": "internal", "detail": str(exc)}


def exception_from(status: int, body: Dict[str, Any]) -> BaseException:
    """The client-side inverse: rebuild the library exception type.

    A recognised wire code becomes the matching library exception; the
    server's own catch-all (``"internal"``) stays a plain
    :class:`ServeError`; any *other* code means the server is newer (or
    older) than this client and surfaces as
    :class:`ServeProtocolError` so callers can tell version drift from
    an ordinary server-side failure.
    """
    code = body.get("error", "internal")
    detail = body.get("detail", f"HTTP {status}")
    exc_type = _CODE_TO_EXCEPTION.get(code)
    if exc_type is not None:
        return exc_type(detail)
    if code == "internal":
        return ServeError(detail, status=status, code="internal")
    return ServeProtocolError(
        f"unknown wire error code {code!r}: {detail}", status=status
    )


# ---------------------------------------------------------------------------
# HTTP framing
# ---------------------------------------------------------------------------

_MAX_HEADER_BYTES = 32 * 1024


def render_http_response(
    status: int,
    body: bytes,
    content_type: str = "application/json",
    keep_alive: bool = True,
) -> bytes:
    reason = _REASONS.get(status, "Unknown")
    connection = "keep-alive" if keep_alive else "close"
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: {connection}\r\n"
        "\r\n"
    )
    return head.encode("ascii") + body


def render_http_request(
    method: str,
    path: str,
    body: Optional[bytes] = None,
    host: str = "localhost",
) -> bytes:
    payload = body if body is not None else b""
    head = (
        f"{method} {path} HTTP/1.1\r\n"
        f"Host: {host}\r\n"
        "Content-Type: application/json\r\n"
        f"Content-Length: {len(payload)}\r\n"
        "\r\n"
    )
    return head.encode("ascii") + payload


async def _read_head(
    reader: asyncio.StreamReader,
) -> Optional[Tuple[List[str], Dict[str, str]]]:
    """Read one header block; ``None`` on clean EOF before any bytes."""
    try:
        raw = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("connection closed mid-header") from exc
    except asyncio.LimitOverrunError as exc:
        raise ProtocolError("header block too large", status=413) from exc
    if len(raw) > _MAX_HEADER_BYTES:
        raise ProtocolError("header block too large", status=413)
    lines = raw.decode("latin-1").split("\r\n")
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise ProtocolError(f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    return lines[0].split(" "), headers


def _content_length(headers: Dict[str, str], limit: int) -> int:
    raw = headers.get("content-length", "0")
    try:
        length = int(raw)
    except ValueError as exc:
        raise ProtocolError(f"bad Content-Length {raw!r}") from exc
    if length < 0:
        raise ProtocolError(f"bad Content-Length {raw!r}")
    if length > limit:
        raise ProtocolError(
            f"body of {length} bytes exceeds the {limit}-byte limit",
            status=413,
        )
    return length


async def read_http_request(
    reader: asyncio.StreamReader,
    max_body_bytes: int,
) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
    """One request as ``(method, path, headers, body)``; ``None`` on EOF."""
    head = await _read_head(reader)
    if head is None:
        return None
    parts, headers = head
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise ProtocolError(f"malformed request line {' '.join(parts)!r}")
    method, path, _version = parts
    if "transfer-encoding" in headers:
        # Framing here is Content-Length only. Silently ignoring the
        # header would parse the chunk bytes as the next pipelined
        # request (request-smuggling-shaped desync), so refuse — the
        # server answers 501 and hangs up (ProtocolError closes the
        # connection).
        raise ProtocolError(
            "Transfer-Encoding is not supported; send Content-Length",
            status=501,
        )
    length = _content_length(headers, max_body_bytes)
    body = await reader.readexactly(length) if length else b""
    return method.upper(), path, headers, body


async def read_http_response(
    reader: asyncio.StreamReader,
    max_body_bytes: int = 64 * 1024 * 1024,
) -> Tuple[int, Dict[str, str], bytes]:
    """One response as ``(status, headers, body)``."""
    head = await _read_head(reader)
    if head is None:
        raise ProtocolError("connection closed before response")
    parts, headers = head
    if len(parts) < 2 or not parts[0].startswith("HTTP/1."):
        raise ProtocolError(f"malformed status line {' '.join(parts)!r}")
    try:
        status = int(parts[1])
    except ValueError as exc:
        raise ProtocolError(f"bad status {parts[1]!r}") from exc
    length = _content_length(headers, max_body_bytes)
    body = await reader.readexactly(length) if length else b""
    return status, headers, body


def json_body(raw: bytes) -> Dict[str, Any]:
    """Decode a JSON object body (the only body shape the protocol uses)."""
    if not raw:
        raise ProtocolError("empty body where JSON was expected")
    try:
        decoded = json.loads(raw)
    except ValueError as exc:
        raise ProtocolError(f"body is not valid JSON: {exc}") from exc
    if not isinstance(decoded, dict):
        raise ProtocolError("JSON body must be an object")
    return decoded


def dump_json(payload: Dict[str, Any]) -> bytes:
    return json.dumps(payload, separators=(",", ":")).encode("utf-8")
