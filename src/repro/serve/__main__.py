"""Standalone server process: ``python -m repro.serve``.

Builds a table (empty, or restored from an ``.npz`` snapshot), serves it
until SIGINT/SIGTERM, then drains gracefully. docs/serving.md walks
through a deployment, including the Prometheus scrape config for
``/metrics``.

Examples::

    python -m repro.serve --capacity 1000000 --value-bits 16 --port 8321
    python -m repro.serve --load table.npz --shards 8 --window-ms 0.5
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import signal
import sys
import threading
from typing import List, Optional

from repro.core.sharded import ShardedEmbedder
from repro.serve.config import ServeConfig
from repro.serve.pool import WorkerPool
from repro.serve.server import TableServer
from repro.table import ValueOnlyTable


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description=(
            "Serve a VisionEmbedder table over HTTP/JSON with "
            "micro-batching (docs/serving.md)."
        ),
    )
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=8321,
                        help="bind port, 0 for ephemeral (default 8321)")
    parser.add_argument("--capacity", type=int, default=1_000_000,
                        help="table capacity in pairs (default 1000000)")
    parser.add_argument("--value-bits", type=int, default=16,
                        help="L, the value width in bits (default 16)")
    parser.add_argument("--shards", type=int, default=8,
                        help="shard count, 1 disables sharding (default 8)")
    parser.add_argument("--seed", type=int, default=1,
                        help="master hash seed (default 1)")
    parser.add_argument("--load", metavar="NPZ", default=None,
                        help="restore a save_sharded/save_embedder snapshot "
                             "instead of starting empty")
    parser.add_argument("--window-ms", type=float, default=1.0,
                        help="micro-batch window in ms (default 1.0)")
    parser.add_argument("--max-batch", type=int, default=1024,
                        help="flush at this many queued key-ops "
                             "(default 1024)")
    parser.add_argument("--max-queue", type=int, default=8192,
                        help="shed (429) beyond this many queued key-ops "
                             "(default 8192)")
    parser.add_argument("--no-batching", action="store_true",
                        help="serve every request as its own table call")
    parser.add_argument("--loop-lag-ms", type=float, default=5.0,
                        help="event-loop lag sampling interval in ms, "
                             "0 disables the monitor (default 5.0)")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes; >1 serves lookups from "
                             "shared-memory planes across per-core "
                             "TableServer processes (default 1)")
    return parser


def _make_table(args: argparse.Namespace) -> ValueOnlyTable:
    if args.load is not None:
        from repro.core.persist import load_embedder, load_sharded

        try:
            table: ValueOnlyTable = load_sharded(args.load)
        except (KeyError, ValueError):
            table = load_embedder(args.load)
            print(f"restored scalar snapshot from {args.load} "
                  f"(keys={len(table)})")
        else:
            shards = getattr(table, "num_shards", 1)
            print(f"restored sharded snapshot from {args.load} "
                  f"(shards={shards}, keys={len(table)})")
        return table
    return ShardedEmbedder(
        capacity=args.capacity, value_bits=args.value_bits,
        num_shards=args.shards, seed=args.seed,
    )


async def _serve(table: ValueOnlyTable, config: ServeConfig) -> None:
    server = TableServer(table, config)
    await server.start()
    print(f"repro.serve listening on http://{config.host}:{server.port} "
          f"(keys={len(table)}, window={config.batch_window_ms}ms, "
          f"max_batch={config.max_batch}, max_queue={config.max_queue})")
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        with contextlib.suppress(NotImplementedError):
            loop.add_signal_handler(signum, stop.set)
    await stop.wait()
    print("draining...")
    await server.stop()
    print("bye")


def _serve_pool(table: ValueOnlyTable, config: ServeConfig,
                workers: int) -> None:
    pool = WorkerPool(table, workers=workers, config=config)
    pool.start()
    print(f"repro.serve pool listening on "
          f"http://{config.host}:{pool.port} (workers={workers}, "
          f"socket={pool.socket_mode}, keys={len(table)}, "
          f"window={config.batch_window_ms}ms)")
    stop = threading.Event()

    def _on_signal(signum: int, frame: object) -> None:
        stop.set()

    for signum in (signal.SIGINT, signal.SIGTERM):
        signal.signal(signum, _on_signal)
    try:
        stop.wait()
        print("draining...")
    finally:
        pool.stop()
    print("bye")


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    config = ServeConfig(
        host=args.host, port=args.port,
        batch_window_ms=args.window_ms, max_batch=args.max_batch,
        max_queue=args.max_queue, loop_lag_interval_ms=args.loop_lag_ms,
    )
    if args.no_batching:
        config = config.unbatched()
    if args.workers < 1:
        raise SystemExit("--workers must be >= 1")
    table = _make_table(args)
    try:
        if args.workers > 1:
            _serve_pool(table, config, args.workers)
        else:
            asyncio.run(_serve(table, config))
    except KeyboardInterrupt:  # pragma: no cover - signal-handler race
        pass
    return 0


if __name__ == "__main__":
    sys.exit(main())
