"""Configuration for the serving layer (:mod:`repro.serve`).

One frozen dataclass covers the whole operator surface — the micro-batch
shape, the admission-control bound, and the network/socket knobs — so a
deployment is reproducible from its config repr. docs/serving.md is the
operations guide; every field is documented there with sizing advice.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class ServeConfig:
    """Tunables for :class:`repro.serve.TableServer`.

    Attributes
    ----------
    host / port:
        Listen address. ``port=0`` binds an ephemeral port (the server
        reports the real one as ``server.port`` once started) — the tests,
        docs fences, and the benchmark all rely on this.
    batch_window_ms:
        How long the micro-batcher holds the *oldest* queued operation
        while waiting for the batch to fill, in milliseconds. The paper's
        constant-lookup claim means per-key work is cheap once batched;
        the window trades that batching win against added latency, so keep
        it at or below the latency budget's p50 headroom (default 1 ms).
        ``0`` flushes as soon as the event loop drains the current batch
        of arrivals (still coalescing whatever arrived together).
    max_batch:
        Flush as soon as this many key-operations are queued, without
        waiting out the window. Bounds the numpy working set per table
        call; one oversized request still flushes alone rather than being
        rejected.
    max_queue:
        Admission control: the maximum number of queued key-operations.
        A request that would push the queue past this bound is *shed* —
        rejected with HTTP 429 / ``overloaded`` before any of it executes
        — so queueing delay stays bounded under overload instead of
        growing without limit.
    drain_timeout_s:
        Graceful-shutdown budget: how long ``stop()`` waits for queued
        batches to execute before cancelling the flush loop outright.
    max_body_bytes:
        Largest accepted request body (HTTP 413 beyond it) — a bound on
        per-request memory, not on batch size.
    loop_lag_interval_ms:
        Sampling period of the :class:`repro.obs.LoopLagMonitor` the
        server installs (the ``repro_serve_loop_lag_seconds`` histogram).
        It is also the sensitivity floor — stalls shorter than the
        interval may fall between sentinels — so keep it at or below
        ``batch_window_ms`` plus the expected batch execution time.
        ``0`` disables the monitor entirely (the histogram still
        registers, empty, so exports keep a stable schema).
    """

    host: str = "127.0.0.1"
    port: int = 0
    batch_window_ms: float = 1.0
    max_batch: int = 1024
    max_queue: int = 8192
    drain_timeout_s: float = 5.0
    max_body_bytes: int = 8 * 1024 * 1024
    loop_lag_interval_ms: float = 5.0

    def __post_init__(self) -> None:
        if self.batch_window_ms < 0:
            raise ValueError("batch_window_ms must be >= 0")
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        if self.max_queue < self.max_batch:
            raise ValueError("max_queue must be >= max_batch")
        if self.drain_timeout_s < 0:
            raise ValueError("drain_timeout_s must be >= 0")
        if self.max_body_bytes < 1:
            raise ValueError("max_body_bytes must be >= 1")
        if self.loop_lag_interval_ms < 0:
            raise ValueError("loop_lag_interval_ms must be >= 0")

    def unbatched(self) -> "ServeConfig":
        """This config with micro-batching off: zero window and
        ``max_batch=1``, so every flush takes exactly one request (the
        batcher never splits a request, so one key-op of budget means
        one-request batches). Admission control keeps its bound. The
        benchmark's per-request baseline leg — and a debugging escape
        hatch."""
        return replace(self, batch_window_ms=0.0, max_batch=1)

    @property
    def batch_window_s(self) -> float:
        """The window in seconds (the event loop's unit)."""
        return self.batch_window_ms / 1000.0
