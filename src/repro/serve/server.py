"""The asyncio serving front: HTTP/JSON in, vectorised table calls out.

:class:`TableServer` owns one table (any :class:`~repro.table.ValueOnlyTable`
— typically a :class:`~repro.core.sharded.ShardedEmbedder`) and one
:class:`~repro.serve.batcher.MicroBatcher`. Request handling is a pipeline:

1. A connection task parses one HTTP/JSON request (keep-alive, pipelined
   requests served in order) and submits its operations to the batcher.
2. The batcher's flush loop gathers concurrent requests into one batch —
   until ``max_batch`` key-ops or the ``batch_window_ms`` expiry — and
   hands it to :meth:`TableServer._execute_batch`.
3. The executor walks the batch **in arrival order**, coalescing each
   consecutive run of same-kind operations into one vectorised table call
   (lookups concatenate into a single ``lookup_many``; inserts into one
   ``insert_batch``), then scatters results back to the per-request
   futures.

Because the whole pipeline runs on one event loop, the batcher's flush
loop is the table's single writer — no locks, and safe in front of the
non-thread-safe ``VisionEmbedder``/``ShardedEmbedder``.

Failure isolation: a coalesced insert run first tries one vectorised
``insert_batch`` — but only when the table provides one, because its
all-or-nothing *validation* is what makes the fallback sound: a
rejected merged call (duplicate key, bad value) applied nothing, so the
run re-executes request by request and only the offending request
fails (HTTP 409/400/...), exactly as if it had been served alone.
:class:`~repro.core.errors.SpaceExhausted` also applies nothing (the
batch rolls itself back), but the merged call is *not* re-executed —
per-request retries would mostly hit the same wall while repeating the
walk work — so every coalesced request gets the 507 directly and may
safely retry once capacity is freed. Tables without
``insert_batch`` insert per key with no rollback, so their requests
are never coalesced. Updates and deletes execute per key (no batch
primitive exists) with the same per-request isolation.

Operational surface: ``/healthz``, ``/stats`` (JSON metrics snapshot +
latency percentiles), ``/metrics`` (Prometheus text), graceful
``stop()`` that stops accepting, drains queued batches, answers in-flight
requests, then closes connections. docs/serving.md is the operator guide.
"""

from __future__ import annotations

import asyncio
import socket
import threading
from typing import (
    Any,
    Awaitable,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.core.errors import ReproError, SpaceExhausted
from repro.obs.exporters import json_snapshot, prometheus_text
from repro.obs.looplag import LoopLagMonitor
from repro.obs.registry import (
    BATCH_SIZE_BUCKETS,
    LATENCY_SECONDS_BUCKETS,
    Histogram,
    MetricsRegistry,
    aggregate,
)
from repro.serve.batcher import BatchOp, MicroBatcher, Overloaded
from repro.serve.config import ServeConfig
from repro.serve.protocol import (
    ProtocolError,
    ServeError,
    dump_json,
    error_response,
    json_body,
    parse_keys,
    parse_pairs,
    read_http_request,
    render_http_response,
)
from repro.table import ValueOnlyTable

__all__ = ["ServerThread", "TableServer"]

#: Endpoints that go through the batcher, and their batch-op kind.
_BATCHED_ENDPOINTS = {
    "/v1/lookup": "lookup",
    "/v1/insert": "insert",
    "/v1/update": "update",
    "/v1/delete": "delete",
}

#: Response-body key per write kind (lookup answers with ``values``).
_RESULT_KEYS = {"insert": "inserted", "update": "updated",
                "delete": "deleted"}


class TableServer:
    """Async HTTP/JSON front over one value-only table.

    Create on (or before) a running event loop, then ``await start()``.
    ``registry`` defaults to a fresh :class:`MetricsRegistry`; pass one to
    co-locate the serve instruments with other metrics. The table must
    only ever be touched through this server once serving starts — the
    event loop is the serialisation point.
    """

    def __init__(
        self,
        table: ValueOnlyTable,
        config: Optional[ServeConfig] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.table = table
        # insert_batch, when the table has one, is the licence to merge
        # requests: its validation rejects all-or-nothing (see
        # _run_inserts). Absent it, inserts run per request only.
        self._batch_inserter: Optional[Callable[..., Any]] = getattr(
            table, "insert_batch", None
        )
        # update_batch, when present, coalesces one request's updates into
        # a single table call (the worker-pool table turns it into one
        # owner round-trip instead of one per key). Same per-request
        # isolation as the scalar loop: a failure mid-request may leave
        # that request's earlier keys applied.
        self._batch_updater: Optional[Callable[..., Any]] = getattr(
            table, "update_batch", None
        )
        # Multi-process hook (see repro.serve.pool): when set, /stats and
        # /metrics await it for the *other* processes' registries and fold
        # them into the merged view, so one scrape covers the whole pool.
        self.cluster_collect: Optional[
            Callable[[], Awaitable[List[MetricsRegistry]]]
        ] = None
        self.config = config if config is not None else ServeConfig()
        self.registry = registry if registry is not None else MetricsRegistry()
        self._batcher = MicroBatcher(
            self._execute_batch,
            max_batch=self.config.max_batch,
            window_s=self.config.batch_window_s,
            max_queue=self.config.max_queue,
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self._conn_tasks: "set[asyncio.Task[None]]" = set()
        self._writers: "set[asyncio.StreamWriter]" = set()
        self._draining = False
        self._inflight = 0

        reg = self.registry
        self._queue_depth = reg.gauge(
            "repro_serve_queue_depth",
            "Key-operations queued in the micro-batcher", "")
        self._batch_size = reg.histogram(
            "repro_serve_batch_size", BATCH_SIZE_BUCKETS,
            "Key-operations per flushed micro-batch", "")
        self._latency = reg.histogram(
            "repro_serve_latency_seconds", LATENCY_SECONDS_BUCKETS,
            "Request latency, read-complete to response-written", "seconds")
        self._shed = reg.counter(
            "repro_serve_shed_total",
            "Requests rejected by admission control (HTTP 429)", "")
        self._requests = reg.counter(
            "repro_serve_requests_total", "HTTP requests served", "")
        self._keys = reg.counter(
            "repro_serve_keys_total",
            "Key-operations submitted to the batcher (served or shed)", "")
        self._batches = reg.counter(
            "repro_serve_batches_total", "Micro-batches flushed", "")
        self._errors = reg.counter(
            "repro_serve_errors_total",
            "Requests answered with an error status", "")
        self._connections = reg.gauge(
            "repro_serve_connections", "Open client connections", "")
        self._endpoint_latency: Dict[str, Histogram] = {
            kind: reg.histogram(
                f"repro_serve_{kind}_latency_seconds",
                LATENCY_SECONDS_BUCKETS,
                f"/v1/{kind} request latency", "seconds")
            for kind in ("lookup", "insert", "update", "delete")
        }
        # The dynamic counterpart of the R6xx static rules: a sentinel
        # timer whose measured lateness is everything that blocked the
        # loop. Constructed eagerly so the histogram registers (and the
        # export schema stays stable) even when the config disables
        # sampling with loop_lag_interval_ms=0.
        lag_ms = self.config.loop_lag_interval_ms
        self._lag_enabled = lag_ms > 0
        self.loop_lag = LoopLagMonitor(
            reg, interval_s=(lag_ms if lag_ms > 0 else 5.0) / 1000.0
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` to the real one)."""
        if self._server is None:
            raise RuntimeError("server not started")
        sockets = self._server.sockets
        return int(sockets[0].getsockname()[1])

    @property
    def draining(self) -> bool:
        return self._draining

    async def start(self, sock: Optional[socket.socket] = None) -> None:
        """Bind and start accepting connections.

        With ``sock`` the server accepts on that already-bound socket
        instead of binding ``config.host:config.port`` itself — the
        worker-pool front passes each worker its own ``SO_REUSEPORT``
        socket (or one shared pre-fork listener) this way.
        """
        if self._server is not None:
            raise RuntimeError("server already started")
        if sock is not None:
            self._server = await asyncio.start_server(
                self._on_connection, sock=sock
            )
        else:
            self._server = await asyncio.start_server(
                self._on_connection,
                host=self.config.host, port=self.config.port,
            )
        if self._lag_enabled:
            self.loop_lag.start()

    async def stop(self) -> None:
        """Graceful shutdown: stop accepting, drain, answer, disconnect.

        Order matters: the listener closes first (no new connections),
        then the batcher drains — every queued operation executes and its
        request gets a real response; operations arriving *during* the
        drain get HTTP 503 — and only then are the connection tasks
        cancelled and sockets closed.
        """
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self._batcher.close(timeout_s=self.config.drain_timeout_s)
        # Let in-flight handlers write their responses before the sockets
        # go away (bounded — a stuck peer cannot hold shutdown hostage).
        loop = asyncio.get_running_loop()
        deadline = loop.time() + max(self.config.drain_timeout_s, 0.1)
        while self._inflight and loop.time() < deadline:
            await asyncio.sleep(0.005)
        for task in list(self._conn_tasks):
            task.cancel()
        for task in list(self._conn_tasks):
            try:
                await task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001  # repro: noqa[R805] -- shutdown teardown: handlers already answered or were cancelled; nothing left to route
                pass
        for writer in list(self._writers):
            writer.close()
        self._conn_tasks.clear()
        self._writers.clear()
        # Last: the drain above is exactly the kind of window the lag
        # monitor exists to observe.
        await self.loop_lag.stop()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        self._writers.add(writer)
        self._connections.set(len(self._writers))
        try:
            await self._serve_connection(reader, writer)
        except (asyncio.CancelledError, ConnectionError):
            pass
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            self._writers.discard(writer)
            self._connections.set(len(self._writers))
            writer.close()

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        loop = asyncio.get_running_loop()
        while True:
            try:
                request = await read_http_request(
                    reader, self.config.max_body_bytes
                )
            except ProtocolError as exc:
                # Framing is broken; answer if possible, then hang up.
                status, payload = error_response(exc)
                writer.write(render_http_response(
                    status, dump_json(payload), keep_alive=False))
                await writer.drain()
                return
            if request is None:
                return
            method, path, headers, raw_body = request
            started = loop.time()
            self._inflight += 1
            try:
                status, body, content_type = await self._dispatch(
                    method, path, raw_body
                )
                keep_alive = headers.get("connection", "").lower() != "close"
                writer.write(render_http_response(
                    status, body, content_type=content_type,
                    keep_alive=keep_alive,
                ))
                await writer.drain()
            finally:
                self._inflight -= 1
            elapsed = loop.time() - started
            self._requests.inc()
            self._latency.observe(elapsed)
            kind = _BATCHED_ENDPOINTS.get(path)
            if kind is not None:
                self._endpoint_latency[kind].observe(elapsed)
            if status >= 400:
                self._errors.inc()
            if not keep_alive:
                return

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    async def _dispatch(
        self, method: str, path: str, raw_body: bytes
    ) -> Tuple[int, bytes, str]:
        """Route one request; returns ``(status, body, content_type)``."""
        try:
            kind = _BATCHED_ENDPOINTS.get(path)
            if kind is not None:
                if method != "POST":
                    raise ServeError(f"{path} requires POST", status=405,
                                     code="method_not_allowed")
                return await self._dispatch_batched(kind, raw_body)
            if path == "/healthz":
                return self._ok(self._health_payload())
            if path == "/stats":
                extra = await self._cluster_registries()
                return self._ok(self._stats_payload(extra))
            if path == "/metrics":
                extra = await self._cluster_registries()
                text = prometheus_text(self._merged_registry(extra))
                return 200, text.encode("utf-8"), "text/plain; version=0.0.4"
            raise ServeError(f"no such endpoint {path!r}", status=404,
                             code="not_found")
        except Exception as exc:  # noqa: BLE001 - every error becomes a status
            status, payload = error_response(exc)
            if isinstance(exc, Overloaded):
                self._shed.inc()
            return status, dump_json(payload), "application/json"

    async def _dispatch_batched(
        self, kind: str, raw_body: bytes
    ) -> Tuple[int, bytes, str]:
        body = json_body(raw_body)
        if kind in ("lookup", "delete"):
            op = BatchOp(kind, parse_keys(body))
        else:
            keys, values = parse_pairs(body)
            op = BatchOp(kind, keys, values)
        if self._draining:
            raise ServeError("server is shutting down", status=503,
                             code="shutting_down")
        self._keys.inc(op.cost)
        result = await self._batcher.submit(op)
        self._queue_depth.set(self._batcher.depth)
        if kind == "lookup":
            return self._ok({"values": result})
        return self._ok({_RESULT_KEYS[kind]: result})

    @staticmethod
    def _ok(payload: Dict[str, Any]) -> Tuple[int, bytes, str]:
        return 200, dump_json(payload), "application/json"

    # ------------------------------------------------------------------
    # Batch execution (the batcher's handler — event-loop inline)
    # ------------------------------------------------------------------

    def _execute_batch(self, batch: List[BatchOp]) -> List[Any]:
        """Run one micro-batch in arrival order, coalescing same-kind runs."""
        self._batches.inc()
        self._batch_size.observe(sum(op.cost for op in batch))
        self._queue_depth.set(self._batcher.depth)
        results: List[Any] = []
        index = 0
        while index < len(batch):
            run_end = index + 1
            while (run_end < len(batch)
                   and batch[run_end].kind == batch[index].kind):
                run_end += 1
            run = batch[index:run_end]
            kind = batch[index].kind
            if kind == "lookup":
                results.extend(self._run_lookups(run))
            elif kind == "insert":
                results.extend(self._run_inserts(run))
            else:
                results.extend(self._run_scalar_writes(kind, run))
            index = run_end
        return results

    def _run_lookups(self, run: List[BatchOp]) -> List[Any]:
        """One fused ``lookup_many`` over the whole run, split per request."""
        merged: List[Any] = []
        for op in run:
            merged.extend(op.keys)
        values = self.table.lookup_many(merged).tolist()
        out: List[Any] = []
        offset = 0
        for op in run:
            out.append(values[offset:offset + op.cost])
            offset += op.cost
        return out

    def _run_inserts(self, run: List[BatchOp]) -> List[Any]:
        """Vectorised happy path, per-request fallback on rejection.

        The merged fast path is taken only when the table provides
        ``insert_batch``, whose contract is all-or-nothing for *every*
        failure — validation rejections and mid-batch ``SpaceExhausted``
        alike roll the table back to its pre-batch state. A rejected
        merged call therefore applied nothing, and each request can
        re-execute alone with only the offender failing.
        ``SpaceExhausted`` is still never blind-retried: the merged batch
        failing for space means per-request retries would mostly fail the
        same way while doing the walk work again, so every coalesced
        request gets the 507 directly (and, the table being rolled back,
        a client retry later is safe — no spurious ``DuplicateKey`` for
        half-landed keys). Tables without ``insert_batch`` insert per key
        with no rollback, so their requests are never coalesced in the
        first place.
        """
        if self._batch_inserter is not None and len(run) > 1:
            merged_keys: List[Any] = []
            merged_values: List[int] = []
            for op in run:
                merged_keys.extend(op.keys)
                merged_values.extend(op.values or ())
            try:
                self._batch_inserter(merged_keys, merged_values)
                return [op.cost for op in run]
            except SpaceExhausted as exc:
                return [exc for _ in run]
            except (ReproError, ValueError):
                pass  # all-or-nothing rejection: isolate the offender below
        out: List[Any] = []
        for op in run:
            try:
                self._insert_pairs(list(op.keys), list(op.values or ()))
                out.append(op.cost)
            except (ReproError, ValueError) as exc:
                out.append(exc)
        return out

    def _insert_pairs(self, keys: List[Any], values: List[int]) -> None:
        if self._batch_inserter is not None:
            self._batch_inserter(keys, values)
            return
        for key, value in zip(keys, values):
            self.table.insert(key, value)

    def _run_scalar_writes(
        self, kind: str, run: List[BatchOp]
    ) -> List[Any]:
        """Updates/deletes: per-key scalar ops, failures isolated per
        request. A failure mid-request leaves that request's earlier keys
        applied (documented semantics — the error's detail names the
        offending key). Updates take the table's ``update_batch`` when it
        offers one — same semantics, one call per request."""
        out: List[Any] = []
        for op in run:
            try:
                if kind == "update":
                    if self._batch_updater is not None:
                        self._batch_updater(
                            list(op.keys), list(op.values or ())
                        )
                    else:
                        for key, value in zip(op.keys, op.values or ()):
                            self.table.update(key, value)
                else:
                    for key in op.keys:
                        self.table.delete(key)
                out.append(op.cost)
            except (ReproError, ValueError) as exc:
                out.append(exc)
        return out

    # ------------------------------------------------------------------
    # Introspection payloads
    # ------------------------------------------------------------------

    async def _cluster_registries(self) -> List[MetricsRegistry]:
        """The other pool processes' registries (empty when standalone)."""
        if self.cluster_collect is None:
            return []
        return await self.cluster_collect()

    def _merged_registry(
        self, extra: Sequence[MetricsRegistry] = ()
    ) -> MetricsRegistry:
        return aggregate([self.registry, self.table.metrics, *extra])

    def _health_payload(self) -> Dict[str, Any]:
        return {
            "status": "draining" if self._draining else "ok",
            "keys": len(self.table),
            "queue_depth": self._batcher.depth,
            "connections": len(self._writers),
        }

    def _stats_payload(
        self, extra: Sequence[MetricsRegistry] = ()
    ) -> Dict[str, Any]:
        self._queue_depth.set(self._batcher.depth)
        snapshot = json_snapshot(self._merged_registry(extra))
        latency: Dict[str, float] = {}
        if self._latency.count:
            latency = {
                "p50_s": self._latency.quantile(0.50),
                "p99_s": self._latency.quantile(0.99),
            }
        loop_lag: Dict[str, float] = {}
        if self.loop_lag.samples:
            loop_lag = {
                "samples": float(self.loop_lag.samples),
                "p99_s": self.loop_lag.p99_s(),
            }
        snapshot["serve"] = {
            **self._health_payload(),
            "batches_flushed": self._batcher.batches_flushed,
            "ops_shed": self._batcher.ops_shed,
            "latency": latency,
            "loop_lag": loop_lag,
        }
        return snapshot


class ServerThread:
    """Run a :class:`TableServer` on a dedicated thread and event loop.

    The operator story for synchronous callers (and the sync
    :class:`~repro.serve.client.ServeClient`): the table is handed over to
    the server thread — do not touch it from the calling thread while the
    server runs. Usable as a context manager::

        with ServerThread(table) as handle:
            client = ServeClient(port=handle.port)
            ...
    """

    def __init__(
        self,
        table: ValueOnlyTable,
        config: Optional[ServeConfig] = None,
    ) -> None:
        self._table = table
        self._config = config if config is not None else ServeConfig()
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._port: Optional[int] = None
        self._startup_error: Optional[BaseException] = None
        self.server: Optional[TableServer] = None

    @property
    def port(self) -> int:
        if self._port is None:
            raise RuntimeError("server thread not started")
        return self._port

    def start(self) -> "ServerThread":
        if self._thread is not None:
            raise RuntimeError("server thread already started")
        self._thread = threading.Thread(
            target=self._main, name="repro-serve", daemon=True
        )
        self._thread.start()
        self._started.wait()
        if self._startup_error is not None:
            raise RuntimeError("server failed to start") \
                from self._startup_error
        return self

    def stop(self) -> None:
        """Request graceful shutdown and join the thread. Idempotent."""
        loop, stop_event = self._loop, self._stop_event
        if loop is not None and stop_event is not None \
                and not loop.is_closed():
            try:
                loop.call_soon_threadsafe(stop_event.set)
            except RuntimeError:  # pragma: no cover - loop already gone
                pass
        if self._thread is not None:
            self._thread.join(timeout=30)

    def _main(self) -> None:
        try:
            asyncio.run(self._serve())
        except BaseException as exc:  # noqa: BLE001 - surface via start()
            self._startup_error = exc
            self._started.set()

    async def _serve(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        self.server = TableServer(self._table, self._config)
        await self.server.start()
        self._port = self.server.port
        self._started.set()
        await self._stop_event.wait()
        await self.server.stop()

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()
