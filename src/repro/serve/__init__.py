"""repro.serve — the network serving layer.

An asyncio HTTP/JSON front (:class:`TableServer`) that funnels concurrent
client requests into the table's vectorised batch paths via
micro-batching: operations queue until ``max_batch`` key-ops are pending
or a ``batch_window_ms`` window expires, then one fused table call
answers them all (:class:`MicroBatcher`). Admission control sheds work
beyond a bounded queue (HTTP 429, :class:`Overloaded`), and graceful
shutdown drains every accepted operation before disconnecting.

This is the ROADMAP's "millions of users" front: the table ops were
already fast *in batch*; this layer keeps them batched under concurrent
network load. docs/serving.md is the operations guide;
``benchmarks/bench_serve.py`` measures the batching win and gates p99
latency and served throughput in CI.

Quick start (async)::

    from repro import ShardedEmbedder
    from repro.serve import AsyncServeClient, TableServer

    table = ShardedEmbedder(capacity=100_000, value_bits=16)
    server = TableServer(table)          # ServeConfig() defaults
    await server.start()
    async with AsyncServeClient(port=server.port) as client:
        await client.insert([("alpha", 7)])
        assert await client.lookup(["alpha"]) == [7]
    await server.stop()                  # drains, then disconnects

Synchronous operators use :class:`ServerThread` + :class:`ServeClient`,
or ``python -m repro.serve`` for a standalone process.

One event loop is the front's scaling ceiling; :class:`WorkerPool` lifts
it by forking N per-core worker processes that answer lookups directly
from shared-memory planes (``--workers`` on the CLI, docs/serving.md
"Scaling out" for the operator story).
"""

from repro.serve.batcher import BatcherClosed, BatchOp, MicroBatcher, Overloaded
from repro.serve.client import AsyncServeClient, ServeClient
from repro.serve.config import ServeConfig
from repro.serve.pool import WorkerPool, WorkerTable
from repro.serve.protocol import ProtocolError, ServeError
from repro.serve.server import ServerThread, TableServer

__all__ = [
    "AsyncServeClient",
    "BatchOp",
    "BatcherClosed",
    "MicroBatcher",
    "Overloaded",
    "ProtocolError",
    "ServeClient",
    "ServeConfig",
    "ServeError",
    "ServerThread",
    "TableServer",
    "WorkerPool",
    "WorkerTable",
]
