"""Command-line entry point: ``python -m repro.bench`` / ``repro-bench``."""

from __future__ import annotations

import argparse
import sys
import time
from contextlib import nullcontext
from typing import ContextManager, List, Optional

from repro.bench.experiments import EXPERIMENTS, run_experiment
from repro.bench.export import results_to_csv, results_to_json
from repro.bench.harness import metrics_sidecar
from repro.bench.regression import compare_run
from repro.bench.reporting import ExperimentResult
from repro.obs.registry import RegistryCollector


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description=(
            "Regenerate the tables and figures of the VisionEmbedder paper "
            "(ICDE 2024). Workloads are scaled for pure Python; pass "
            "--scale to grow or shrink them."
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="EXPERIMENT",
        help="experiment names (default: all); see --list",
    )
    parser.add_argument(
        "--list", action="store_true", help="list available experiments"
    )
    parser.add_argument(
        "--scale", type=float, default=1.0,
        help="workload-size multiplier (default 1.0)",
    )
    parser.add_argument(
        "--seed", type=int, default=1, help="master random seed (default 1)"
    )
    parser.add_argument(
        "--format", choices=("text", "csv", "json"), default="text",
        help="output format (default text)",
    )
    parser.add_argument(
        "--output", metavar="FILE", default=None,
        help="write results to FILE instead of stdout",
    )
    parser.add_argument(
        "--compare", metavar="BASELINE", default=None,
        help="compare against a previous --format json output file",
    )
    parser.add_argument(
        "--metrics-out", metavar="BASE", default=None,
        help=(
            "instrument every table the run builds and write aggregated "
            "BASE.metrics.json + BASE.metrics.prom sidecars "
            "(see docs/observability.md)"
        ),
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.5,
        help="relative change flagged by --compare (default 0.5 = ±50%%)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    if args.list:
        for name, driver in EXPERIMENTS.items():
            doc = (driver.__doc__ or "").strip().splitlines()[0]
            print(f"{name:18s} {doc}")
        return 0

    names = args.experiments or list(EXPERIMENTS)
    unknown = [name for name in names if name not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"known: {', '.join(EXPERIMENTS)}", file=sys.stderr)
        return 2

    sidecar: ContextManager[Optional[RegistryCollector]] = (
        metrics_sidecar(args.metrics_out)
        if args.metrics_out is not None
        else nullcontext()
    )
    results: List[ExperimentResult] = []
    with sidecar as collector:
        for name in names:
            started = time.perf_counter()
            result = run_experiment(name, scale=args.scale, seed=args.seed)
            elapsed = time.perf_counter() - started
            results.append(result)
            if args.format == "text" and args.output is None:
                print(result.render())
                print(f"({elapsed:.1f}s)")
                print()
    if collector is not None:
        json_path, prom_path = collector.sidecar_paths
        print(f"wrote metrics sidecars {json_path} and {prom_path}")

    if args.format == "csv":
        rendered = results_to_csv(results)
    elif args.format == "json":
        rendered = results_to_json(results)
    else:
        rendered = "\n\n".join(result.render() for result in results)

    if args.output is not None:
        with open(args.output, "w") as handle:
            handle.write(rendered)
        print(f"wrote {len(results)} experiment(s) to {args.output}")
    elif args.format != "text":
        print(rendered)

    if args.compare is not None:
        deltas, missing = compare_run(args.compare, results, args.tolerance)
        for name in missing:
            print(f"(no baseline for {name})")
        if deltas:
            print(f"{len(deltas)} cell(s) moved more than "
                  f"{args.tolerance:.0%} vs {args.compare}:")
            for delta in deltas:
                print(f"  {delta.render()}")
            return 1
        print(f"no regressions vs {args.compare} "
              f"(tolerance {args.tolerance:.0%})")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
