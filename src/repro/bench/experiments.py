"""Experiment drivers: one per table/figure of the paper's evaluation.

Every driver accepts ``scale`` (workload multiplier; 1.0 is the repository
default, sized for seconds-to-minutes in pure Python — see DESIGN.md §4 for
the scaling policy) and ``seed`` and returns an
:class:`~repro.bench.reporting.ExperimentResult`. Absolute Mops are not
comparable with the paper's C++/FPGA numbers; the reproduced claims are the
*relative* ones, recorded per experiment in EXPERIMENTS.md.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis import space as space_model
from repro.analysis.poisson import expected_min_load, solve_lambda_threshold, space_threshold
from repro.analysis.failure import (
    two_hash_failure_probability,
    update_failure_probability,
)
from repro.bench.harness import Percentiles, measure_each
from repro.bench.reporting import ExperimentResult
from repro.bench.workloads import fill_table, make_pairs, try_fill_table
from repro.bench.ycsb import WORKLOADS, generate_operations, run_workload
from repro.core import ConcurrentVisionEmbedder, EmbedderConfig, VisionEmbedder
from repro.core.config import DepthPolicy
from repro.core.errors import ReproError
from repro.datasets import load as load_dataset
from repro.datasets import synthetic_like, uniform_queries, zipf_queries
from repro.datasets.registry import DATASET_NAMES
from repro.factory import make_table
from repro.fpga import LookupPipeline, estimate_resources
from repro.table import ValueOnlyTable

ALGORITHMS = ("vision", "othello", "color", "bloomier", "ludo")

#: Bisection brackets for the minimum-space experiments (bits per value bit).
_SPACE_BRACKETS = {
    "vision": (1.30, 2.40),
    "othello": (1.60, 3.40),
    "color": (1.60, 3.40),
    "bloomier": (1.00, 1.60),
}

#: Fig 3's tolerance: a configuration "functions effectively" if a full
#: insertion causes at most this many failure events.
_MAX_FAILURES_FOR_SPACE = 5


def _scaled(n: int, scale: float, minimum: int = 64) -> int:
    return max(minimum, round(n * scale))


def _build(
    name: str,
    capacity: int,
    value_bits: int,
    seed: int,
    space_factor: Optional[float] = None,
    **kwargs,
) -> ValueOnlyTable:
    """Factory wrapper applying experiment-friendly vision settings."""
    if name == "vision":
        config_kwargs = kwargs.pop("config_kwargs", {})
        # Space experiments probe below the 0.6-efficiency line; always
        # reconstruct rather than refusing, and fail fast when hopeless.
        config_kwargs.setdefault("reconstruct_efficiency_limit", 1.0)
        config_kwargs.setdefault("max_reconstruct_attempts", 8)
        kwargs["config_kwargs"] = config_kwargs
    return make_table(
        name, capacity, value_bits, seed=seed, space_factor=space_factor, **kwargs
    )


def _insertion_failures(
    name: str,
    keys: np.ndarray,
    values: np.ndarray,
    value_bits: int,
    seed: int,
    space_factor: Optional[float] = None,
) -> int:
    """Failure events over one full insertion; large if it gave up."""
    table = _build(name, len(keys), value_bits, seed, space_factor)
    if not try_fill_table(table, keys, values):
        return 10 * _MAX_FAILURES_FOR_SPACE
    return table.failure_events


def _min_space_factor(
    name: str,
    keys: np.ndarray,
    values: np.ndarray,
    value_bits: int,
    seed: int,
    iterations: int = 7,
) -> float:
    """Bisect the smallest space factor that inserts with ≤ 5 failures."""
    low, high = _SPACE_BRACKETS[name]
    if _insertion_failures(name, keys, values, value_bits, seed, high) > (
        _MAX_FAILURES_FOR_SPACE
    ):
        return float("nan")
    for _ in range(iterations):
        mid = (low + high) / 2
        failures = _insertion_failures(name, keys, values, value_bits, seed, mid)
        if failures <= _MAX_FAILURES_FOR_SPACE:
            high = mid
        else:
            low = mid
    return high


def _actual_space_cost(
    name: str,
    keys: np.ndarray,
    values: np.ndarray,
    value_bits: int,
    seed: int,
    factor: Optional[float],
) -> float:
    """The realised bits-per-value-bit of a *filled* table at a factor.

    Filling matters: Bloomier sizes itself from its content (1.23·(n+100)),
    so an empty table would under-report its cost.
    """
    n = len(keys)
    table = _build(name, n, value_bits, seed, factor)
    try_fill_table(table, keys, values)
    return table.space_bits / (n * value_bits)


# ---------------------------------------------------------------------------
# Table I
# ---------------------------------------------------------------------------


def table1_comparison(scale: float = 1.0, seed: int = 1) -> ExperimentResult:
    """Table I: the analytic algorithm comparison."""
    rows = [
        (
            row["algorithm"],
            row["space_per_L_bit_value"],
            row["lookup_time"],
            row["update_amortized_time"],
            row["update_failure_probability"],
        )
        for row in space_model.table1_rows()
    ]
    return ExperimentResult(
        experiment="table1",
        title="Algorithm comparison (paper Table I)",
        columns=["algorithm", "space/L-bit value", "lookup", "update (amortised)",
                 "failure probability"],
        rows=rows,
        notes="analytic; the measured counterparts are fig3 (space), fig8 "
              "(lookup), fig5 (update), fig4 (failures)",
    )


# ---------------------------------------------------------------------------
# Fig 3 — minimum space cost
# ---------------------------------------------------------------------------


def fig3_space_cost(scale: float = 1.0, seed: int = 1) -> ExperimentResult:
    """Fig 3: minimum fast space per value bit, vs n and vs L."""
    sizes = [_scaled(n, scale) for n in (512, 1024, 2048, 4096)]
    value_lengths = (1, 2, 4, 8)
    fixed_n = _scaled(1024, scale)
    rows: List[Tuple] = []

    def min_cost(name, keys, values, value_bits):
        if name == "ludo":
            # Ludo's space is formula-bound (locator + seeds dominate); the
            # paper plots its fixed cost rather than a searched one.
            return _actual_space_cost(name, keys, values, value_bits, seed, None)
        factor = _min_space_factor(name, keys, values, value_bits, seed)
        if factor != factor:  # NaN: never worked within the bracket
            return float("nan")
        return _actual_space_cost(name, keys, values, value_bits, seed, factor)

    for n in sizes:
        keys, values = make_pairs(n, 1, seed)
        for name in ALGORITHMS:
            rows.append(
                ("vs n", n, 1, name, round(min_cost(name, keys, values, 1), 3))
            )

    for value_bits in value_lengths:
        keys, values = make_pairs(fixed_n, value_bits, seed + 17)
        for name in ALGORITHMS:
            rows.append(
                ("vs L", fixed_n, value_bits, name,
                 round(min_cost(name, keys, values, value_bits), 3))
            )

    return ExperimentResult(
        experiment="fig3",
        title="Minimum space cost (bits per value bit)",
        columns=["sweep", "n", "L", "algorithm", "space cost"],
        rows=rows,
        parameters={"sizes": sizes, "value_lengths": list(value_lengths)},
        notes="searched: smallest budget with <=5 failure events over a full "
              "insertion (paper's protocol); paper reports vision 1.58, "
              "othello 2.33, color 2.2, bloomier 1.23·(n+100)/n, "
              "ludo (3.76+1.05L)/L. Our idealised othello/color (continuous "
              "array sizing, no power-of-two rounding) bisect down to the "
              "two-hash acyclicity threshold ~2.0; EXPERIMENTS.md discusses",
    )


# ---------------------------------------------------------------------------
# Fig 4 — update failure frequency
# ---------------------------------------------------------------------------


def fig4_failure_frequency(
    scale: float = 1.0, seed: int = 1, trials: Optional[int] = None
) -> ExperimentResult:
    """Fig 4: mean failure events per full insertion, vs n."""
    sizes = [_scaled(n, scale) for n in (256, 512, 1024, 2048)]
    if trials is None:
        trials = max(5, round(40 * scale))
    rows: List[Tuple] = []
    for n in sizes:
        for name in ALGORITHMS:
            total = 0
            for trial in range(trials):
                keys, values = make_pairs(n, 1, seed + 1000 * trial + n)
                table = _build(name, n, 1, seed + trial)
                if try_fill_table(table, keys, values):
                    total += table.failure_events
                else:
                    total += 10 * _MAX_FAILURES_FOR_SPACE
            rows.append((n, name, trials, round(total / trials, 4)))
    theory = [
        (n, "vision (theory)", "-", round(update_failure_probability(n, value_bits=1), 4))
        for n in sizes
    ] + [
        (n, "two-hash (theory)", "-",
         round(two_hash_failure_probability(n, value_bits=1), 4))
        for n in sizes
    ]
    return ExperimentResult(
        experiment="fig4",
        title="Update failure frequency per full insertion",
        columns=["n", "algorithm", "trials", "failures/insertion"],
        rows=rows + theory,
        parameters={"sizes": sizes, "trials": trials},
        notes="paper: othello/color/ludo fail ~O(1) times per insertion, "
              "vision ~O(1/n) (<0.001 at n>=1M); bloomier is low at small n "
              "thanks to its +100 slack",
    )


# ---------------------------------------------------------------------------
# Figs 5/6 — update throughput (with / without reconstruction time)
# ---------------------------------------------------------------------------


def _update_throughput_rows(
    scale: float, seed: int, include_reconstruction: bool
) -> Tuple[List[Tuple], Dict[str, object]]:
    sizes = [_scaled(n, scale) for n in (1024, 2048, 4096, 8192)]
    value_lengths = (1, 4, 8)
    fixed_n = _scaled(2048, scale)
    bloomier_probe_ops = 30
    rows: List[Tuple] = []

    def measure(name: str, n: int, value_bits: int) -> float:
        keys, values = make_pairs(n, value_bits, seed + n + value_bits)
        if name == "bloomier":
            # Per-op cost of the O(n) insert, probed on a loaded table.
            table = _build(name, n, value_bits, seed)
            fill_table(table, keys, values)
            extra, extra_vals = make_pairs(
                bloomier_probe_ops, value_bits, seed ^ 0xBEEF
            )
            started = time.perf_counter()
            for key, value in zip(extra.tolist(), extra_vals.tolist()):
                if key not in table:
                    table.insert(key, value)
            elapsed = time.perf_counter() - started
            ops = bloomier_probe_ops
        else:
            table = _build(name, n, value_bits, seed)
            started = time.perf_counter()
            fill_table(table, keys, values)
            elapsed = time.perf_counter() - started
            ops = n
        if not include_reconstruction:
            elapsed = max(1e-9, elapsed - table.stats.reconstruct_seconds)
        return ops / elapsed / 1e6

    for n in sizes:
        for name in ALGORITHMS:
            rows.append(("vs n", n, 8, name, round(measure(name, n, 8), 6)))
    for value_bits in value_lengths:
        for name in ALGORITHMS:
            rows.append(
                ("vs L", fixed_n, value_bits, name,
                 round(measure(name, fixed_n, value_bits), 6))
            )
    return rows, {"sizes": sizes, "value_lengths": list(value_lengths)}


def fig5_update_throughput(scale: float = 1.0, seed: int = 1) -> ExperimentResult:
    """Fig 5: overall update throughput including reconstruction."""
    rows, params = _update_throughput_rows(scale, seed, include_reconstruction=True)
    return ExperimentResult(
        experiment="fig5",
        title="Update throughput incl. reconstruction (Mops)",
        columns=["sweep", "n", "L", "algorithm", "Mops"],
        rows=rows,
        parameters=params,
        notes="paper: vision best overall; othello/color lose time to "
              "reconstructions; bloomier's O(n) insert is orders slower "
              "(probed with single inserts on a loaded table); absolute Mops "
              "are Python-scale",
    )


def fig6_update_throughput_no_reconstruct(
    scale: float = 1.0, seed: int = 1
) -> ExperimentResult:
    """Fig 6: update throughput with reconstruction time excluded."""
    rows, params = _update_throughput_rows(scale, seed, include_reconstruction=False)
    return ExperimentResult(
        experiment="fig6",
        title="Update throughput excl. reconstruction (Mops)",
        columns=["sweep", "n", "L", "algorithm", "Mops"],
        rows=rows,
        parameters=params,
        notes="paper: othello/color/ludo improve vs fig5 because they "
              "reconstruct more often; vision barely changes",
    )


# ---------------------------------------------------------------------------
# Fig 7 — update latency percentiles
# ---------------------------------------------------------------------------


def fig7_update_latency(scale: float = 1.0, seed: int = 1) -> ExperimentResult:
    """Fig 7: per-update latency distribution (tail behaviour)."""
    n = _scaled(4096, scale)
    rows: List[Tuple] = []
    for name in ALGORITHMS:
        keys, values = make_pairs(n, 8, seed + 3)
        if name == "bloomier":
            table = _build(name, n, 8, seed)
            fill_table(table, keys, values)
            extra, extra_vals = make_pairs(30, 8, seed ^ 0x7EA)
            ops = [
                (lambda k=k, v=v: table.insert(k, v))
                for k, v in zip(extra.tolist(), extra_vals.tolist())
                if k not in table
            ]
        else:
            table = _build(name, n, 8, seed)
            ops = [
                (lambda k=k, v=v: table.insert(k, v))
                for k, v in zip(keys.tolist(), values.tolist())
            ]
        samples = measure_each(ops)
        pct = Percentiles.from_samples(samples)
        rows.append(
            (name, len(ops), round(pct.p50, 2), round(pct.p90, 2),
             round(pct.p99, 2), round(pct.p999, 2), round(max(samples), 2))
        )
    return ExperimentResult(
        experiment="fig7",
        title="Update latency percentiles (microseconds)",
        columns=["algorithm", "ops", "P50", "P90", "P99", "P99.9", "max"],
        rows=rows,
        parameters={"n": n},
        notes="paper: othello/color/ludo show severe tail inflation "
              "(reconstructions land on single unlucky updates); vision's "
              "tail stays orders of magnitude lower",
    )


# ---------------------------------------------------------------------------
# Fig 8 — lookup throughput
# ---------------------------------------------------------------------------


def _lookup_mops(
    table: ValueOnlyTable, queries: np.ndarray, repeats: int = 3
) -> float:
    """Batch-lookup throughput, best of ``repeats`` (suppresses timer noise)."""
    best = 0.0
    for _ in range(repeats):
        started = time.perf_counter()
        table.lookup_batch(queries)
        mops = len(queries) / (time.perf_counter() - started) / 1e6
        best = max(best, mops)
    return best


def fig8_lookup_throughput(scale: float = 1.0, seed: int = 1) -> ExperimentResult:
    """Fig 8: lookup throughput vs n (L=1) and vs L (n fixed)."""
    sizes = [_scaled(n, scale) for n in (1024, 4096, 16384)]
    value_lengths = (1, 2, 4, 6, 8, 10)
    fixed_n = _scaled(8192, scale)
    num_queries = _scaled(200_000, scale, minimum=10_000)
    rows: List[Tuple] = []

    for n in sizes:
        keys, values = make_pairs(n, 1, seed + n)
        queries = uniform_queries(keys, num_queries, seed ^ n)
        for name in ALGORITHMS:
            table = _build(name, n, 1, seed)
            fill_table(table, keys, values)
            rows.append(("vs n", n, 1, name, round(_lookup_mops(table, queries), 3)))

    keys, values = make_pairs(fixed_n, 10, seed + 71)
    queries = uniform_queries(keys, num_queries, seed ^ 0xF18B)
    for value_bits in value_lengths:
        masked = values & np.uint64((1 << value_bits) - 1)
        for name in ALGORITHMS:
            table = _build(name, fixed_n, value_bits, seed)
            fill_table(table, keys, masked)
            rows.append(
                ("vs L", fixed_n, value_bits, name,
                 round(_lookup_mops(table, queries), 3))
            )

    return ExperimentResult(
        experiment="fig8",
        title="Lookup throughput (Mops, vectorised batch)",
        columns=["sweep", "n", "L", "algorithm", "Mops"],
        rows=rows,
        parameters={"sizes": sizes, "value_lengths": list(value_lengths),
                    "queries": num_queries},
        notes="paper: vision ~ othello overall; othello/color degrade "
              "linearly in L (bit-plane storage, genuinely reproduced here); "
              "vision/bloomier/ludo stay flat in L",
    )


# ---------------------------------------------------------------------------
# Fig 9 — robustness across datasets
# ---------------------------------------------------------------------------


def fig9_robustness(scale: float = 1.0, seed: int = 1) -> ExperimentResult:
    """Fig 9: VisionEmbedder across real-style vs synthetic datasets."""
    dataset_scale = min(1.0, 0.05 * scale)
    num_queries = _scaled(100_000, scale, minimum=10_000)
    rows: List[Tuple] = []
    for dataset_name in DATASET_NAMES:
        real = load_dataset(dataset_name, scale=dataset_scale)
        twin = synthetic_like(real, seed=seed)
        for dataset, query_kind in ((real, "zipf"), (twin, "uniform")):
            table = _build("vision", dataset.size, dataset.value_bits, seed)
            started = time.perf_counter()
            fill_table(table, dataset.keys, dataset.values)
            update_mops = dataset.size / (time.perf_counter() - started) / 1e6
            if query_kind == "zipf":
                queries = zipf_queries(dataset.keys, num_queries, seed, alpha=1.0)
            else:
                queries = uniform_queries(dataset.keys, num_queries, seed)
            rows.append(
                (
                    dataset.name,
                    dataset.size,
                    query_kind,
                    round(table.space_cost, 3),
                    table.failure_events,
                    round(update_mops, 4),
                    round(_lookup_mops(table, queries), 3),
                )
            )
    return ExperimentResult(
        experiment="fig9",
        title="Robustness: real-style vs synthetic datasets (VisionEmbedder)",
        columns=["dataset", "n", "queries", "space cost", "failures",
                 "update Mops", "lookup Mops"],
        rows=rows,
        parameters={"dataset_scale": dataset_scale, "queries": num_queries},
        notes="paper: real vs same-scale synthetic is a wash for space and "
              "updates; zipf-skewed queries help lookups slightly via caching",
    )


# ---------------------------------------------------------------------------
# Figs 10/11/12 — stability across hash seeds
# ---------------------------------------------------------------------------


def _seed_stability(
    metric: Callable[[int], float], seeds: Sequence[int]
) -> List[Tuple[int, float]]:
    return [(s, metric(s)) for s in seeds]


def fig10_lookup_seed_stability(
    scale: float = 1.0, seed: int = 1
) -> ExperimentResult:
    """Fig 10: lookup throughput under different hash seeds."""
    n = _scaled(8192, scale)
    num_queries = _scaled(200_000, scale, minimum=10_000)
    keys, values = make_pairs(n, 8, seed)
    queries = uniform_queries(keys, num_queries, seed)
    seeds = [seed + i for i in range(5)]

    def metric(s: int) -> float:
        table = _build("vision", n, 8, s)
        fill_table(table, keys, values)
        return round(_lookup_mops(table, queries), 3)

    rows = _seed_stability(metric, seeds)
    values_only = [v for _, v in rows]
    spread = (max(values_only) - min(values_only)) / max(values_only)
    return ExperimentResult(
        experiment="fig10",
        title="Lookup throughput vs hash seed (VisionEmbedder)",
        columns=["hash seed", "lookup Mops"],
        rows=rows,
        parameters={"n": n, "relative_spread": round(spread, 4)},
        notes="paper: stable across seeds; spread should be a few percent",
    )


def fig11_update_seed_stability(
    scale: float = 1.0, seed: int = 1
) -> ExperimentResult:
    """Fig 11: update throughput under different hash seeds."""
    n = _scaled(4096, scale)
    keys, values = make_pairs(n, 8, seed)
    seeds = [seed + i for i in range(5)]

    def metric(s: int) -> float:
        table = _build("vision", n, 8, s)
        started = time.perf_counter()
        fill_table(table, keys, values)
        return round(n / (time.perf_counter() - started) / 1e6, 4)

    rows = _seed_stability(metric, seeds)
    values_only = [v for _, v in rows]
    spread = (max(values_only) - min(values_only)) / max(values_only)
    return ExperimentResult(
        experiment="fig11",
        title="Update throughput vs hash seed (VisionEmbedder)",
        columns=["hash seed", "update Mops"],
        rows=rows,
        parameters={"n": n, "relative_spread": round(spread, 4)},
        notes="paper: stable across seeds",
    )


def fig12_space_seed_stability(
    scale: float = 1.0, seed: int = 1
) -> ExperimentResult:
    """Fig 12: minimum space cost under different hash seeds."""
    n = _scaled(1024, scale)
    seeds = [seed + i for i in range(5)]

    def metric(s: int) -> float:
        keys, values = make_pairs(n, 1, s)
        factor = _min_space_factor("vision", keys, values, 1, s, iterations=6)
        return round(_actual_space_cost("vision", keys, values, 1, s, factor), 3)

    rows = _seed_stability(metric, seeds)
    values_only = [v for _, v in rows]
    spread = (max(values_only) - min(values_only)) / max(values_only)
    return ExperimentResult(
        experiment="fig12",
        title="Minimum space cost vs hash seed (VisionEmbedder)",
        columns=["hash seed", "space cost (bits/value bit)"],
        rows=rows,
        parameters={"n": n, "relative_spread": round(spread, 4)},
        notes="paper: hash seed has nearly no impact on space efficiency",
    )


# ---------------------------------------------------------------------------
# §VI-G — deletion performance
# ---------------------------------------------------------------------------


def deletion_performance(scale: float = 1.0, seed: int = 1) -> ExperimentResult:
    """§VI-G: deletion throughput vs n and vs space budget."""
    sizes = [_scaled(n, scale) for n in (1024, 2048, 4096, 8192, 16384)]
    budgets = (1.7, 1.9, 2.1, 2.3)
    fixed_n = _scaled(1024, scale)
    rows: List[Tuple] = []

    def deletion_mops(n: int, factor: float) -> float:
        keys, values = make_pairs(n, 8, seed + n)
        table = _build("vision", n, 8, seed, space_factor=factor)
        fill_table(table, keys, values)
        started = time.perf_counter()
        for key in keys.tolist():
            table.delete(key)
        return n / (time.perf_counter() - started) / 1e6

    for n in sizes:
        rows.append(("vs n", n, 1.7, round(deletion_mops(n, 1.7), 4)))
    for factor in budgets:
        rows.append(
            ("vs space", fixed_n, factor, round(deletion_mops(fixed_n, factor), 4))
        )
    return ExperimentResult(
        experiment="deletion",
        title="Deletion throughput (VisionEmbedder, Mops)",
        columns=["sweep", "n", "space factor", "Mops"],
        rows=rows,
        parameters={"sizes": sizes, "budgets": list(budgets)},
        notes="paper (n=256k..4M): 6.60/5.62/5.35/5.10/4.92 Mops, nearly flat "
              "in the space budget; deletes touch slow space only, so they "
              "sit between lookups and updates",
    )


# ---------------------------------------------------------------------------
# Fig 13 — multi-threading
# ---------------------------------------------------------------------------


def fig13_multithreading(scale: float = 1.0, seed: int = 1) -> ExperimentResult:
    """Fig 13: concurrent update and lookup scaling, 1–8 threads."""
    n = _scaled(8192, scale)
    num_queries = _scaled(400_000, scale, minimum=20_000)
    thread_counts = (1, 2, 4, 8)
    keys, values = make_pairs(n, 8, seed)
    queries = uniform_queries(keys, num_queries, seed)
    rows: List[Tuple] = []

    update_base = None
    lookup_base = None
    for threads in thread_counts:
        table = ConcurrentVisionEmbedder(n, 8, seed=seed)
        chunks = [
            list(zip(keys[i::threads].tolist(), values[i::threads].tolist()))
            for i in range(threads)
        ]

        def insert_worker(chunk):
            for key, value in chunk:
                table.insert(key, value)

        started = time.perf_counter()
        workers = [
            threading.Thread(target=insert_worker, args=(chunk,))
            for chunk in chunks
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        update_mops = n / (time.perf_counter() - started) / 1e6
        if update_base is None:
            update_base = update_mops

        query_chunks = [queries[i::threads] for i in range(threads)]

        def lookup_worker(chunk):
            table.lookup_batch(chunk)

        started = time.perf_counter()
        workers = [
            threading.Thread(target=lookup_worker, args=(chunk,))
            for chunk in query_chunks
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        lookup_mops = num_queries / (time.perf_counter() - started) / 1e6
        if lookup_base is None:
            lookup_base = lookup_mops

        rows.append(
            (
                threads,
                round(update_mops, 4),
                round(update_mops / update_base, 2),
                round(lookup_mops, 3),
                round(lookup_mops / lookup_base, 2),
            )
        )

    return ExperimentResult(
        experiment="fig13",
        title="Multi-threaded scaling (ConcurrentVisionEmbedder)",
        columns=["threads", "update Mops", "update speedup", "lookup Mops",
                 "lookup speedup"],
        rows=rows,
        parameters={"n": n, "queries": num_queries},
        notes="paper (C++, 16 cores): update x1.96/3.84/7.37 and lookup "
              "x1.91/3.65/6.41 at 2/4/8 threads; CPython's GIL prevents "
              "update scaling here (EXPERIMENTS.md discusses); lookups get "
              "partial scaling from numpy kernels",
    )


# ---------------------------------------------------------------------------
# Table III — FPGA case study
# ---------------------------------------------------------------------------


def table3_fpga(scale: float = 1.0, seed: int = 1) -> ExperimentResult:
    """Table III: FPGA resources, clock, and functional pipeline check."""
    report = estimate_resources(depth=1 << 19, value_bits=8)
    usage = report.usage()
    rows = [
        ("Hash", report.hash_luts, report.hash_registers, 0,
         report.frequency_mhz),
        ("VisionEmbedder", report.engine_luts, report.engine_registers,
         report.block_rams, report.frequency_mhz),
        ("Total", report.total_luts, report.total_registers,
         report.block_rams, report.frequency_mhz),
        ("Usage", f"{usage['clb_luts']:.2%}", f"{usage['clb_registers']:.2%}",
         f"{usage['block_ram']:.2%}", "-"),
    ]

    # Functional check: stream real queries through the cycle model.
    n = _scaled(2048, scale)
    keys, values = make_pairs(n, 8, seed)
    embedder = VisionEmbedder(n, 8, seed=seed)
    fill_table(embedder, keys, values)
    pipeline = LookupPipeline.from_embedder(
        embedder, frequency_mhz=report.frequency_mhz
    )
    result = pipeline.run(keys.tolist())
    correct = sum(
        1 for value, expect in zip(result.values, values.tolist())
        if value == expect
    )
    rows.append(
        ("Pipeline check",
         f"{correct}/{n} correct",
         f"{result.cycles} cycles",
         f"latency {result.latency_cycles}",
         round(result.throughput_mops, 2))
    )
    return ExperimentResult(
        experiment="table3",
        title="FPGA implementation (paper Table III)",
        columns=["module", "CLB LUTs", "CLB registers", "Block RAM",
                 "freq MHz / Mops"],
        rows=rows,
        parameters={"depth": 1 << 19, "value_bits": 8,
                    "capacity_pairs": report.capacity_pairs},
        notes="paper: 76/66 + 505/631 LUT/registers, 385 BRAM (14.32%), "
              "279.64 MHz => 279.64 Mops for ~0.95M 8-bit pairs; the "
              "pipeline model is functional (bit-exact vs software) with "
              "II=1 and 3-cycle latency",
    )


# ---------------------------------------------------------------------------
# Theory (§V)
# ---------------------------------------------------------------------------


def theory_thresholds(scale: float = 1.0, seed: int = 1) -> ExperimentResult:
    """Theorem 1's numbers plus failure-probability scaling (Thms 2–3)."""
    lam = solve_lambda_threshold()
    rows: List[Tuple] = [
        ("lambda' (E[X_min]=1)", round(lam, 4), 1.709),
        ("(m/n)' = 3/lambda'", round(space_threshold(), 4), 1.756),
        ("E[X_min] at default m/n=1.7", round(expected_min_load(3 / 1.7), 4), ">1"),
        ("E[X_min] at m/n=1.8", round(expected_min_load(3 / 1.8), 4), "<1"),
    ]
    for n in (1_000, 10_000, 100_000, 1_000_000):
        rows.append(
            (f"vision failure prob, n={n}",
             f"{update_failure_probability(n, value_bits=1):.2e}",
             "O(1/n)")
        )
        rows.append(
            (f"two-hash failure prob, n={n}",
             f"{two_hash_failure_probability(n, value_bits=1):.2e}",
             "O(1)")
        )
    return ExperimentResult(
        experiment="theory",
        title="Theoretical thresholds and failure scaling (§V)",
        columns=["quantity", "computed", "paper"],
        rows=rows,
        notes="lambda' and (m/n)' solve E[X_min]=1 for Pois(3n/m) with "
              "min over 2 choices; failure probabilities combine Thm 2 "
              "(collision) and Thm 3 (endless loop)",
    )


# ---------------------------------------------------------------------------
# Ablations (design choices called out in §IV)
# ---------------------------------------------------------------------------


def ablation_strategy(scale: float = 1.0, seed: int = 1) -> ExperimentResult:
    """Simple (random-kick) vs vision update at several space budgets."""
    n = _scaled(2048, scale)
    factors = (1.7, 2.4, 3.2, 4.0)
    rows: List[Tuple] = []
    for strategy in ("simple", "vision"):
        for factor in factors:
            keys, values = make_pairs(n, 4, seed + 5)
            table = make_table(
                "vision", n, 4, seed=seed, space_factor=factor,
                config_kwargs={
                    "strategy": strategy,
                    "reconstruct_efficiency_limit": 1.0,
                    "max_reconstruct_attempts": 8,
                },
            )
            ok = try_fill_table(table, keys, values)
            inserted = len(table)
            steps = table.stats.repair_steps / max(1, table.stats.updates)
            rows.append(
                (strategy, factor, "yes" if ok else "no", inserted,
                 table.failure_events, round(steps, 2))
            )
    return ExperimentResult(
        experiment="ablation-strategy",
        title="Ablation: simple random-kick vs vision update",
        columns=["strategy", "space factor", "filled", "inserted",
                 "failures", "repair steps/op"],
        rows=rows,
        parameters={"n": n},
        notes="paper §IV quotes ~140% extra space (~2.4L) for its simple "
              "strategy; a *pure* random kick has repair branching factor "
              "3n/m, so it converges only for m > 3n — measured here "
              "(~3.2-4.0L), while vision runs at 1.7L. EXPERIMENTS.md "
              "discusses the gap",
    )


def ablation_depth(scale: float = 1.0, seed: int = 1) -> ExperimentResult:
    """Fixed MaxDepth 1/2/3 vs the paper's dynamic schedule, at 1.7L."""
    n = _scaled(2048, scale)
    rows: List[Tuple] = []
    policies = [
        ("depth=1", DepthPolicy(fixed=1)),
        ("depth=2", DepthPolicy(fixed=2)),
        ("depth=3", DepthPolicy(fixed=3)),
        ("dynamic", DepthPolicy()),
    ]
    for label, policy in policies:
        keys, values = make_pairs(n, 4, seed + 9)
        config = EmbedderConfig(
            depth_policy=policy,
            reconstruct_efficiency_limit=1.0,
            max_reconstruct_attempts=8,
        )
        table = VisionEmbedder(n, 4, config=config, seed=seed)
        started = time.perf_counter()
        ok = try_fill_table(table, keys, values)
        elapsed = time.perf_counter() - started
        rows.append(
            (label, "yes" if ok else "no", table.failure_events,
             round(n / elapsed / 1e6, 4),
             round(table.stats.repair_steps / max(1, table.stats.updates), 2))
        )
    return ExperimentResult(
        experiment="ablation-depth",
        title="Ablation: GetCost lookahead depth at 1.7L",
        columns=["policy", "filled", "failures", "update Mops",
                 "repair steps/op"],
        rows=rows,
        parameters={"n": n},
        notes="Theorem 1: depth 1 only converges above m/n=1.756, so at "
              "1.7L it fails/reconstructs; deeper vision fills 1.7L; the "
              "dynamic schedule buys back update speed while filling",
    )


def ablation_ludo_locator(scale: float = 1.0, seed: int = 1) -> ExperimentResult:
    """Ludo with its original Othello locator vs the VisionEmbedder swap."""
    n = _scaled(2048, scale)
    trials = max(3, round(10 * scale))
    rows: List[Tuple] = []
    for locator in ("othello", "vision"):
        total_failures = 0
        space_cost = 0.0
        elapsed = 0.0
        for trial in range(trials):
            keys, values = make_pairs(n, 4, seed + 100 * trial)
            table = make_table("ludo", n, 4, seed=seed + trial, locator=locator)
            started = time.perf_counter()
            fill_table(table, keys, values)
            elapsed += time.perf_counter() - started
            total_failures += table.failure_events
            space_cost = table.space_cost
        rows.append(
            (locator, round(space_cost, 3), round(total_failures / trials, 3),
             round(trials * n / elapsed / 1e6, 4))
        )
    return ExperimentResult(
        experiment="ablation-ludo",
        title="Ablation: Ludo locator — Othello vs VisionEmbedder",
        columns=["locator", "space cost (bits/value bit)",
                 "failures/insertion", "update Mops"],
        rows=rows,
        parameters={"n": n, "trials": trials},
        notes="paper §VI-B: swapping Ludo's internal Othello for "
              "VisionEmbedder cuts its constant from 3.76 to ~3.1 bits/key "
              "and slashes its failure probability",
    )


def space_landscape_experiment(
    scale: float = 1.0, seed: int = 1
) -> ExperimentResult:
    """The full ladder of space constants, measured where possible."""
    from repro.analysis.thresholds import space_landscape

    num_cells = _scaled(60_000, scale, minimum=12_000)
    rows = [
        (name, round(ratio, 4), provenance)
        for name, ratio, provenance in space_landscape(num_cells, seed)
    ]
    return ExperimentResult(
        experiment="landscape",
        title="Space-constant ladder (fast-space bits per value bit)",
        columns=["constant", "m/n", "provenance"],
        rows=rows,
        parameters={"num_cells": num_cells},
        notes="the hypergraph thresholds (XORSAT satisfiability, "
              "peelability) are measured by running this repository's own "
              "peeling machinery on random instances; vision's numbers "
              "sit between Bloomier's peel bound and Theorem 1's depth-1 "
              "bound, which is precisely the paper's contribution",
    )


def keystored_vs_vo(scale: float = 1.0, seed: int = 1) -> ExperimentResult:
    """§I's motivation, measured: fast space of key-stored vs VO designs."""
    from repro.baselines.keystore import CuckooKeyValueTable

    n = _scaled(2048, scale)
    rows: List[Tuple] = []
    for key_bits, value_bits in ((48, 1), (48, 8), (64, 4), (64, 16)):
        keys, values = make_pairs(n, value_bits, seed + key_bits)
        vo = _build("vision", n, value_bits, seed)
        fill_table(vo, keys, values)
        full = CuckooKeyValueTable(n, value_bits, key_bits=key_bits,
                                   seed=seed)
        fingerprint = CuckooKeyValueTable(
            n, value_bits, mode="fingerprint", fingerprint_bits=12,
            seed=seed,
        )
        for key, value in zip(keys.tolist(), values.tolist()):
            full.insert(key, value)
            fingerprint.insert(key, value)
        rows.append(
            (
                key_bits,
                value_bits,
                round(vo.bits_per_key, 2),
                round(fingerprint.bits_per_key, 2),
                round(full.bits_per_key, 2),
                round(full.bits_per_key / vo.bits_per_key, 1),
                f"none / {fingerprint.false_positive_rate:.2%} FP / exact",
            )
        )
    return ExperimentResult(
        experiment="keystored-vs-vo",
        title="Key-stored vs value-only fast space (bits per pair)",
        columns=["key bits", "L", "VO (vision)", "fingerprint cuckoo",
                 "full-key cuckoo", "full/VO ratio",
                 "alien detection (VO/fp/full)"],
        rows=rows,
        parameters={"n": n},
        notes="the paper's opening trade: VO tables pay 1.7L bits and "
              "cannot detect aliens; key-stored tables pay the key (or "
              "a fingerprint) per slot and can. The gap is largest "
              "exactly where the paper deploys VO tables: long keys, "
              "short values (48-bit MACs with 1-bit values: >30x)",
    )


def ycsb_mixed_workloads(scale: float = 1.0, seed: int = 1) -> ExperimentResult:
    """YCSB core workloads A/B/C/D/F across the dynamic algorithms."""
    n = _scaled(2048, scale)
    ops_count = _scaled(8192, scale, minimum=512)
    algorithms = ("vision", "othello", "color", "ludo")
    rows: List[Tuple] = []
    for workload_name, spec in WORKLOADS.items():
        keys, values = make_pairs(n, 8, seed + 31)
        operations = generate_operations(spec, keys, ops_count, seed + 7)
        for name in algorithms:
            table = _build(name, 2 * n, 8, seed)
            fill_table(table, keys, values)
            result = run_workload(table, operations, workload_name)
            rows.append(
                (workload_name, name, result.operations,
                 round(result.mops, 4), result.reads, result.writes,
                 result.failures)
            )
    return ExperimentResult(
        experiment="ycsb",
        title="YCSB-style mixed workloads (Mops)",
        columns=["workload", "algorithm", "ops", "Mops", "reads", "writes",
                 "failures"],
        rows=rows,
        parameters={"n": n, "ops": ops_count},
        notes="extension beyond the paper's single-operation passes; "
              "workload E (scans) is structurally impossible for VO tables "
              "(no keys stored). Read-heavy mixes converge to fig8's "
              "ordering; update-heavy mixes favour Ludo (value updates are "
              "in-place slot rewrites, no repair walk) — the flip side of "
              "its extra space and slower reads",
    )


def ablation_num_arrays(scale: float = 1.0, seed: int = 1) -> ExperimentResult:
    """Three vs four hash arrays — why the paper picks exactly three."""
    n = _scaled(2048, scale)
    num_queries = _scaled(100_000, scale, minimum=10_000)
    rows: List[Tuple] = []
    for num_arrays in (3, 4):
        choices = num_arrays - 1
        threshold = space_threshold(num_arrays=num_arrays, choices=choices)
        budget = 1.7 if num_arrays == 3 else 1.9
        keys, values = make_pairs(n, 4, seed + num_arrays)
        config = EmbedderConfig(
            space_factor=budget,
            reconstruct_efficiency_limit=1.0,
            max_reconstruct_attempts=8,
        )
        table = VisionEmbedder(n, 4, config=config, seed=seed,
                               num_arrays=num_arrays)
        started = time.perf_counter()
        filled = try_fill_table(table, keys, values)
        update_mops = n / (time.perf_counter() - started) / 1e6
        queries = uniform_queries(keys, num_queries, seed)
        rows.append(
            (
                num_arrays,
                round(threshold, 4),
                budget,
                "yes" if filled else "no",
                table.failure_events,
                round(update_mops, 4),
                round(_lookup_mops(table, queries), 3),
            )
        )
    return ExperimentResult(
        experiment="ablation-arrays",
        title="Ablation: number of hash arrays (paper uses 3)",
        columns=["arrays", "depth-1 threshold (m/n)'", "budget used",
                 "filled", "failures", "update Mops", "lookup Mops"],
        rows=rows,
        parameters={"n": n},
        notes="more arrays *raise* the depth-1 convergence threshold "
              "(1.756 -> 1.857 for 4 arrays: each extra choice thins every "
              "bucket less than it adds hashed positions) and add a fourth "
              "memory read per lookup — quantifying why the paper settles "
              "on exactly three",
    )


def ablation_construction(scale: float = 1.0, seed: int = 1) -> ExperimentResult:
    """Dynamic insertion vs static peeling construction (§IV-C)."""
    n = _scaled(4096, scale)
    keys, values = make_pairs(n, 8, seed + 2)
    pairs = list(zip(keys.tolist(), values.tolist()))
    rows: List[Tuple] = []
    for method in ("dynamic", "static"):
        started = time.perf_counter()
        table = VisionEmbedder.from_pairs(
            pairs, value_bits=8, seed=seed, static=(method == "static")
        )
        build_mops = n / (time.perf_counter() - started) / 1e6
        started = time.perf_counter()
        table.reconstruct(method=method)
        rebuild_seconds = time.perf_counter() - started
        rows.append(
            (method, round(build_mops, 4), round(rebuild_seconds * 1e3, 1),
             table.failure_events)
        )
    return ExperimentResult(
        experiment="ablation-construction",
        title="Ablation: dynamic vs static (peeling) construction",
        columns=["method", "build Mops", "rebuild ms", "failures"],
        rows=rows,
        parameters={"n": n},
        notes="§IV-C offers both for reconstruction; the O(n) peel is the "
              "fast path for bulk loads and rebuilds, the dynamic path is "
              "what incremental updates use",
    )


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {
    "table1": table1_comparison,
    "fig3": fig3_space_cost,
    "fig4": fig4_failure_frequency,
    "fig5": fig5_update_throughput,
    "fig6": fig6_update_throughput_no_reconstruct,
    "fig7": fig7_update_latency,
    "fig8": fig8_lookup_throughput,
    "fig9": fig9_robustness,
    "fig10": fig10_lookup_seed_stability,
    "fig11": fig11_update_seed_stability,
    "fig12": fig12_space_seed_stability,
    "deletion": deletion_performance,
    "fig13": fig13_multithreading,
    "table3": table3_fpga,
    "theory": theory_thresholds,
    "ablation-strategy": ablation_strategy,
    "ablation-depth": ablation_depth,
    "ablation-ludo": ablation_ludo_locator,
    "landscape": space_landscape_experiment,
    "keystored-vs-vo": keystored_vs_vo,
    "ycsb": ycsb_mixed_workloads,
    "ablation-arrays": ablation_num_arrays,
    "ablation-construction": ablation_construction,
}


def run_experiment(name: str, scale: float = 1.0, seed: int = 1, **kwargs) -> ExperimentResult:
    """Run one experiment by registry name."""
    try:
        driver = EXPERIMENTS[name]
    except KeyError:
        raise ValueError(
            f"unknown experiment {name!r}; known: {', '.join(EXPERIMENTS)}"
        ) from None
    return driver(scale=scale, seed=seed, **kwargs)
