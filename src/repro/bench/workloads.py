"""Workload construction shared by the experiment drivers."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.core.errors import ReproError
from repro.datasets.synthetic import random_pairs
from repro.table import ValueOnlyTable


def make_pairs(
    n: int, value_bits: int, seed: int
) -> Tuple[np.ndarray, np.ndarray]:
    """``n`` distinct random (key, value) pairs as uint64 arrays."""
    return random_pairs(n, value_bits, seed)


def fill_table(
    table: ValueOnlyTable, keys: np.ndarray, values: np.ndarray
) -> ValueOnlyTable:
    """Insert the whole workload dynamically (bulk path for Bloomier).

    Bloomier's per-insert rebuild makes element-wise filling O(n²); its
    static bulk construction is the intended way to load it, and is what
    the paper's space/lookup experiments exercise.
    """
    pairs = zip(keys.tolist(), values.tolist())
    if table.name == "bloomier":
        table.insert_many(pairs)
    else:
        for key, value in pairs:
            table.insert(key, value)
    return table


def try_fill_table(
    table: ValueOnlyTable, keys: np.ndarray, values: np.ndarray
) -> bool:
    """Fill, reporting False if the table gave up (space/reconstruction)."""
    try:
        fill_table(table, keys, values)
    except ReproError:
        return False
    return True
