"""Result containers and plain-text table rendering for experiments."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Sequence


def _format_value(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3g}"
        return f"{value:.4g}"
    return str(value)


def format_table(columns: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """Render rows as an aligned monospace table."""
    cells = [[_format_value(v) for v in row] for row in rows]
    widths = [
        max(len(str(col)), *(len(row[i]) for row in cells)) if cells else len(str(col))
        for i, col in enumerate(columns)
    ]
    header = "  ".join(str(col).ljust(w) for col, w in zip(columns, widths))
    rule = "  ".join("-" * w for w in widths)
    body = [
        "  ".join(cell.ljust(w) for cell, w in zip(row, widths)) for row in cells
    ]
    return "\n".join([header, rule, *body])


@dataclass
class ExperimentResult:
    """One regenerated table/figure: labelled rows plus context notes."""

    experiment: str
    title: str
    columns: List[str]
    rows: List[Sequence[Any]]
    notes: str = ""
    parameters: dict = field(default_factory=dict)

    def render(self) -> str:
        """The full human-readable report for this experiment."""
        lines = [f"== {self.experiment}: {self.title} =="]
        if self.parameters:
            params = ", ".join(f"{k}={v}" for k, v in self.parameters.items())
            lines.append(f"parameters: {params}")
        lines.append(format_table(self.columns, self.rows))
        if self.notes:
            lines.append(f"notes: {self.notes}")
        return "\n".join(lines)

    def column(self, name: str) -> List[Any]:
        """All values of one column, by header name."""
        index = self.columns.index(name)
        return [row[index] for row in self.rows]
