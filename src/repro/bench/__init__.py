"""Benchmark harness: one driver per table/figure of the paper's §VI.

Run ``python -m repro.bench --list`` for the experiment catalogue, or
``python -m repro.bench fig4 --scale 0.5`` to regenerate one result at half
the default workload size. Every driver returns an
:class:`~repro.bench.reporting.ExperimentResult` whose rows mirror the
series the paper plots; EXPERIMENTS.md records paper-vs-measured.
"""

from repro.bench.reporting import ExperimentResult, format_table
from repro.bench.harness import (
    Percentiles,
    latency_percentiles,
    measure_ops,
)
from repro.bench.workloads import fill_table, make_pairs
from repro.bench import experiments
from repro.bench.experiments import EXPERIMENTS, run_experiment

__all__ = [
    "ExperimentResult",
    "format_table",
    "Percentiles",
    "latency_percentiles",
    "measure_ops",
    "fill_table",
    "make_pairs",
    "experiments",
    "EXPERIMENTS",
    "run_experiment",
]
