"""Machine-readable export of experiment results (CSV / JSON)."""

from __future__ import annotations

import csv
import io
import json
from typing import Iterable

from repro.bench.reporting import ExperimentResult


def result_to_json(result: ExperimentResult) -> str:
    """One experiment as a JSON document (records orientation)."""
    return json.dumps(
        {
            "experiment": result.experiment,
            "title": result.title,
            "parameters": result.parameters,
            "notes": result.notes,
            "columns": list(result.columns),
            "rows": [list(row) for row in result.rows],
        },
        default=str,
        indent=2,
    )


def results_to_json(results: Iterable[ExperimentResult]) -> str:
    """A run of several experiments as one JSON array."""
    documents = [json.loads(result_to_json(result)) for result in results]
    return json.dumps(documents, indent=2)


def result_to_csv(result: ExperimentResult) -> str:
    """One experiment as CSV with an ``experiment`` discriminator column."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["experiment", *result.columns])
    for row in result.rows:
        writer.writerow([result.experiment, *row])
    return buffer.getvalue()


def results_to_csv(results: Iterable[ExperimentResult]) -> str:
    """Several experiments concatenated; each keeps its own header block."""
    return "\n".join(result_to_csv(result) for result in results)
