"""Timing utilities: throughput and latency-percentile measurement.

The paper's metrics (§VI-A1): Throughput in Mops (million operations per
second) and latency percentiles (tail latency shows update behaviour when
the structure is nearly full).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterable, List, Sequence


@dataclass(frozen=True)
class Measurement:
    """A timed batch of operations."""

    ops: int
    seconds: float

    @property
    def mops(self) -> float:
        """Million operations per second."""
        if self.seconds <= 0:
            return float("inf")
        return self.ops / self.seconds / 1e6

    @property
    def kops(self) -> float:
        """Thousand operations per second."""
        return self.mops * 1e3


@dataclass(frozen=True)
class Percentiles:
    """Latency percentiles in microseconds."""

    p50: float
    p90: float
    p99: float
    p999: float

    @classmethod
    def from_samples(cls, samples_us: Sequence[float]) -> "Percentiles":
        ordered = sorted(samples_us)
        return cls(
            p50=_percentile(ordered, 50.0),
            p90=_percentile(ordered, 90.0),
            p99=_percentile(ordered, 99.0),
            p999=_percentile(ordered, 99.9),
        )


def _percentile(ordered: Sequence[float], pct: float) -> float:
    """Nearest-rank percentile over pre-sorted samples."""
    if not ordered:
        raise ValueError("no samples")
    rank = max(1, round(pct / 100.0 * len(ordered)))
    return ordered[min(rank, len(ordered)) - 1]


def measure_ops(fn: Callable[[], None], ops: int) -> Measurement:
    """Time one call of ``fn`` that performs ``ops`` operations."""
    started = time.perf_counter()
    fn()
    return Measurement(ops=ops, seconds=time.perf_counter() - started)


def measure_each(operations: Iterable[Callable[[], None]]) -> List[float]:
    """Per-operation latencies in microseconds (for percentile plots)."""
    samples: List[float] = []
    for operation in operations:
        started = time.perf_counter()
        operation()
        samples.append((time.perf_counter() - started) * 1e6)
    return samples


def latency_percentiles(operations: Iterable[Callable[[], None]]) -> Percentiles:
    """Run operations one by one and summarise their latency tail."""
    return Percentiles.from_samples(measure_each(operations))
