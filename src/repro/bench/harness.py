"""Timing utilities: throughput and latency-percentile measurement.

The paper's metrics (§VI-A1): Throughput in Mops (million operations per
second) and latency percentiles (tail latency shows update behaviour when
the structure is nearly full).

:func:`metrics_sidecar` is the bench layer's observability wiring: wrap a
benchmark run in it and every table the run builds is instrumented
(walk/kick/reconstruction histograms via default
:class:`~repro.obs.hooks.MetricsHooks`), and on exit one aggregated
JSON + Prometheus sidecar lands next to the results file — see
docs/observability.md.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, List, Sequence, Tuple

from repro.obs.exporters import write_sidecar
from repro.obs.hooks import default_metrics
from repro.obs.registry import RegistryCollector


@dataclass(frozen=True)
class Measurement:
    """A timed batch of operations."""

    ops: int
    seconds: float

    @property
    def mops(self) -> float:
        """Million operations per second."""
        if self.seconds <= 0:
            return float("inf")
        return self.ops / self.seconds / 1e6

    @property
    def kops(self) -> float:
        """Thousand operations per second."""
        return self.mops * 1e3


@dataclass(frozen=True)
class Percentiles:
    """Latency percentiles in microseconds."""

    p50: float
    p90: float
    p99: float
    p999: float

    @classmethod
    def from_samples(cls, samples_us: Sequence[float]) -> "Percentiles":
        ordered = sorted(samples_us)
        return cls(
            p50=_percentile(ordered, 50.0),
            p90=_percentile(ordered, 90.0),
            p99=_percentile(ordered, 99.0),
            p999=_percentile(ordered, 99.9),
        )


def _percentile(ordered: Sequence[float], pct: float) -> float:
    """Nearest-rank percentile over pre-sorted samples."""
    if not ordered:
        raise ValueError("no samples")
    rank = max(1, round(pct / 100.0 * len(ordered)))
    return ordered[min(rank, len(ordered)) - 1]


def measure_ops(fn: Callable[[], None], ops: int) -> Measurement:
    """Time one call of ``fn`` that performs ``ops`` operations."""
    started = time.perf_counter()
    fn()
    return Measurement(ops=ops, seconds=time.perf_counter() - started)


def measure_each(operations: Iterable[Callable[[], None]]) -> List[float]:
    """Per-operation latencies in microseconds (for percentile plots)."""
    samples: List[float] = []
    for operation in operations:
        started = time.perf_counter()
        operation()
        samples.append((time.perf_counter() - started) * 1e6)
    return samples


def latency_percentiles(operations: Iterable[Callable[[], None]]) -> Percentiles:
    """Run operations one by one and summarise their latency tail."""
    return Percentiles.from_samples(measure_each(operations))


@contextmanager
def metrics_sidecar(path: str) -> Iterator[RegistryCollector]:
    """Instrument everything inside the ``with`` and emit one sidecar.

    While the context is active, every table constructed gets default
    :class:`~repro.obs.hooks.MetricsHooks` (walk/kick/reconstruction
    histograms) and every :class:`~repro.obs.registry.MetricsRegistry`
    created is captured. On exit the captured registries are aggregated —
    counters summed, gauges maxed, histograms added bucket-wise — and
    written as ``<base>.metrics.json`` + ``<base>.metrics.prom`` next to
    ``path`` (typically the benchmark's results file).

    Yields the collector; ``collector.registries()`` is available inside
    the block for per-table inspection. The sidecar paths are recorded on
    the collector as ``sidecar_paths`` after exit.
    """
    collector = RegistryCollector()
    with default_metrics(True), collector:
        yield collector
    collector.sidecar_paths = write_sidecar(collector.aggregate(), path)


def sidecar_paths_for(path: str) -> Tuple[str, str]:
    """The (json, prom) sidecar paths :func:`metrics_sidecar` would write
    next to ``path`` — for callers that want to report or check them."""
    import os

    base, ext = os.path.splitext(path)
    if ext not in (".json", ".csv", ".txt", ".prom"):
        base = path
    return base + ".metrics.json", base + ".metrics.prom"
