"""``python -m repro.bench`` dispatches to the CLI."""

import sys

from repro.bench.cli import main

sys.exit(main())
