"""YCSB-style mixed workloads over value-only tables.

The paper evaluates operations in isolation (all-insert, all-lookup,
all-delete passes); a downstream adopter's first question is how the
tables behave under *mixed* traffic. This module implements the applicable
YCSB core workloads:

========  =========================================  =================
workload  mix                                        request distribution
========  =========================================  =================
A         50% read / 50% update                      zipfian
B         95% read / 5% update                       zipfian
C         100% read                                  zipfian
D         95% read / 5% insert                       latest
F         read-modify-write (read + update pairs)    zipfian
========  =========================================  =================

Workload E (short range scans) is omitted *structurally*: value-only
tables store no keys, so they cannot enumerate or scan — an inherent VO
limitation worth stating rather than papering over.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.datasets.synthetic import zipf_queries
from repro.table import ValueOnlyTable


@dataclass(frozen=True)
class WorkloadSpec:
    """One YCSB core workload: operation mix + request distribution."""

    name: str
    read_fraction: float
    update_fraction: float
    insert_fraction: float
    read_modify_write: bool = False
    distribution: str = "zipfian"  # or "latest"

    def __post_init__(self) -> None:
        total = self.read_fraction + self.update_fraction + self.insert_fraction
        if not (abs(total - 1.0) < 1e-9 or self.read_modify_write):
            raise ValueError("operation fractions must sum to 1")


WORKLOADS: Dict[str, WorkloadSpec] = {
    "A": WorkloadSpec("A", read_fraction=0.5, update_fraction=0.5,
                      insert_fraction=0.0),
    "B": WorkloadSpec("B", read_fraction=0.95, update_fraction=0.05,
                      insert_fraction=0.0),
    "C": WorkloadSpec("C", read_fraction=1.0, update_fraction=0.0,
                      insert_fraction=0.0),
    "D": WorkloadSpec("D", read_fraction=0.95, update_fraction=0.0,
                      insert_fraction=0.05, distribution="latest"),
    "F": WorkloadSpec("F", read_fraction=0.5, update_fraction=0.5,
                      insert_fraction=0.0, read_modify_write=True),
}

#: (op, key, value) — op in {"read", "update", "insert", "rmw"}.
Operation = Tuple[str, int, int]


def generate_operations(
    spec: WorkloadSpec,
    preloaded_keys: np.ndarray,
    count: int,
    seed: int,
    value_bits: int = 8,
) -> List[Operation]:
    """Materialise an operation trace for a workload.

    ``preloaded_keys`` is the key population already inserted; reads and
    updates target it by the spec's distribution, inserts draw fresh keys.
    """
    rng = np.random.default_rng(seed)
    keys = np.asarray(preloaded_keys, dtype=np.uint64)
    if spec.distribution == "zipfian":
        targets = zipf_queries(keys, count, seed, alpha=0.99)
    elif spec.distribution == "latest":
        # "Latest": skew toward recently inserted items — model as zipf
        # over the reversed insertion order.
        targets = zipf_queries(keys[::-1], count, seed, alpha=0.99)
    else:
        raise ValueError(f"unknown distribution {spec.distribution!r}")

    rolls = rng.random(count)
    values = rng.integers(0, (1 << value_bits) - 1, size=count,
                          dtype=np.uint64, endpoint=True)
    fresh = iter(
        np.unique(rng.integers(1 << 48, 1 << 49, size=2 * count,
                               dtype=np.uint64)).tolist()
    )

    operations: List[Operation] = []
    for i in range(count):
        target = int(targets[i])
        value = int(values[i])
        if spec.read_modify_write:
            op = "rmw" if rolls[i] < 0.5 else "read"
        elif rolls[i] < spec.read_fraction:
            op = "read"
        elif rolls[i] < spec.read_fraction + spec.update_fraction:
            op = "update"
        else:
            op = "insert"
            target = next(fresh)
        operations.append((op, target, value))
    return operations


@dataclass(frozen=True)
class WorkloadResult:
    """Outcome of running one workload trace against one table."""

    workload: str
    algorithm: str
    operations: int
    seconds: float
    reads: int
    writes: int
    failures: int

    @property
    def mops(self) -> float:
        if self.seconds <= 0:
            return float("inf")
        return self.operations / self.seconds / 1e6


def run_workload(
    table: ValueOnlyTable,
    operations: Sequence[Operation],
    workload_name: str = "?",
) -> WorkloadResult:
    """Execute a trace; the table must already hold the preloaded keys."""
    reads = 0
    writes = 0
    failures_before = table.failure_events
    started = time.perf_counter()
    for op, key, value in operations:
        if op == "read":
            table.lookup(key)
            reads += 1
        elif op == "update":
            table.update(key, value)
            writes += 1
        elif op == "insert":
            table.insert(key, value)
            writes += 1
        elif op == "rmw":
            # Read-modify-write: the written value depends on the read.
            current = table.lookup(key)
            mask = (1 << table.value_bits) - 1
            table.update(key, (current ^ value) & mask)
            reads += 1
            writes += 1
        else:  # pragma: no cover - trace generator guards this
            raise ValueError(f"unknown operation {op!r}")
    elapsed = time.perf_counter() - started
    return WorkloadResult(
        workload=workload_name,
        algorithm=table.name,
        operations=len(operations),
        seconds=elapsed,
        reads=reads,
        writes=writes,
        failures=table.failure_events - failures_before,
    )
