"""Terminal bar charts for experiment series (no plotting dependency).

The paper's figures are line plots; this renders their terminal
equivalent — one bar per (x, series) pair, scaled within the chart — so a
reproduction run can be eyeballed for shape (who wins, where the crossover
falls) without leaving the console.

    from repro.bench import run_experiment
    from repro.bench.plotting import chart

    result = run_experiment("fig8", scale=0.25)
    print(chart(result, x="L", y="Mops", series="algorithm",
                where={"sweep": "vs L"}))
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.bench.reporting import ExperimentResult

_BAR = "█"
_MAX_WIDTH = 40


def _select(result: ExperimentResult, where: Optional[Dict]) -> List[dict]:
    records = [dict(zip(result.columns, row)) for row in result.rows]
    if where:
        records = [
            record for record in records
            if all(record.get(k) == v for k, v in where.items())
        ]
    return records


def chart(
    result: ExperimentResult,
    x: str,
    y: str,
    series: Optional[str] = None,
    where: Optional[Dict] = None,
    width: int = _MAX_WIDTH,
) -> str:
    """Render one metric column as horizontal bars, grouped by a series.

    Bars are linearly scaled to the largest ``y`` in the selection, so
    relative magnitudes — the reproduced claims — are what the eye reads.
    """
    records = _select(result, where)
    if not records:
        raise ValueError("no rows match the selection")
    for column in (x, y):
        if column not in result.columns:
            raise ValueError(f"unknown column {column!r}")
    # Keep only rows whose metric is numeric (mixed columns, e.g. a few
    # formatted-string rows, simply drop out of the chart).
    records = [
        record for record in records
        if isinstance(record[y], (int, float))
        and not isinstance(record[y], bool)
    ]
    if not records:
        raise ValueError(f"column {y!r} has no numeric rows in the selection")
    top = max(record[y] for record in records) or 1

    label_of = (
        (lambda record: f"{record[series]} @ {x}={record[x]}")
        if series else (lambda record: f"{x}={record[x]}")
    )
    labels = [label_of(record) for record in records]
    pad = max(len(label) for label in labels)

    lines = [f"{result.experiment}: {y}" + (f" by {series}" if series else "")]
    previous_series = None
    for record, label in zip(records, labels):
        if series and record[series] != previous_series:
            if previous_series is not None:
                lines.append("")
            previous_series = record[series]
        bar = _BAR * max(1, round(record[y] / top * width))
        lines.append(f"{label.ljust(pad)}  {bar} {record[y]:g}")
    return "\n".join(lines)


def sparkline(values: List[float]) -> str:
    """A one-line trend: ▁▂▃▄▅▆▇█ scaled to the value range."""
    if not values:
        return ""
    blocks = "▁▂▃▄▅▆▇█"
    low = min(values)
    span = (max(values) - low) or 1.0
    return "".join(
        blocks[min(len(blocks) - 1, int((v - low) / span * (len(blocks) - 1)))]
        for v in values
    )
