"""Regression comparison of experiment results across runs.

`python -m repro.bench --format json --output baseline.json` records a
run; `python -m repro.bench --compare baseline.json` re-runs and reports,
per experiment, which numeric cells moved by more than a tolerance. Rows
are matched on their non-numeric label cells (algorithm, n, sweep, …), so
reordered output still compares correctly.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.bench.reporting import ExperimentResult


@dataclass(frozen=True)
class Delta:
    """One numeric cell that moved between runs."""

    experiment: str
    row_label: str
    column: str
    before: float
    after: float

    @property
    def ratio(self) -> float:
        if self.before == 0:
            return float("inf") if self.after else 1.0
        return self.after / self.before

    def render(self) -> str:
        return (
            f"{self.experiment} [{self.row_label}] {self.column}: "
            f"{self.before:g} -> {self.after:g} (x{self.ratio:.2f})"
        )


def _is_number(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _is_metric(value) -> bool:
    """Floats are measurements; ints and strings are row labels.

    Drivers encode parameters (n, L, seed, threads, …) as ints and
    measured quantities (Mops, space cost, latency) as floats, so this
    split keeps e.g. the five per-seed rows of fig10 distinct while still
    comparing their throughput columns.
    """
    return isinstance(value, float)


def _row_key(columns: Sequence[str], row: Sequence) -> Tuple[str, ...]:
    """Identify a row by its label cells (everything except metrics)."""
    return tuple(
        f"{col}={cell}"
        for col, cell in zip(columns, row)
        if not _is_metric(cell)
    )


def result_to_document(result: ExperimentResult) -> dict:
    return {
        "experiment": result.experiment,
        "columns": list(result.columns),
        "rows": [list(row) for row in result.rows],
    }


def load_baseline(path: str) -> Dict[str, dict]:
    """Read a ``--format json`` output file into {experiment: document}."""
    with open(path) as handle:
        documents = json.load(handle)
    if isinstance(documents, dict):
        documents = [documents]
    return {doc["experiment"]: doc for doc in documents}


def compare_documents(
    baseline: dict, current: dict, tolerance: float = 0.5
) -> List[Delta]:
    """Numeric cells whose relative change exceeds ``tolerance``.

    ``tolerance=0.5`` flags anything that moved by more than ±50% — loose
    on purpose, since most cells are timing measurements.
    """
    columns = baseline["columns"]
    if current["columns"] != columns:
        # Schema changed: report everything as incomparable via one delta.
        return [
            Delta(
                experiment=baseline["experiment"],
                row_label="<schema>",
                column="columns",
                before=len(columns),
                after=len(current["columns"]),
            )
        ]
    baseline_rows = {
        _row_key(columns, row): row for row in baseline["rows"]
    }
    deltas: List[Delta] = []
    for row in current["rows"]:
        key = _row_key(columns, row)
        old_row = baseline_rows.get(key)
        if old_row is None:
            continue
        for col, old_cell, new_cell in zip(columns, old_row, row):
            if not (_is_number(old_cell) and _is_number(new_cell)):
                continue
            reference = max(abs(old_cell), abs(new_cell), 1e-12)
            if abs(new_cell - old_cell) / reference > tolerance:
                deltas.append(
                    Delta(
                        experiment=baseline["experiment"],
                        row_label=", ".join(key),
                        column=col,
                        before=float(old_cell),
                        after=float(new_cell),
                    )
                )
    return deltas


def compare_run(
    baseline_path: str,
    results: Iterable[ExperimentResult],
    tolerance: float = 0.5,
) -> Tuple[List[Delta], List[str]]:
    """Compare fresh results against a stored baseline file.

    Returns (deltas, experiments missing from the baseline).
    """
    baseline = load_baseline(baseline_path)
    deltas: List[Delta] = []
    missing: List[str] = []
    for result in results:
        document = baseline.get(result.experiment)
        if document is None:
            missing.append(result.experiment)
            continue
        deltas.extend(
            compare_documents(document, result_to_document(result), tolerance)
        )
    return deltas, missing
