"""Dataset registry: load by name, and build the paper's "SynX" twins.

Fig 9 compares each real dataset against a synthetic dataset of the same
scale (the paper's SynMACTable, SynMachineLearning, SynDBLP);
:func:`synthetic_like` builds those twins.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.datasets.real_world import Dataset, dblp, mac_table, machine_learning
from repro.datasets.synthetic import random_keys

_LOADERS: Dict[str, Callable[[float], Dataset]] = {
    "MACTable": mac_table,
    "MachineLearning": machine_learning,
    "DBLP": dblp,
}

DATASET_NAMES = tuple(_LOADERS)


def load(name: str, scale: float = 1.0) -> Dataset:
    """Load a named dataset, optionally scaled down for quick runs."""
    try:
        loader = _LOADERS[name]
    except KeyError:
        raise ValueError(
            f"unknown dataset {name!r}; known: {DATASET_NAMES}"
        ) from None
    return loader(scale)


def synthetic_like(dataset: Dataset, seed: int = 1) -> Dataset:
    """A uniform-random dataset of the same scale as ``dataset`` (SynX)."""
    import numpy as np

    rng = np.random.default_rng(seed)
    values = rng.integers(
        0, (1 << dataset.value_bits) - 1, size=dataset.size,
        dtype=np.uint64, endpoint=True,
    )
    return Dataset(
        name=f"Syn{dataset.name}",
        keys=random_keys(dataset.size, seed=seed ^ 0x51A17, key_bits=64),
        values=values,
        value_bits=dataset.value_bits,
        key_bits=64,
        description=f"synthetic twin of {dataset.name} at the same scale",
    )
