"""Datasets used by the paper's evaluation (§VI-A2).

Synthetic random KV generators (the paper's main workloads — VO tables are
distribution-oblivious because keys are hashed), plus deterministic
synthetic stand-ins for the three real-world datasets (MACTable,
MachineLearning, DBLP) with the exact sizes, key widths, and value lengths
the paper reports. See DESIGN.md §5 for why the stand-ins preserve the
measured behaviour.
"""

from repro.datasets.synthetic import (
    random_pairs,
    random_keys,
    uniform_queries,
    zipf_queries,
)
from repro.datasets.real_world import Dataset, mac_table, machine_learning, dblp
from repro.datasets.registry import DATASET_NAMES, load, synthetic_like

__all__ = [
    "random_pairs",
    "random_keys",
    "uniform_queries",
    "zipf_queries",
    "Dataset",
    "mac_table",
    "machine_learning",
    "dblp",
    "DATASET_NAMES",
    "load",
    "synthetic_like",
]
