"""Synthetic workload generation.

The paper's primary datasets are uniformly random KV pairs of varying size
and value length ("sufficiently persuasive since our algorithm does not
utilize any distribution characteristics of the key-value pairs", §VI-A2),
and its robustness experiments sample queries from the key set with a Zipf
distribution (α = 1.0).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def random_keys(n: int, seed: int, key_bits: int = 64) -> np.ndarray:
    """``n`` distinct uniform random keys of ``key_bits`` bits, as uint64."""
    if n < 0:
        raise ValueError("n must be non-negative")
    if not 1 <= key_bits <= 64:
        raise ValueError("key_bits must be in [1, 64]")
    if key_bits < 64 and n > (1 << key_bits):
        raise ValueError(f"cannot draw {n} distinct {key_bits}-bit keys")
    rng = np.random.default_rng(seed)
    high = (1 << key_bits) - 1
    keys = np.unique(rng.integers(0, high, size=n, dtype=np.uint64, endpoint=True))
    # Redraw until we have n distinct keys (collisions are rare at 48+ bits
    # but the small MAC-table sizes deserve exactness).
    while len(keys) < n:
        extra = rng.integers(0, high, size=n - len(keys) + 16,
                             dtype=np.uint64, endpoint=True)
        keys = np.unique(np.concatenate([keys, extra]))
    keys = keys[:n]
    rng.shuffle(keys)
    return keys


def random_pairs(
    n: int, value_bits: int, seed: int, key_bits: int = 64
) -> Tuple[np.ndarray, np.ndarray]:
    """``n`` distinct random keys with uniform ``value_bits``-bit values."""
    keys = random_keys(n, seed, key_bits)
    rng = np.random.default_rng(seed ^ 0x5DEECE66D)
    values = rng.integers(0, (1 << value_bits) - 1, size=n,
                          dtype=np.uint64, endpoint=True)
    return keys, values


def uniform_queries(keys: np.ndarray, count: int, seed: int) -> np.ndarray:
    """``count`` lookup keys drawn uniformly from the inserted key set."""
    rng = np.random.default_rng(seed)
    picks = rng.integers(0, len(keys), size=count)
    return np.asarray(keys, dtype=np.uint64)[picks]


def zipf_queries(
    keys: np.ndarray, count: int, seed: int, alpha: float = 1.0
) -> np.ndarray:
    """``count`` lookup keys drawn from the key set by rank-Zipf(α).

    Rank r (1-based) is chosen with probability proportional to r^(-α);
    the paper's robustness experiments use α = 1.0.
    """
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    n = len(keys)
    if n == 0:
        raise ValueError("cannot sample queries from an empty key set")
    rng = np.random.default_rng(seed)
    weights = 1.0 / np.arange(1, n + 1, dtype=np.float64) ** alpha
    weights /= weights.sum()
    picks = rng.choice(n, size=count, p=weights)
    return np.asarray(keys, dtype=np.uint64)[picks]
