"""Synthetic stand-ins for the paper's three real-world datasets.

The paper evaluates on a switch MAC-address table [22], a UCI binary
classification training set [23], and a DBLP snapshot [24]. None of those
files ship with this repository (offline reproduction), so each loader
generates a *deterministic* synthetic dataset with the same cardinality,
key width, and value length the paper reports. Because every compared
algorithm hashes its keys, only those three parameters affect behaviour —
which is exactly the paper's own argument for evaluating on random data
(§VI-A2), and Fig 9's finding (real vs same-scale synthetic is a wash) is
then reproduced by construction *and* re-measured by the Fig 9 driver.

Each loader accepts ``scale`` to shrink the dataset proportionally for
quick runs; ``scale=1.0`` matches the paper's sizes exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.synthetic import random_keys

MAC_TABLE_SIZE = 2_731
MACHINE_LEARNING_SIZE = 359_874
DBLP_SIZE = 829_119


@dataclass(frozen=True)
class Dataset:
    """An immutable KV dataset: parallel key/value arrays plus metadata."""

    name: str
    keys: np.ndarray
    values: np.ndarray
    value_bits: int
    key_bits: int
    description: str

    @property
    def size(self) -> int:
        """Number of KV pairs."""
        return len(self.keys)

    def pairs(self):
        """Iterate (key, value) as Python ints."""
        return zip(self.keys.tolist(), self.values.tolist())


def _scaled(full_size: int, scale: float) -> int:
    if not 0 < scale <= 1.0:
        raise ValueError("scale must be in (0, 1]")
    return max(1, round(full_size * scale))


def _binary_values(n: int, seed: int, p_one: float) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return (rng.random(n) < p_one).astype(np.uint64)


def mac_table(scale: float = 1.0) -> Dataset:
    """MACTable: 2,731 pairs, 48-bit MAC-address keys, 1-bit type field.

    The value records whether the entry is static (0) or dynamic (1);
    switch tables are overwhelmingly dynamic, so the synthetic values are
    skewed accordingly.
    """
    n = _scaled(MAC_TABLE_SIZE, scale)
    return Dataset(
        name="MACTable",
        keys=random_keys(n, seed=0x3AC7AB1E, key_bits=48),
        values=_binary_values(n, seed=0x3AC7AB1F, p_one=0.9),
        value_bits=1,
        key_bits=48,
        description="switch MAC table: MAC address -> static/dynamic bit",
    )


def machine_learning(scale: float = 1.0) -> Dataset:
    """MachineLearning: 359,874 training entries with 1-bit labels."""
    n = _scaled(MACHINE_LEARNING_SIZE, scale)
    return Dataset(
        name="MachineLearning",
        keys=random_keys(n, seed=0x11C1DA7A, key_bits=64),
        values=_binary_values(n, seed=0x11C1DA7B, p_one=0.5),
        value_bits=1,
        key_bits=64,
        description="UCI-style binary classification set: entry -> label",
    )


def dblp(scale: float = 1.0) -> Dataset:
    """DBLP: 829,119 records, value = journal (0) or conference (1).

    The paper uses the record's string 'key' attribute as the key; every
    compared table hashes string keys to 64-bit handles on entry
    (``key_to_u64``), so the stand-in draws the handles directly.
    """
    n = _scaled(DBLP_SIZE, scale)
    return Dataset(
        name="DBLP",
        keys=random_keys(n, seed=0xDB19DB19, key_bits=64),
        values=_binary_values(n, seed=0xDB19DB1A, p_one=0.6),
        value_bits=1,
        key_bits=64,
        description="DBLP records: publication key -> journal/conference bit",
    )
