"""Load-dependent failure model: from Theorem 1's process to Fig 4's curve.

Theorem 1 models one repair walk as a branching process with offspring
distribution X_min (min of two Pois(λ) bucket loads, λ = 3n/m). This
module pushes the model one step further than the paper's convergence
criterion: the probability that a *single insert's* walk never terminates
is the branching process's survival probability 1 − q, where the
extinction probability q is the smallest fixed point of the offspring
PGF. Integrating over an insertion pass (λ grows with every insert) and
accounting for the retry feature (each randomised retry is approximately
an independent draw) yields a predicted failures-per-full-insertion —
the quantity Fig 4 measures.

The model is deliberately first-order and errs conservative: the infinite
branching process ignores that a real walk also terminates by absorbing
into equations it already fixed (so single-attempt failures are
over-predicted by roughly an order of magnitude), while retries are
treated as independent (so the with-retries floor is under-predicted —
the true floor is the Theorem 2 collision rate, which this model does not
include; combine with :mod:`repro.analysis.failure` for totals). What the
model gets right, and the tests assert, is the structure: exactly zero
walk failures below Theorem 1's threshold, a sharp onset above it, and a
geometric reduction per retry.
"""

from __future__ import annotations

import math
from typing import List

from repro.analysis.poisson import _poisson_tail


def _offspring_pmf(lam: float, max_k: int = 60) -> List[float]:
    """P(X_min = k) for X_min = min of two Pois(λ) draws."""
    pmf = []
    for k in range(max_k):
        tail_k = _poisson_tail(lam, k) ** 2
        tail_next = _poisson_tail(lam, k + 1) ** 2
        pmf.append(max(0.0, tail_k - tail_next))
    return pmf


def extinction_probability(lam: float, iterations: int = 400) -> float:
    """q: probability the repair branching process dies out.

    The smallest fixed point of the offspring PGF G; found by iterating
    q ← G(q) from 0. Equals 1 exactly when E[X_min] ≤ 1 (λ ≤ λ' ≈ 1.709).
    """
    if lam < 0:
        raise ValueError("lambda must be non-negative")
    pmf = _offspring_pmf(lam)
    q = 0.0
    for _ in range(iterations):
        power = 1.0
        value = 0.0
        for probability in pmf:
            value += probability * power
            power *= q
        if abs(value - q) < 1e-12:
            q = value
            break
        q = value
    return min(1.0, q)


def walk_failure_probability(lam: float, attempts: int = 8) -> float:
    """P(one insert's repair fails all search attempts) at load λ.

    Survival probability of the branching process, raised to the number of
    (approximately independent) randomised search attempts.
    """
    survival = 1.0 - extinction_probability(lam)
    if survival <= 0.0:
        return 0.0
    return survival ** max(1, attempts)


def expected_failures_per_fill(
    n: int,
    space_factor: float = 1.7,
    attempts: int = 8,
    resolution: int = 200,
) -> float:
    """Predicted failure events over one full insertion of n keys.

    Sums the per-insert failure probability as the load sweeps 0 → n/m.
    The result is dominated by the tail of the fill where λ crosses λ'.
    """
    if n < 1:
        raise ValueError("n must be positive")
    m = space_factor * n
    total = 0.0
    step = max(1, n // resolution)
    for i in range(0, n, step):
        lam = 3.0 * (i + 1) / m
        total += walk_failure_probability(lam, attempts) * min(step, n - i)
    return total


def supercritical_fill_fraction(space_factor: float = 1.7) -> float:
    """The fraction of a full insertion spent above λ' (walks can cycle).

    Zero for budgets above the Theorem 1 threshold 1.756; about 3% of the
    fill at the paper's default 1.7.
    """
    from repro.analysis.poisson import solve_lambda_threshold

    lam_critical = solve_lambda_threshold()
    lam_full = 3.0 / space_factor
    if lam_full <= lam_critical:
        return 0.0
    # λ(i) = 3 i / (f n): crosses critical at i/n = f·λ'/3.
    crossing = space_factor * lam_critical / 3.0
    return max(0.0, 1.0 - crossing)
