"""Theorems 2–3 (§V-B): the probability of update failure.

Two failure modes exist:

1. **Collision error** (Theorem 2) — two keys hash to the *same three
   cells* but carry different values: the equation system is unsolvable.
   A pair collides in all ``d`` arrays with probability ``(1/w)^d`` where
   ``w = m/d`` is each array's width; summed over the ~n²/2 pairs and
   discounted by the probability the values actually differ, this is
   Θ(n² / m³) = O(1/n) when m ∝ n and d = 3.
2. **Endless loop** (Theorem 3) — the repair walk cycles; the paper bounds
   t consecutive updates' loop probability by z·t/n², i.e. O(1/n) per full
   insertion pass (t = n).

For contrast, :func:`two_hash_failure_probability` gives the same collision
computation for the d = 2 schemes (Othello/Color): Θ(n²/m²) = Θ(1), the
birthday-paradox constant the paper's Fig 4 shows — this gap *is* the
paper's headline robustness claim.
"""

from __future__ import annotations


def collision_error_probability(
    n: int, m: int, num_arrays: int = 3, value_bits: int | None = None
) -> float:
    """Expected number of unsolvable full-cell collisions among n keys.

    With each array of width ``w = m/num_arrays``, a specific pair of keys
    shares all cells with probability ``w^-num_arrays``; a shared pair is
    unsolvable only if the two values differ (factor ``1 - 2^-L`` for
    uniform values). Returns the expectation, which for small values is
    also the failure probability.
    """
    if n < 2:
        return 0.0
    width = m / num_arrays
    if width <= 0:
        raise ValueError("m must be positive")
    pairs = n * (n - 1) / 2
    p_same_cells = width ** (-num_arrays)
    p_value_differs = 1.0 - 2.0 ** (-value_bits) if value_bits else 1.0
    return pairs * p_same_cells * p_value_differs


def endless_loop_probability(t: int, n: int, z: float = 1.0) -> float:
    """Theorem 3's bound: P(endless loop within t updates) ≈ z·t/n²."""
    if n <= 0:
        raise ValueError("n must be positive")
    return min(1.0, z * t / (n * n))


def update_failure_probability(
    n: int,
    m: int | None = None,
    space_factor: float = 1.7,
    value_bits: int | None = None,
    z: float = 1.0,
) -> float:
    """VisionEmbedder's total failure probability over a full insertion.

    Collision error plus endless loop over t = n updates; both O(1/n) when
    m = space_factor · n, matching the paper's headline claim.
    """
    if m is None:
        m = int(space_factor * n)
    return collision_error_probability(
        n, m, num_arrays=3, value_bits=value_bits
    ) + endless_loop_probability(n, n, z)


def two_hash_failure_probability(
    n: int, m: int | None = None, space_factor: float = 2.2,
    value_bits: int | None = None,
) -> float:
    """Expected unsolvable collisions for a two-hash scheme (Othello/Color).

    The same computation as :func:`collision_error_probability` with
    ``num_arrays = 2``: Θ(n²/m²), a constant in n when m ∝ n — the reason
    two-hash dynamic VO tables reconstruct at a constant rate. (Cycle
    inconsistencies add more failures; this collision term is already
    enough to establish the constant.)
    """
    if m is None:
        m = int(space_factor * n)
    return collision_error_probability(n, m, num_arrays=2, value_bits=value_bits)
