"""Theorem 1 (§V-A): the space threshold for convergent updates.

Model: with n keys hashed into m cells (3 cells per key), the load of one
cell is X ~ Pois(λ), λ = 3n/m. A repair step picks, for each affected
equation, the less-loaded of its two remaining cells, so the propagation
branching factor is E[X_min] with

    P(X_min >= k) = P(X >= k)^2
    E[X_min]      = Σ_{k>=1} P(X_min >= k)

The update is expected to converge (affected equations die out
geometrically) iff E[X_min] < 1. The paper numerically solves the critical
λ' ≈ 1.709, i.e. a minimum space ratio (m/n)' = 3/λ' ≈ 1.756.
"""

from __future__ import annotations

import math


def _poisson_tail(lam: float, k: int, terms: int = 400) -> float:
    """P(X >= k) for X ~ Pois(lam), via the complement of the lower CDF."""
    if k <= 0:
        return 1.0
    # Lower CDF P(X <= k-1) summed directly (k is small in practice).
    total = 0.0
    term = math.exp(-lam)
    for i in range(k):
        total += term
        term *= lam / (i + 1)
    return max(0.0, 1.0 - total)


def expected_min_load(lam: float, choices: int = 2, max_k: int = 200) -> float:
    """E[X_min] = Σ_{k>=1} P(X >= k)^choices for X ~ Pois(lam).

    ``choices`` is the number of candidate cells the repair picks the
    minimum over (2 once one cell of an equation is pinned).
    """
    if lam < 0:
        raise ValueError("lambda must be non-negative")
    total = 0.0
    for k in range(1, max_k + 1):
        term = _poisson_tail(lam, k) ** choices
        total += term
        if term < 1e-18:
            break
    return total


def solve_lambda_threshold(
    choices: int = 2, target: float = 1.0, tolerance: float = 1e-9
) -> float:
    """The critical λ' with E[X_min](λ') = target, by bisection.

    E[X_min] is increasing in λ, so bisection over a bracketing interval
    converges; the paper reports λ' ≈ 1.709 for choices=2, target=1.
    """
    low, high = 1e-6, 50.0
    if expected_min_load(high, choices) < target:
        raise ValueError("target not reachable within bracket")
    while high - low > tolerance:
        mid = (low + high) / 2
        if expected_min_load(mid, choices) < target:
            low = mid
        else:
            high = mid
    return (low + high) / 2


def space_threshold(num_arrays: int = 3, choices: int = 2) -> float:
    """(m/n)': minimum cells-per-key ratio for expected convergence.

    λ = num_arrays · n / m, so (m/n)' = num_arrays / λ'. The paper reports
    1.756 for the 3-array table at MaxDepth = 1.
    """
    return num_arrays / solve_lambda_threshold(choices=choices)
