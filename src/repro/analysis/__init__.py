"""The paper's theoretical analysis (§V), as executable numerics.

- :mod:`repro.analysis.poisson` — Theorem 1: the space-efficiency threshold
  below which the MaxDepth=1 update converges (λ' ≈ 1.709, (m/n)' ≈ 1.756).
- :mod:`repro.analysis.failure` — Theorems 2–3: collision-error and
  endless-loop probabilities, O(1/n) overall, plus the two-hash baselines'
  constant failure probability for contrast.
- :mod:`repro.analysis.space` — per-algorithm space models behind Table I
  and the default budgets of §VI-A3.
"""

from repro.analysis.poisson import (
    expected_min_load,
    solve_lambda_threshold,
    space_threshold,
)
from repro.analysis.failure import (
    collision_error_probability,
    endless_loop_probability,
    update_failure_probability,
    two_hash_failure_probability,
)
from repro.analysis.space import bits_per_value_bit, space_bits, table1_rows

__all__ = [
    "expected_min_load",
    "solve_lambda_threshold",
    "space_threshold",
    "collision_error_probability",
    "endless_loop_probability",
    "update_failure_probability",
    "two_hash_failure_probability",
    "bits_per_value_bit",
    "space_bits",
    "table1_rows",
]
