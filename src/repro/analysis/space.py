"""Per-algorithm space models (Table I and the §VI-A3 defaults).

All models report *fast-space* bits, the paper's space metric: the value
table(s) only, never the slow-space assistant structures.
"""

from __future__ import annotations

from typing import Dict, List

# Default fast-space budget in bits for n keys with L-bit values (§VI-A3).
_MODELS = {
    "bloomier": lambda n, L: 1.23 * L * (n + 100),
    "othello": lambda n, L: 2.33 * L * n,
    "color": lambda n, L: 2.2 * L * n,
    "ludo": lambda n, L: (3.76 + 1.05 * L) * n,
    "vision": lambda n, L: 1.7 * L * n,
}

#: The minimum space each dynamic algorithm can actually run at, per the
#: paper's Fig 3 measurement (bits per value bit, L = 1).
MEASURED_MINIMUM = {
    "bloomier": 1.23,
    "othello": 2.33,
    "color": 2.2,
    "vision": 1.58,
}


def space_bits(name: str, n: int, value_bits: int) -> float:
    """Default fast-space budget in bits for ``n`` L-bit pairs."""
    try:
        model = _MODELS[name]
    except KeyError:
        raise ValueError(f"unknown algorithm {name!r}") from None
    return model(n, value_bits)


def bits_per_value_bit(name: str, n: int, value_bits: int) -> float:
    """The paper's Space Cost metric: fast-space bits / (n · L)."""
    return space_bits(name, n, value_bits) / (n * value_bits)


def table1_rows(n: int = 1_000_000, value_bits: int = 1) -> List[Dict[str, str]]:
    """The rows of the paper's Table I (algorithm comparison)."""
    return [
        {
            "algorithm": "Bloomier",
            "space_per_L_bit_value": "1.23L bits",
            "lookup_time": "O(1)",
            "update_amortized_time": "O(n)",
            "update_failure_probability": "O(1/n)",
        },
        {
            "algorithm": "Othello & Color",
            "space_per_L_bit_value": "2.33L / 2.2L bits",
            "lookup_time": "O(1)",
            "update_amortized_time": "O(1)",
            "update_failure_probability": "O(1)",
        },
        {
            "algorithm": "VisionEmbedder (ours)",
            "space_per_L_bit_value": "1.6L bits",
            "lookup_time": "O(1)",
            "update_amortized_time": "O(1)",
            "update_failure_probability": "O(1/n)",
        },
    ]
