"""Repair-walk length distribution: the theory behind Fig 7's tail.

A repair walk is a branching process (offspring X_min, see
:mod:`repro.analysis.poisson`); the number of repair steps an update takes
is the process's *total progeny*. Its distribution follows the standard
recursion for Galton–Watson total progeny:

    P(T = 1) = p_0
    P(T = t) = Σ_{k>=1} p_k · P(T_1 + … + T_k = t − 1)

computed here by dynamic programming over the progeny PMF. This yields,
per load λ:

- the distribution of update costs (Fig 7's percentile curves),
- P(T > budget) — the chance one walk exhausts the paper's 50-step budget,
  connecting Theorem 1's convergence criterion to the concrete failure
  knob, and validated against the embedder's measured ``repair_steps``.
"""

from __future__ import annotations

from typing import List

from repro.analysis.occupancy import _offspring_pmf


def total_progeny_pmf(lam: float, max_steps: int = 200) -> List[float]:
    """P(T = t) for t = 0..max_steps (index 0 unused; walks take ≥1 step).

    Probability mass above ``max_steps`` (including non-terminating walks
    in the supercritical regime) is the complement of the returned sum.
    """
    if lam < 0:
        raise ValueError("lambda must be non-negative")
    if max_steps < 1:
        raise ValueError("max_steps must be >= 1")
    offspring = _offspring_pmf(lam)

    # progeny[t] = P(total progeny of one individual = t), built by
    # iterating the recursive equation to a fixed point: T = 1 + Σ T_i
    # over X_min children. We iterate value updates max_steps times —
    # enough because P(T = t) depends only on P(T = s < t).
    progeny = [0.0] * (max_steps + 1)
    for t in range(1, max_steps + 1):
        if t == 1:
            progeny[1] = offspring[0]
            continue
        # Sum over number of children k and compositions of t-1 into k
        # progenies. Use convolution powers built incrementally.
        total = 0.0
        # conv_k = PMF of T_1 + ... + T_k restricted to <= t-1.
        conv = [1.0] + [0.0] * (t - 1)  # k = 0: mass at 0
        for k in range(1, len(offspring)):
            # conv := conv * progeny (truncated at t-1)
            fresh = [0.0] * t
            for s in range(t):
                if conv[s] == 0.0:
                    continue
                weight = conv[s]
                limit = t - s
                for u in range(1, min(limit, max_steps + 1)):
                    if s + u <= t - 1:
                        fresh[s + u] += weight * progeny[u]
            conv = fresh
            if offspring[k]:
                total += offspring[k] * conv[t - 1]
            if not any(conv):
                break
        progeny[t] = total
    return progeny


def walk_exceeds_budget_probability(
    lam: float, budget: int = 50, max_steps: int = 200
) -> float:
    """P(one repair walk needs more than ``budget`` steps) at load λ."""
    pmf = total_progeny_pmf(lam, max_steps=max(budget, 1))
    return max(0.0, 1.0 - sum(pmf[1 : budget + 1]))


def expected_walk_length(lam: float) -> float:
    """E[T] = 1 / (1 − E[X_min]) for subcritical loads, ∞ otherwise."""
    from repro.analysis.poisson import expected_min_load

    mean_offspring = expected_min_load(lam)
    if mean_offspring >= 1.0:
        return float("inf")
    return 1.0 / (1.0 - mean_offspring)
