"""What alien keys actually read: the VO caveat, quantified.

A value-only table answers alien keys with the XOR of three
pseudo-random cells (§I footnote 1 calls it "a meaningless value"). That
value is *not* uniform in general: a lightly loaded table is mostly zero
cells, so aliens overwhelmingly read 0; only near full occupancy does the
alien distribution flatten. Two practical consequences, both measurable
here:

- **Reserve value 0** (or any sentinel) for "invalid" where the
  deployment can: at low-to-moderate load most alien lookups then
  self-identify as misses for free.
- The probability an alien reads a *specific* valid value (e.g. a live
  shard id) is at most ~2^-L and lower when the table is sparse — useful
  when sizing L for directory-style deployments.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.table import ValueOnlyTable


def alien_value_histogram(
    table: ValueOnlyTable, num_probes: int = 50_000, seed: int = 1
) -> Dict[int, float]:
    """Empirical distribution of lookup values over random alien keys.

    Probes are drawn from a key range disjoint from anything the tests or
    datasets generate (above 2^62), so they are alien w.h.p.
    """
    rng = np.random.default_rng(seed)
    probes = rng.integers(1 << 62, (1 << 63) - 1, size=num_probes,
                          dtype=np.uint64)
    values = table.lookup_batch(probes)
    unique, counts = np.unique(values, return_counts=True)
    return {
        int(value): float(count) / num_probes
        for value, count in zip(unique, counts)
    }


def alien_zero_fraction(
    table: ValueOnlyTable, num_probes: int = 50_000, seed: int = 1
) -> float:
    """Fraction of alien lookups that read 0 (the free-sentinel effect)."""
    histogram = alien_value_histogram(table, num_probes, seed)
    return histogram.get(0, 0.0)


def predicted_zero_fraction_sparse(n: int, m: int) -> float:
    """First-order model of the alien-zero fraction for a *sparse* table.

    An alien reads 0 if all three of its cells are zero — at least. With
    dynamic insertion each pair typically writes ~1–1.5 cells, so the
    fraction of non-zero cells is roughly min(1, c·n/m) with c ≈ 1.3; the
    all-zero-probe probability is (1 − nonzero)^3. (A lower bound on the
    true zero fraction: XOR cancellations add more zeros.)
    """
    nonzero = min(1.0, 1.3 * n / m)
    return (1.0 - nonzero) ** 3


def specific_value_collision_probability(
    table: ValueOnlyTable, target: int, num_probes: int = 50_000,
    seed: int = 1,
) -> float:
    """P(an alien key reads exactly ``target``), measured.

    The number that matters when ``target`` is a live shard / port /
    experiment id and a stray lookup would be acted upon.
    """
    histogram = alien_value_histogram(table, num_probes, seed)
    return histogram.get(int(target), 0.0)
