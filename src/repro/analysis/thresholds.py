"""The space landscape: every constant in the paper's story, in one place.

A 3-hash XOR table's achievable space sits between well-known thresholds
of random 3-uniform hypergraphs. From tightest to loosest (bits of fast
space per value bit, i.e. m/n):

1.000  information-theoretic floor (the values themselves)
~1.089 3-XORSAT satisfiability: below this a solution *exists* w.h.p.,
       but only Gaussian elimination finds it
~1.222 peelability (empty 2-core): the greedy peel — Bloomier's O(n)
       construction — succeeds; the paper's 1.23
1.58   VisionEmbedder's measured minimum (deep vision + retries)
1.7    VisionEmbedder's default operating budget
1.756  Theorem 1: depth-1 vision converges above this
~2.0   two-hash acyclicity (m = 2n): idealised Othello/Color floor
2.2    Coloring Embedder as shipped; 2.33 Othello as shipped
~3.0   pure random-kick convergence (repair branching factor 3n/m < 1)

The two hypergraph thresholds are *measured* here by running the actual
peeling machinery over random instances (no closed-form constants are
baked in, so the numbers validate the substrate too); the others come
from the theory modules and the paper.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.core.static_build import peel_order
from repro.hashing import HashFamily


def _random_instance(num_keys: int, width: int, seed: int) -> Dict[int, tuple]:
    """n random keys hashed into a 3-segment table of 3·width cells."""
    family = HashFamily(seed, [width] * 3)
    rng = np.random.default_rng(seed)
    keys = np.unique(rng.integers(0, 1 << 62, size=num_keys, dtype=np.uint64))
    return {
        int(key): tuple(enumerate(family.indices(int(key))))
        for key in keys.tolist()
    }


def peel_success(ratio: float, num_cells: int, seed: int) -> bool:
    """Does greedy peeling succeed at m/n = ratio, m = num_cells?"""
    width = num_cells // 3
    num_keys = int(num_cells / ratio)
    return peel_order(_random_instance(num_keys, width, seed)) is not None


def empirical_peel_threshold(
    num_cells: int = 60_000, seed: int = 1, steps: int = 8
) -> float:
    """Bisect the m/n ratio where greedy peeling starts succeeding.

    The asymptotic threshold for 3-segment tables is ≈ 1.222 (which is
    where Bloomier's 1.23 sizing comes from); finite sizes land slightly
    above it.
    """
    low, high = 1.05, 1.45  # fails at low, succeeds at high
    for step in range(steps):
        mid = (low + high) / 2
        if peel_success(mid, num_cells, seed + step):
            high = mid
        else:
            low = mid
    return high


def two_core_balance(ratio: float, num_cells: int, seed: int) -> float:
    """Edges minus vertices of the leftover 2-core, normalised by n.

    Negative: the core (if any) is under-determined — the XOR system is
    still solvable by Gaussian elimination. Positive: over-determined —
    unsolvable w.h.p. The sign change locates the 3-XORSAT threshold
    (asymptotically m/n ≈ 1.089).
    """
    width = num_cells // 3
    num_keys = int(num_cells / ratio)
    key_cells = _random_instance(num_keys, width, seed)

    # Re-run the peel, but keep the leftover (the 2-core) when it stalls.
    cell_members: Dict[tuple, set] = {}
    for key, cells in key_cells.items():
        for cell in cells:
            cell_members.setdefault(cell, set()).add(key)
    queue = [cell for cell, members in cell_members.items()
             if len(members) == 1]
    remaining = set(key_cells)
    while queue:
        cell = queue.pop()
        members = cell_members.get(cell)
        if not members or len(members) != 1:
            continue
        (key,) = members
        remaining.discard(key)
        for other in key_cells[key]:
            cell_members[other].discard(key)
            if len(cell_members[other]) == 1:
                queue.append(other)
    core_edges = len(remaining)
    core_vertices = sum(
        1 for members in cell_members.values() if len(members) >= 2
    )
    return (core_edges - core_vertices) / max(1, len(key_cells))


def empirical_xorsat_threshold(
    num_cells: int = 60_000, seed: int = 1, steps: int = 8
) -> float:
    """Bisect the m/n ratio where the 2-core flips over-determined.

    Below the returned ratio the leftover core has more equations than
    variables (unsolvable w.h.p.); above it, fewer (solvable). The
    asymptotic value is ≈ 1.089.
    """
    low, high = 1.02, 1.20  # over-determined at low, under at high
    for step in range(steps):
        mid = (low + high) / 2
        if two_core_balance(mid, num_cells, seed + step) <= 0:
            high = mid
        else:
            low = mid
    return high


def space_landscape(
    num_cells: int = 60_000, seed: int = 1
) -> List[Tuple[str, float, str]]:
    """(name, m/n, provenance) rows for the full space-constant ladder."""
    from repro.analysis.poisson import space_threshold
    from repro.analysis.space import MEASURED_MINIMUM

    return [
        ("information floor", 1.0, "definition"),
        ("3-XORSAT satisfiability", empirical_xorsat_threshold(num_cells, seed),
         "measured here (asymptote 1.089)"),
        ("peelability / Bloomier", empirical_peel_threshold(num_cells, seed),
         "measured here (asymptote 1.222; paper sizes 1.23)"),
        ("vision measured minimum", MEASURED_MINIMUM["vision"],
         "paper Fig 3"),
        ("vision default budget", 1.7, "paper §VI-A3"),
        ("depth-1 vision convergence", space_threshold(),
         "Theorem 1 (solved here)"),
        ("two-hash acyclicity", 2.0, "random-graph criticality m=2n"),
        ("Color as shipped", 2.2, "paper §VI-A3"),
        ("Othello as shipped", 2.33, "paper §VI-A3"),
        ("pure random kick", 3.0, "branching factor 3n/m < 1"),
    ]
