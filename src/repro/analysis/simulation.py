"""Monte-Carlo validation of Theorem 1's branching-process model (§V-A).

Theorem 1 models the repair walk as a branching process: a modified cell's
bucket load is Pois(λ = 3n/m), the walk picks the smaller of the two
remaining cells per affected equation, and convergence requires
E[X_min] < 1. These simulators measure both quantities empirically — on
synthetic Poisson draws and on *real* assistant tables — so the theory
tests can confirm the model matches the built system, and the benchmark
suite can plot theory vs measurement.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.embedder import VisionEmbedder


def simulate_min_load(
    lam: float, samples: int = 100_000, choices: int = 2,
    seed: int = 1,
) -> float:
    """Empirical E[min of `choices` Pois(λ) draws] (Theorem 1's kernel)."""
    if lam < 0:
        raise ValueError("lambda must be non-negative")
    rng = np.random.default_rng(seed)
    draws = rng.poisson(lam, size=(samples, choices))
    return float(draws.min(axis=1).mean())


@dataclass(frozen=True)
class BranchingEstimate:
    """Measured branching factor of repair walks on a real table."""

    space_efficiency: float
    lam: float
    expected_min_load: float
    samples: int


def measure_branching_factor(
    n: int = 4000,
    space_factor: float = 1.7,
    seed: int = 1,
    samples: int = 20_000,
) -> BranchingEstimate:
    """Build a real table at the given load and measure E[X_min] on it.

    For a uniformly random cell pair (the "two remaining cells" of a
    hypothetical affected equation), returns the mean of the smaller bucket
    load — the empirical counterpart of Theorem 1's E[X_min].
    """
    from repro.core.config import EmbedderConfig
    from repro.datasets.synthetic import random_pairs

    config = EmbedderConfig(
        space_factor=space_factor,
        reconstruct_efficiency_limit=1.0,
    )
    table = VisionEmbedder(n, value_bits=1, config=config, seed=seed)
    keys, values = random_pairs(n, 1, seed)
    for key, value in zip(keys.tolist(), values.tolist()):
        table.insert(key, value)

    assistant = table._assistant
    width = table._table.width
    rng = random.Random(seed ^ 0x517E)
    total = 0
    for _ in range(samples):
        load_a = assistant.count_at(
            (rng.randrange(3), rng.randrange(width))
        )
        load_b = assistant.count_at(
            (rng.randrange(3), rng.randrange(width))
        )
        total += min(load_a, load_b)
    m = table.num_cells
    return BranchingEstimate(
        space_efficiency=n / m,
        lam=3 * n / m,
        expected_min_load=total / samples,
        samples=samples,
    )
