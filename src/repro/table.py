"""The common value-only-table interface.

Every algorithm the paper compares (VisionEmbedder, Bloomier, Othello,
Coloring Embedder, Ludo) implements this interface, so the benchmark
harness, examples, and property tests treat them interchangeably.

Value-only semantics, shared by all implementations:

- ``lookup`` of an inserted key returns its value, guaranteed.
- ``lookup`` of an *alien* key (never inserted, or deleted) returns a
  meaningless value — never an error. VO tables cannot detect absence.
- ``delete`` only touches slow-space bookkeeping; the deleted pair no
  longer occupies fast space or constrains later updates.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable, Tuple, Union

import numpy as np

from repro.core.stats import TableStats

Key = Union[int, bytes, str]


class ValueOnlyTable(ABC):
    """Abstract base for every value-only table in the repository."""

    #: Human-readable algorithm name, as used by the paper's figures.
    name: str = "abstract"

    @property
    @abstractmethod
    def value_bits(self) -> int:
        """L: the value length in bits."""

    @property
    @abstractmethod
    def space_bits(self) -> int:
        """Fast-space footprint in bits (analytic, per the paper's metric)."""

    @property
    @abstractmethod
    def stats(self) -> TableStats:
        """Failure/reconstruction counters accumulated so far."""

    @abstractmethod
    def __len__(self) -> int:
        """Number of currently inserted KV pairs (n)."""

    @abstractmethod
    def __contains__(self, key: Key) -> bool:
        """Whether ``key`` is currently inserted (slow-space check)."""

    @abstractmethod
    def insert(self, key: Key, value: int) -> None:
        """Insert a new KV pair; raises DuplicateKey if already present."""

    @abstractmethod
    def update(self, key: Key, value: int) -> None:
        """Change the value of an existing key; raises KeyNotFound if absent."""

    @abstractmethod
    def delete(self, key: Key) -> None:
        """Remove a pair; raises KeyNotFound if absent."""

    @abstractmethod
    def lookup(self, key: Key) -> int:
        """The value for ``key``; meaningless if the key is alien."""

    def put(self, key: Key, value: int) -> None:
        """Insert-or-update convenience."""
        if key in self:
            self.update(key, value)
        else:
            self.insert(key, value)

    def lookup_batch(self, keys: np.ndarray) -> np.ndarray:
        """Vectorised lookup over a ``uint64`` key array.

        The default implementation loops; tables with a vectorised fast
        path override it.
        """
        return np.fromiter(
            (self.lookup(int(k)) for k in np.asarray(keys, dtype=np.uint64)),
            dtype=np.uint64,
            count=len(keys),
        )

    def lookup_many(self, keys: Iterable[Key]) -> np.ndarray:
        """Batched lookup over arbitrary (mixed-type) keys.

        Canonicalises the keys to one ``uint64`` handle array and resolves
        them through :meth:`lookup_batch`, so tables with a vectorised
        batch path (e.g. VisionEmbedder's fused gather + XOR) serve
        string/bytes/int keys at batch speed.
        """
        from repro.hashing import keys_to_u64_batch

        return self.lookup_batch(keys_to_u64_batch(list(keys)))

    def insert_many(self, pairs: Iterable[Tuple[Key, int]]) -> None:
        """Insert pairs one by one (dynamic path, not bulk construction)."""
        for key, value in pairs:
            self.insert(key, value)

    @property
    def metrics(self):
        """The :class:`repro.obs.registry.MetricsRegistry` behind
        :attr:`stats` — export it with :func:`repro.obs.prometheus_text`
        or :func:`repro.obs.json_snapshot`. Every table gets this for
        free because ``TableStats`` is a view over a registry."""
        return self.stats.registry

    @property
    def failure_events(self) -> int:
        """Total rebuild passes forced by failures, including any internal
        components (e.g. Ludo's locator). Fig 4's metric."""
        return self.stats.reconstructions

    @property
    def bits_per_key(self) -> float:
        """Fast-space bits per currently inserted pair (paper's space cost
        numerator is per pair, denominator per value bit is bits_per_key/L)."""
        n = len(self)
        return self.space_bits / n if n else float("inf")

    @property
    def space_cost(self) -> float:
        """The paper's Space Cost metric: space_bits / (n · L)."""
        n = len(self)
        return self.space_bits / (n * self.value_bits) if n else float("inf")
