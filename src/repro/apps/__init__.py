"""Application-layer wrappers over the VisionEmbedder core.

The paper's §I lists, beyond lookup tables and shard directories, two more
deployment patterns for value-only tables: 1-bit tables as *binary
classifiers*, and SeqOthello-style indexes mapping genomic k-mers to the
experiments containing them. This package provides both as small typed
APIs.
"""

from repro.apps.classifier import BinaryClassifier
from repro.apps.seqindex import KmerExperimentIndex

__all__ = ["BinaryClassifier", "KmerExperimentIndex"]
