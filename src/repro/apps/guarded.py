"""Alien-key guarding: a Bloom filter in front of a value-only table.

The VO trade-off (§I, footnote 1) is that alien keys silently return
meaningless values. Where that is unacceptable, the standard composition —
used by ChainedFilter-style designs the paper cites as consumers of
VisionEmbedder — is a membership filter in front of the VO table: lookups
first ask the filter, and only filter-positives consult the value table.
The result is None for true aliens except a tunable false-positive
fraction, at a fast-space premium of ~1.44·log2(1/fpr) bits per key.

The Bloom filter here is built from scratch on the same MurmurHash
substrate as everything else.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional, Tuple

import numpy as np

from repro.core.embedder import VisionEmbedder
from repro.hashing import IndexHasher, key_to_u64
from repro.table import Key, ValueOnlyTable


class BloomFilter:
    """A classic k-hash Bloom filter over a numpy bit array."""

    def __init__(self, capacity: int, false_positive_rate: float = 0.01,
                 seed: int = 1):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if not 0.0 < false_positive_rate < 1.0:
            raise ValueError("false_positive_rate must be in (0, 1)")
        self.capacity = capacity
        self.false_positive_rate = false_positive_rate
        # m = -n ln p / (ln 2)^2, k = (m/n) ln 2 — the textbook optimum.
        self.num_bits = max(
            8, math.ceil(-capacity * math.log(false_positive_rate)
                         / math.log(2) ** 2)
        )
        self.num_hashes = max(
            1, round(self.num_bits / capacity * math.log(2))
        )
        self._bits = np.zeros(self.num_bits, dtype=bool)
        self._hashers = tuple(
            IndexHasher(seed * 131 + i, self.num_bits)
            for i in range(self.num_hashes)
        )
        self._count = 0

    def __len__(self) -> int:
        return self._count

    @property
    def space_bits(self) -> int:
        """Fast-space footprint of the filter itself."""
        return self.num_bits

    def add(self, key: Key) -> None:
        handle = key_to_u64(key)
        for hasher in self._hashers:
            self._bits[hasher.index(handle)] = True
        self._count += 1

    def might_contain(self, key: Key) -> bool:
        handle = key_to_u64(key)
        return all(
            bool(self._bits[hasher.index(handle)]) for hasher in self._hashers
        )

    def might_contain_batch(self, keys: np.ndarray) -> np.ndarray:
        keys = np.asarray(keys, dtype=np.uint64)
        result = np.ones(len(keys), dtype=bool)
        for hasher in self._hashers:
            result &= self._bits[hasher.index_batch(keys).astype(np.int64)]
        return result


class GuardedTable:
    """A VO table whose lookups answer ``None`` for (probable) aliens.

    Deletion support differs from the bare table: Bloom filters cannot
    unset bits, so deleted keys *may* still pass the guard and then read a
    meaningless value — they degrade to ordinary VO semantics. Rebuild the
    guard (:meth:`compact`) after heavy churn.
    """

    def __init__(
        self,
        capacity: int,
        value_bits: int,
        seed: int = 1,
        false_positive_rate: float = 0.01,
        table: Optional[ValueOnlyTable] = None,
    ):
        self._table = (
            table if table is not None
            else VisionEmbedder(capacity, value_bits, seed=seed)
        )
        self.false_positive_rate = false_positive_rate
        self._seed = seed
        self._guard = BloomFilter(capacity, false_positive_rate, seed=seed)

    def __len__(self) -> int:
        return len(self._table)

    def __contains__(self, key: Key) -> bool:
        return key in self._table

    @property
    def space_bits(self) -> int:
        """Fast space of the value table plus the guard."""
        return self._table.space_bits + self._guard.space_bits

    def insert(self, key: Key, value: int) -> None:
        self._table.insert(key, value)
        self._guard.add(key)

    def update(self, key: Key, value: int) -> None:
        self._table.update(key, value)

    def delete(self, key: Key) -> None:
        # Slow space forgets the key; the guard keeps its bits (see class
        # docstring).
        self._table.delete(key)

    def lookup(self, key: Key) -> Optional[int]:
        """The value, or None if the key is (probably) alien."""
        if not self._guard.might_contain(key):
            return None
        return self._table.lookup(key)

    def lookup_batch(
        self, keys: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """(present mask, values); values are meaningless where not present."""
        mask = self._guard.might_contain_batch(keys)
        return mask, self._table.lookup_batch(keys)

    def compact(self) -> None:
        """Rebuild the guard from the live key set (after churn)."""
        live = max(1, len(self._table))
        fresh = BloomFilter(
            max(live, self._guard.capacity), self.false_positive_rate,
            seed=self._seed + 1,
        )
        assistant = getattr(self._table, "_assistant", None)
        if assistant is None:
            raise TypeError(
                "compact() requires a table exposing its key set"
            )
        for key, _value in assistant.pairs():
            fresh.add(key)
        self._guard = fresh
        self._seed += 1
