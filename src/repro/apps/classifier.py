"""A 1-bit value-only table as a binary classifier (§I "Others").

With L = 1, a VO table stores a label per key at ~1.7 bits each — the
MachineLearning dataset experiment in the paper's Fig 9 is exactly this.
The classifier memorises the training set exactly; querying an item that
was never added returns a meaningless bit (VO semantics), which is the
acceptable failure mode when the query universe is known, e.g. replaying
decisions for previously-seen entities.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

import numpy as np

from repro.core.config import EmbedderConfig
from repro.core.embedder import VisionEmbedder
from repro.table import Key


class BinaryClassifier:
    """Exact-recall binary classifier over a closed key universe."""

    def __init__(self, capacity: int, seed: int = 1,
                 config: Optional[EmbedderConfig] = None):
        self._table = VisionEmbedder(capacity, value_bits=1, seed=seed,
                                     config=config)

    def __len__(self) -> int:
        return len(self._table)

    def __contains__(self, key: Key) -> bool:
        return key in self._table

    def add(self, key: Key, label: bool) -> None:
        """Memorise one labelled item (insert-or-update)."""
        self._table.put(key, int(label))

    def add_many(self, items: Iterable[Tuple[Key, bool]]) -> None:
        """Memorise a labelled training set."""
        for key, label in items:
            self.add(key, label)

    def forget(self, key: Key) -> None:
        """Drop one item from the training set."""
        self._table.delete(key)

    def predict(self, key: Key) -> bool:
        """The stored label; meaningless for never-added keys."""
        return bool(self._table.lookup(key))

    def predict_batch(self, keys: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`predict` over uint64 keys."""
        return self._table.lookup_batch(keys).astype(bool)

    def accuracy(self, items: Iterable[Tuple[Key, bool]]) -> float:
        """Fraction of labelled items predicted correctly (1.0 for items
        in the training set — the VO guarantee)."""
        total = 0
        correct = 0
        for key, label in items:
            total += 1
            correct += self.predict(key) == bool(label)
        return correct / total if total else 1.0

    @property
    def space_bits(self) -> int:
        """Fast-space footprint: ~1.7 bits per memorised item."""
        return self._table.space_bits

    @property
    def bits_per_item(self) -> float:
        return self._table.bits_per_key
