"""SeqOthello-style k-mer → experiment index (§I "Others", ref [13]).

SeqOthello answers "which sequencing experiment contains this k-mer?"
with a value-only structure so the index fits in memory. This wrapper maps
fixed-length DNA k-mers to small experiment ids: k-mers are 2-bit-packed
into integer handles (the standard genomics encoding) and stored in a
VisionEmbedder whose value length is just wide enough for the experiment
count.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Optional

import numpy as np

from repro.core.embedder import VisionEmbedder

_BASE_CODES = {"A": 0, "C": 1, "G": 2, "T": 3}
_CODE_BASES = "ACGT"


def pack_kmer(kmer: str) -> int:
    """2-bit-pack an ACGT string into an integer handle."""
    if not kmer:
        raise ValueError("empty k-mer")
    if len(kmer) > 31:
        raise ValueError("k-mers longer than 31 bases do not fit 64 bits; "
                         "hash them to handles upstream")
    handle = 1  # leading sentinel bit preserves length information
    for base in kmer.upper():
        try:
            handle = (handle << 2) | _BASE_CODES[base]
        except KeyError:
            raise ValueError(f"non-ACGT base {base!r} in k-mer") from None
    return handle


def unpack_kmer(handle: int) -> str:
    """Invert :func:`pack_kmer` (mainly for tests and debugging)."""
    if handle < 1:
        raise ValueError("invalid k-mer handle")
    bases = []
    while handle > 1:
        bases.append(_CODE_BASES[handle & 3])
        handle >>= 2
    return "".join(reversed(bases))


def kmers_of(sequence: str, k: int) -> Iterable[str]:
    """All overlapping k-mers of a sequence."""
    if k < 1:
        raise ValueError("k must be >= 1")
    for start in range(0, max(0, len(sequence) - k + 1)):
        yield sequence[start : start + k]


class KmerExperimentIndex:
    """Maps every indexed k-mer to the id of the experiment holding it.

    Ties (a k-mer present in several experiments) keep the first-indexed
    experiment, mirroring SeqOthello's one-value-per-key core; multi-set
    membership is layered above it in the original system.
    """

    def __init__(self, capacity: int, num_experiments: int, k: int,
                 seed: int = 1):
        if num_experiments < 1:
            raise ValueError("need at least one experiment")
        self.k = k
        self.num_experiments = num_experiments
        value_bits = max(1, math.ceil(math.log2(max(2, num_experiments))))
        self._table = VisionEmbedder(capacity, value_bits=value_bits,
                                     seed=seed)
        self._experiment_names: Dict[int, str] = {}

    def __len__(self) -> int:
        return len(self._table)

    @property
    def value_bits(self) -> int:
        return self._table.value_bits

    @property
    def space_bits(self) -> int:
        return self._table.space_bits

    def add_experiment(self, experiment_id: int, name: str,
                       sequence: str) -> int:
        """Index every k-mer of ``sequence`` under ``experiment_id``.

        Returns the number of *new* k-mers indexed (already-seen k-mers
        keep their original experiment).
        """
        if not 0 <= experiment_id < self.num_experiments:
            raise ValueError(
                f"experiment_id must be in [0, {self.num_experiments})"
            )
        self._experiment_names[experiment_id] = name
        added = 0
        for kmer in kmers_of(sequence, self.k):
            handle = pack_kmer(kmer)
            if handle not in self._table:
                self._table.insert(handle, experiment_id)
                added += 1
        return added

    def query(self, kmer: str) -> int:
        """The experiment id for a k-mer (meaningless if never indexed)."""
        if len(kmer) != self.k:
            raise ValueError(f"expected a {self.k}-mer, got {len(kmer)} bases")
        return self._table.lookup(pack_kmer(kmer))

    def query_name(self, kmer: str) -> Optional[str]:
        """The experiment name, or None if the id has no registered name
        (which flags an alien k-mer whose meaningless id is out of use)."""
        return self._experiment_names.get(self.query(kmer))

    def query_sequence(self, sequence: str) -> Dict[int, int]:
        """Histogram: experiment id -> number of matching k-mers in
        ``sequence`` (the SeqOthello-style coverage query)."""
        histogram: Dict[int, int] = {}
        for kmer in kmers_of(sequence, self.k):
            experiment = self.query(kmer)
            histogram[experiment] = histogram.get(experiment, 0) + 1
        return histogram
