"""Cycle-stepped functional model of the FPGA lookup pipeline.

Architecture (§VI-I): a query key enters stage 0; stage 1 computes the
three hash indices in parallel; stage 2 issues the three Block-RAM reads in
parallel (one cycle, one port each); stage 3 XORs the three read words.
With every stage registered the pipeline has an initiation interval of one
(a new lookup every cycle) and a fixed latency of ``NUM_STAGES`` cycles, so
throughput equals the clock frequency — the paper's 279.64 Mops at
279.64 MHz.

The model is *functional*: it carries real keys through real stage
registers and reads a real :class:`~repro.core.value_table.ValueTable`, so
tests can assert cycle-exact latency/throughput *and* bit-exact agreement
with the software lookup path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.embedder import VisionEmbedder
from repro.core.value_table import ValueTable
from repro.hashing import HashFamily

#: hash → BRAM read → XOR (input registration included in stage count).
NUM_STAGES = 3


@dataclass(frozen=True)
class PipelineResult:
    """Outcome of simulating a query batch through the pipeline."""

    values: Tuple[int, ...]
    cycles: int
    latency_cycles: int
    frequency_mhz: float

    @property
    def throughput_mops(self) -> float:
        """Sustained lookups per microsecond at the modelled clock."""
        if self.cycles == 0:
            return 0.0
        return len(self.values) / self.cycles * self.frequency_mhz


class LookupPipeline:
    """The three-stage, II=1 lookup engine over a value table."""

    def __init__(
        self,
        table: ValueTable,
        hashes: HashFamily,
        frequency_mhz: float = 279.64,
    ):
        if len(hashes) != table.num_arrays:
            raise ValueError("one hash function per array is required")
        self._table = table
        self._hashes = hashes
        self.frequency_mhz = frequency_mhz
        # Stage registers: None models a pipeline bubble.
        self._stage_key: Optional[int] = None
        self._stage_indices: Optional[Tuple[int, ...]] = None
        self._stage_words: Optional[Tuple[int, ...]] = None
        self._cycles = 0

    @classmethod
    def from_embedder(
        cls, embedder: VisionEmbedder, frequency_mhz: float = 279.64
    ) -> "LookupPipeline":
        """Wire the pipeline to a built VisionEmbedder's fast space."""
        return cls(embedder._table, embedder._hashes, frequency_mhz)

    @property
    def cycles_elapsed(self) -> int:
        """Total clock cycles stepped so far."""
        return self._cycles

    def step(self, key: Optional[int] = None) -> Optional[int]:
        """Advance one clock cycle, optionally accepting a new query.

        Returns the lookup result completing this cycle, or None (bubble).
        """
        self._cycles += 1
        # Stage 3: XOR combine of last cycle's BRAM words.
        completed: Optional[int] = None
        if self._stage_words is not None:
            result = 0
            for word in self._stage_words:
                result ^= word
            completed = result
        # Stage 2: BRAM reads for last cycle's indices (parallel ports).
        if self._stage_indices is not None:
            self._stage_words = tuple(
                self._table.get((j, t)) for j, t in enumerate(self._stage_indices)
            )
        else:
            self._stage_words = None
        # Stage 1: parallel hash cores on last cycle's accepted key.
        if self._stage_key is not None:
            self._stage_indices = self._hashes.indices(self._stage_key)
        else:
            self._stage_indices = None
        # Stage 0: accept the new query.
        self._stage_key = key
        return completed

    def flush(self) -> List[int]:
        """Drain in-flight queries with bubbles; returns their results."""
        drained: List[int] = []
        for _ in range(NUM_STAGES):
            result = self.step(None)
            if result is not None:
                drained.append(result)
        return drained

    def run(self, keys: Sequence[int]) -> PipelineResult:
        """Stream a query batch back-to-back (one key per cycle).

        Cycle count is ``len(keys) + NUM_STAGES`` (fill + drain), so the
        sustained rate approaches one lookup per cycle.
        """
        start_cycles = self._cycles
        values: List[int] = []
        for key in keys:
            result = self.step(int(key))
            if result is not None:
                values.append(result)
        values.extend(self.flush())
        return PipelineResult(
            values=tuple(values),
            cycles=self._cycles - start_cycles,
            latency_cycles=NUM_STAGES,
            frequency_mhz=self.frequency_mhz,
        )
