"""FPGA case study (§VI-I), reproduced as a simulator.

The paper deploys the lookup path on an FPGA: three parallel hash cores,
three Block-RAM reads, and an XOR combine, fully pipelined at one lookup
per cycle and 279.64 MHz for a 2^19-deep, 8-bit-value table (Table III).
This package models that architecture explicitly:

- :mod:`repro.fpga.platform` — the device (LUT/register/BRAM inventory).
- :mod:`repro.fpga.resources` — BRAM mapping math and calibrated logic /
  frequency estimates reproducing Table III.
- :mod:`repro.fpga.pipeline` — a cycle-stepped functional model of the
  lookup pipeline, verified against the software table.
"""

from repro.fpga.platform import FpgaDevice, VU13P_LIKE
from repro.fpga.resources import ResourceReport, estimate_resources
from repro.fpga.pipeline import LookupPipeline, PipelineResult

__all__ = [
    "FpgaDevice",
    "VU13P_LIKE",
    "ResourceReport",
    "estimate_resources",
    "LookupPipeline",
    "PipelineResult",
]
