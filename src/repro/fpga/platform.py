"""FPGA device models.

The paper does not name its board, but Table III's usage percentages pin
the inventory down: 581 LUTs ≈ 0.03%, 697 registers ≈ 0.02%, and 385
BRAM36s ≈ 14.32% match an UltraScale+ VU13P-class part (1.728M LUTs,
3.456M registers, 2,688 BRAM36s). :data:`VU13P_LIKE` is that calibration
target; other devices can be modelled by constructing
:class:`FpgaDevice` directly.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class FpgaDevice:
    """An FPGA resource inventory.

    ``bram_depth`` × ``bram_width`` is the widest narrow-configuration of
    one Block RAM tile used for table storage (BRAM36 as 4096 × 9: 4096
    entries of up to 9 bits).
    """

    name: str
    clb_luts: int
    clb_registers: int
    block_rams: int
    bram_depth: int = 4096
    bram_width: int = 9
    #: Fabric frequency ceiling in MHz (vendor datasheet order of magnitude).
    f_max_mhz: float = 891.0

    def lut_usage(self, luts: int) -> float:
        """Fraction of the device's LUTs used."""
        return luts / self.clb_luts

    def register_usage(self, registers: int) -> float:
        """Fraction of the device's registers used."""
        return registers / self.clb_registers

    def bram_usage(self, brams: int) -> float:
        """Fraction of the device's Block RAMs used."""
        return brams / self.block_rams


VU13P_LIKE = FpgaDevice(
    name="xcvu13p-like",
    clb_luts=1_728_000,
    clb_registers=3_456_000,
    block_rams=2_688,
)
