"""Resource and timing estimation for the FPGA lookup engine (Table III).

The estimates are architectural, not synthesised: Block-RAM count follows
directly from the memory geometry (three arrays of ``depth`` cells of
``value_bits`` bits, mapped onto 4096×9 BRAM36 tiles plus one tile for the
I/O FIFO), while logic and frequency use constants calibrated to the
paper's synthesis report (76/66 LUT/regs for the hash cores, 505/631 for
the table engine, 279.64 MHz at depth 2^19) with first-order scaling in
depth and width. EXPERIMENTS.md discusses the calibration.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from repro.fpga.platform import FpgaDevice, VU13P_LIKE

# Calibration anchors from Table III (depth 2^19, 8-bit values, 3 arrays).
_ANCHOR_DEPTH_LOG2 = 19
_HASH_LUTS_PER_CORE = 26  # 3 cores + shared input staging ≈ 76
_HASH_LUTS_FIXED = -2
_HASH_REGS_PER_CORE = 22
_HASH_REGS_FIXED = 0
_ENGINE_LUTS_ANCHOR = 505
_ENGINE_REGS_ANCHOR = 631
# Frequency model: f = F0 - SLOPE · log2(depth); calibrated so depth 2^19
# gives the reported 279.64 MHz (BRAM addressing/routing dominates).
_F0_MHZ = 350.0
_F_SLOPE_MHZ = (350.0 - 279.64) / _ANCHOR_DEPTH_LOG2


@dataclass(frozen=True)
class ResourceReport:
    """One row-set of Table III: per-module resources plus timing."""

    depth: int
    value_bits: int
    num_arrays: int
    hash_luts: int
    hash_registers: int
    engine_luts: int
    engine_registers: int
    block_rams: int
    frequency_mhz: float
    device: FpgaDevice

    @property
    def total_luts(self) -> int:
        return self.hash_luts + self.engine_luts

    @property
    def total_registers(self) -> int:
        return self.hash_registers + self.engine_registers

    @property
    def lookup_mops(self) -> float:
        """Throughput: the pipeline accepts one lookup per cycle (II = 1)."""
        return self.frequency_mhz

    @property
    def capacity_pairs(self) -> int:
        """KV pairs supported at the paper's 1.7 cells/key budget."""
        return int(self.num_arrays * self.depth / 1.7)

    def usage(self) -> Dict[str, float]:
        """Device-utilisation fractions (Table III's Usage row)."""
        return {
            "clb_luts": self.device.lut_usage(self.total_luts),
            "clb_registers": self.device.register_usage(self.total_registers),
            "block_ram": self.device.bram_usage(self.block_rams),
        }


def brams_for_array(depth: int, value_bits: int, device: FpgaDevice) -> int:
    """BRAM tiles for one ``depth`` × ``value_bits`` array.

    Tiles stack ``device.bram_depth`` entries deep and ``device.bram_width``
    bits wide; e.g. 2^19 × 8b on 4096×9 tiles = 128 tiles.
    """
    if depth <= 0:
        raise ValueError("depth must be positive")
    depth_tiles = math.ceil(depth / device.bram_depth)
    width_tiles = math.ceil(value_bits / device.bram_width)
    return depth_tiles * width_tiles


def estimate_resources(
    depth: int = 1 << 19,
    value_bits: int = 8,
    num_arrays: int = 3,
    device: FpgaDevice = VU13P_LIKE,
) -> ResourceReport:
    """Estimate the lookup engine's resources and clock for a geometry.

    Defaults reproduce Table III: 76 + 505 LUTs, 66 + 631 registers,
    385 BRAMs, 279.64 MHz.
    """
    hash_luts = _HASH_LUTS_FIXED + _HASH_LUTS_PER_CORE * num_arrays
    hash_regs = _HASH_REGS_FIXED + _HASH_REGS_PER_CORE * num_arrays
    table_brams = num_arrays * brams_for_array(depth, value_bits, device)
    block_rams = table_brams + 1  # +1: I/O FIFO tile

    # Logic scales with the XOR/mux width (value_bits) and the address
    # width (log2 depth); anchored at the paper's synthesis point.
    depth_log2 = max(1.0, math.log2(depth))
    width_scale = value_bits / 8
    addr_scale = depth_log2 / _ANCHOR_DEPTH_LOG2
    arrays_scale = num_arrays / 3
    engine_luts = round(
        _ENGINE_LUTS_ANCHOR * (0.5 + 0.3 * width_scale + 0.2 * addr_scale)
        * arrays_scale
    )
    engine_regs = round(
        _ENGINE_REGS_ANCHOR * (0.4 + 0.35 * width_scale + 0.25 * addr_scale)
        * arrays_scale
    )

    frequency = min(device.f_max_mhz, _F0_MHZ - _F_SLOPE_MHZ * depth_log2)
    return ResourceReport(
        depth=depth,
        value_bits=value_bits,
        num_arrays=num_arrays,
        hash_luts=hash_luts,
        hash_registers=hash_regs,
        engine_luts=engine_luts,
        engine_registers=engine_regs,
        block_rams=block_rams,
        frequency_mhz=round(frequency, 2),
        device=device,
    )
