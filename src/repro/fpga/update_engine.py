"""Cycle model of the FPGA data plane under concurrent updates (§VI-I).

The paper's deployment computes update schemes on the CPU and ships them
to the FPGA, which "takes update message and performs high-speed lookup
operation". Block RAMs are dual-ported: port A serves the lookup pipeline
(one read per array per cycle, II = 1), port B serves the update engine
(one cell write per cycle). This module models that arrangement:

- :class:`UpdateEngine` — a FIFO of
  :class:`~repro.core.replication.UpdateMessage` cell-XORs, drained one
  write per cycle through port B, plus snapshot handling (a snapshot stalls
  lookups while the whole RAM is rewritten, ``depth`` cycles — which is why
  the control plane avoids reconstructions).
- :class:`DataPlaneDevice` — the combined device: a lookup pipeline and an
  update engine sharing one value table, stepped cycle by cycle. Lookup
  throughput stays one per cycle regardless of update load; what update
  pressure costs is *FIFO occupancy* (staleness), which the device reports.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.replication import Message, SnapshotMessage, UpdateMessage
from repro.core.value_table import ValueTable
from repro.fpga.pipeline import NUM_STAGES, LookupPipeline
from repro.hashing import HashFamily


class UpdateEngine:
    """Port-B write engine: drains one queued cell-XOR per cycle."""

    def __init__(self, table: ValueTable):
        self._table = table
        self._fifo: Deque[UpdateMessage] = deque()
        self.writes_applied = 0
        self.max_occupancy = 0

    @property
    def occupancy(self) -> int:
        """Messages waiting in the FIFO (update staleness in cycles)."""
        return len(self._fifo)

    def enqueue(self, message: UpdateMessage) -> None:
        self._fifo.append(message)
        self.max_occupancy = max(self.max_occupancy, len(self._fifo))

    def step(self) -> bool:
        """One cycle: apply at most one queued write. True if one applied."""
        if not self._fifo:
            return False
        message = self._fifo.popleft()
        self._table.xor(message.cell, message.delta)  # repro: noqa[R101] -- port-B FIFO applies publisher-authored V_delta
        self.writes_applied += 1
        return True


@dataclass(frozen=True)
class DeviceStats:
    """Cycle accounting for a stepped device run."""

    cycles: int
    lookups_completed: int
    writes_applied: int
    snapshot_stall_cycles: int
    max_fifo_occupancy: int

    def lookup_throughput(self, frequency_mhz: float) -> float:
        """Sustained lookups per microsecond at the modelled clock."""
        if self.cycles == 0:
            return 0.0
        return self.lookups_completed / self.cycles * frequency_mhz


class DataPlaneDevice:
    """Lookup pipeline + update engine over one dual-ported value table."""

    def __init__(self, frequency_mhz: float = 279.64):
        self.frequency_mhz = frequency_mhz
        self._table: Optional[ValueTable] = None
        self._hashes: Optional[HashFamily] = None
        self._pipeline: Optional[LookupPipeline] = None
        self._engine: Optional[UpdateEngine] = None
        self._cycles = 0
        self._snapshot_stalls = 0
        self._lookups_done = 0

    @property
    def ready(self) -> bool:
        return self._pipeline is not None

    def apply(self, message: Message) -> None:
        """Consume one control-plane message (subscribe() target)."""
        if isinstance(message, SnapshotMessage):
            table = ValueTable(
                message.width, message.value_bits, message.num_arrays
            )
            dense = np.frombuffer(
                message.cells, dtype="<u8"
            ).reshape(message.num_arrays, message.width)
            table.load_dense(dense)  # repro: noqa[R101] -- device BRAM restores the control plane's snapshot verbatim
            self._table = table
            self._hashes = HashFamily(
                message.seed, [message.width] * message.num_arrays
            )
            self._pipeline = LookupPipeline(
                table, self._hashes, self.frequency_mhz
            )
            self._engine = UpdateEngine(table)
            # A full-RAM rewrite stalls lookups for `width` write cycles
            # per array (the paper's motivation for avoiding rebuilds).
            self._snapshot_stalls += message.width * message.num_arrays
        elif isinstance(message, UpdateMessage):
            if self._engine is None:
                raise RuntimeError("device has no snapshot yet")
            self._engine.enqueue(message)
        else:
            raise TypeError(f"unknown message type {type(message).__name__}")

    def step(self, lookup_key: Optional[int] = None) -> Optional[int]:
        """One clock cycle: port A accepts a lookup, port B drains a write."""
        if self._pipeline is None or self._engine is None:
            raise RuntimeError("device has no snapshot yet")
        self._cycles += 1
        self._engine.step()
        result = self._pipeline.step(lookup_key)
        if result is not None:
            self._lookups_done += 1
        return result

    def run_queries(self, keys: Sequence[int]) -> Tuple[List[int], DeviceStats]:
        """Stream queries back to back; drain the pipeline and the FIFO."""
        if self._pipeline is None or self._engine is None:
            raise RuntimeError("device has no snapshot yet")
        results: List[int] = []
        for key in keys:
            value = self.step(int(key))
            if value is not None:
                results.append(value)
        for _ in range(NUM_STAGES):
            value = self.step(None)
            if value is not None:
                results.append(value)
        while self._engine.occupancy:
            self.step(None)
        return results, self.stats()

    def stats(self) -> DeviceStats:
        engine = self._engine
        return DeviceStats(
            cycles=self._cycles,
            lookups_completed=self._lookups_done,
            writes_applied=engine.writes_applied if engine else 0,
            snapshot_stall_cycles=self._snapshot_stalls,
            max_fifo_occupancy=engine.max_occupancy if engine else 0,
        )

    def lookup_now(self, key: int) -> int:
        """A combinational read of the current table state (test helper)."""
        if self._table is None or self._hashes is None:
            raise RuntimeError("device has no snapshot yet")
        cells = tuple(enumerate(self._hashes.indices(int(key))))
        return self._table.xor_sum(cells)
