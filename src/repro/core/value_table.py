"""The fast-space Value Table: three arrays of L-bit integers.

This is the only structure a lookup touches (§III). Cells are addressed by
``(array, index)`` pairs; the table stores them in a single numpy matrix so
batch lookups vectorise. Space accounting is *analytic* — ``space_bits``
reports the bit count the hardware structure would occupy (3·w·L), which is
what the paper's space figures measure, not Python object overhead.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence, Tuple

import numpy as np
import numpy.typing as npt

Cell = Tuple[int, int]


class ValueTable:
    """Three arrays, each ``width`` cells of ``value_bits``-bit integers."""

    def __init__(
        self, width: int, value_bits: int, num_arrays: int = 3
    ) -> None:
        if width <= 0:
            raise ValueError("width must be positive")
        if not 1 <= value_bits <= 64:
            raise ValueError("value_bits must be in [1, 64]")
        if num_arrays < 2:
            raise ValueError("need at least two arrays")
        self.width = width
        self.value_bits = value_bits
        self.num_arrays = num_arrays
        self.value_mask = (1 << value_bits) - 1
        self._cells: npt.NDArray[np.uint64] = np.zeros(
            (num_arrays, width), dtype=np.uint64
        )

    @property
    def num_cells(self) -> int:
        """Total number of cells m = num_arrays · width."""
        return self.num_arrays * self.width

    @property
    def space_bits(self) -> int:
        """Fast-space footprint in bits: one L-bit integer per cell."""
        return self.num_cells * self.value_bits

    def get(self, cell: Cell) -> int:  # repro: hotpath
        """Read the L-bit integer at ``cell = (array, index)``."""
        return int(self._cells[cell])

    def set(self, cell: Cell, value: int) -> None:
        """Overwrite the integer at ``cell`` with ``value``."""
        self._cells[cell] = value & self.value_mask

    def xor(self, cell: Cell, delta: int) -> None:  # repro: hotpath
        """XOR ``delta`` into the integer at ``cell``.

        This is the only mutation the concurrent update path uses: the
        paper's §IV-B protocol applies one fixed increment V_delta to every
        cell on the modification path.
        """
        self._cells[cell] ^= np.uint64(delta & self.value_mask)

    def xor_sum(self, cells: Iterable[Cell]) -> int:  # repro: hotpath
        """XOR of the integers at the given cells (the lookup primitive)."""
        result = 0
        for cell in cells:
            result ^= int(self._cells[cell])
        return result

    def lookup_batch(
        self, index_arrays: Sequence[npt.NDArray[Any]]
    ) -> npt.NDArray[np.uint64]:  # repro: hotpath
        """Vectorised lookup: XOR across arrays at per-array index vectors.

        ``index_arrays[j]`` holds, for each queried key, its index into
        array ``j``. Returns a ``uint64`` vector of XOR sums.
        """
        if len(index_arrays) != self.num_arrays:
            raise ValueError("need one index vector per array")
        result: npt.NDArray[np.uint64] = self._cells[0][
            np.asarray(index_arrays[0], dtype=np.int64)
        ].copy()
        for j in range(1, self.num_arrays):
            result ^= self._cells[j][np.asarray(index_arrays[j], dtype=np.int64)]
        return result

    def gather_xor(
        self, flat_mat: npt.NDArray[np.int64]
    ) -> npt.NDArray[np.uint64]:  # repro: hotpath
        """Fused batch lookup: one gather + XOR-reduce over flat cell ids.

        ``flat_mat`` is ``(num_arrays, k)`` of flat ids ``j·width + t``
        (one row per array); the result is the per-column XOR — the lookup
        primitive with no per-key or per-array Python dispatch.
        """
        flat_view = self._cells.reshape(-1)
        gathered: npt.NDArray[np.uint64] = flat_view[flat_mat]
        return np.bitwise_xor.reduce(gathered, axis=0)

    def xor_batch(
        self,
        flat_cells: npt.NDArray[np.int64],
        deltas: npt.NDArray[np.uint64],
    ) -> None:  # repro: hotpath
        """Vectorised :meth:`xor`: XOR ``deltas[i]`` into flat cell
        ``flat_cells[i]``. Repeated cells accumulate (``np.bitwise_xor.at``),
        matching a sequential sequence of scalar XORs."""
        flat_view = self._cells.reshape(-1)
        np.bitwise_xor.at(
            flat_view,
            np.asarray(flat_cells, dtype=np.int64),
            np.asarray(deltas, dtype=np.uint64) & np.uint64(self.value_mask),
        )

    def clear(self) -> None:
        """Zero every cell (used by reconstruction)."""
        self._cells.fill(0)

    def to_dense(self) -> npt.NDArray[np.uint64]:
        """The cell matrix as (num_arrays, width) uint64 (persistence)."""
        return self._cells.copy()

    def load_dense(self, cells: npt.NDArray[Any]) -> None:
        """Restore from a dense cell matrix (persistence, bulk writes)."""
        if cells.shape != (self.num_arrays, self.width):
            raise ValueError("dense matrix shape mismatch")
        np.bitwise_and(
            np.asarray(cells, dtype=np.uint64),
            np.uint64(self.value_mask),
            out=self._cells,
        )

    def copy(self) -> "ValueTable":
        """An independent deep copy (used by tests and snapshots)."""
        clone = ValueTable(self.width, self.value_bits, self.num_arrays)
        clone._cells = self._cells.copy()
        return clone

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ValueTable):
            return NotImplemented
        return (
            self.width == other.width
            and self.value_bits == other.value_bits
            and self.num_arrays == other.num_arrays
            and bool(np.array_equal(self._cells, other._cells))
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ValueTable(width={self.width}, value_bits={self.value_bits}, "
            f"num_arrays={self.num_arrays})"
        )
