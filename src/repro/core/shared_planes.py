"""Shared-memory plane storage: dense L-bit planes other processes can read.

The serving layer's scale-out story (docs/serving.md) runs N worker
processes that all answer lookups from the *same* value-table planes. The
planes are small dense arrays that only change inside an UpdatePlan, which
makes them ideal for zero-copy sharing: this module places the backing
words of a :class:`~repro.core.value_table.ValueTable` (or the bit-packed
:class:`~repro.core.packed_table.PackedValueTable`) into a
``multiprocessing.shared_memory`` segment behind the exact same
plane-storage duck interface, so :class:`~repro.core.embedder.VisionEmbedder`
never notices the swap.

Torn reads are prevented with a seqlock-style generation counter in the
segment header. The single owner process brackets every mutation with
``begin_update()``/``end_update()`` (generation odd while a write is in
flight); readers wrap each lookup in :meth:`SharedPlanes.read_stable`,
which retries until it observes the same *even* generation before and
after the computation. Readers therefore only ever return pre- or
post-update values — never a mixture — at the cost of an occasional
retry, counted in :attr:`SharedPlanes.retries`.

Segment layout (all 64-bit little-endian words)::

    word 0   magic (identifies a repro plane segment + layout version)
    word 1   generation (even = stable, odd = write in flight)
    word 2   table seed (embedder hash seed; bumped by reconstruction)
    word 3   number of inserted keys (len of the owning table)
    word 4   width (cells per array)
    word 5   value_bits (L)
    word 6   num_arrays (k, 3 in the paper)
    word 7   packed flag (1 = bit-packed words, 0 = one word per cell)
    word 8+  plane data (k*width words plain, ceil(m*L/64)+1 words packed)

Attach discipline: readers map the segment through ``/dev/shm`` with
``numpy.memmap`` when possible, which keeps them out of the
``resource_tracker`` registry — only the creating owner is registered, so
an owner crash still unlinks the segment while a reader crash never
triggers a spurious unlink under the other processes' feet.
"""

from __future__ import annotations

import os
import secrets
from contextlib import contextmanager
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from typing import (
    Any,
    Callable,
    Iterable,
    Iterator,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
    Union,
    cast,
)

import numpy as np
import numpy.typing as npt

from repro.core.errors import SharedPlanesError
from repro.core.packed_table import PackedValueTable
from repro.core.value_table import Cell, ValueTable

_T = TypeVar("_T")

_MAGIC = 0x5245504C414E4531  # "REPLANE1"
_HEADER_WORDS = 8
_WORD_BYTES = 8

_MAGIC_SLOT = 0
_GEN_SLOT = 1
_SEED_SLOT = 2
_LEN_SLOT = 3
_WIDTH_SLOT = 4
_BITS_SLOT = 5
_ARRAYS_SLOT = 6
_PACKED_SLOT = 7

_U64 = np.uint64
_M64 = (1 << 64) - 1

# Reader spin budget while the generation is odd. Owner writes hold the
# generation odd only for the duration of one numpy plane mutation
# (microseconds for scalar XORs, ~ms for a full load_dense), so a reader
# that spins this long is looking at a crashed or wedged owner.
_SPIN_LIMIT = 2_000_000
_YIELD_EVERY = 1024
# Full compute-retry budget (generation moved mid-read).
_READ_RETRIES = 64

_PlaneTable = Union[ValueTable, PackedValueTable]


@dataclass(frozen=True)
class SharedPlanesSpec:
    """Picklable handle for attaching to one shared plane segment."""

    name: str
    width: int
    value_bits: int
    num_arrays: int
    packed: bool


@dataclass(frozen=True)
class SharedTableSpec:
    """Picklable handle for attaching to a whole (possibly sharded) table.

    ``shards`` holds one plane spec per shard; ``shard_seed`` is the
    router seed of the owning :class:`~repro.core.sharded.ShardedEmbedder`
    (ignored when there is a single shard). Per-shard embedder seeds live
    in the segment headers, not here — reconstruction changes them.
    """

    shards: Tuple[SharedPlanesSpec, ...]
    shard_seed: int
    value_bits: int
    capacity: int

    @property
    def num_shards(self) -> int:
        return len(self.shards)


def _make_inner(
    width: int, value_bits: int, num_arrays: int, packed: bool
) -> _PlaneTable:
    if packed:
        return PackedValueTable(width, value_bits, num_arrays)
    return ValueTable(width, value_bits, num_arrays)


def _storage(inner: _PlaneTable) -> npt.NDArray[np.uint64]:
    if isinstance(inner, PackedValueTable):
        return inner._words
    return inner._cells


def _swap_storage(inner: _PlaneTable, words: npt.NDArray[np.uint64]) -> None:
    """Point ``inner`` at ``words`` (a view into the shared segment)."""
    if isinstance(inner, PackedValueTable):
        inner._words = words
    else:
        inner._cells = words.reshape(inner.num_arrays, inner.width)


class SharedPlanes:
    """Plane storage backed by a named shared-memory segment.

    Construct with :meth:`create` (owner) or :meth:`attach` (reader or
    the owner re-attaching after a fork). The instance quacks like a
    :class:`ValueTable` — ``get``/``xor``/``gather_xor``/``to_dense`` and
    friends — so it can be dropped into ``VisionEmbedder._table``.

    Exactly one process holds ``writable=True`` per segment; that owner
    brackets mutations with :meth:`transaction` (mutating duck methods
    self-wrap when called outside one). Readers get torn-free reads via
    :meth:`read_stable`, which the read-path duck methods use internally.
    """

    def __init__(
        self,
        inner: _PlaneTable,
        spec: SharedPlanesSpec,
        header: npt.NDArray[np.uint64],
        data: npt.NDArray[np.uint64],
        *,
        writable: bool,
        created: bool,
        shm: Optional[shared_memory.SharedMemory],
    ) -> None:
        self._inner = inner
        self.spec = spec
        self._header = header
        self._data = data
        self.writable = writable
        self._created = created
        self._shm = shm
        self._txn_depth = 0
        self._closed = False
        self.retries = 0

    # -- construction -------------------------------------------------------

    @classmethod
    def create(
        cls,
        width: int,
        value_bits: int,
        num_arrays: int = 3,
        *,
        packed: bool = False,
        seed: int = 0,
        length: int = 0,
        name: Optional[str] = None,
    ) -> "SharedPlanes":
        """Allocate a fresh zeroed segment and return the writable owner.

        The segment is registered with this process's ``resource_tracker``,
        so it is unlinked even if the owner dies without calling
        :meth:`destroy`.
        """
        inner = _make_inner(width, value_bits, num_arrays, packed)
        nwords = int(_storage(inner).size)
        size = (_HEADER_WORDS + nwords) * _WORD_BYTES
        shm: Optional[shared_memory.SharedMemory] = None
        for _ in range(16):
            candidate = name or f"repro-planes-{os.getpid()}-{secrets.token_hex(4)}"
            try:
                shm = shared_memory.SharedMemory(
                    name=candidate, create=True, size=size
                )
                break
            except FileExistsError:
                if name is not None:
                    raise
        if shm is None:  # pragma: no cover - 16 collisions of 8 random bytes
            raise SharedPlanesError("could not allocate a unique segment name")
        spec = SharedPlanesSpec(
            name=shm.name,
            width=width,
            value_bits=value_bits,
            num_arrays=num_arrays,
            packed=packed,
        )
        # Map the words through the tmpfs path where possible, releasing
        # the SharedMemory handle's own mapping right away (the handle is
        # kept only for unlink + its resource_tracker registration). A
        # ``numpy.memmap`` dies quietly with its last view, so a handle
        # abandoned mid-teardown never refuses to close at GC the way an
        # mmap with exported buffer pointers does.
        path = os.path.join("/dev/shm", shm.name)
        if os.path.exists(path):
            shm.close()
            mapped = np.memmap(path, dtype=_U64, mode="r+")
            full = cast(npt.NDArray[np.uint64], mapped)
        else:  # pragma: no cover - non-tmpfs platforms
            full = np.frombuffer(shm.buf, dtype=_U64)
        header = full[:_HEADER_WORDS]
        data = full[_HEADER_WORDS : _HEADER_WORDS + nwords]
        header[_MAGIC_SLOT] = _U64(_MAGIC)
        header[_GEN_SLOT] = _U64(0)
        header[_SEED_SLOT] = _U64(seed & _M64)
        header[_LEN_SLOT] = _U64(length)
        header[_WIDTH_SLOT] = _U64(width)
        header[_BITS_SLOT] = _U64(value_bits)
        header[_ARRAYS_SLOT] = _U64(num_arrays)
        header[_PACKED_SLOT] = _U64(1 if packed else 0)
        _swap_storage(inner, data)
        return cls(
            inner, spec, header, data, writable=True, created=True, shm=shm
        )

    @classmethod
    def attach(
        cls, spec: SharedPlanesSpec, *, writable: bool = False
    ) -> "SharedPlanes":
        """Map an existing segment described by ``spec``.

        Prefers a direct ``numpy.memmap`` of ``/dev/shm/<name>`` so the
        attaching process is *not* added to the ``resource_tracker``
        registry (see module docstring); falls back to
        ``SharedMemory(name=...)`` plus an explicit unregister where the
        tmpfs path is unavailable.
        """
        inner = _make_inner(
            spec.width, spec.value_bits, spec.num_arrays, spec.packed
        )
        nwords = int(_storage(inner).size)
        path = os.path.join("/dev/shm", spec.name)
        shm: Optional[shared_memory.SharedMemory] = None
        if os.path.exists(path):
            mode = "r+" if writable else "r"
            mapped = np.memmap(path, dtype=_U64, mode=mode)
            full = cast(npt.NDArray[np.uint64], mapped)
        else:  # pragma: no cover - non-tmpfs platforms
            shm = shared_memory.SharedMemory(name=spec.name)
            try:
                resource_tracker.unregister(
                    getattr(shm, "_name", "/" + spec.name), "shared_memory"
                )
            except (KeyError, ValueError):
                pass
            full = np.frombuffer(shm.buf, dtype=_U64)
        if full.size < _HEADER_WORDS + nwords:
            raise SharedPlanesError(
                f"segment {spec.name!r} too small: have {full.size} words, "
                f"need {_HEADER_WORDS + nwords}"
            )
        header = full[:_HEADER_WORDS]
        data = full[_HEADER_WORDS : _HEADER_WORDS + nwords]
        if int(header[_MAGIC_SLOT]) != _MAGIC:
            raise SharedPlanesError(
                f"segment {spec.name!r} is not a repro plane segment"
            )
        geometry = (
            int(header[_WIDTH_SLOT]),
            int(header[_BITS_SLOT]),
            int(header[_ARRAYS_SLOT]),
            bool(int(header[_PACKED_SLOT])),
        )
        expected = (spec.width, spec.value_bits, spec.num_arrays, spec.packed)
        if geometry != expected:
            raise SharedPlanesError(
                f"segment {spec.name!r} geometry {geometry} does not match "
                f"spec {expected}"
            )
        _swap_storage(inner, data)
        return cls(
            inner, spec, header, data, writable=writable, created=False, shm=shm
        )

    # -- geometry (duck parity with ValueTable) -----------------------------

    @property
    def width(self) -> int:
        return self._inner.width

    @property
    def value_bits(self) -> int:
        return self._inner.value_bits

    @property
    def num_arrays(self) -> int:
        return self._inner.num_arrays

    @property
    def value_mask(self) -> int:
        return self._inner.value_mask

    @property
    def num_cells(self) -> int:
        return self._inner.num_cells

    @property
    def space_bits(self) -> int:
        return self._inner.space_bits

    @property
    def backing_bytes(self) -> int:
        """Actual RAM mapped for plane words (excludes the header)."""
        return int(_storage(self._inner).nbytes)

    @property
    def packed(self) -> bool:
        return self.spec.packed

    # -- seqlock ------------------------------------------------------------

    @property
    def generation(self) -> int:
        """Current generation word (odd while a write is in flight)."""
        return int(self._header[_GEN_SLOT])

    @property
    def seed(self) -> int:
        """Embedder hash seed recorded in the header."""
        return int(self._header[_SEED_SLOT])

    @property
    def length(self) -> int:
        """Key count recorded in the header."""
        return int(self._header[_LEN_SLOT])

    def begin_update(self) -> None:
        """Mark a write in flight (generation goes odd). Reentrant."""
        self._require_writable()
        if self._txn_depth == 0:
            self._header[_GEN_SLOT] = _U64(self.generation + 1)
        self._txn_depth += 1

    def end_update(self) -> None:
        """Publish the write (generation returns to even)."""
        self._require_writable()
        if self._txn_depth <= 0:
            raise SharedPlanesError("end_update without begin_update")
        self._txn_depth -= 1
        if self._txn_depth == 0:
            self._header[_GEN_SLOT] = _U64(self.generation + 1)

    @contextmanager
    def transaction(self) -> Iterator["SharedPlanes"]:
        """Seqlock write bracket; nests (only the outermost publishes)."""
        self.begin_update()
        try:
            yield self
        finally:
            self.end_update()

    def set_meta(
        self, *, seed: Optional[int] = None, length: Optional[int] = None
    ) -> None:
        """Record table metadata (seed / key count) under the seqlock."""
        with self.transaction():
            if seed is not None:
                self._header[_SEED_SLOT] = _U64(seed & _M64)
            if length is not None:
                self._header[_LEN_SLOT] = _U64(length)

    def _require_writable(self) -> None:
        if not self.writable:
            raise SharedPlanesError(
                "reader-role SharedPlanes handle cannot mutate the segment"
            )

    def _await_even(self) -> int:
        """Spin until the generation is even; return it."""
        spins = 0
        while True:
            gen = int(self._header[_GEN_SLOT])
            if gen & 1 == 0:
                return gen
            spins += 1
            if spins >= _SPIN_LIMIT:
                raise SharedPlanesError(
                    "generation stuck odd: plane owner crashed mid-update?"
                )
            if spins % _YIELD_EVERY == 0:
                os.sched_yield()

    def read_stable(self, compute: Callable[[], _T]) -> _T:
        """Run ``compute`` under seqlock protection and return its result.

        ``compute`` must not retain references into the shared planes
        (every read-path duck method returns ints or fresh arrays, so
        delegating to them is safe). The owner handle skips the protocol:
        it is the only writer, so its reads are always stable.
        """
        if self.writable:
            return compute()
        for _ in range(_READ_RETRIES):
            gen0 = self._await_even()
            result = compute()
            if int(self._header[_GEN_SLOT]) == gen0:
                return result
            self.retries += 1
        raise SharedPlanesError(
            f"read did not stabilise after {_READ_RETRIES} retries"
        )

    # -- reads (torn-free for readers) --------------------------------------

    def get(self, cell: Cell) -> int:  # repro: hotpath
        return self.read_stable(lambda: self._inner.get(cell))

    def xor_sum(self, cells: Iterable[Cell]) -> int:  # repro: hotpath
        materialised = tuple(cells)
        return self.read_stable(lambda: self._inner.xor_sum(materialised))

    def lookup_batch(
        self, index_arrays: Sequence[npt.NDArray[Any]]
    ) -> npt.NDArray[np.uint64]:  # repro: hotpath
        result = self.read_stable(
            lambda: self._inner.lookup_batch(index_arrays)
        )
        return cast(npt.NDArray[np.uint64], result)

    def gather_xor(
        self, flat_mat: npt.NDArray[np.int64]
    ) -> npt.NDArray[np.uint64]:  # repro: hotpath
        result = self.read_stable(lambda: self._inner.gather_xor(flat_mat))
        return cast(npt.NDArray[np.uint64], result)

    def to_dense(self) -> npt.NDArray[np.uint64]:
        result = self.read_stable(self._inner.to_dense)
        return cast(npt.NDArray[np.uint64], result)

    def copy(self) -> _PlaneTable:
        """A *private* (non-shared) deep copy of the planes."""
        return self.read_stable(self._inner.copy)

    # -- writes (owner only; self-bracketing) --------------------------------

    def set(self, cell: Cell, value: int) -> None:
        with self.transaction():
            self._inner.set(cell, value)

    def xor(self, cell: Cell, delta: int) -> None:  # repro: hotpath
        with self.transaction():
            self._inner.xor(cell, delta)

    def xor_batch(
        self,
        flat_cells: npt.NDArray[np.int64],
        deltas: npt.NDArray[np.uint64],
    ) -> None:  # repro: hotpath
        with self.transaction():
            self._inner.xor_batch(flat_cells, deltas)

    def clear(self) -> None:
        with self.transaction():
            self._inner.clear()

    def load_dense(self, cells: npt.NDArray[Any]) -> None:
        with self.transaction():
            self._inner.load_dense(cells)

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        """Detach from the segment, demoting to a private snapshot.

        Every numpy view into the mapping must be dropped before the
        mapping can be released (``mmap`` refuses to close with exported
        buffers), so the inner table's storage is first replaced with a
        private copy — the handle stays readable in-process, it just
        stops tracking the shared segment.
        """
        if self._closed:
            return
        self._closed = True
        self._inner = self._inner.copy()
        self._header = np.array(self._header, dtype=_U64)
        self._data = self._header[:0]
        if self._shm is not None:
            self._shm.close()

    def unlink(self) -> None:
        """Remove the segment name (creating owner only)."""
        if not self._created:
            raise SharedPlanesError(
                "only the creating owner may unlink the segment"
            )
        if self._shm is not None:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def destroy(self) -> None:
        """Detach and unlink (owner teardown)."""
        self.close()
        if self._created:
            self.unlink()

    def __enter__(self) -> "SharedPlanes":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        role = "owner" if self.writable else "reader"
        return (
            f"SharedPlanes(name={self.spec.name!r}, role={role}, "
            f"width={self.width}, value_bits={self.value_bits}, "
            f"num_arrays={self.num_arrays}, packed={self.packed})"
        )


def _shards_of(table: Any) -> Tuple[Any, ...]:
    """The per-shard VisionEmbedders of ``table`` (itself, if unsharded)."""
    shards = getattr(table, "shards", None)
    if shards is not None:
        return tuple(shards)
    return (table,)


def share_table(table: Any) -> SharedTableSpec:
    """Promote a table's plane storage into shared-memory segments.

    Accepts a :class:`~repro.core.embedder.VisionEmbedder` or a
    :class:`~repro.core.sharded.ShardedEmbedder`; each shard's planes are
    copied into a fresh segment and the shard's ``_table`` is swapped for
    the writable :class:`SharedPlanes` owner handle. The swap is the last
    step per shard, so a failure mid-promotion leaves the table exactly
    as it was (the already-built segments are destroyed on the way out).

    Returns the :class:`SharedTableSpec` reader processes attach with.
    """
    shards = _shards_of(table)
    planes_list = []
    try:
        for shard in shards:
            inner = shard._table
            planes = SharedPlanes.create(
                inner.width,
                inner.value_bits,
                inner.num_arrays,
                packed=isinstance(inner, PackedValueTable),
                seed=shard.seed,
                length=len(shard),
            )
            # Track the segment before filling it: a fault during the
            # dense copy must still destroy it on the way out.
            planes_list.append(planes)
            planes.load_dense(inner.to_dense())
    except BaseException:
        for planes in planes_list:
            planes.destroy()
        raise
    for shard, planes in zip(shards, planes_list):
        shard._table = planes
    return SharedTableSpec(
        shards=tuple(planes.spec for planes in planes_list),
        shard_seed=int(getattr(table, "_shard_seed", 0)),
        value_bits=int(table.value_bits),
        capacity=int(getattr(table, "capacity", 0)),
    )


def unshare_table(table: Any) -> None:
    """Demote a promoted table back to private plane storage.

    Each shard's :class:`SharedPlanes` owner handle is replaced with a
    plain in-process table holding the same bits, then the segment is
    closed and unlinked. A no-op for shards that were never promoted.
    """
    for shard in _shards_of(table):
        planes = shard._table
        if not isinstance(planes, SharedPlanes):
            continue
        private = planes.copy()
        shard._table = private
        planes.destroy()


def refresh_meta(table: Any) -> None:
    """Re-publish each promoted shard's seed and key count to its header.

    Owners call this after applying writes so reader processes see
    reconstruction reseeds (header seed word) and live key counts.
    """
    for shard in _shards_of(table):
        planes = shard._table
        if isinstance(planes, SharedPlanes):
            planes.set_meta(seed=shard.seed, length=len(shard))
