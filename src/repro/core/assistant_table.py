"""The slow-space Assistant Table (§III).

For every value-table cell ``A_j[t]`` it records the set ``S_j[t]`` of keys
hashed there and the counter ``C_j[t] = |S_j[t]|``; it also keeps the full
key → value mapping and each key's three cells, so updates never rehash.
Lookups never touch this structure — it exists purely to support dynamic
updates, deletion, and reconstruction.

Two facilities exist for the batched write pipeline:

- :meth:`AssistantTable.add_batch` bulk-registers many pairs in one call
  (used by the static construction and by :meth:`VisionEmbedder.insert_batch`
  after the hashes have been computed in one vectorised pass).
- Per-bucket **generation counters**: every ``add``/``remove`` bumps the
  counter of each touched bucket, and ``clear`` bumps a global epoch.
  :class:`~repro.core.update.VisionStrategy` keys its GetCost cost-cache on
  these, so repair walks over stable regions skip recomputing identical
  DFS subtrees.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Sequence, Set, Tuple

import numpy as np
import numpy.typing as npt

Cell = Tuple[int, int]


class AssistantTable:
    """Slow-space bookkeeping: per-cell key sets, counters, and KV pairs."""

    def __init__(self, width: int, num_arrays: int = 3):
        if width <= 0:
            raise ValueError("width must be positive")
        self.width = width
        self.num_arrays = num_arrays
        # S_j[t]: one set of keys per cell.
        self._cell_keys = [
            [set() for _ in range(width)] for _ in range(num_arrays)
        ]
        # Flat alias of the same set objects, indexed ``j * width + t``.
        # The cost-cache hot path uses this (and the flat generation list
        # below) to avoid nested indexing; the sets are shared, never
        # replaced, so both views always agree.
        self._buckets = [
            bucket for per_array in self._cell_keys for bucket in per_array
        ]
        # Per-bucket mutation counters (cost-cache invalidation), indexed
        # ``j * width + t`` like ``_buckets``.
        self._gens = [0] * (num_arrays * width)
        # Bumped whenever the whole table is cleared; per-bucket counters
        # restart at zero afterwards, so cached readers must compare epochs
        # before trusting any generation value.
        self.generation_epoch = 0
        self._values: Dict[int, int] = {}
        self._cells: Dict[int, Tuple[Cell, ...]] = {}

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, key: int) -> bool:
        return key in self._values

    def contains_batch(
        self, handles: npt.NDArray[np.uint64]
    ) -> npt.NDArray[np.bool_]:
        """Vectorised membership over a ``uint64`` handle array.

        Mirrors :meth:`repro.core.engine.ArrayAssistant.contains_batch` so
        the batched validation path is backend-agnostic; here the store is
        a dict, so it is one O(1) probe per handle.
        """
        values = self._values
        return np.fromiter(
            (handle in values for handle in handles.tolist()),
            dtype=bool,
            count=len(handles),
        )

    def add(self, key: int, value: int, cells: Tuple[Cell, ...]) -> None:  # repro: hotpath
        """Record a new KV pair and register the key at each of its cells."""
        if key in self._values:
            raise KeyError(f"key {key!r} already recorded")
        self._values[key] = value
        self._cells[key] = cells
        width = self.width
        for j, t in cells:
            flat = j * width + t
            self._buckets[flat].add(key)
            self._gens[flat] += 1

    def add_batch(  # repro: hotpath
        self,
        keys: Sequence[int],
        values: Sequence[int],
        cells_list: Sequence[Tuple[Cell, ...]],
    ) -> None:
        """Bulk :meth:`add`: register many pairs in one pass.

        Validates the whole batch (duplicates against live keys and within
        the batch itself) before mutating anything, so a failed call leaves
        the table untouched.
        """
        if not (len(keys) == len(values) == len(cells_list)):
            raise ValueError("keys, values and cells_list must align")
        live = self._values
        seen: Set[int] = set()
        for key in keys:
            if key in live or key in seen:
                raise KeyError(f"key {key!r} already recorded")
            seen.add(key)
        buckets = self._buckets
        gens = self._gens
        width = self.width
        for key, value, cells in zip(keys, values, cells_list):
            live[key] = value
            self._cells[key] = cells
            for j, t in cells:
                flat = j * width + t
                buckets[flat].add(key)
                gens[flat] += 1

    def remove(self, key: int) -> None:  # repro: hotpath
        """Forget a KV pair; its cells' counters drop by one (§IV-C Delete)."""
        cells = self._cells.pop(key)
        del self._values[key]
        width = self.width
        for j, t in cells:
            flat = j * width + t
            self._buckets[flat].discard(key)
            self._gens[flat] += 1

    def set_value(self, key: int, value: int) -> None:
        """Record the new value for an existing key (cells are unchanged)."""
        if key not in self._values:
            raise KeyError(f"key {key!r} not recorded")
        self._values[key] = value

    def value(self, key: int) -> int:
        """The stored value for ``key``."""
        return self._values[key]

    def cells(self, key: int) -> Tuple[Cell, ...]:
        """The key's value-table cells, as computed at insert time."""
        return self._cells[key]

    def keys_at(self, cell: Cell) -> Set[int]:
        """S_j[t]: the live set of keys hashed to ``cell``.

        The returned set is the internal one; callers that mutate the table
        while iterating must take a snapshot first (the repair walk does —
        see :func:`repro.core.update._run_repair_walk`).
        """
        j, t = cell
        return self._cell_keys[j][t]

    def count_at(self, cell: Cell) -> int:
        """C_j[t]: the number of keys hashed to ``cell``."""
        j, t = cell
        return len(self._cell_keys[j][t])

    def generation(self, cell: Cell) -> int:
        """The mutation counter of ``cell``'s bucket.

        Bumped by every :meth:`add`/:meth:`remove` touching the bucket;
        restarts from zero when :meth:`clear` bumps ``generation_epoch``.
        """
        j, t = cell
        return self._gens[j * self.width + t]

    @property
    def generations(self) -> List[int]:
        """The per-bucket counters as a flat list, indexed
        ``array * width + index`` (the cost-cache hot path reads this)."""
        return self._gens

    def pairs(self) -> Iterator[Tuple[int, int]]:
        """All live (key, value) pairs."""
        return iter(self._values.items())

    def clear(self) -> None:
        """Drop every pair (used by reconstruction before re-inserting)."""
        self._values.clear()
        self._cells.clear()
        for bucket in self._buckets:
            bucket.clear()
        self._gens = [0] * (self.num_arrays * self.width)
        self.generation_epoch += 1

    def check_consistency(self) -> None:
        """Assert the structural invariants; raises AssertionError if broken.

        Used by tests: every key appears in exactly the buckets its cells
        name, and bucket membership contains no ghosts.
        """
        seen = set()
        for j, per_array in enumerate(self._cell_keys):
            for t, bucket in enumerate(per_array):
                for key in bucket:
                    assert key in self._values, f"ghost key {key!r} at ({j},{t})"
                    assert (j, t) in self._cells[key], (
                        f"key {key!r} in bucket ({j},{t}) it does not hash to"
                    )
                    seen.add(key)
        assert seen == set(self._values), "some keys are missing from buckets"
        for key, cells in self._cells.items():
            for cell in cells:
                assert key in self.keys_at(cell), (
                    f"key {key!r} absent from its bucket {cell}"
                )
