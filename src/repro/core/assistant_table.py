"""The slow-space Assistant Table (§III).

For every value-table cell ``A_j[t]`` it records the set ``S_j[t]`` of keys
hashed there and the counter ``C_j[t] = |S_j[t]|``; it also keeps the full
key → value mapping and each key's three cells, so updates never rehash.
Lookups never touch this structure — it exists purely to support dynamic
updates, deletion, and reconstruction.
"""

from __future__ import annotations

from typing import Dict, Iterator, Set, Tuple

Cell = Tuple[int, int]


class AssistantTable:
    """Slow-space bookkeeping: per-cell key sets, counters, and KV pairs."""

    def __init__(self, width: int, num_arrays: int = 3):
        if width <= 0:
            raise ValueError("width must be positive")
        self.width = width
        self.num_arrays = num_arrays
        # S_j[t]: one set of keys per cell.
        self._cell_keys = [
            [set() for _ in range(width)] for _ in range(num_arrays)
        ]
        self._values: Dict[int, int] = {}
        self._cells: Dict[int, Tuple[Cell, ...]] = {}

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, key: int) -> bool:
        return key in self._values

    def add(self, key: int, value: int, cells: Tuple[Cell, ...]) -> None:
        """Record a new KV pair and register the key at each of its cells."""
        if key in self._values:
            raise KeyError(f"key {key!r} already recorded")
        self._values[key] = value
        self._cells[key] = cells
        for j, t in cells:
            self._cell_keys[j][t].add(key)

    def remove(self, key: int) -> None:
        """Forget a KV pair; its cells' counters drop by one (§IV-C Delete)."""
        cells = self._cells.pop(key)
        del self._values[key]
        for j, t in cells:
            self._cell_keys[j][t].discard(key)

    def set_value(self, key: int, value: int) -> None:
        """Record the new value for an existing key (cells are unchanged)."""
        if key not in self._values:
            raise KeyError(f"key {key!r} not recorded")
        self._values[key] = value

    def value(self, key: int) -> int:
        """The stored value for ``key``."""
        return self._values[key]

    def cells(self, key: int) -> Tuple[Cell, ...]:
        """The key's value-table cells, as computed at insert time."""
        return self._cells[key]

    def keys_at(self, cell: Cell) -> Set[int]:
        """S_j[t]: the live set of keys hashed to ``cell``.

        The returned set is the internal one; callers that mutate the table
        while iterating must copy it first.
        """
        j, t = cell
        return self._cell_keys[j][t]

    def count_at(self, cell: Cell) -> int:
        """C_j[t]: the number of keys hashed to ``cell``."""
        j, t = cell
        return len(self._cell_keys[j][t])

    def pairs(self) -> Iterator[Tuple[int, int]]:
        """All live (key, value) pairs."""
        return iter(self._values.items())

    def clear(self) -> None:
        """Drop every pair (used by reconstruction before re-inserting)."""
        self._values.clear()
        self._cells.clear()
        for per_array in self._cell_keys:
            for bucket in per_array:
                bucket.clear()

    def check_consistency(self) -> None:
        """Assert the structural invariants; raises AssertionError if broken.

        Used by tests: every key appears in exactly the buckets its cells
        name, and bucket membership contains no ghosts.
        """
        seen = set()
        for j, per_array in enumerate(self._cell_keys):
            for t, bucket in enumerate(per_array):
                for key in bucket:
                    assert key in self._values, f"ghost key {key!r} at ({j},{t})"
                    assert (j, t) in self._cells[key], (
                        f"key {key!r} in bucket ({j},{t}) it does not hash to"
                    )
                    seen.add(key)
        assert seen == set(self._values), "some keys are missing from buckets"
        for key, cells in self._cells.items():
            for cell in cells:
                assert key in self.keys_at(cell), (
                    f"key {key!r} absent from its bucket {cell}"
                )
