"""Sharded embedder: hash-partitioned VisionEmbedder shards.

The paper's Value Table is inherently serial on the write path — every
insert walks one global repair graph, and one unlucky update failure
reconstructs the *entire* table (§IV-B "Update Failure").
:class:`ShardedEmbedder` splits the keyspace into ``S`` independent
:class:`~repro.core.embedder.VisionEmbedder` shards, each with its own
hash seeds, Assistant Table, dynamic-depth state, and failure domain, so

- an update failure reconstructs only ~n/S keys instead of the whole
  table,
- bulk builds run shard by shard — concurrently with
  :meth:`ShardedEmbedder.build`'s worker pool — reusing the vectorised
  per-table batch primitives (``insert_batch``/``bulk_load``), and
- batched lookups scatter to the shards and gather back through one
  ``argsort``-based permutation (:meth:`ShardedEmbedder.lookup_batch`).

Sharding is a scaling extension of this reproduction, not part of the
paper (docs/paper_mapping.md); HierarchicalKV-style partitioned embedding
stores are the precedent. Routing uses a dedicated 64-bit mix over the
key handle, *independent of every shard's hash family*, and — unlike the
per-shard seeds — it never changes: a shard reconstruction reseeds that
shard's three index hashes but moves no key between shards.

Semantics match a single :class:`VisionEmbedder` over the same pairs
exactly: every inserted key's lookup returns its value, so a property
test asserts bit-identical ``lookup``/``lookup_batch`` results for any
shard count (alien keys return meaningless values in both, per the
value-only contract).

Typical use::

    from repro import ShardedEmbedder

    table = ShardedEmbedder(capacity=1_000_000, value_bits=12,
                            num_shards=8)
    table.build(pairs, workers=4)        # parallel per-shard builds
    values = table.lookup_batch(keys)    # scatter/gather batch lookup
"""

from __future__ import annotations

import io
import math
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np
import numpy.typing as npt

from repro.core.config import EmbedderConfig
from repro.core.embedder import VisionEmbedder
from repro.core.errors import DuplicateKey
from repro.core.stats import STAT_FIELDS, TableStats
from repro.hashing import key_to_u64, keys_to_u64_batch
from repro.obs.registry import MetricsRegistry, aggregate
from repro.table import Key, ValueOnlyTable

__all__ = ["ShardedEmbedder", "route_handle", "route_handles"]

#: 64-bit mask for the scalar router mix.
_M64 = (1 << 64) - 1

#: splitmix64/murmur3-fmix constants for the shard router. The router must
#: be decorrelated from the per-shard index hashes (which are murmur3 over
#: the *byte* representation with per-shard seeds) so that one shard's key
#: population looks uniform to its own hash family.
_MIX_1 = 0xFF51AFD7ED558CCD
_MIX_2 = 0xC4CEB9FE1A85EC53

#: Executor kinds accepted by :meth:`ShardedEmbedder.build`.
_EXECUTORS = ("thread", "process")


def route_handle(
    handle: int, shard_seed: int, num_shards: int
) -> int:  # repro: hotpath
    """Shard id of a canonical u64 handle (scalar router mix).

    Module-level so processes that hold only a
    :class:`~repro.core.shared_planes.SharedTableSpec` (worker processes
    attached to shared planes) route identically to the owning
    :class:`ShardedEmbedder` without instantiating one.
    """
    h = (handle ^ shard_seed) & _M64
    h ^= h >> 33
    h = (h * _MIX_1) & _M64
    h ^= h >> 33
    h = (h * _MIX_2) & _M64
    h ^= h >> 33
    return h % num_shards


def route_handles(  # repro: hotpath
    handles: npt.NDArray[np.uint64], shard_seed: int, num_shards: int
) -> npt.NDArray[np.uint8]:
    """Vectorised router: one shard id per handle.

    The ids come back as ``uint8`` (S <= 256) deliberately — numpy's
    stable argsort radix-sorts single-byte keys an order of magnitude
    faster than 8-byte ones, and that sort is the scatter/gather hot
    path's main overhead.
    """
    h = handles ^ np.uint64(shard_seed)
    h = h ^ (h >> np.uint64(33))
    h = h * np.uint64(_MIX_1)
    h = h ^ (h >> np.uint64(33))
    h = h * np.uint64(_MIX_2)
    h = h ^ (h >> np.uint64(33))
    return (h % np.uint64(num_shards)).astype(np.uint8)


def _build_shard_payload(
    args: Tuple[int, int, int, bool, int, EmbedderConfig,
                npt.NDArray[np.uint64], npt.NDArray[np.uint64], str],
) -> Tuple[bytes, Dict[str, float]]:
    """Process-pool worker: build one fresh shard, return it serialised.

    A :class:`VisionEmbedder` holds weakrefs and locks, so the shard cannot
    cross the process boundary directly; instead the child builds it and
    ships the ``.npz`` persistence payload (fast + slow space) plus the
    stats counters back, and the parent restores both. Must stay a
    module-level function so the process pool can pickle it.
    """
    (capacity, value_bits, num_arrays, packed, seed, config, keys, values,
     method) = args
    shard = VisionEmbedder(
        capacity, value_bits, config=config, seed=seed,
        num_arrays=num_arrays, packed=packed,
    )
    if method == "static":
        shard.bulk_load(zip(keys.tolist(), values.tolist()))
    else:
        shard.insert_batch(keys, values.tolist())
    from repro.core.persist import save_embedder

    buffer = io.BytesIO()
    save_embedder(shard, buffer)
    stats = {
        attr: float(getattr(shard.stats, attr)) for attr in STAT_FIELDS
    }
    return buffer.getvalue(), stats


class ShardedEmbedder(ValueOnlyTable):
    """Hash-partitioned array of independent VisionEmbedder shards.

    Parameters
    ----------
    capacity:
        Expected maximum number of KV pairs across all shards. Each shard
        is provisioned for ``(capacity / num_shards) * shard_slack`` pairs
        (with an absolute few-sd floor on top, so small tables survive
        balls-into-bins imbalance).
    value_bits:
        L — the value length in bits (1..64), shared by every shard.
    num_shards:
        S — the number of independent shards (1..256). ``S=1`` is
        semantically a single ``VisionEmbedder`` behind one router pass
        (same lookup answers for every inserted key; the fast-space
        geometry differs by the slack head-room).
    config:
        Per-shard tunables (one :class:`EmbedderConfig` shared by all).
    seed:
        Master seed; shard ``i`` starts from ``seed + i`` (each shard
        reseeds independently on reconstruction). The shard *router* seed
        derives from ``seed`` once and never changes.
    shard_slack:
        Per-shard capacity head-room over the even split. Hash
        partitioning leaves shards a few percent uneven, and a shard
        driven to the single-table space efficiency pays deep GetCost
        walks — 1.1 keeps every shard comfortably below the expensive
        regime for ~10% extra fast space. Set 1.0 to reproduce the exact
        single-table bit budget.
    num_arrays / packed:
        Forwarded to every shard.
    """

    name = "vision-sharded"

    def __init__(
        self,
        capacity: int,
        value_bits: int,
        num_shards: int = 8,
        config: Optional[EmbedderConfig] = None,
        seed: int = 1,
        shard_slack: float = 1.1,
        num_arrays: int = 3,
        packed: bool = False,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if not 1 <= num_shards <= 256:
            raise ValueError("num_shards must be in 1..256")
        if shard_slack < 1.0:
            raise ValueError("shard_slack must be >= 1.0")
        self.config = config if config is not None else EmbedderConfig()
        self.capacity = capacity
        self._value_bits = value_bits
        self.num_shards = num_shards
        self.shard_slack = shard_slack
        self.num_arrays = num_arrays
        self.packed = packed
        self._seed = seed
        # The router seed is fixed for the table's lifetime: shard-local
        # reconstructions reseed the shard's index hashes, never the
        # partition, so no key ever migrates between shards.
        self._shard_seed = (seed * 0x9E3779B97F4A7C15 + 0x5348415244) & _M64
        # Hash partitioning is a balls-into-bins split: shard sizes are
        # Binomial(capacity, 1/S), sd ~ sqrt(mean). Proportional slack
        # covers the tail once shards are large (slack-1 fractions of the
        # mean dwarf a few sd), but at small means the tail is *additive*,
        # so the provisioned capacity also gets a ~6-sd absolute floor.
        mean = capacity / num_shards
        shard_capacity = max(
            1,
            math.ceil(max(
                mean * shard_slack,
                mean + 4.0 * math.sqrt(mean) + 4.0,
            )),
        )
        self._shards: List[VisionEmbedder] = [
            VisionEmbedder(
                shard_capacity, value_bits, config=self.config,
                seed=seed + i, num_arrays=num_arrays, packed=packed,
            )
            for i in range(num_shards)
        ]
        self._registry = MetricsRegistry()
        self._shards_gauge = self._registry.gauge(
            "repro_shards", "Number of hash partitions", "")
        self._shards_gauge.set(num_shards)
        self._keys_min_gauge = self._registry.gauge(
            "repro_shard_keys_min", "Smallest shard's live key count", "")
        self._keys_max_gauge = self._registry.gauge(
            "repro_shard_keys_max", "Largest shard's live key count", "")
        self._efficiency_max_gauge = self._registry.gauge(
            "repro_shard_space_efficiency_max",
            "Highest per-shard space efficiency n_i/m_i", "")
        self._builds_counter = self._registry.counter(
            "repro_sharded_builds_total",
            "Calls to the sharded build() entry point", "")
        self._build_seconds_counter = self._registry.counter(
            "repro_sharded_build_seconds_total",
            "Wall-clock time inside sharded builds", "seconds")
        self._build_workers_gauge = self._registry.gauge(
            "repro_sharded_build_workers",
            "Worker count of the most recent build()", "")
        self._gather_batches_counter = self._registry.counter(
            "repro_gather_batches_total",
            "Scatter/gather batch lookups served", "")
        self._gather_keys_counter = self._registry.counter(
            "repro_gather_keys_total",
            "Keys routed through scatter/gather batch lookups", "")

    # ------------------------------------------------------------------
    # Shard routing
    # ------------------------------------------------------------------

    def _shard_of_handle(self, handle: int) -> int:  # repro: hotpath
        """Shard id of a canonical u64 handle (scalar router mix)."""
        return route_handle(handle, self._shard_seed, self.num_shards)

    # repro: raises(ValueError, TypeError)
    def shard_of(self, key: Key) -> int:
        """The shard index ``key`` routes to (stable for the table's life)."""
        return self._shard_of_handle(key_to_u64(key))

    def _shard_ids(  # repro: hotpath
        self, handles: npt.NDArray[np.uint64]
    ) -> npt.NDArray[np.uint8]:
        """Vectorised router (see module-level :func:`route_handles`)."""
        return route_handles(handles, self._shard_seed, self.num_shards)

    def _partition(
        self, handles: npt.NDArray[np.uint64]
    ) -> Tuple[npt.NDArray[np.int64], npt.NDArray[np.int64]]:
        """Group ``handles`` by shard with one vectorised pass.

        Returns ``(order, bounds)``: ``order`` permutes positions so equal
        shard ids are contiguous (stable, so per-shard insertion order is
        the arrival order), and ``bounds[s]:bounds[s+1]`` delimits shard
        ``s``'s slice of the permuted array.
        """
        ids = self._shard_ids(handles)
        order = np.argsort(ids, kind="stable").astype(np.int64)
        bounds = np.searchsorted(
            ids[order], np.arange(self.num_shards + 1, dtype=np.uint8)
        ).astype(np.int64)
        return order, bounds

    # ------------------------------------------------------------------
    # ValueOnlyTable surface
    # ------------------------------------------------------------------

    @property
    def value_bits(self) -> int:
        return self._value_bits

    @property
    def space_bits(self) -> int:
        return sum(shard.space_bits for shard in self._shards)

    @property
    def num_cells(self) -> int:
        """m: total value-table cells across all shards."""
        return sum(shard.num_cells for shard in self._shards)

    @property
    def space_efficiency(self) -> float:
        """n/m over the whole table (per-shard values via shard_stats)."""
        return len(self) / self.num_cells

    @property
    def seed(self) -> int:
        """The master seed (shard-local seeds bump independently)."""
        return self._seed

    @property
    def shards(self) -> Tuple[VisionEmbedder, ...]:
        """The per-shard tables, indexable by router id (read-only view)."""
        return tuple(self._shards)

    @property
    def stats(self) -> TableStats:
        """Aggregated counters: per-shard registries summed + shard gauges.

        Counters add across shards, gauges keep the maximum, histograms
        add bucket-wise — one export covers the whole sharded table. For
        per-shard numbers use :meth:`shard_stats` or a shard's own
        ``stats``/``metrics``.
        """
        self._refresh_shard_gauges()
        merged = aggregate(
            [shard.stats.registry for shard in self._shards]
            + [self._registry]
        )
        return TableStats(registry=merged)

    def _refresh_shard_gauges(self) -> None:
        sizes = [len(shard) for shard in self._shards]
        self._keys_min_gauge.set(min(sizes))
        self._keys_max_gauge.set(max(sizes))
        self._efficiency_max_gauge.set(
            max(shard.space_efficiency for shard in self._shards)
        )

    def shard_stats(self) -> List[Dict[str, float]]:
        """Per-shard operational summary, one dict per shard.

        Includes the live key count, space efficiency, current seed, and
        the failure/cache counters the sharded benchmark compares across
        shards (reconstructions, repair steps, cost-cache hits, misses,
        and invalidations).
        """
        out: List[Dict[str, float]] = []
        for index, shard in enumerate(self._shards):
            stats = shard.stats
            out.append({
                "shard": index,
                "keys": len(shard),
                "space_efficiency": shard.space_efficiency,
                "seed": shard.seed,
                "reconstructions": stats.reconstructions,
                "update_failures": stats.update_failures,
                "repair_steps": stats.repair_steps,
                "cost_cache_hits": stats.cost_cache_hits,
                "cost_cache_misses": stats.cost_cache_misses,
                "cost_cache_invalidations": stats.cost_cache_invalidations,
            })
        return out

    def __len__(self) -> int:
        return sum(len(shard) for shard in self._shards)

    def __contains__(self, key: Key) -> bool:
        handle = key_to_u64(key)
        return handle in self._shards[self._shard_of_handle(handle)]

    # repro: raises(ValueError, TypeError)
    def lookup(self, key: Key) -> int:  # repro: hotpath
        """Route to the owning shard's three-read XOR lookup — O(1)."""
        handle = key_to_u64(key)
        return self._shards[self._shard_of_handle(handle)].lookup(handle)

    def lookup_batch(  # repro: hotpath
        self, keys: npt.NDArray[np.uint64]
    ) -> npt.NDArray[np.uint64]:
        """Vectorised scatter/gather lookup over a ``uint64`` key array.

        One router pass computes every key's shard id, a stable single-byte
        argsort groups keys per shard, each shard answers its contiguous
        slice with its own vectorised ``lookup_batch``, and one inverse
        permutation scatters the answers back into input order.
        """
        handles = np.asarray(keys, dtype=np.uint64)
        n = int(handles.size)
        if n == 0:
            return np.zeros(0, dtype=np.uint64)
        self._gather_batches_counter.inc()
        self._gather_keys_counter.inc(n)
        if self.num_shards == 1:
            return self._shards[0].lookup_batch(handles)
        order, bounds = self._partition(handles)
        grouped = handles[order]
        answers = np.empty(n, dtype=np.uint64)
        for index, shard in enumerate(self._shards):
            lo = int(bounds[index])
            hi = int(bounds[index + 1])
            if lo != hi:
                answers[lo:hi] = shard.lookup_batch(grouped[lo:hi])
        out = np.empty(n, dtype=np.uint64)
        out[order] = answers
        return out

    # repro: raises(DuplicateKey, ValueError, TypeError, UpdateFailure)
    # repro: raises(SpaceExhausted, ReconstructionFailed)
    def insert(self, key: Key, value: int) -> None:
        """Insert into the owning shard (dynamic update per §IV)."""
        handle = key_to_u64(key)
        self._shards[self._shard_of_handle(handle)].insert(handle, value)

    # repro: raises(KeyNotFound, ValueError, TypeError, UpdateFailure)
    # repro: raises(SpaceExhausted, ReconstructionFailed)
    def update(self, key: Key, value: int) -> None:
        """Update inside the owning shard."""
        handle = key_to_u64(key)
        self._shards[self._shard_of_handle(handle)].update(handle, value)

    # repro: raises(KeyNotFound, ValueError, TypeError)
    def delete(self, key: Key) -> None:
        """Delete from the owning shard (slow-space only, per §IV-C)."""
        handle = key_to_u64(key)
        self._shards[self._shard_of_handle(handle)].delete(handle)

    # repro: raises(DuplicateKey, ValueError, TypeError, UpdateFailure)
    # repro: raises(SpaceExhausted, ReconstructionFailed)
    def insert_many(self, pairs: Iterable[Tuple[Key, int]]) -> None:
        """Partitioned batch insert (sequential shards; see :meth:`build`)."""
        self.build(pairs, workers=1)

    # repro: raises(DuplicateKey, ValueError, TypeError, UpdateFailure)
    # repro: raises(SpaceExhausted, ReconstructionFailed)
    def insert_batch(
        self, keys: Iterable[Key], values: Iterable[int]
    ) -> None:
        """Batched insert mirroring :meth:`VisionEmbedder.insert_batch`."""
        key_list = list(keys)
        value_list = [int(value) for value in values]
        if len(key_list) != len(value_list):
            raise ValueError("keys and values must align")
        self.build(zip(key_list, value_list), workers=1)

    # repro: raises(DuplicateKey, ValueError, TypeError)
    # repro: raises(ReconstructionFailed)
    def bulk_load(self, pairs: Iterable[Tuple[Key, int]]) -> None:
        """Partitioned static build: one O(n/S) peel per shard."""
        self.build(pairs, workers=1, method="static")

    # ------------------------------------------------------------------
    # Parallel build
    # ------------------------------------------------------------------

    # repro: raises(DuplicateKey, ValueError, TypeError, UpdateFailure)
    # repro: raises(SpaceExhausted, ReconstructionFailed)
    def build(
        self,
        pairs: Iterable[Tuple[Key, int]],
        workers: int = 1,
        method: str = "dynamic",
        executor: str = "thread",
    ) -> None:
        """Partition ``pairs`` once, then build every shard — concurrently
        with ``workers > 1``.

        One vectorised numpy pass canonicalises the keys, routes them, and
        groups them per shard (stable order, so each shard sees its keys
        in arrival order); each shard then runs PR 1's batched write
        pipeline: ``method="dynamic"`` walks the vision updates through
        ``insert_batch``, ``method="static"`` runs the O(n/S) peel through
        ``bulk_load``.

        ``executor="thread"`` shares shards with the pool directly — each
        worker owns disjoint shards, so no locking is needed, but the GIL
        serialises the Python-heavy repair walks (the win on one core
        comes from batching + the smaller per-shard repair graphs).
        ``executor="process"`` sidesteps the GIL for CPU-bound builds:
        children build *fresh* shards and ship them back through the
        ``.npz`` persistence payload, so it requires every involved shard
        to be empty.

        The whole batch is validated up front (duplicates within the
        batch, keys already present, value range): a rejected batch leaves
        every shard untouched. After validation the per-shard builds have
        ``insert_many`` semantics — a :class:`SpaceExhausted` aborts with
        the completed shards (and the failing shard's walked prefix)
        inserted.
        """
        if executor not in _EXECUTORS:
            raise ValueError(
                f"executor must be one of {_EXECUTORS}, got {executor!r}"
            )
        if method not in ("dynamic", "static"):
            raise ValueError("method must be 'dynamic' or 'static'")
        pair_list = list(pairs)
        if not pair_list:
            return
        handles = keys_to_u64_batch([key for key, _ in pair_list])
        values = np.fromiter(
            (int(value) for _, value in pair_list),
            dtype=np.uint64, count=len(pair_list),
        )
        n = int(handles.size)
        if np.unique(handles).size != n:
            raise DuplicateKey("duplicate keys within batch")
        value_mask = (1 << self._value_bits) - 1
        if n and int(values.max()) > value_mask:
            bad = int(values[values > value_mask][0])
            raise ValueError(
                f"value {bad} out of range for {self._value_bits}-bit values"
            )
        order, bounds = self._partition(handles)
        grouped_handles = handles[order]
        grouped_values = values[order]
        jobs: List[Tuple[int, int, int]] = []
        for index in range(self.num_shards):
            lo = int(bounds[index])
            hi = int(bounds[index + 1])
            if lo != hi:
                jobs.append((index, lo, hi))
        for index, lo, hi in jobs:
            # Vectorised membership against the shard's assistant (one
            # sorted-index / dict pass instead of a per-key loop).
            hits = self._shards[index]._assistant.contains_batch(
                grouped_handles[lo:hi]
            )
            if bool(hits.any()):
                offender = int(grouped_handles[lo + int(np.argmax(hits))])
                raise DuplicateKey(f"key {offender!r} already inserted")
        started = time.perf_counter()
        self._builds_counter.inc()
        self._build_workers_gauge.set(workers)
        try:
            if executor == "process" and workers > 1 and len(jobs) > 1:
                self._build_in_processes(
                    jobs, grouped_handles, grouped_values, method, workers
                )
            elif workers > 1 and len(jobs) > 1:
                self._build_in_threads(
                    jobs, grouped_handles, grouped_values, method, workers
                )
            else:
                for index, lo, hi in jobs:
                    self._build_one_shard(
                        index, grouped_handles[lo:hi], grouped_values[lo:hi],
                        method,
                    )
        finally:
            self._build_seconds_counter.inc(time.perf_counter() - started)

    def _build_one_shard(
        self,
        index: int,
        shard_handles: npt.NDArray[np.uint64],
        shard_values: npt.NDArray[np.uint64],
        method: str,
    ) -> None:
        shard = self._shards[index]
        if method == "static":
            shard.bulk_load(
                zip(shard_handles.tolist(), shard_values.tolist())
            )
        else:
            shard.insert_batch(shard_handles, shard_values.tolist())

    def _build_in_threads(
        self,
        jobs: Sequence[Tuple[int, int, int]],
        grouped_handles: npt.NDArray[np.uint64],
        grouped_values: npt.NDArray[np.uint64],
        method: str,
        workers: int,
    ) -> None:
        # Each worker mutates only its own shard (jobs are disjoint by
        # construction), so the per-shard single-writer rule holds without
        # any locking.
        with ThreadPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(
                    self._build_one_shard, index,
                    grouped_handles[lo:hi], grouped_values[lo:hi], method,
                )
                for index, lo, hi in jobs
            ]
            for future in futures:
                future.result()

    def _build_in_processes(
        self,
        jobs: Sequence[Tuple[int, int, int]],
        grouped_handles: npt.NDArray[np.uint64],
        grouped_values: npt.NDArray[np.uint64],
        method: str,
        workers: int,
    ) -> None:
        from repro.core.persist import load_embedder

        for index, _, _ in jobs:
            if len(self._shards[index]) != 0:
                raise ValueError(
                    "executor='process' rebuilds shards from scratch and "
                    f"shard {index} already holds keys — use the thread "
                    "executor for incremental builds"
                )
        payloads = [
            (
                self._shards[index].capacity, self._value_bits,
                self.num_arrays, self.packed, self._shards[index].seed,
                self.config, grouped_handles[lo:hi], grouped_values[lo:hi],
                method,
            )
            for index, lo, hi in jobs
        ]
        with ProcessPoolExecutor(max_workers=workers) as pool:
            results = list(pool.map(_build_shard_payload, payloads))
        for (index, _, _), (payload, stats) in zip(jobs, results):
            shard = load_embedder(io.BytesIO(payload))
            # The child's walk counters would otherwise be lost with the
            # child process; restore them so aggregated stats still count
            # every update and reconstruction.
            for attr in STAT_FIELDS:
                value = stats[attr]
                setattr(shard.stats, attr,
                        int(value) if float(value).is_integer() else value)
            self._shards[index] = shard

    # ------------------------------------------------------------------
    # Construction / failure handling
    # ------------------------------------------------------------------

    @classmethod
    def from_pairs(
        cls,
        pairs: Iterable[Tuple[Key, int]],
        value_bits: int,
        num_shards: int = 8,
        config: Optional[EmbedderConfig] = None,
        seed: int = 1,
        capacity: Optional[int] = None,
        workers: int = 1,
        static: bool = False,
        shard_slack: float = 1.1,
    ) -> "ShardedEmbedder":
        """Build a sharded table holding ``pairs`` (mirrors the unsharded
        :meth:`VisionEmbedder.from_pairs`, plus ``num_shards``/``workers``)."""
        pair_list = list(pairs)
        if capacity is None:
            capacity = max(1, len(pair_list))
        table = cls(
            capacity, value_bits, num_shards=num_shards, config=config,
            seed=seed, shard_slack=shard_slack,
        )
        table.build(
            pair_list, workers=workers,
            method="static" if static else "dynamic",
        )
        return table

    def reconstruct(
        self, method: str = "dynamic", shard: Optional[int] = None
    ) -> None:
        """Reseed and rebuild one shard — or, with ``shard=None``, all.

        This is the sharded failure-domain win made explicit: a forced (or
        failure-triggered) reconstruction re-walks only the ~n/S keys of
        the affected shard, leaving every other shard's fast space
        byte-identical. Per-shard automatic failure handling (§IV-B) goes
        through each shard's own ``reconstruct`` exactly as in the
        unsharded table.
        """
        if shard is not None:
            self._shards[shard].reconstruct(method)
            return
        for one in self._shards:
            one.reconstruct(method)

    def check_invariants(self) -> None:
        """Assert every shard's XOR equations and routing agree."""
        for index, shard in enumerate(self._shards):
            shard.check_invariants()
            for handle, _ in shard._assistant.pairs():
                routed = self._shard_of_handle(handle)
                assert routed == index, (
                    f"key {handle} lives in shard {index} but routes to "
                    f"{routed}"
                )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        sizes = [len(shard) for shard in self._shards]
        return (
            f"ShardedEmbedder(n={len(self)}, shards={self.num_shards}, "
            f"L={self._value_bits}, shard_sizes={min(sizes)}..{max(sizes)})"
        )
