"""Operational counters shared by every table implementation.

The experiment drivers read these to reproduce the paper's failure-frequency
(Fig 4) and reconstruction-time-excluded throughput (Fig 6) results; the
batch/cache counters track the vectorised write pipeline across PRs.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class TableStats:
    """Counters a table accumulates over its lifetime.

    Attributes
    ----------
    updates:
        Successful dynamic updates (inserts + value modifications).
    update_failures:
        Updates that exhausted the repair budget (or, for the two-hash
        baselines, hit an unsolvable cycle/collision).
    reconstructions:
        Full rebuild passes performed (each reseed-and-reinsert attempt
        counts once — this is what Fig 4 reports).
    repair_steps:
        Total repair recursions across all updates (amortised-cost metric).
    reconstruct_seconds:
        Wall-clock time spent inside reconstruction, so throughput can be
        reported with and without it (Figs 5 vs 6).
    cost_cache_hits / cost_cache_misses:
        GetCost memo traffic of the vision strategy (a "miss" is one
        recomputed full-bucket subtree; hits revalidate via bucket
        generation counters only).
    batch_inserts / batch_keys / largest_batch:
        Calls to the batched write path, total keys routed through it, and
        the biggest single batch seen.
    """

    updates: int = 0
    update_failures: int = 0
    reconstructions: int = 0
    repair_steps: int = 0
    reconstruct_seconds: float = 0.0
    cost_cache_hits: int = 0
    cost_cache_misses: int = 0
    batch_inserts: int = 0
    batch_keys: int = 0
    largest_batch: int = 0

    @property
    def cost_cache_hit_rate(self) -> float:
        """Fraction of GetCost subtree evaluations served from the cache."""
        total = self.cost_cache_hits + self.cost_cache_misses
        return self.cost_cache_hits / total if total else 0.0

    def note_batch(self, size: int) -> None:
        """Record one batched write of ``size`` keys."""
        self.batch_inserts += 1
        self.batch_keys += size
        if size > self.largest_batch:
            self.largest_batch = size

    def snapshot(self) -> "TableStats":
        """An independent copy of the current counters."""
        return TableStats(
            updates=self.updates,
            update_failures=self.update_failures,
            reconstructions=self.reconstructions,
            repair_steps=self.repair_steps,
            reconstruct_seconds=self.reconstruct_seconds,
            cost_cache_hits=self.cost_cache_hits,
            cost_cache_misses=self.cost_cache_misses,
            batch_inserts=self.batch_inserts,
            batch_keys=self.batch_keys,
            largest_batch=self.largest_batch,
        )

    def reset(self) -> None:
        """Zero all counters."""
        self.updates = 0
        self.update_failures = 0
        self.reconstructions = 0
        self.repair_steps = 0
        self.reconstruct_seconds = 0.0
        self.cost_cache_hits = 0
        self.cost_cache_misses = 0
        self.batch_inserts = 0
        self.batch_keys = 0
        self.largest_batch = 0
