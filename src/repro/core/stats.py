"""Operational counters shared by every table implementation.

The experiment drivers read these to reproduce the paper's failure-frequency
(Fig 4) and reconstruction-time-excluded throughput (Fig 6) results; the
batch/cache counters track the vectorised write pipeline across PRs.

Since the observability layer landed, :class:`TableStats` is a **thin view
over a metrics registry** (:class:`repro.obs.registry.MetricsRegistry`):
each named field is a property reading/writing a registered counter (or,
for ``largest_batch``, a gauge), so ``table.stats.updates`` and the
``repro_updates_total`` sample of an exported registry are the same number
by construction. The attribute API — ``stats.updates += 1``, keyword
construction, ``snapshot()``, ``reset()`` — is unchanged; hot paths that
bump a counter per memo probe hold the :class:`~repro.obs.registry.Counter`
object directly (see ``VisionStrategy``) and pay exactly the old
attribute-increment cost.

``note_batch`` additionally feeds the ``repro_batch_size`` histogram, and
tracing hooks (``repro.obs.hooks.MetricsHooks``) add the walk/kick/
reconstruction histograms into the *same* registry when enabled, so one
export covers everything. See docs/observability.md for the catalogue.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.registry import BATCH_SIZE_BUCKETS, Counter, MetricsRegistry

#: attribute -> (metric name, kind, help text, unit). The metric names are
#: the public export contract (docs/observability.md catalogues them).
STAT_FIELDS = {
    "updates": (
        "repro_updates_total", "counter",
        "Successful dynamic updates (inserts + value modifications)", "",
    ),
    "update_failures": (
        "repro_update_failures_total", "counter",
        "Updates that exhausted the repair budget (Fig 4)", "",
    ),
    "reconstructions": (
        "repro_reconstructions_total", "counter",
        "Full reseed-and-rebuild passes (each attempt counts once)", "",
    ),
    "repair_steps": (
        "repro_repair_steps_total", "counter",
        "Total repair-walk steps across all updates", "steps",
    ),
    "reconstruct_seconds": (
        "repro_reconstruct_seconds_total", "counter",
        "Wall-clock time spent inside reconstruction (Figs 5 vs 6)",
        "seconds",
    ),
    "cost_cache_hits": (
        "repro_cost_cache_hits_total", "counter",
        "GetCost memo subtrees revalidated from the cache", "",
    ),
    "cost_cache_misses": (
        "repro_cost_cache_misses_total", "counter",
        "GetCost memo subtrees recomputed in full", "",
    ),
    "cost_cache_invalidations": (
        "repro_cost_cache_invalidations_total", "counter",
        "GetCost memo entries discarded on a bucket-generation mismatch", "",
    ),
    "batch_inserts": (
        "repro_batch_inserts_total", "counter",
        "Calls to the batched write path", "",
    ),
    "batch_keys": (
        "repro_batch_keys_total", "counter",
        "Keys routed through the batched write path", "",
    ),
    "largest_batch": (
        "repro_largest_batch", "gauge",
        "Largest single batch seen by the batched write path", "",
    ),
}


class TableStats:
    """Counters a table accumulates over its lifetime.

    Attributes
    ----------
    updates:
        Successful dynamic updates (inserts + value modifications).
    update_failures:
        Updates that exhausted the repair budget (or, for the two-hash
        baselines, hit an unsolvable cycle/collision).
    reconstructions:
        Full rebuild passes performed (each reseed-and-reinsert attempt
        counts once — this is what Fig 4 reports).
    repair_steps:
        Total repair recursions across all updates (amortised-cost metric).
    reconstruct_seconds:
        Wall-clock time spent inside reconstruction, so throughput can be
        reported with and without it (Figs 5 vs 6).
    cost_cache_hits / cost_cache_misses / cost_cache_invalidations:
        GetCost memo traffic of the vision strategy (a "miss" is one
        recomputed full-bucket subtree; hits revalidate via bucket
        generation counters only; an invalidation is a memo entry found
        stale — some dependent bucket's generation moved — and discarded,
        so every invalidation also counts as a miss).
    batch_inserts / batch_keys / largest_batch:
        Calls to the batched write path, total keys routed through it, and
        the biggest single batch seen.

    Every field is backed by a metric in :attr:`registry`; pass an existing
    registry to share one (e.g. for aggregate process metrics), else each
    instance gets its own.
    """

    __slots__ = ("_registry", "_metrics", "_batch_size")

    def __init__(self, registry: Optional[MetricsRegistry] = None, **initial):
        self._registry = registry if registry is not None else MetricsRegistry()
        metrics = {}
        for attr, (name, kind, help_text, unit) in STAT_FIELDS.items():
            if kind == "counter":
                metrics[attr] = self._registry.counter(name, help_text, unit)
            else:
                metrics[attr] = self._registry.gauge(name, help_text, unit)
        self._metrics = metrics
        self._batch_size = self._registry.histogram(
            "repro_batch_size", BATCH_SIZE_BUCKETS,
            help="Keys per batched write", unit="keys",
        )
        # Derived gauge, not a STAT_FIELDS member: it is computed from the
        # hit/miss counters on read (see cost_cache_hit_rate), so it never
        # participates in snapshot()/__eq__ or keyword construction.
        metrics["cost_cache_hit_rate_gauge"] = self._registry.gauge(
            "repro_cost_cache_hit_rate",
            "Fraction of GetCost subtree evaluations served from the cache "
            "(refreshed when cost_cache_hit_rate is read)",
        )
        for attr, value in initial.items():
            if attr not in STAT_FIELDS:
                raise TypeError(
                    f"TableStats got an unexpected keyword {attr!r}"
                )
            setattr(self, attr, value)

    # -- registry surface ----------------------------------------------

    @property
    def registry(self) -> MetricsRegistry:
        """The backing metrics registry (export with ``repro.obs``)."""
        return self._registry

    def counter_for(self, attr: str) -> Counter:
        """The raw metric behind ``attr`` — for hot paths that increment
        it directly (``counter.value += 1``) under single-writer rules."""
        return self._metrics[attr]

    # -- legacy counter API ---------------------------------------------

    @property
    def cost_cache_hit_rate(self) -> float:
        """Fraction of GetCost subtree evaluations served from the cache.

        Reading the property also refreshes the ``repro_cost_cache_hit_rate``
        gauge, so registry exports taken after a read carry the rate.
        """
        total = self.cost_cache_hits + self.cost_cache_misses
        rate = self.cost_cache_hits / total if total else 0.0
        self._metrics["cost_cache_hit_rate_gauge"].set(rate)
        return rate

    def note_batch(self, size: int) -> None:
        """Record one batched write of ``size`` keys."""
        self.batch_inserts += 1
        self.batch_keys += size
        if size > self.largest_batch:
            self.largest_batch = size
        self._batch_size.observe(size)

    def snapshot(self) -> "TableStats":
        """An independent copy of the current counters."""
        return TableStats(
            **{attr: getattr(self, attr) for attr in STAT_FIELDS}
        )

    def reset(self) -> None:
        """Zero all counters (and every other metric in the registry)."""
        self._registry.reset()

    def __repr__(self) -> str:
        fields = ", ".join(
            f"{attr}={getattr(self, attr)}" for attr in STAT_FIELDS
        )
        return f"TableStats({fields})"

    def __eq__(self, other) -> bool:
        if not isinstance(other, TableStats):
            return NotImplemented
        return all(
            getattr(self, attr) == getattr(other, attr)
            for attr in STAT_FIELDS
        )


def _stat_property(attr: str) -> property:
    def fget(self):
        return self._metrics[attr].value

    def fset(self, value):
        self._metrics[attr].value = value

    doc = STAT_FIELDS[attr][2]
    return property(fget, fset, doc=doc)


for _attr in STAT_FIELDS:
    setattr(TableStats, _attr, _stat_property(_attr))
del _attr
