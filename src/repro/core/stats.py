"""Operational counters shared by every table implementation.

The experiment drivers read these to reproduce the paper's failure-frequency
(Fig 4) and reconstruction-time-excluded throughput (Fig 6) results.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class TableStats:
    """Counters a table accumulates over its lifetime.

    Attributes
    ----------
    updates:
        Successful dynamic updates (inserts + value modifications).
    update_failures:
        Updates that exhausted the repair budget (or, for the two-hash
        baselines, hit an unsolvable cycle/collision).
    reconstructions:
        Full rebuild passes performed (each reseed-and-reinsert attempt
        counts once — this is what Fig 4 reports).
    repair_steps:
        Total repair recursions across all updates (amortised-cost metric).
    reconstruct_seconds:
        Wall-clock time spent inside reconstruction, so throughput can be
        reported with and without it (Figs 5 vs 6).
    """

    updates: int = 0
    update_failures: int = 0
    reconstructions: int = 0
    repair_steps: int = 0
    reconstruct_seconds: float = 0.0

    def snapshot(self) -> "TableStats":
        """An independent copy of the current counters."""
        return TableStats(
            updates=self.updates,
            update_failures=self.update_failures,
            reconstructions=self.reconstructions,
            repair_steps=self.repair_steps,
            reconstruct_seconds=self.reconstruct_seconds,
        )

    def reset(self) -> None:
        """Zero all counters."""
        self.updates = 0
        self.update_failures = 0
        self.reconstructions = 0
        self.repair_steps = 0
        self.reconstruct_seconds = 0.0
