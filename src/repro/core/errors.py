"""Exception hierarchy shared by every table in the reproduction."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class UpdateFailure(ReproError):
    """A dynamic update did not terminate within the repair-step budget.

    The paper (§IV-B, "Update Failure") defines this as the Update function
    looping more than 50 times. Internal: tables catch this and either
    reconstruct (low occupancy) or surface :class:`SpaceExhausted`.
    """

    def __init__(self, message: str = "update did not converge", steps: int = 0):
        super().__init__(message)
        self.steps = steps


class SpaceExhausted(ReproError):
    """The table is too full for updates to converge; resize or remove keys.

    Raised instead of silently reconstructing when space efficiency is at or
    above the paper's 0.6 threshold, where failures indicate a genuine lack
    of space rather than hash bad luck.
    """


class ReconstructionFailed(ReproError):
    """Reconstruction did not succeed within the retry budget."""


class KeyNotFound(ReproError, KeyError):
    """An operation that requires an inserted key was given an alien key."""


class DuplicateKey(ReproError, ValueError):
    """``insert`` was called for a key that is already present."""
