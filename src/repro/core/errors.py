"""Exception hierarchy shared by every table in the reproduction."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class UpdateFailure(ReproError):
    """A dynamic update did not terminate within the repair-step budget.

    The paper (§IV-B, "Update Failure") defines this as the Update function
    looping more than 50 times. Internal: tables catch this and either
    reconstruct (low occupancy) or surface :class:`SpaceExhausted`.
    """

    def __init__(self, message: str = "update did not converge", steps: int = 0):
        super().__init__(message)
        self.steps = steps


class SpaceExhausted(ReproError):
    """The table is too full for updates to converge; resize or remove keys.

    Raised instead of silently reconstructing when space efficiency is at or
    above the paper's 0.6 threshold, where failures indicate a genuine lack
    of space rather than hash bad luck.
    """


class ReconstructionFailed(ReproError):
    """Reconstruction did not succeed within the retry budget."""


class KeyNotFound(ReproError, KeyError):
    """An operation that requires an inserted key was given an alien key."""


class DuplicateKey(ReproError, ValueError):
    """``insert`` was called for a key that is already present."""


class SharedPlanesError(ReproError):
    """A shared-memory plane segment misbehaved.

    Raised when an attach finds a segment whose header disagrees with the
    spec (wrong magic, geometry, or size), when a reader exhausts its
    torn-read retry budget because a writer held the generation odd for
    too long, or when a reader-role handle is asked to mutate the planes.
    """


class CorruptSnapshotError(ReproError, ValueError):
    """A persisted snapshot could not be read back (truncated file, a
    missing npz member, or a malformed field).

    ``source`` names the file (or file-like) being loaded and ``field``
    the npz member / metadata key that failed, so operators can tell a
    truncated upload from a wrong-version snapshot at a glance. Derives
    from :class:`ValueError` so callers that guarded the old raw
    ``ValueError`` keep working.
    """

    def __init__(self, message: str, source: str = "",
                 field: str = "") -> None:
        detail = message
        if source:
            detail = f"{detail} (source: {source}"
            detail += f", field: {field})" if field else ")"
        super().__init__(detail)
        self.source = source
        self.field = field
