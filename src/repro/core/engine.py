"""Array-native execution engine for the batched write/read paths.

The scalar backend repairs a batch key by key: each insert registers one
pair in the assistant and runs one §IV repair walk. That is the paper's
dynamic scheme verbatim, but at 100k-key batches the per-key Python
dispatch — not the walks themselves — dominates wall time.

The **vector backend** (``EmbedderConfig(backend="vector")``) keeps the
same interface and invariants while moving the common case onto numpy:

- **Bookkeeping** lives in :class:`ArrayAssistant`, a drop-in replacement
  for :class:`~repro.core.assistant_table.AssistantTable` that stores
  keys, values and cells columnar (one append per *batch*, not per key),
  resolves key → row through a sorted index + small overlay dict, and
  materialises bucket membership lazily from a CSR built in one
  ``lexsort`` — so the scalar walker, the GetCost DFS, and the cost cache
  all keep working against it unchanged.
- **Multi-walk repair** extends the IBLT-style round-synchronous peel of
  :mod:`repro.core.static_build` (arXiv 1101.2245 gives the formulation)
  to the *dynamic* delta path: every batch key whose candidate cell is
  free of pre-existing constraints and batch-internal collisions is an
  independent §IV walk of length one, so whole rounds of them are retired
  per numpy step — candidate cells for the entire frontier at once,
  conflicts detected by cell-id collision inside ``np.unique``, and the
  reverse-round assignment applying every write in bulk. Only the keys
  the peel cannot retire (cells pinned by live keys, or the batch's
  2-core) fall back to the real scalar walker, one by one, with the full
  retry/reconstruct/:class:`SpaceExhausted` failure policy.
- :class:`ReferenceVectorEngine` is the executable specification: the
  identical schedule run with per-key Python loops. The parity property
  test asserts the vector engine produces a bit-equal table (and equal
  walk counters) — walk for walk — against this scalar reference.

Batch semantics under the vector backend: the *set* of pairs inserted,
every table invariant, and all single-key operations are identical to the
scalar backend; only the order in which the batch's repair walks run
differs (peel schedule instead of batch order), so the concrete cell
contents after a batch may differ between backends while both satisfy
every key's equation. A :class:`SpaceExhausted` abort keeps the peeled
subset plus the walked remainder prefix (the scalar backend keeps the
batch-order prefix).

``backend="numba"`` selects :class:`NumbaEngine`: the vector engine with
jitted kernels when ``numba`` is importable. The dependency is optional
by construction — when the import fails the engine silently runs the
plain numpy paths, so CI and the tier-1 suite never require it.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

import numpy as np
import numpy.typing as npt

from repro.core.errors import ReconstructionFailed, SpaceExhausted, UpdateFailure
from repro.core.static_build import _peel_rounds, assign_in_reverse_flat

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (annotations only)
    from repro.core.embedder import VisionEmbedder

Cell = Tuple[int, int]
Rounds = List[Tuple[npt.NDArray[np.int64], npt.NDArray[np.int64]]]

try:  # pragma: no cover - exercised only where numba is installed
    import numba  # type: ignore[import-not-found]  # noqa: F401

    HAVE_NUMBA = True
except ImportError:  # pragma: no cover - the CI / tier-1 path
    HAVE_NUMBA = False

#: Overlay size beyond which the sorted key index is rebuilt eagerly.
_INDEX_REBUILD_THRESHOLD = 1 << 14


class _BucketsView:
    """Flat-indexed bucket access, shaped like ``AssistantTable._buckets``.

    The cost-cache hot path does ``assistant._buckets[flat]`` and then
    ``len``/iterates; here that materialises the member tuple on demand.
    """

    __slots__ = ("_assistant",)

    def __init__(self, assistant: "ArrayAssistant") -> None:
        self._assistant = assistant

    def __getitem__(self, flat: int) -> Tuple[int, ...]:
        return self._assistant._bucket_members(flat)


class _CellsView:
    """Key-indexed cells access, shaped like ``AssistantTable._cells``."""

    __slots__ = ("_assistant",)

    def __init__(self, assistant: "ArrayAssistant") -> None:
        self._assistant = assistant

    def __getitem__(self, key: int) -> Tuple[Cell, ...]:
        return self._assistant.cells(key)


class ArrayAssistant:
    """Array-native slow-space bookkeeping (§III), bulk-add in O(1) passes.

    Drop-in for :class:`~repro.core.assistant_table.AssistantTable`: the
    same public surface plus the ``_buckets``/``_gens``/``_cells``
    attributes the GetCost memo pokes — so every scalar code path (repair
    walks, cost cache, reconstruction, deletion) runs against it
    unchanged, while batch registration is a handful of numpy scatter
    passes instead of per-key dict/set mutation.

    Representation: columnar arrays (``uint64`` keys/values, an
    ``int64 (num_arrays, rows)`` flat-cell matrix, a liveness mask) with
    capacity-doubling appends; key → row resolves through a sorted index
    rebuilt per bulk add plus a dict overlay absorbing scalar churn;
    bucket membership comes from a lazily built CSR (one ``lexsort`` over
    the live flat cells, members sorted by key within each bucket) merged
    with per-bucket add/remove overlays, and is only ever built when a
    walk or consistency check actually asks for members — a batch that
    peels completely never pays for it. ``keys_at`` returns a *sorted*
    tuple so walk behaviour depends on key values only, matching the
    sorted re-queue in :func:`repro.core.update._run_repair_walk`.
    """

    def __init__(self, width: int, num_arrays: int = 3) -> None:
        if width <= 0:
            raise ValueError("width must be positive")
        self.width = width
        self.num_arrays = num_arrays
        m = num_arrays * width
        cap = 16
        self._capacity = cap
        self._n_rows = 0
        self._live = 0
        self._keys = np.zeros(cap, dtype=np.uint64)
        self._vals = np.zeros(cap, dtype=np.uint64)
        self._flats = np.zeros((num_arrays, cap), dtype=np.int64)
        self._alive = np.zeros(cap, dtype=bool)
        self._counts = np.zeros(m, dtype=np.int64)
        self._gens: npt.NDArray[np.int64] = np.zeros(m, dtype=np.int64)
        self.generation_epoch = 0
        self._sorted_keys: npt.NDArray[np.uint64] = np.zeros(0, dtype=np.uint64)
        self._sorted_rows: npt.NDArray[np.int64] = np.zeros(0, dtype=np.int64)
        self._index_overlay: Dict[int, int] = {}
        self._csr_valid = False
        self._csr_flats: npt.NDArray[np.int64] = np.zeros(0, dtype=np.int64)
        self._csr_keys: npt.NDArray[np.uint64] = np.zeros(0, dtype=np.uint64)
        self._bucket_add: Dict[int, List[int]] = {}
        self._bucket_del: Dict[int, Set[int]] = {}
        self._buckets = _BucketsView(self)
        self._cells = _CellsView(self)

    # -- key index -------------------------------------------------------

    def _rebuild_index(self) -> None:
        rows = np.nonzero(self._alive[: self._n_rows])[0]
        keys = self._keys[rows]
        order = np.argsort(keys, kind="stable")
        self._sorted_keys = keys[order]
        self._sorted_rows = rows[order].astype(np.int64)
        self._index_overlay.clear()

    def _row_of(self, key: int) -> int:
        """The live row holding ``key``, or -1."""
        row = self._index_overlay.get(key)
        if row is not None:
            return row
        sorted_keys = self._sorted_keys
        if sorted_keys.size:
            pos = int(np.searchsorted(sorted_keys, np.uint64(key)))
            if pos < sorted_keys.size and int(sorted_keys[pos]) == key:
                return int(self._sorted_rows[pos])
        return -1

    def __len__(self) -> int:
        return self._live

    def __contains__(self, key: int) -> bool:
        return self._row_of(key) >= 0

    def contains_batch(
        self, handles: npt.NDArray[np.uint64]
    ) -> npt.NDArray[np.bool_]:
        """Vectorised membership over a ``uint64`` handle array."""
        out = np.zeros(handles.size, dtype=bool)
        sorted_keys = self._sorted_keys
        if sorted_keys.size:
            pos = np.searchsorted(sorted_keys, handles)
            safe = np.minimum(pos, sorted_keys.size - 1)
            out = (pos < sorted_keys.size) & (sorted_keys[safe] == handles)
        if self._index_overlay:
            overlay = self._index_overlay
            for i, key in enumerate(handles.tolist()):
                row = overlay.get(key)
                if row is not None:
                    out[i] = row >= 0
        return out

    # -- growth ----------------------------------------------------------

    def _ensure_capacity(self, extra: int) -> None:
        needed = self._n_rows + extra
        if needed <= self._capacity:
            return
        cap = self._capacity
        while cap < needed:
            cap *= 2
        self._keys = np.resize(self._keys, cap)
        self._vals = np.resize(self._vals, cap)
        flats = np.zeros((self.num_arrays, cap), dtype=np.int64)
        flats[:, : self._n_rows] = self._flats[:, : self._n_rows]
        self._flats = flats
        alive = np.zeros(cap, dtype=bool)
        alive[: self._n_rows] = self._alive[: self._n_rows]
        self._alive = alive
        self._capacity = cap

    # -- mutation --------------------------------------------------------

    def add(self, key: int, value: int, cells: Tuple[Cell, ...]) -> None:  # repro: hotpath
        """Record a new KV pair and register the key at each of its cells."""
        if self._row_of(key) >= 0:
            raise KeyError(f"key {key!r} already recorded")
        self._ensure_capacity(1)
        row = self._n_rows
        self._keys[row] = key
        self._vals[row] = value
        width = self.width
        csr_valid = self._csr_valid
        for j, t in cells:
            flat = j * width + t
            self._flats[j, row] = flat
            self._counts[flat] += 1
            self._gens[flat] += 1
            if csr_valid:
                dropped = self._bucket_del.get(flat)
                if dropped is not None:
                    dropped.discard(key)
                self._bucket_add.setdefault(flat, []).append(key)
        self._alive[row] = True
        self._n_rows = row + 1
        self._live += 1
        self._index_overlay[key] = row
        if len(self._index_overlay) > _INDEX_REBUILD_THRESHOLD:
            self._rebuild_index()

    def add_batch(
        self,
        keys: Sequence[int],
        values: Sequence[int],
        cells_list: Sequence[Tuple[Cell, ...]],
    ) -> None:
        """Bulk :meth:`add` from ``(j, t)`` cells tuples (compat surface).

        Validates the whole batch before mutating anything, like
        :meth:`AssistantTable.add_batch`. Engine code paths that already
        hold flat arrays should call :meth:`add_batch_arrays` instead.
        """
        if not (len(keys) == len(values) == len(cells_list)):
            raise ValueError("keys, values and cells_list must align")
        if not keys:
            return
        cells_arr = np.asarray(cells_list, dtype=np.int64)
        if cells_arr.ndim != 3 or cells_arr.shape[1] != self.num_arrays:
            raise ValueError("need one cell per array for every key")
        flat_mat = np.ascontiguousarray(
            (cells_arr[:, :, 0] * self.width + cells_arr[:, :, 1]).T
        )
        self.add_batch_arrays(
            np.asarray(keys, dtype=np.uint64),
            np.asarray(values, dtype=np.uint64),
            flat_mat,
        )

    def add_batch_arrays(
        self,
        handles: npt.NDArray[np.uint64],
        values: npt.NDArray[np.uint64],
        flat_mat: npt.NDArray[np.int64],
        validate: bool = True,
    ) -> None:  # repro: hotpath
        """Bulk registration from columnar arrays — the vector-engine path.

        ``flat_mat`` is ``(num_arrays, n)`` of flat cell ids. With
        ``validate`` (the default) the batch is rejected atomically on a
        duplicate, matching :meth:`AssistantTable.add_batch`.
        """
        n = int(handles.size)
        if n == 0:
            return
        if validate:
            if np.unique(handles).size != n:
                raise KeyError("duplicate key within batch")
            hits = self.contains_batch(handles)
            if bool(hits.any()):
                offender = int(handles[int(np.argmax(hits))])
                raise KeyError(f"key {offender!r} already recorded")
        self._ensure_capacity(n)
        start = self._n_rows
        stop = start + n
        self._keys[start:stop] = handles
        self._vals[start:stop] = values
        self._flats[:, start:stop] = flat_mat
        self._alive[start:stop] = True
        self._n_rows = stop
        self._live += n
        flat_all = flat_mat.ravel()
        np.add.at(self._counts, flat_all, 1)
        np.add.at(self._gens, flat_all, 1)
        self._rebuild_index()
        self._invalidate_csr()

    def remove(self, key: int) -> None:  # repro: hotpath
        """Forget a KV pair; its cells' counters drop by one (§IV-C)."""
        row = self._row_of(key)
        if row < 0:
            raise KeyError(key)
        self._alive[row] = False
        csr_valid = self._csr_valid
        for j in range(self.num_arrays):
            flat = int(self._flats[j, row])
            self._counts[flat] -= 1
            self._gens[flat] += 1
            if csr_valid:
                self._note_removed(flat, key)
        self._live -= 1
        self._index_overlay[key] = -1
        if len(self._index_overlay) > _INDEX_REBUILD_THRESHOLD:
            self._rebuild_index()

    def _note_removed(self, flat: int, key: int) -> None:
        """Record a removal in the CSR bucket overlays."""
        added = self._bucket_add.get(flat)
        if added is not None and key in added:
            added.remove(key)
        else:
            self._bucket_del.setdefault(flat, set()).add(key)

    def set_value(self, key: int, value: int) -> None:
        """Record the new value for an existing key (cells unchanged)."""
        row = self._row_of(key)
        if row < 0:
            raise KeyError(f"key {key!r} not recorded")
        self._vals[row] = value

    # -- queries ---------------------------------------------------------

    def value(self, key: int) -> int:
        """The stored value for ``key``."""
        row = self._row_of(key)
        if row < 0:
            raise KeyError(key)
        return int(self._vals[row])

    def cells(self, key: int) -> Tuple[Cell, ...]:
        """The key's value-table cells, as registered at insert time."""
        row = self._row_of(key)
        if row < 0:
            raise KeyError(key)
        width = self.width
        flats = self._flats[:, row]
        return tuple(
            (j, int(flats[j]) - j * width) for j in range(self.num_arrays)
        )

    def keys_at(self, cell: Cell) -> Tuple[int, ...]:
        """S_j[t] as a sorted tuple (a fresh snapshot, safe to iterate)."""
        j, t = cell
        return self._bucket_members(j * self.width + t)

    def count_at(self, cell: Cell) -> int:  # repro: hotpath
        """C_j[t]: the number of live keys hashed to ``cell``."""
        j, t = cell
        return int(self._counts[j * self.width + t])

    def generation(self, cell: Cell) -> int:
        """The mutation counter of ``cell``'s bucket."""
        j, t = cell
        return int(self._gens[j * self.width + t])

    @property
    def generations(self) -> npt.NDArray[np.int64]:
        """Per-bucket counters, flat-indexed ``array * width + index``."""
        return self._gens

    def counts_snapshot(self) -> npt.NDArray[np.int64]:
        """An independent copy of the per-cell occupancy counters."""
        return self._counts.copy()

    def pairs(self) -> Iterator[Tuple[int, int]]:
        """All live (key, value) pairs, in registration (row) order."""
        rows = np.nonzero(self._alive[: self._n_rows])[0]
        return iter(
            zip(self._keys[rows].tolist(), self._vals[rows].tolist())
        )

    def clear(self) -> None:
        """Drop every pair (reconstruction resets and reinserts)."""
        self._n_rows = 0
        self._live = 0
        self._counts[:] = 0
        self._gens[:] = 0
        self.generation_epoch += 1
        self._sorted_keys = np.zeros(0, dtype=np.uint64)
        self._sorted_rows = np.zeros(0, dtype=np.int64)
        self._index_overlay.clear()
        self._invalidate_csr()

    # -- bucket membership ----------------------------------------------

    def _invalidate_csr(self) -> None:
        self._csr_valid = False
        self._bucket_add.clear()
        self._bucket_del.clear()

    def _build_csr(self) -> None:
        rows = np.nonzero(self._alive[: self._n_rows])[0]
        flats = self._flats[:, rows].ravel()
        keys = np.tile(self._keys[rows], self.num_arrays)
        # lexsort: primary by flat cell, secondary by key — bucket slices
        # come out pre-sorted, so the overlay-free fast path returns them
        # without a per-query sort.
        order = np.lexsort((keys, flats))
        self._csr_flats = flats[order]
        self._csr_keys = keys[order]
        self._bucket_add.clear()
        self._bucket_del.clear()
        self._csr_valid = True

    def _bucket_members(self, flat: int) -> Tuple[int, ...]:  # repro: hotpath
        if not self._csr_valid:
            self._build_csr()
        csr_flats = self._csr_flats
        lo = int(np.searchsorted(csr_flats, flat, side="left"))
        hi = int(np.searchsorted(csr_flats, flat, side="right"))
        base = self._csr_keys[lo:hi]
        added = self._bucket_add.get(flat)
        dropped = self._bucket_del.get(flat)
        if not added and not dropped:
            return tuple(base.tolist())
        members = set(base.tolist())
        if dropped:
            members -= dropped
        if added:
            members.update(added)
        return tuple(sorted(members))

    # -- diagnostics -----------------------------------------------------

    def check_consistency(self) -> None:
        """Assert the structural invariants; AssertionError if broken."""
        rows = np.nonzero(self._alive[: self._n_rows])[0]
        assert rows.size == self._live, "live count out of sync"
        m = self.num_arrays * self.width
        expected = np.bincount(
            self._flats[:, rows].ravel(), minlength=m
        ).astype(np.int64)
        assert bool(np.array_equal(expected, self._counts)), (
            "per-cell counters disagree with live rows"
        )
        live_keys = self._keys[rows]
        assert np.unique(live_keys).size == rows.size, "duplicate live key"
        for key, row in zip(live_keys.tolist(), rows.tolist()):
            assert self._row_of(key) == row, (
                f"key index resolves {key!r} to the wrong row"
            )
        for key in live_keys.tolist():
            for cell in self.cells(key):
                assert key in self.keys_at(cell), (
                    f"key {key!r} absent from its bucket {cell}"
                )


# ---------------------------------------------------------------------------
# Peel scheduling (the vectorised multi-walk)
# ---------------------------------------------------------------------------


def peel_rounds_masked(
    flat_mat: npt.NDArray[np.int64],
    num_cells: int,
    base_counts: npt.NDArray[np.int64],
    hooks: object = None,  # repro: arrays(int64, bool)
) -> Tuple[Rounds, npt.NDArray[np.bool_]]:  # repro: hotpath
    """Round-synchronous peel of a batch over a *live* table.

    Like :func:`repro.core.static_build._peel_rounds`, but cells already
    constrained by pre-existing keys (``base_counts > 0``) are never
    peelable — writing them would break a live equation — and a stalled
    peel is not an error: the return value is ``(rounds, peeled_mask)``
    where unpeeled keys fall back to the scalar walker.

    Each round advances every currently-retirable walk at once: the
    candidate cells of the whole frontier are the batch-degree-1 unblocked
    cells, ``np.unique`` over their XOR aggregates collapses the cell-id
    collisions (one key holding several free cells retires through its
    lowest flat id), and two scatter passes retire the round in bulk.
    """
    num_arrays, n = flat_mat.shape
    flat_all = flat_mat.ravel()
    degree = np.bincount(flat_all, minlength=num_cells).astype(np.int64)
    agg = np.zeros(num_cells, dtype=np.int64)
    np.bitwise_xor.at(
        agg, flat_all, np.tile(np.arange(n, dtype=np.int64), num_arrays)
    )
    unblocked = base_counts == 0

    rounds: Rounds = []
    peeled_mask = np.zeros(n, dtype=bool)
    candidates = np.nonzero((degree == 1) & unblocked)[0]
    while candidates.size:
        keys, first = np.unique(agg[candidates], return_index=True)
        own = candidates[first]
        rounds.append((keys, own))
        peeled_mask[keys] = True
        if hooks is not None:
            hooks.on_peel_round(len(rounds) - 1, int(keys.size))  # type: ignore[attr-defined]
        retired = flat_mat[:, keys].ravel()
        np.subtract.at(degree, retired, 1)
        np.bitwise_xor.at(agg, retired, np.tile(keys, num_arrays))
        candidates = np.nonzero((degree == 1) & unblocked)[0]
    return rounds, peeled_mask


# ---------------------------------------------------------------------------
# Engines
# ---------------------------------------------------------------------------


class ExecutionEngine:
    """Strategy object owning the batched write path of one embedder."""

    name = "abstract"

    def make_assistant(self, width: int, num_arrays: int) -> object:
        """Build the slow-space assistant this engine runs against."""
        raise NotImplementedError

    def insert_batch(
        self,
        emb: "VisionEmbedder",
        handles: npt.NDArray[np.uint64],
        value_list: List[int],
    ) -> None:
        """Insert a pre-validated batch (embedder checked dups/ranges)."""
        raise NotImplementedError


def _scalar_insert_loop(
    emb: "VisionEmbedder",
    handles: npt.NDArray[np.uint64],
    value_list: List[int],
) -> None:  # repro: hotpath
    """The per-key batch loop: walk-for-walk identical to sequential
    :meth:`VisionEmbedder.insert` calls (the scalar backend's contract)."""
    assistant = emb._assistant

    def hash_rows(
        key_arr: npt.NDArray[np.uint64],
    ) -> List[Tuple[Cell, ...]]:
        # One vectorised hashing pass, pre-assembled into per-key cells
        # tuples ((0, t0), (1, t1), ...).
        return list(zip(*(
            [(j, t) for t in arr.tolist()]
            for j, arr in enumerate(emb._hashes.indices_batch(key_arr))
        )))

    handle_list = handles.tolist()
    cells_rows = hash_rows(handles)
    base = 0
    hashed_seed = emb._seed
    for i, handle in enumerate(handle_list):
        if emb._seed != hashed_seed:
            # A mid-batch reconstruction reseeded every hash function:
            # recompute the remaining keys' cells in one batched pass.
            cells_rows = hash_rows(handles[i:])
            base = i
            hashed_seed = emb._seed
        assistant.add(handle, value_list[i], cells_rows[i - base])
        try:
            emb._run_update(handle)
        except SpaceExhausted:
            assistant.remove(handle)
            raise


class ScalarEngine(ExecutionEngine):
    """The historical per-key write path (``backend="scalar"``)."""

    name = "scalar"

    def make_assistant(self, width: int, num_arrays: int) -> object:
        from repro.core.assistant_table import AssistantTable

        return AssistantTable(width, num_arrays)

    def insert_batch(
        self,
        emb: "VisionEmbedder",
        handles: npt.NDArray[np.uint64],
        value_list: List[int],
    ) -> None:
        _scalar_insert_loop(emb, handles, value_list)


class VectorEngine(ExecutionEngine):
    """Round-synchronous multi-walk batch repair (``backend="vector"``)."""

    name = "vector"

    def make_assistant(self, width: int, num_arrays: int) -> object:
        return ArrayAssistant(width, num_arrays)

    # -- lazy obs instruments -------------------------------------------

    def _instruments(
        self, emb: "VisionEmbedder"
    ) -> Tuple[object, object, object]:
        cached = getattr(self, "_cached_instruments", None)
        if cached is not None:
            return cached  # type: ignore[no-any-return]
        registry = emb._stats.registry
        instruments = (
            registry.counter(
                "repro_engine_peeled_total",
                help="Batch keys retired by the vectorised multi-walk peel",
            ),
            registry.counter(
                "repro_engine_fallback_walks_total",
                help="Batch keys repaired by the scalar walker fallback",
            ),
            registry.gauge(
                "repro_engine_frontier_peak",
                help="Largest multi-walk frontier retired in one peel round",
                unit="keys",
            ),
        )
        self._cached_instruments = instruments
        return instruments

    # -- batched write path ---------------------------------------------

    def insert_batch(
        self,
        emb: "VisionEmbedder",
        handles: npt.NDArray[np.uint64],
        value_list: List[int],
    ) -> None:  # repro: hotpath
        assistant = emb._assistant
        if not isinstance(assistant, ArrayAssistant):
            # Someone swapped in a foreign assistant (tests do): the
            # scalar loop is always correct.
            _scalar_insert_loop(emb, handles, value_list)
            return
        table = emb._table
        width = table.width
        num_arrays = emb.num_arrays
        n = int(handles.size)
        values = np.asarray(value_list, dtype=np.uint64)

        index_arrays = emb._hashes.indices_batch(handles)
        flat_mat = np.stack([
            arr.astype(np.int64) + j * width
            for j, arr in enumerate(index_arrays)
        ])
        hashed_seed = emb._seed

        rounds, peeled_mask = peel_rounds_masked(
            flat_mat, table.num_cells, assistant.counts_snapshot(),
            emb._hooks,
        )
        peeled = int(peeled_mask.sum())
        peeled_counter, walk_counter, frontier_gauge = self._instruments(emb)
        if peeled:
            # Register and repair the whole peelable sub-batch in bulk:
            # every peeled key is an independent walk of exactly one cell
            # write, applied by the reverse-round assignment.
            assistant.add_batch_arrays(
                handles[peeled_mask],
                values[peeled_mask],
                np.ascontiguousarray(flat_mat[:, peeled_mask]),
                validate=False,
            )
            assign_in_reverse_flat(table, rounds, flat_mat, values)
            emb._updates_counter.value += peeled
            emb._repair_steps_counter.value += peeled
            peeled_counter.inc(peeled)  # type: ignore[attr-defined]
            frontier_gauge.set_max(  # type: ignore[attr-defined]
                max(int(keys.size) for keys, _ in rounds)
            )
        if peeled == n:
            return

        remainder = np.nonzero(~peeled_mask)[0]
        walk_counter.inc(int(remainder.size))  # type: ignore[attr-defined]
        for i in remainder.tolist():
            handle = int(handles[i])
            if emb._seed == hashed_seed:
                cells = tuple(
                    (j, int(flat_mat[j, i]) - j * width)
                    for j in range(num_arrays)
                )
            else:
                # A mid-remainder reconstruction reseeded the hashes.
                cells = emb._cells_for(handle)
            assistant.add(handle, int(values[i]), cells)
            try:
                emb._run_update(handle)
            except SpaceExhausted:
                assistant.remove(handle)
                raise

    # -- bulk (static) load ---------------------------------------------

    def bulk_load_arrays(
        self,
        emb: "VisionEmbedder",
        all_handles: npt.NDArray[np.uint64],
        all_values: npt.NDArray[np.uint64],
        new_keys: int,
    ) -> None:
        """Static peel rebuild without per-key cells-tuple materialisation.

        Mirrors :meth:`VisionEmbedder.bulk_load`'s reseed loop and stats
        accounting exactly, but feeds the flat-array peel and the
        assistant directly from columnar arrays.
        """
        assistant = emb._assistant
        if not isinstance(assistant, ArrayAssistant):
            raise TypeError("bulk_load_arrays requires an ArrayAssistant")
        table = emb._table
        width = table.width
        for _ in range(emb.config.max_reconstruct_attempts):
            table.clear()
            assistant.clear()
            index_arrays = emb._hashes.indices_batch(all_handles)
            flat_mat = np.stack([
                arr.astype(np.int64) + j * width
                for j, arr in enumerate(index_arrays)
            ])
            rounds = _peel_rounds(flat_mat, width, emb._hooks)
            if rounds is None:
                emb._stats.update_failures += 1
                emb._stats.reconstructions += 1
                emb._seed += 1
                emb._hashes = emb._hashes.reseeded(emb._seed)
                continue
            assign_in_reverse_flat(table, rounds, flat_mat, all_values)
            assistant.add_batch_arrays(
                all_handles, all_values, flat_mat, validate=False
            )
            emb._stats.updates += new_keys
            return
        raise ReconstructionFailed(
            f"static peel failed for {emb.config.max_reconstruct_attempts} "
            "seeds"
        )


class NumbaEngine(VectorEngine):
    """The vector engine with optional jitted kernels (``backend="numba"``).

    When numba is importable the gather/scatter inner loops may run
    jitted; when it is not — the tier-1/CI situation — every path silently
    degrades to the plain numpy implementation, so selecting this backend
    never introduces a hard dependency. ``jitted`` reports which case this
    process is in.
    """

    name = "numba"
    jitted = HAVE_NUMBA


class ReferenceVectorEngine(ExecutionEngine):
    """Executable specification of :class:`VectorEngine.insert_batch`.

    The identical schedule — base-occupancy-masked round-synchronous peel,
    reverse-round assignment, scalar-walker remainder in batch order —
    executed with per-key Python loops against the plain
    :class:`AssistantTable`. The parity property test drives this and the
    vector engine over the same operation sequences and asserts bit-equal
    value tables and equal walk counters, walk for walk.
    """

    name = "reference-vector"

    def make_assistant(self, width: int, num_arrays: int) -> object:
        from repro.core.assistant_table import AssistantTable

        return AssistantTable(width, num_arrays)

    def insert_batch(
        self,
        emb: "VisionEmbedder",
        handles: npt.NDArray[np.uint64],
        value_list: List[int],
    ) -> None:
        assistant = emb._assistant
        table = emb._table
        width = table.width
        num_arrays = emb.num_arrays
        handle_list = handles.tolist()
        n = len(handle_list)
        hashed_seed = emb._seed

        # Per-key cells from the same vectorised hashing pass the vector
        # engine uses (flat ids, scalar bookkeeping).
        index_arrays = emb._hashes.indices_batch(handles)
        flats_per_key: List[List[int]] = [
            [int(index_arrays[j][i]) + j * width for j in range(num_arrays)]
            for i in range(n)
        ]

        # Scalar round-synchronous peel: batch-internal degree per cell,
        # cells pinned by live keys never peelable.
        degree: Dict[int, int] = {}
        members: Dict[int, List[int]] = {}
        for i, flats in enumerate(flats_per_key):
            for flat in flats:
                degree[flat] = degree.get(flat, 0) + 1
                members.setdefault(flat, []).append(i)
        blocked = {
            flat
            for flat in degree
            if assistant.count_at((flat // width, flat % width)) > 0
        }
        remaining = set(range(n))
        own_cell: Dict[int, int] = {}
        reference_rounds: List[List[int]] = []
        while True:
            candidates = sorted(
                flat
                for flat, deg in degree.items()
                if deg == 1 and flat not in blocked
            )
            round_keys: List[int] = []
            seen: Set[int] = set()
            for flat in candidates:
                (key_index,) = (
                    i for i in members[flat] if i in remaining
                )
                if key_index in seen:
                    # The same walk surfaced through a second free cell —
                    # the np.unique collision case; first (lowest) cell
                    # wins, matching the vector engine.
                    continue
                seen.add(key_index)
                own_cell[key_index] = flat
                round_keys.append(key_index)
            if not round_keys:
                break
            reference_rounds.append(round_keys)
            if emb._hooks is not None:
                emb._hooks.on_peel_round(
                    len(reference_rounds) - 1, len(round_keys)
                )
            for key_index in round_keys:
                remaining.discard(key_index)
                for flat in flats_per_key[key_index]:
                    degree[flat] -= 1

        peeled = [i for rnd in reference_rounds for i in rnd]
        for i in sorted(peeled):
            cells = tuple(
                (j, flats_per_key[i][j] - j * width)
                for j in range(num_arrays)
            )
            assistant.add(int(handle_list[i]), value_list[i], cells)
        for round_keys in reversed(reference_rounds):
            for i in round_keys:
                own = own_cell[i]
                own_2d = (own // width, own % width)
                others = [
                    (j, flats_per_key[i][j] - j * width)
                    for j in range(num_arrays)
                    if flats_per_key[i][j] != own
                ]
                table.set(own_2d, value_list[i] ^ table.xor_sum(others))
        emb._updates_counter.value += len(peeled)
        emb._repair_steps_counter.value += len(peeled)

        for i in sorted(remaining):
            handle = int(handle_list[i])
            if emb._seed == hashed_seed:
                cells = tuple(
                    (j, flats_per_key[i][j] - j * width)
                    for j in range(num_arrays)
                )
            else:
                cells = emb._cells_for(handle)
            assistant.add(handle, value_list[i], cells)
            try:
                emb._run_update(handle)
            except SpaceExhausted:
                assistant.remove(handle)
                raise


_ENGINES = {
    "scalar": ScalarEngine,
    "vector": VectorEngine,
    "numba": NumbaEngine,
    "reference-vector": ReferenceVectorEngine,
}


def make_engine(name: str) -> ExecutionEngine:
    """Build an execution engine by config name.

    ``"numba"`` always succeeds: the engine reports ``jitted=False`` and
    runs the plain numpy vector paths when the dependency is absent.
    """
    try:
        engine_class = _ENGINES[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; known: {tuple(_ENGINES)}"
        ) from None
    return engine_class()
