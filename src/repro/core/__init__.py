"""VisionEmbedder core: the paper's primary contribution.

The public entry point is :class:`repro.core.embedder.VisionEmbedder`; the
other modules are its substrates (value table, assistant table, update
strategies) and the thread-safe wrapper from §IV-B of the paper.
"""

from repro.core.config import EmbedderConfig, DepthPolicy
from repro.core.errors import (
    ReproError,
    UpdateFailure,
    SpaceExhausted,
    ReconstructionFailed,
    KeyNotFound,
    DuplicateKey,
    SharedPlanesError,
    CorruptSnapshotError,
)
from repro.core.value_table import ValueTable
from repro.core.shared_planes import (
    SharedPlanes,
    SharedPlanesSpec,
    SharedTableSpec,
    share_table,
    unshare_table,
)
from repro.core.assistant_table import AssistantTable
from repro.core.engine import (
    HAVE_NUMBA,
    ArrayAssistant,
    ExecutionEngine,
    NumbaEngine,
    ReferenceVectorEngine,
    ScalarEngine,
    VectorEngine,
    make_engine,
)
from repro.core.embedder import VisionEmbedder
from repro.core.concurrent import ConcurrentVisionEmbedder
from repro.core.sharded import ShardedEmbedder
from repro.core.persist import (
    load_embedder,
    load_sharded,
    save_embedder,
    save_sharded,
)
from repro.core.replication import (
    DataPlaneReplica,
    PublishingVisionEmbedder,
)

__all__ = [
    "EmbedderConfig",
    "DepthPolicy",
    "ReproError",
    "UpdateFailure",
    "SpaceExhausted",
    "ReconstructionFailed",
    "KeyNotFound",
    "DuplicateKey",
    "SharedPlanesError",
    "CorruptSnapshotError",
    "ValueTable",
    "SharedPlanes",
    "SharedPlanesSpec",
    "SharedTableSpec",
    "share_table",
    "unshare_table",
    "AssistantTable",
    "ArrayAssistant",
    "ExecutionEngine",
    "ScalarEngine",
    "VectorEngine",
    "NumbaEngine",
    "ReferenceVectorEngine",
    "make_engine",
    "HAVE_NUMBA",
    "VisionEmbedder",
    "ConcurrentVisionEmbedder",
    "ShardedEmbedder",
    "save_embedder",
    "load_embedder",
    "save_sharded",
    "load_sharded",
    "PublishingVisionEmbedder",
    "DataPlaneReplica",
]
