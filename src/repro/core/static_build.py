"""Static (peeling) construction of a value table (§II, §IV-C).

The paper notes that reconstruction "can either use the existing static
construction method of Bloomier or our dynamic update scheme to insert KV
pairs one by one". This module provides that static path for
VisionEmbedder's own geometry: a greedy peel (find a cell referenced by
exactly one remaining key, defer it, recurse) runs in O(n) and succeeds
with near-certainty at the default 1.7 cells/key — comfortably above the
three-segment peeling threshold (~1.23) — making it the fastest way to
bulk-load or rebuild a table. The result is indistinguishable from a
dynamically-built table: subsequent inserts/updates/deletes work as usual.

Two peeling engines coexist:

- The **flat-array engine** (:func:`peel_order_flat`,
  :func:`static_build_arrays`) keeps, per cell, only a degree counter and
  the XOR of the member key *indices* — the IBLT trick: when the degree
  hits one, the XOR aggregate *is* the one remaining member. Initialisation
  is two vectorised numpy scatter passes (``bincount`` + ``bitwise_xor.at``)
  and the peel itself runs in vectorised *rounds*: every degree-1 cell is
  peeled at once and the retired memberships are scattered out in bulk, so
  a 100k-key peel is ~25 numpy rounds rather than 100k python iterations —
  an order of magnitude faster than mutating a dict of sets.
- The **reference engine** (:func:`peel_order`, :func:`assign_in_reverse`,
  :func:`static_build_reference`) is the original dict-of-sets
  implementation, kept as the executable specification; a property test
  asserts both engines peel exactly the same instances and produce tables
  satisfying every equation.

:func:`static_build` keeps its historical signature and picks the flat
engine whenever the supplied cells have the canonical one-cell-per-array
shape, falling back to the reference engine otherwise.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.assistant_table import AssistantTable
from repro.core.errors import UpdateFailure
from repro.core.value_table import ValueTable

Cell = Tuple[int, int]


# ---------------------------------------------------------------------------
# Reference engine (dict-of-sets; executable specification)
# ---------------------------------------------------------------------------


def peel_order(
    key_cells: Dict[int, Tuple[Cell, ...]]
) -> Optional[List[Tuple[int, Cell]]]:
    """Greedy peel: an order in which each key owns a private cell.

    Returns ``[(key, its singleton cell), ...]`` in peel order, or None if
    the peel stalls (the 2-core is non-empty).
    """
    cell_members: Dict[Cell, Set[int]] = {}
    for key, cells in key_cells.items():
        for cell in cells:
            cell_members.setdefault(cell, set()).add(key)

    queue = [cell for cell, members in cell_members.items()
             if len(members) == 1]
    order: List[Tuple[int, Cell]] = []
    peeled: Set[int] = set()
    while queue:
        cell = queue.pop()
        members = cell_members.get(cell)
        if not members or len(members) != 1:
            continue
        (key,) = members
        peeled.add(key)
        order.append((key, cell))
        for other in key_cells[key]:
            cell_members[other].discard(key)
            if len(cell_members[other]) == 1:
                queue.append(other)
    if len(peeled) != len(key_cells):
        return None
    return order


def assign_in_reverse(
    table: ValueTable,
    order: List[Tuple[int, Cell]],
    key_cells: Dict[int, Tuple[Cell, ...]],
    values: Dict[int, int],
) -> None:
    """Write cells in reverse peel order so every equation holds.

    Processing keys last-peeled-first, each key's private cell is still
    unconstrained when reached, so it absorbs whatever XOR correction the
    key's equation needs.
    """
    for key, own_cell in reversed(order):
        others = [c for c in key_cells[key] if c != own_cell]
        table.set(own_cell, values[key] ^ table.xor_sum(others))


def static_build_reference(
    table: ValueTable,
    assistant: AssistantTable,
    pairs: Iterable[Tuple[int, Tuple[Cell, ...], int]],
) -> None:
    """The original scalar build: dict-of-sets peel + per-key registration."""
    key_cells: Dict[int, Tuple[Cell, ...]] = {}
    values: Dict[int, int] = {}
    for key, cells, value in pairs:
        key_cells[key] = cells
        values[key] = value

    order = peel_order(key_cells)
    if order is None:
        raise UpdateFailure("static peel stalled (non-empty 2-core)")
    assign_in_reverse(table, order, key_cells, values)
    for key, cells in key_cells.items():
        assistant.add(key, values[key], cells)


# ---------------------------------------------------------------------------
# Flat-array engine (numpy init + list peel)
# ---------------------------------------------------------------------------


def _flat_matrix(
    index_cols: Sequence[Sequence[int]], width: int
) -> np.ndarray:
    """``(num_arrays, n)`` matrix of flat cell ids ``j·width + t``."""
    return np.stack([
        np.asarray(col, dtype=np.int64) + j * width
        for j, col in enumerate(index_cols)
    ])


def _peel_rounds(  # repro: hotpath
    flat_mat: np.ndarray, width: int, hooks=None
) -> Optional[List[Tuple[np.ndarray, np.ndarray]]]:
    """Round-synchronous vectorised peel.

    Each round peels *every* currently-degree-1 cell at once: the XOR
    aggregate of such a cell **is** its single member (the IBLT trick), so
    one gather yields the round's keys and two ``ufunc.at`` scatters retire
    their memberships. Returns ``[(keys, own_cells), ...]`` per round, or
    None on a stall (non-empty 2-core). Safe for any-order assignment
    within a round: a peeled key's own cell contains only that key, so no
    other key — same round or later — reads or writes it.

    ``hooks`` (``repro.obs.hooks.WalkHooks``-shaped) receives
    ``on_peel_round(round_index, peeled)`` per round — the peel-round /
    degree progression IBLT-style structures are tuned by.
    """
    num_arrays, n = flat_mat.shape
    m = num_arrays * width
    flat_all = flat_mat.ravel()
    degree = np.bincount(flat_all, minlength=m)
    agg = np.zeros(m, dtype=np.int64)
    np.bitwise_xor.at(agg, flat_all, np.tile(np.arange(n, dtype=np.int64),
                                             num_arrays))

    rounds: List[Tuple[np.ndarray, np.ndarray]] = []
    peeled = 0
    candidates = np.nonzero(degree == 1)[0]
    while candidates.size:
        keys, first = np.unique(agg[candidates], return_index=True)
        own = candidates[first]
        rounds.append((keys, own))
        peeled += keys.size
        if hooks is not None:
            hooks.on_peel_round(len(rounds) - 1, int(keys.size))
        retired = flat_mat[:, keys].ravel()
        np.subtract.at(degree, retired, 1)
        np.bitwise_xor.at(agg, retired, np.tile(keys, num_arrays))
        candidates = np.nonzero(degree == 1)[0]
    if peeled != n:
        return None
    return rounds


def peel_order_flat(
    index_cols: Sequence[Sequence[int]],
    width: int,
) -> Optional[List[Tuple[int, int]]]:
    """Greedy peel over flat arrays: IBLT-style degree + XOR aggregation.

    ``index_cols[j][i]`` is key ``i``'s index into array ``j``; a cell is
    addressed by its flat id ``j·width + t``. Returns
    ``[(key_index, flat_cell), ...]`` in a valid peel order (concatenated
    peel rounds), or None on a stall.
    """
    num_arrays = len(index_cols)
    n = len(index_cols[0]) if num_arrays else 0
    if n == 0:
        return []
    rounds = _peel_rounds(_flat_matrix(index_cols, width), width)
    if rounds is None:
        return None
    return [
        (int(key), int(cell))
        for keys, cells in rounds
        for key, cell in zip(keys.tolist(), cells.tolist())
    ]


def assign_in_reverse_flat(  # repro: hotpath
    table: ValueTable,
    rounds: List[Tuple[np.ndarray, np.ndarray]],
    flat_mat: np.ndarray,
    values: Sequence[int],
) -> None:
    """Vectorised reverse-round assignment, written back in bulk.

    Rounds are processed last-peeled-first; within a round every key's own
    cell is private (see :func:`_peel_rounds`), so the whole round resolves
    with numpy gathers and one scatter. Each own cell appears exactly once
    among its key's cells, so XORing the full row and the own cell's
    current (still unconstrained) value leaves exactly the other cells'
    contribution.
    """
    num_arrays = table.num_arrays
    cells = table.to_dense().reshape(-1)
    value_arr = np.asarray(values, dtype=np.uint64)
    for keys, own in reversed(rounds):
        acc = value_arr[keys] ^ cells[own]
        for j in range(num_arrays):
            acc ^= cells[flat_mat[j, keys]]
        cells[own] = acc
    table.load_dense(cells.reshape(num_arrays, table.width))


def static_build_arrays(
    table: ValueTable,
    assistant: AssistantTable,
    keys: Sequence[int],
    values: Sequence[int],
    index_cols: Sequence[Sequence[int]],
    hooks=None,
) -> None:
    """Vectorised static build from pre-hashed column arrays.

    ``keys``/``values`` are the handles and values; ``index_cols[j][i]`` is
    key ``i``'s index into array ``j`` (one vectorised
    ``HashFamily.indices_batch`` call produces exactly this shape). Raises
    :class:`UpdateFailure` if the peel stalls, leaving both structures
    untouched. ``hooks`` receives per-round ``on_peel_round`` events.
    """
    if len(index_cols) != table.num_arrays:
        raise ValueError("need one index column per array")
    if len(keys) == 0:
        return
    flat_mat = _flat_matrix(index_cols, table.width)
    rounds = _peel_rounds(flat_mat, table.width, hooks)
    if rounds is None:
        raise UpdateFailure("static peel stalled (non-empty 2-core)")
    assign_in_reverse_flat(table, rounds, flat_mat, values)
    cells_list = list(zip(*(
        [(j, t) for t in np.asarray(col).tolist()]
        for j, col in enumerate(index_cols)
    )))
    assistant.add_batch(keys, values, cells_list)


# ---------------------------------------------------------------------------
# Historical entry point
# ---------------------------------------------------------------------------


def static_build(
    table: ValueTable,
    assistant: AssistantTable,
    pairs: Iterable[Tuple[int, Tuple[Cell, ...], int]],
) -> None:
    """Populate an *empty* table/assistant statically from
    ``(key, cells, value)`` triples.

    Raises :class:`UpdateFailure` if the peel stalls (caller reseeds, as
    for a dynamic failure). On success both structures hold every pair and
    all equations are satisfied. Dispatches to the flat-array engine when
    the cells have the canonical one-cell-per-array shape (which everything
    VisionEmbedder produces does), and to the reference engine otherwise.
    """
    triples = list(pairs)
    num_arrays = table.num_arrays
    canonical = all(
        len(cells) == num_arrays
        and all(cells[j][0] == j for j in range(num_arrays))
        for _, cells, _ in triples
    )
    if not canonical:
        static_build_reference(table, assistant, triples)
        return
    keys = [key for key, _, _ in triples]
    values = [value for _, _, value in triples]
    index_cols = [
        [cells[j][1] for _, cells, _ in triples] for j in range(num_arrays)
    ]
    static_build_arrays(table, assistant, keys, values, index_cols)
