"""Static (peeling) construction of a value table (§II, §IV-C).

The paper notes that reconstruction "can either use the existing static
construction method of Bloomier or our dynamic update scheme to insert KV
pairs one by one". This module provides that static path for
VisionEmbedder's own geometry: a greedy peel (find a cell referenced by
exactly one remaining key, defer it, recurse) runs in O(n) and succeeds
with near-certainty at the default 1.7 cells/key — comfortably above the
three-segment peeling threshold (~1.23) — making it the fastest way to
bulk-load or rebuild a table. The result is indistinguishable from a
dynamically-built table: subsequent inserts/updates/deletes work as usual.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.core.assistant_table import AssistantTable
from repro.core.errors import UpdateFailure
from repro.core.value_table import ValueTable

Cell = Tuple[int, int]


def peel_order(
    key_cells: Dict[int, Tuple[Cell, ...]]
) -> Optional[List[Tuple[int, Cell]]]:
    """Greedy peel: an order in which each key owns a private cell.

    Returns ``[(key, its singleton cell), ...]`` in peel order, or None if
    the peel stalls (the 2-core is non-empty).
    """
    cell_members: Dict[Cell, Set[int]] = {}
    for key, cells in key_cells.items():
        for cell in cells:
            cell_members.setdefault(cell, set()).add(key)

    queue = [cell for cell, members in cell_members.items()
             if len(members) == 1]
    order: List[Tuple[int, Cell]] = []
    peeled: Set[int] = set()
    while queue:
        cell = queue.pop()
        members = cell_members.get(cell)
        if not members or len(members) != 1:
            continue
        (key,) = members
        peeled.add(key)
        order.append((key, cell))
        for other in key_cells[key]:
            cell_members[other].discard(key)
            if len(cell_members[other]) == 1:
                queue.append(other)
    if len(peeled) != len(key_cells):
        return None
    return order


def assign_in_reverse(
    table: ValueTable,
    order: List[Tuple[int, Cell]],
    key_cells: Dict[int, Tuple[Cell, ...]],
    values: Dict[int, int],
) -> None:
    """Write cells in reverse peel order so every equation holds.

    Processing keys last-peeled-first, each key's private cell is still
    unconstrained when reached, so it absorbs whatever XOR correction the
    key's equation needs.
    """
    for key, own_cell in reversed(order):
        others = [c for c in key_cells[key] if c != own_cell]
        table.set(own_cell, values[key] ^ table.xor_sum(others))


def static_build(
    table: ValueTable,
    assistant: AssistantTable,
    pairs: Iterable[Tuple[int, Tuple[Cell, ...], int]],
) -> None:
    """Populate an *empty* table/assistant statically from
    ``(key, cells, value)`` triples.

    Raises :class:`UpdateFailure` if the peel stalls (caller reseeds, as
    for a dynamic failure). On success both structures hold every pair and
    all equations are satisfied.
    """
    key_cells: Dict[int, Tuple[Cell, ...]] = {}
    values: Dict[int, int] = {}
    for key, cells, value in pairs:
        key_cells[key] = cells
        values[key] = value

    order = peel_order(key_cells)
    if order is None:
        raise UpdateFailure("static peel stalled (non-empty 2-core)")
    assign_in_reverse(table, order, key_cells, values)
    for key, cells in key_cells.items():
        assistant.add(key, values[key], cells)
