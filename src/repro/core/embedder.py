"""VisionEmbedder: the paper's compact value-only key-value table.

Lookup reads three cells (one per array, selected by three independent hash
functions) and XORs them — constant time, fast-space only. Dynamic updates
run the vision-update search of §IV over the slow-space assistant table,
then apply one XOR increment along the resulting modification path. Failed
updates reconstruct with fresh hash seeds when the table is lightly loaded
and surface :class:`SpaceExhausted` when it is genuinely full, exactly per
the paper's §IV-B failure policy.

Typical use::

    from repro import VisionEmbedder

    table = VisionEmbedder(capacity=10_000, value_bits=8, seed=7)
    table.insert("alpha", 42)
    assert table.lookup("alpha") == 42
    table.update("alpha", 17)
    table.delete("alpha")
"""

from __future__ import annotations

import math
import random
import time
from typing import Any, Iterable, List, Optional, Sequence, Tuple

import numpy as np
import numpy.typing as npt

from repro.core.config import EmbedderConfig
from repro.core.engine import make_engine
from repro.core.packed_table import PackedValueTable
from repro.core.errors import (
    DuplicateKey,
    KeyNotFound,
    ReconstructionFailed,
    SpaceExhausted,
    UpdateFailure,
)
from repro.core.stats import TableStats
from repro.core.static_build import static_build_arrays
from repro.core.update import make_strategy, search_update_path
from repro.core.value_table import ValueTable
from repro.hashing import HashFamily, key_to_u64, keys_to_u64_batch
from repro.obs.hooks import MetricsHooks, WalkHooks, default_metrics_enabled
from repro.table import Key, ValueOnlyTable

Cell = Tuple[int, int]


class VisionEmbedder(ValueOnlyTable):
    """Value-only KV table with constant lookup and vision updates.

    Parameters
    ----------
    capacity:
        Expected maximum number of KV pairs; the value table is provisioned
        with ``config.space_factor`` cells per expected pair (paper default
        1.7, i.e. 1.7·L bits per pair).
    value_bits:
        L — the value length in bits (1..64).
    config:
        Tunables; see :class:`repro.core.config.EmbedderConfig`.
    seed:
        Master hash seed. Reconstruction bumps it deterministically.
    packed:
        Store the fast space bit-packed (⌈m·L/64⌉ words of RAM — the
        title's bit-level compactness realised in memory) instead of one
        word per cell. Packed lookups cost a little more Python-side;
        semantics are identical.
    hooks:
        Optional tracing hooks (:class:`repro.obs.hooks.WalkHooks` shape)
        receiving walk/kick/reconstruct/peel events — see
        docs/observability.md. None (the default) keeps the write path at
        one pointer test per event site; when
        :func:`repro.obs.enable_default_metrics` is active and no hooks
        are given, a :class:`~repro.obs.hooks.MetricsHooks` over this
        table's own stats registry is attached automatically.
    """

    name = "vision"

    def __init__(
        self,
        capacity: int,
        value_bits: int,
        config: Optional[EmbedderConfig] = None,
        seed: int = 1,
        num_arrays: int = 3,
        packed: bool = False,
        hooks: Optional[WalkHooks] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.config = config if config is not None else EmbedderConfig()
        self.capacity = capacity
        self._value_bits = value_bits
        self.num_arrays = num_arrays
        self.packed = packed
        width = max(1, math.ceil(capacity * self.config.space_factor / num_arrays))
        # Duck-typed slot: plain or packed table, and the repro.check
        # tooling swaps in instrumented proxies via instrument_sync().
        table_class: Any = PackedValueTable if packed else ValueTable
        self._table = table_class(width, value_bits, num_arrays)
        # The execution engine owns the batched write path and chooses the
        # assistant implementation (AssistantTable for the scalar backend,
        # ArrayAssistant for the vector/numba backends). Both are
        # duck-compatible; single-key operations behave identically.
        self._engine = make_engine(self.config.backend)
        self._assistant: Any = self._engine.make_assistant(width, num_arrays)
        # Per-array flat-id offsets j·width, cached for the fused batch
        # lookup (width never changes, even across reconstructions).
        self._flat_offsets = (
            np.arange(num_arrays, dtype=np.int64) * width
        )[:, None]
        self._seed = seed
        self._hashes = HashFamily(seed, [width] * num_arrays)
        self._stats = TableStats()
        self._strategy = make_strategy(
            self.config.strategy,
            self.config.depth_policy,
            random.Random(seed ^ 0xA5A5A5A5),
            use_cache=self.config.cost_cache,
            stats=self._stats,
        )
        self._retry_rng = random.Random(seed ^ 0x0F0F0F0F)
        # Raw counter handles for the per-insert path: mutations are
        # serialised (single writer), so the bare .value increment is safe
        # and as cheap as the plain dataclass field it replaced.
        self._updates_counter = self._stats.counter_for("updates")
        self._repair_steps_counter = self._stats.counter_for("repair_steps")
        self._in_reconstruct = False
        self._hooks: Optional[WalkHooks] = None
        if hooks is None and default_metrics_enabled():
            hooks = MetricsHooks(self._stats.registry)
        if hooks is not None:
            self.set_hooks(hooks)

    # ------------------------------------------------------------------
    # ValueOnlyTable surface
    # ------------------------------------------------------------------

    @property
    def value_bits(self) -> int:
        return self._value_bits

    @property
    def space_bits(self) -> int:
        return self._table.space_bits

    @property
    def stats(self) -> TableStats:
        return self._stats

    @property
    def hooks(self) -> Optional[WalkHooks]:
        """The attached tracing hooks, or None when tracing is disabled."""
        return self._hooks

    def set_hooks(self, hooks: Optional[WalkHooks]) -> None:
        """Attach (or with None, detach) tracing hooks.

        Any object with the :class:`repro.obs.hooks.WalkHooks` methods
        works. A hooks object exposing ``subtree_histogram`` (e.g.
        :class:`~repro.obs.hooks.MetricsHooks`, or a composite containing
        one) additionally wires the GetCost-subtree histogram into the
        vision strategy; detaching clears it.
        """
        self._hooks = hooks
        if hasattr(self._strategy, "subtree_histogram"):
            self._strategy.subtree_histogram = getattr(
                hooks, "subtree_histogram", None
            )

    @property
    def seed(self) -> int:
        """The current master hash seed (changes on reconstruction)."""
        return self._seed

    @property
    def num_cells(self) -> int:
        """m: the number of value-table cells."""
        return self._table.num_cells

    @property
    def space_efficiency(self) -> float:
        """n/m — the paper's space-efficiency metric (§IV-B)."""
        return len(self._assistant) / self._table.num_cells

    def __len__(self) -> int:
        return len(self._assistant)

    def __contains__(self, key: Key) -> bool:
        return key_to_u64(key) in self._assistant

    # repro: raises(ValueError, TypeError)
    def lookup(self, key: Key) -> int:  # repro: hotpath
        """XOR of the key's three cells — fast space only, O(1)."""
        handle = key_to_u64(key)
        return self._table.xor_sum(self._cells_for(handle))

    def lookup_batch(
        self, keys: npt.NDArray[np.uint64]
    ) -> npt.NDArray[np.uint64]:  # repro: hotpath
        """Vectorised lookup over a ``uint64`` key array.

        One fused gather + XOR-reduce over all three bit-plane arrays: the
        per-array indices become one flat-id matrix and
        :meth:`~repro.core.value_table.ValueTable.gather_xor` resolves the
        whole batch without per-array Python dispatch.
        """
        key_array = np.asarray(keys, dtype=np.uint64)
        if key_array.size == 0:
            return np.zeros(0, dtype=np.uint64)
        index_arrays = self._hashes.indices_batch(key_array)
        flat_mat = (
            np.stack(index_arrays).astype(np.int64) + self._flat_offsets
        )
        result: npt.NDArray[np.uint64] = self._table.gather_xor(flat_mat)
        return result

    # repro: raises(ValueError, TypeError)
    def lookup_many(self, keys: Iterable[Key]) -> npt.NDArray[np.uint64]:
        """Batched lookup over arbitrary (mixed-type) keys.

        Canonicalises the keys to one ``uint64`` handle array and resolves
        them through the fused :meth:`lookup_batch` path.
        """
        return self.lookup_batch(keys_to_u64_batch(list(keys)))

    # repro: atomic
    # repro: raises(DuplicateKey, ValueError, TypeError, UpdateFailure)
    # repro: raises(SpaceExhausted, ReconstructionFailed)
    def insert(self, key: Key, value: int) -> None:  # repro: hotpath
        """Insert a new pair; dynamic update per §IV."""
        handle = key_to_u64(key)
        if handle in self._assistant:
            raise DuplicateKey(f"key {key!r} already inserted")
        self._check_value(value)
        self._assistant.add(handle, value, self._cells_for(handle))
        try:
            self._run_update(handle)
        except BaseException:
            # A failed search leaves the value table untouched, and a
            # failed apply undoes itself (UpdatePlan.apply), so dropping
            # the assistant entry restores full consistency — for *any*
            # failure (SpaceExhausted, a fault mid-walk), not just the
            # policy exceptions.
            self._assistant.remove(handle)
            raise

    # repro: atomic
    # repro: raises(DuplicateKey, ValueError, TypeError, UpdateFailure)
    # repro: raises(SpaceExhausted, ReconstructionFailed)
    def insert_batch(  # repro: hotpath
        self, keys: Iterable[Key], values: Iterable[int]
    ) -> None:
        """Insert many new pairs through the vectorised write pipeline.

        Keys are canonicalised to one ``uint64`` handle array, all cells
        are computed in a single vectorised :meth:`HashFamily.indices_batch`
        pass, and the whole batch is validated (duplicates, value range)
        before anything is registered — a rejected batch leaves the table
        untouched.

        How the walks run depends on ``config.backend``: the scalar engine
        repairs key by key, walk-for-walk identical to sequential
        :meth:`insert` calls (a property test asserts bit-equal tables);
        the vector engine retires every peelable key through the
        round-synchronous multi-walk repair and falls back to the scalar
        walker only for the rest (see :mod:`repro.core.engine`).

        If a mid-batch failure triggers reconstruction, the new seed's
        cells for the *remaining* keys are recomputed in one further
        vectorised pass. The batch is **all-or-nothing**: any mid-batch
        failure — :class:`SpaceExhausted`, a reconstruction that never
        finds a seed, or an arbitrary fault mid-walk — restores the table
        bit-for-bit to its pre-batch state (cells, assistant entries, and
        hash seed) before the exception propagates.
        """
        key_list = list(keys)
        handles = keys_to_u64_batch(key_list)
        n = len(handles)
        value_list = [int(v) for v in values]
        if len(value_list) != n:
            raise ValueError("keys and values must align")
        if n == 0:
            return
        if np.unique(handles).size != n:
            raise DuplicateKey("duplicate keys within batch")
        hits = self._assistant.contains_batch(handles)
        if bool(hits.any()):
            offender = int(np.argmax(hits))
            raise DuplicateKey(
                f"key {key_list[offender]!r} already inserted"
            )
        try:
            value_arr = np.asarray(value_list, dtype=np.uint64)
        except (OverflowError, ValueError):
            # Some value doesn't even fit uint64; the scalar check below
            # raises on the first offender with the precise message.
            for value in value_list:
                self._check_value(value)
            raise  # pragma: no cover - _check_value always raised above
        mask = np.uint64(self._table.value_mask)
        if bool((value_arr > mask).any()):
            self._check_value(value_list[int(np.argmax(value_arr > mask))])
        self._stats.note_batch(n)
        snapshot = self._snapshot_state()
        try:
            self._engine.insert_batch(self, handles, value_list)
        except BaseException:
            # All-or-nothing: a mid-batch failure rewinds cells,
            # assistant entries, and seed to the pre-batch snapshot.
            self._restore_state(snapshot)
            raise

    # repro: raises(DuplicateKey, ValueError, TypeError, UpdateFailure)
    # repro: raises(SpaceExhausted, ReconstructionFailed)
    def insert_many(self, pairs: Iterable[Tuple[Key, int]]) -> None:
        """Insert pairs via :meth:`insert_batch` (vectorised hashing).

        Unlike the base-class loop, the whole batch is validated up front:
        a duplicate or out-of-range pair rejects the batch before any
        insert happens, and a mid-batch :class:`SpaceExhausted` rolls the
        whole batch back (see :meth:`insert_batch`).
        """
        pair_list = list(pairs)
        if not pair_list:
            return
        self.insert_batch(
            [key for key, _ in pair_list], [value for _, value in pair_list]
        )

    # repro: atomic
    # repro: raises(KeyNotFound, ValueError, TypeError, UpdateFailure)
    # repro: raises(SpaceExhausted, ReconstructionFailed)
    def update(self, key: Key, value: int) -> None:
        """Change the value of an existing key; dynamic update per §IV."""
        handle = key_to_u64(key)
        if handle not in self._assistant:
            raise KeyNotFound(f"key {key!r} not inserted")
        self._check_value(value)
        old_value = self._assistant.value(handle)
        self._assistant.set_value(handle, value)
        try:
            self._run_update(handle)
        except BaseException:
            # Value table untouched on a failed search, and a failed
            # apply undoes itself; restoring the old value keeps the
            # existing pair correct on any failure.
            self._assistant.set_value(handle, old_value)
            raise

    # repro: raises(KeyNotFound, ValueError, TypeError)
    def delete(self, key: Key) -> None:
        """Remove a pair — slow-space only; the value table is untouched.

        Per §IV-C: VO tables return meaningless values for alien keys
        anyway, so deletion only needs to decrement the counters and drop
        the key from its buckets, after which the pair no longer constrains
        updates.
        """
        handle = key_to_u64(key)
        if handle not in self._assistant:
            raise KeyNotFound(f"key {key!r} not inserted")
        self._assistant.remove(handle)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    # repro: raises(DuplicateKey, ValueError, TypeError, UpdateFailure)
    # repro: raises(SpaceExhausted, ReconstructionFailed)
    @classmethod
    def from_pairs(
        cls,
        pairs: Iterable[Tuple[Key, int]],
        value_bits: int,
        config: Optional[EmbedderConfig] = None,
        seed: int = 1,
        capacity: Optional[int] = None,
        static: bool = False,
    ) -> "VisionEmbedder":
        """Build a table holding ``pairs``.

        ``static=True`` uses the O(n) peeling construction (§IV-C) instead
        of n dynamic inserts — much faster for bulk loads, identical
        result.
        """
        pair_list = list(pairs)
        if capacity is None:
            capacity = max(1, len(pair_list))
        table = cls(capacity, value_bits, config=config, seed=seed)
        if static:
            table.bulk_load(pair_list)
        else:
            table.insert_many(pair_list)
        return table

    # repro: atomic
    # repro: raises(DuplicateKey, ValueError, TypeError)
    # repro: raises(ReconstructionFailed)
    def bulk_load(self, pairs: Iterable[Tuple[Key, int]]) -> None:
        """Statically (re)build the table holding existing + new pairs.

        Uses the Bloomier-style greedy peel (§II "Static Construction",
        offered for reconstruction in §IV-C): O(n) total rather than n
        dynamic repair walks, succeeding with near-certainty at the default
        1.7 cells/key. Reseeds and retries on the rare peel stall; if no
        seed within the retry budget works, the table is restored
        bit-for-bit to its pre-call state before
        :class:`ReconstructionFailed` propagates (all-or-nothing, like
        :meth:`insert_batch`).
        """
        pair_list = list(pairs)
        if not pair_list:
            # An empty bulk load is a no-op: re-peeling the existing pairs
            # would only burn time and possibly bump the seed on a stall.
            return
        new_handles = keys_to_u64_batch([key for key, _ in pair_list])
        new_keys = new_handles.tolist()
        new_values = [int(value) for _, value in pair_list]
        if np.unique(new_handles).size != len(new_keys):
            raise DuplicateKey("duplicate keys within batch")
        hits = self._assistant.contains_batch(new_handles)
        if bool(hits.any()):
            offender = int(np.argmax(hits))
            raise DuplicateKey(
                f"key {pair_list[offender][0]!r} already inserted"
            )
        try:
            new_value_arr = np.asarray(new_values, dtype=np.uint64)
        except (OverflowError, ValueError):
            for value in new_values:
                self._check_value(value)
            raise  # pragma: no cover - _check_value always raised above
        mask = np.uint64(self._table.value_mask)
        if bool((new_value_arr > mask).any()):
            self._check_value(
                new_values[int(np.argmax(new_value_arr > mask))]
            )
        all_keys = [key for key, _ in self._assistant.pairs()]
        all_values = [value for _, value in self._assistant.pairs()]
        all_keys.extend(new_keys)
        all_values.extend(new_values)
        key_array = np.array(all_keys, dtype=np.uint64)
        self._stats.note_batch(len(new_keys))
        snapshot = self._snapshot_state()
        try:
            if hasattr(self._engine, "bulk_load_arrays"):
                # The vector engine peels directly over flat arrays,
                # skipping the per-key cells-tuple materialisation
                # entirely.
                self._engine.bulk_load_arrays(
                    self,
                    key_array,
                    np.array(all_values, dtype=np.uint64),
                    len(new_keys),
                )
                return
            for _ in range(self.config.max_reconstruct_attempts):
                self._table.clear()
                self._assistant.clear()
                try:
                    # One vectorised hashing pass per seed attempt feeds
                    # the flat-array peel directly.
                    static_build_arrays(
                        self._table,
                        self._assistant,
                        all_keys,
                        all_values,
                        [
                            arr.tolist()
                            for arr in self._hashes.indices_batch(key_array)
                        ],
                        hooks=self._hooks,
                    )
                except UpdateFailure:
                    self._stats.update_failures += 1
                    self._stats.reconstructions += 1
                    self._seed += 1
                    self._hashes = self._hashes.reseeded(self._seed)
                    continue
                self._stats.updates += len(new_keys)
                return
            raise ReconstructionFailed(
                f"static peel failed for "
                f"{self.config.max_reconstruct_attempts} seeds"
            )
        except BaseException:
            # All-or-nothing: a stalled peel (or a fault mid-build)
            # rewinds cells, assistant entries, and seed — the table
            # never stays in the cleared intermediate state.
            self._restore_state(snapshot)
            raise

    # ------------------------------------------------------------------
    # Update machinery
    # ------------------------------------------------------------------

    def _cells_for(self, handle: int) -> Tuple[Cell, ...]:  # repro: hotpath
        return tuple(enumerate(self._hashes.indices(handle)))

    def _check_value(self, value: int) -> None:
        if not 0 <= value <= self._table.value_mask:
            raise ValueError(
                f"value {value} out of range for {self._value_bits}-bit values"
            )

    def _run_update(self, handle: int) -> None:  # repro: hotpath
        """Search for a modification path and apply it; handle failure."""
        try:
            plan = search_update_path(
                self._table,
                self._assistant,
                handle,
                self._strategy,
                self.space_efficiency,
                self.config.max_repair_steps,
                max_attempts=self.config.max_search_attempts,
                rng=self._retry_rng,
                hooks=self._hooks,
            )
        except UpdateFailure as failure:
            self._stats.update_failures += 1
            self._stats.repair_steps += failure.steps
            self._handle_failure()
            return
        # Counters first, apply last: once the plan lands there is no
        # further statement a fault could interrupt between the table
        # mutation and this function's return (the apply itself undoes
        # an interrupted cell loop — see UpdatePlan.apply).
        self._updates_counter.value += 1
        self._repair_steps_counter.value += plan.steps
        plan.apply(self._table)

    def _handle_failure(self) -> None:
        """Apply the paper's failure policy (§IV-B "Update Failure")."""
        if self._in_reconstruct:
            # Let reconstruct() count this attempt and try the next seed.
            raise UpdateFailure("update failed during reconstruction")
        if self.space_efficiency >= self.config.reconstruct_efficiency_limit:
            raise SpaceExhausted(
                f"space efficiency {self.space_efficiency:.3f} is at or above "
                f"{self.config.reconstruct_efficiency_limit}; remove entries or "
                "resize the table"
            )
        if not self.config.auto_reconstruct:
            raise SpaceExhausted(
                "update failed and auto_reconstruct is disabled"
            )
        self.reconstruct()

    # repro: atomic
    # repro: raises(ValueError, ReconstructionFailed)
    def reconstruct(self, method: str = "dynamic") -> None:
        """Reseed all hash functions and rebuild both tables (§IV-C).

        ``method`` selects how the value table is repopulated, per the
        paper: ``"dynamic"`` re-inserts pair by pair with the update
        scheme; ``"static"`` runs the O(n) peeling construction.

        Each rebuild pass (reseed + rebuild) increments
        ``stats.reconstructions``; wall time accumulates in
        ``stats.reconstruct_seconds`` so throughput experiments can exclude
        it (Fig 6). Raises :class:`ReconstructionFailed` if no seed within
        the retry budget succeeds. Attached hooks receive one
        ``on_reconstruct(seed, method, seconds, success)`` event per call
        (not per reseed attempt), after the rebuild settles.
        """
        if method not in ("dynamic", "static"):
            raise ValueError("method must be 'dynamic' or 'static'")
        keys: List[int] = []
        values: List[int] = []
        for key, value in self._assistant.pairs():
            keys.append(key)
            values.append(value)
        key_array = np.array(keys, dtype=np.uint64)
        snapshot = self._snapshot_state()
        started = time.perf_counter()
        self._in_reconstruct = True
        succeeded = False
        try:
            for _ in range(self.config.max_reconstruct_attempts):
                self._stats.reconstructions += 1
                self._seed += 1
                self._hashes = self._hashes.reseeded(self._seed)
                self._table.clear()
                self._assistant.clear()
                # Every reseed recomputes every key's cells in one
                # vectorised pass instead of n×k scalar murmur calls.
                index_cols = [
                    arr.tolist()
                    for arr in self._hashes.indices_batch(key_array)
                ]
                if method == "static":
                    try:
                        static_build_arrays(
                            self._table,
                            self._assistant,
                            keys,
                            values,
                            index_cols,
                            hooks=self._hooks,
                        )
                        succeeded = True
                        return
                    except UpdateFailure:
                        continue
                elif self._try_rebuild(keys, values, index_cols):
                    succeeded = True
                    return
            raise ReconstructionFailed(
                f"no working seed within {self.config.max_reconstruct_attempts} "
                "reconstruction attempts"
            )
        except BaseException:
            # All-or-nothing: an exhausted retry budget (or a fault
            # mid-rebuild) rewinds cells, assistant entries, and seed to
            # the pre-reconstruct state instead of leaving a cleared
            # half-rebuilt table behind.
            self._restore_state(snapshot)
            raise
        finally:
            self._in_reconstruct = False
            elapsed = time.perf_counter() - started
            self._stats.reconstruct_seconds += elapsed
            if self._hooks is not None:
                self._hooks.on_reconstruct(
                    self._seed, method, elapsed, succeeded
                )

    def _try_rebuild(
        self,
        keys: Sequence[int],
        values: Sequence[int],
        index_cols: Sequence[Sequence[int]],
    ) -> bool:
        """One rebuild pass; False if any insert's update fails."""
        num_arrays = self.num_arrays
        for inserted, (key, value) in enumerate(zip(keys, values)):
            cells = tuple(
                (j, index_cols[j][inserted]) for j in range(num_arrays)
            )
            self._assistant.add(key, value, cells)
            try:
                plan = search_update_path(
                    self._table,
                    self._assistant,
                    key,
                    self._strategy,
                    (inserted + 1) / self._table.num_cells,
                    self.config.max_repair_steps,
                    max_attempts=self.config.max_search_attempts,
                    rng=self._retry_rng,
                    hooks=self._hooks,
                )
            except UpdateFailure:
                return False
            plan.apply(self._table)
            self._repair_steps_counter.value += plan.steps
        return True

    # ------------------------------------------------------------------
    # Rollback machinery (the strong exception guarantee)
    # ------------------------------------------------------------------

    def _snapshot_state(
        self,
    ) -> Tuple[int, npt.NDArray[np.uint64], List[Tuple[int, int]]]:
        """Capture ``(seed, dense cells, assistant pairs)`` for rollback.

        Everything bit-equality is judged on: the XOR planes as one dense
        array, the registered pairs, and the hash seed (a reconstruction
        mid-operation bumps it; rolling back must rewind it too).
        """
        return (
            self._seed,
            self._table.to_dense(),
            list(self._assistant.pairs()),
        )

    def _restore_state(
        self,
        snapshot: Tuple[int, npt.NDArray[np.uint64], List[Tuple[int, int]]],
    ) -> None:
        """Rewind to a :meth:`_snapshot_state` snapshot bit-for-bit."""
        seed, dense, pairs = snapshot
        if self._seed != seed:
            self._seed = seed
            self._hashes = self._hashes.reseeded(seed)
        self._table.load_dense(dense)
        self._assistant.clear()
        if pairs:
            handles = np.array([key for key, _ in pairs], dtype=np.uint64)
            index_cols = [
                arr.tolist() for arr in self._hashes.indices_batch(handles)
            ]
            for i, (key, value) in enumerate(pairs):
                self._assistant.add(
                    key, value,
                    tuple((j, index_cols[j][i])
                          for j in range(self.num_arrays)),
                )

    # ------------------------------------------------------------------
    # Introspection used by tests
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Assert every live key's equation holds and bookkeeping agrees."""
        self._assistant.check_consistency()
        for key, value in self._assistant.pairs():
            actual = self._table.xor_sum(self._assistant.cells(key))
            assert actual == value, (
                f"equation broken for key {key}: table says {actual}, "
                f"assistant says {value}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        stats = self._stats
        return (
            f"VisionEmbedder(n={len(self)}, m={self.num_cells}, "
            f"L={self._value_bits}, strategy={self.config.strategy!r}, "
            f"cost_cache_hit_rate={stats.cost_cache_hit_rate:.2f}, "
            f"batches={stats.batch_inserts} (largest {stats.largest_batch}))"
        )
