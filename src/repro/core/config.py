"""Configuration for :class:`repro.core.embedder.VisionEmbedder`.

Defaults follow the paper's evaluation setup: a space budget of 1.7·L·n bits
(§VI-A3), a repair budget of 50 steps (§IV-B "Update Failure"), automatic
reconstruction below 0.6 space efficiency, and the dynamic MaxDepth schedule
1 → 2 → 3 at space efficiencies 0.2 and 0.4 (§IV-B "Dynamic Depth").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence


@dataclass(frozen=True)
class DepthPolicy:
    """Maps current space efficiency (n/m) to a GetCost lookahead depth.

    ``thresholds[i]`` is the inclusive upper bound of the efficiency band in
    which ``depths[i]`` applies; ``depths[-1]`` applies above the last
    threshold. The paper's schedule is ``(0.2, 0.4) -> (1, 2, 3)``.

    A fixed depth d is expressed as ``DepthPolicy(fixed=d)`` and is used by
    the ablation benchmarks.
    """

    thresholds: Sequence[float] = (0.2, 0.4)
    depths: Sequence[int] = (1, 2, 3)
    fixed: int | None = None

    def __post_init__(self) -> None:
        if self.fixed is None and len(self.depths) != len(self.thresholds) + 1:
            raise ValueError("need exactly one more depth than thresholds")
        if self.fixed is not None and self.fixed < 1:
            raise ValueError("fixed depth must be >= 1")

    def depth_for(self, space_efficiency: float) -> int:
        """The MaxDepth to use at the given space efficiency."""
        if self.fixed is not None:
            return self.fixed
        for threshold, depth in zip(self.thresholds, self.depths):
            if space_efficiency < threshold:
                return depth
        return self.depths[-1]


@dataclass(frozen=True)
class EmbedderConfig:
    """Tunables for VisionEmbedder.

    Attributes
    ----------
    space_factor:
        m/n ratio: number of value-table cells provisioned per expected key.
        Paper default 1.7 (Theorem 1 proves convergence needs > 1.756 at
        MaxDepth=1; deeper vision pushes the achievable ratio down to the
        measured 1.58).
    strategy:
        ``"vision"`` for the GetCost lookahead of §IV-B, ``"simple"`` for the
        random-kick strategy of §IV-A.
    depth_policy:
        Dynamic MaxDepth schedule (vision strategy only).
    max_repair_steps:
        Update-failure budget: repair recursions per update before the
        update is declared failed (paper: 50).
    max_search_attempts:
        Randomised retries of a stuck repair walk before declaring an
        update failure — the paper's "search backtrack feature" (§IV-B).
        Attempt 0 is deterministic; retries use randomised tie-breaking,
        ε-greedy exploration, and a 3× step budget. 1 disables retries.
    reconstruct_efficiency_limit:
        At or above this space efficiency a failed update raises
        :class:`~repro.core.errors.SpaceExhausted` instead of reconstructing
        (paper: 0.6).
    max_reconstruct_attempts:
        Reseed-and-rebuild attempts before giving up entirely.
    auto_reconstruct:
        If False, update failures always surface as exceptions (used by the
        failure-frequency experiments to count without retrying forever).
    cost_cache:
        Memoise the vision strategy's GetCost subtrees, invalidated by the
        assistant table's per-bucket generation counters. Semantically
        transparent (a property test asserts cached ≡ uncached choices);
        disable for ablations or to bound slow-space RAM strictly.
    backend:
        Execution engine for the batched write/read paths
        (:mod:`repro.core.engine`). ``"scalar"`` (default) keeps the
        per-key walk loop; ``"vector"`` registers batches through the
        array-native assistant and repairs them with the round-synchronous
        multi-walk peel, falling back to the scalar walker only for keys
        the peel cannot retire; ``"numba"`` is the vector engine with
        jitted kernels when numba is importable, and silently degrades to
        the plain vector engine otherwise. Single-key operations behave
        identically (and bit-equally) under every backend.
    """

    space_factor: float = 1.7
    strategy: str = "vision"
    depth_policy: DepthPolicy = field(default_factory=DepthPolicy)
    max_repair_steps: int = 50
    max_search_attempts: int = 8
    reconstruct_efficiency_limit: float = 0.6
    max_reconstruct_attempts: int = 20
    auto_reconstruct: bool = True
    cost_cache: bool = True
    backend: str = "scalar"

    def __post_init__(self) -> None:
        if self.space_factor <= 1.0:
            raise ValueError("space_factor must exceed 1.0 (need m > n)")
        if self.strategy not in ("vision", "simple"):
            raise ValueError("strategy must be 'vision' or 'simple'")
        if self.backend not in ("scalar", "vector", "numba"):
            raise ValueError("backend must be 'scalar', 'vector' or 'numba'")
        if self.max_repair_steps < 1:
            raise ValueError("max_repair_steps must be >= 1")
        if self.max_search_attempts < 1:
            raise ValueError("max_search_attempts must be >= 1")
        if not 0.0 < self.reconstruct_efficiency_limit <= 1.0:
            raise ValueError("reconstruct_efficiency_limit must be in (0, 1]")
