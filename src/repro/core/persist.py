"""Persistence: serialise a VisionEmbedder (or sharded table) to a file.

The format is a single ``numpy`` ``.npz`` archive holding the fast space
(cell matrix), the slow space (parallel key/value arrays — cells are
recomputed from the seed on load), and a small metadata vector. No pickle
is involved, so the files are safe to load from untrusted sources and
stable across Python versions.

A :class:`~repro.core.sharded.ShardedEmbedder` round-trips through
:func:`save_sharded`/:func:`load_sharded`: an outer ``.npz`` holds the
sharded geometry plus one embedded per-shard payload in exactly the
single-table format above, so every shard's fast space is restored
byte-for-byte (including any seed bumps its reconstructions made).
"""

from __future__ import annotations

import io
import os
from typing import Union

import numpy as np

from repro.core.config import DepthPolicy, EmbedderConfig
from repro.core.embedder import VisionEmbedder
from repro.core.sharded import ShardedEmbedder

_FORMAT_VERSION = 1
_SHARDED_FORMAT_VERSION = 1

PathOrFile = Union[str, os.PathLike, io.IOBase]


def save_embedder(table: VisionEmbedder, target: PathOrFile) -> None:
    """Write ``table`` (fast + slow space) to ``target``.

    ``target`` may be a path or a writable binary file object.
    """
    keys = np.fromiter(
        (key for key, _ in table._assistant.pairs()),
        dtype=np.uint64,
        count=len(table),
    )
    values = np.fromiter(
        (value for _, value in table._assistant.pairs()),
        dtype=np.uint64,
        count=len(table),
    )
    config = table.config
    meta = np.array(
        [
            _FORMAT_VERSION,
            table.capacity,
            table.value_bits,
            table.num_arrays,
            table.seed,
            config.max_repair_steps,
            config.max_search_attempts,
            config.max_reconstruct_attempts,
            1 if config.auto_reconstruct else 0,
            1 if config.strategy == "vision" else 0,
            1 if table.packed else 0,
        ],
        dtype=np.int64,
    )
    float_meta = np.array(
        [config.space_factor, config.reconstruct_efficiency_limit],
        dtype=np.float64,
    )
    fast_space = table._table
    dense = (
        fast_space.to_dense() if hasattr(fast_space, "to_dense")
        else fast_space._cells
    )
    np.savez(
        target,
        meta=meta,
        float_meta=float_meta,
        cells=dense,
        keys=keys,
        values=values,
    )


def load_embedder(source: PathOrFile) -> VisionEmbedder:
    """Rebuild a VisionEmbedder written by :func:`save_embedder`.

    The fast space is restored byte-for-byte (no re-insertion, no repair
    walks); assistant-table cell sets are recomputed from the stored seed.
    """
    with np.load(source) as archive:
        meta = archive["meta"]
        float_meta = archive["float_meta"]
        cells = archive["cells"]
        keys = archive["keys"]
        values = archive["values"]

    version = int(meta[0])
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported format version {version}")
    config = EmbedderConfig(
        space_factor=float(float_meta[0]),
        strategy="vision" if int(meta[9]) else "simple",
        depth_policy=DepthPolicy(),
        max_repair_steps=int(meta[5]),
        max_search_attempts=int(meta[6]),
        reconstruct_efficiency_limit=float(float_meta[1]),
        max_reconstruct_attempts=int(meta[7]),
        auto_reconstruct=bool(int(meta[8])),
    )
    packed = bool(int(meta[10])) if len(meta) > 10 else False
    table = VisionEmbedder(
        capacity=int(meta[1]),
        value_bits=int(meta[2]),
        config=config,
        seed=int(meta[4]),
        num_arrays=int(meta[3]),
        packed=packed,
    )
    expected_shape = (table.num_arrays, table._table.width)
    if cells.shape != expected_shape:
        raise ValueError(
            "stored fast space does not match the reconstructed geometry"
        )
    # The stored cells already satisfy every equation the assistant
    # re-derives below, so the verbatim restore cannot break the invariant.
    table._table.load_dense(cells.astype(np.uint64))  # repro: noqa[R101] -- persisted fast space restored verbatim
    # Recompute every key's cells in one vectorised pass and bulk-register.
    num_arrays = table.num_arrays
    index_cols = [arr.tolist() for arr in table._hashes.indices_batch(keys)]
    table._assistant.add_batch(
        keys.tolist(),
        values.tolist(),
        [
            tuple((j, index_cols[j][i]) for j in range(num_arrays))
            for i in range(len(keys))
        ],
    )
    return table


def save_sharded(table: ShardedEmbedder, target: PathOrFile) -> None:
    """Write a sharded table (router geometry + every shard) to ``target``.

    Each shard is serialised with :func:`save_embedder` into an embedded
    byte payload, so the per-shard format (and its guarantees) carry over
    unchanged; the outer metadata pins the shard count, master seed, and
    slack so the router reproduces the exact same partition on load.
    """
    meta = np.array(
        [
            _SHARDED_FORMAT_VERSION,
            table.num_shards,
            table.capacity,
            table.value_bits,
            table.num_arrays,
            1 if table.packed else 0,
            table.seed,
        ],
        dtype=np.int64,
    )
    float_meta = np.array([table.shard_slack], dtype=np.float64)
    payloads = {}
    for index, shard in enumerate(table.shards):
        buffer = io.BytesIO()
        save_embedder(shard, buffer)
        payloads[f"shard_{index}"] = np.frombuffer(
            buffer.getvalue(), dtype=np.uint8
        )
    np.savez(
        target, sharded_meta=meta, sharded_float_meta=float_meta, **payloads
    )


def load_sharded(source: PathOrFile) -> ShardedEmbedder:
    """Rebuild a :class:`ShardedEmbedder` written by :func:`save_sharded`.

    Every shard's fast space is restored byte-for-byte through
    :func:`load_embedder`; the shard router is rebuilt from the stored
    master seed, so each restored key routes to the shard it was saved in.
    """
    with np.load(source) as archive:
        meta = archive["sharded_meta"]
        float_meta = archive["sharded_float_meta"]
        version = int(meta[0])
        if version != _SHARDED_FORMAT_VERSION:
            raise ValueError(f"unsupported sharded format version {version}")
        num_shards = int(meta[1])
        payloads = []
        for index in range(num_shards):
            name = f"shard_{index}"
            if name not in archive:
                raise ValueError(f"archive is missing shard payload {name!r}")
            payloads.append(archive[name].tobytes())
    shards = [load_embedder(io.BytesIO(payload)) for payload in payloads]
    table = ShardedEmbedder(
        capacity=int(meta[2]),
        value_bits=int(meta[3]),
        num_shards=num_shards,
        config=shards[0].config,
        seed=int(meta[6]),
        shard_slack=float(float_meta[0]),
        num_arrays=int(meta[4]),
        packed=bool(int(meta[5])),
    )
    table._shards = shards
    return table
